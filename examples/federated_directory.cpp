// §2.4: the hierarchical namespace lets the white-pages DIT be managed by
// several servers (naming contexts) while applications keep a unified
// view. This example splits the Figure 1 tree, searches across referrals,
// and shows why structure-schema legality must be judged on the unified
// view rather than per partition.
//
//   $ ./build/examples/federated_directory
#include <cstdio>

#include "federation/federation.h"
#include "ldap/filter.h"
#include "ldap/ldif.h"
#include "workload/white_pages.h"

using namespace ldapbound;

int main() {
  auto vocab = std::make_shared<Vocabulary>();
  auto schema = MakeWhitePagesSchema(vocab);
  auto directory = MakeFigure1Instance(*schema);
  if (!directory.ok()) {
    std::printf("error: %s\n", directory.status().ToString().c_str());
    return 1;
  }

  std::printf("=== splitting the DIT at ou=attLabs,o=att ===\n");
  auto federation = Federation::Split(
      *directory, {*DistinguishedName::Parse("ou=attLabs,o=att")});
  if (!federation.ok()) {
    std::printf("error: %s\n", federation.status().ToString().c_str());
    return 1;
  }
  std::printf("glue partition (%zu entries):\n%s",
              federation->glue().NumEntries(),
              WriteLdif(federation->glue()).c_str());
  std::printf("context partition (%zu entries) mounted under '%s'\n",
              federation->contexts()[0].directory->NumEntries(),
              federation->contexts()[0].mount_parent.ToString().c_str());

  std::printf("\n=== federated search: researchers anywhere ===\n");
  auto filter = ParseFilter("(objectClass=researcher)", *vocab);
  auto hits = federation->Search(*DistinguishedName::Parse("o=att"),
                                 *filter);
  for (const std::string& dn : *hits) std::printf("  %s\n", dn.c_str());

  std::printf("\n=== legality: unified vs per-partition ===\n");
  std::printf("federated (unified-view) verdict: %s\n",
              federation->CheckLegality(*schema) ? "LEGAL" : "ILLEGAL");
  auto verdicts = federation->NaivePerPartitionStructureVerdicts(*schema);
  std::printf("naive per-partition structure verdicts:\n");
  std::printf("  glue:    %s   (att's person descendants live elsewhere)\n",
              verdicts[0] ? "legal" : "ILLEGAL");
  std::printf("  context: %s   (orgUnits lack their organization above)\n",
              verdicts[1] ? "legal" : "ILLEGAL");
  std::printf("=> structural bounds are a property of the unified view.\n");

  std::printf("\n=== reunify ===\n");
  auto unified = federation->Unify();
  std::printf("unified == original: %s\n",
              WriteLdif(*unified) == WriteLdif(*directory) ? "yes" : "no");
  return 0;
}
