// Primary/replica replication via the changelog: every committed mutation
// of the primary is recorded as an RFC 2849 LDIF change record (with
// transaction grouping preserved through `# txn:` comments) and shipped to
// a replica, which replays it through its own schema-guarded operations.
//
//   $ ./build/examples/replication
#include <cstdio>

#include "server/changelog.h"
#include "server/directory_server.h"

using namespace ldapbound;

namespace {

constexpr char kSchema[] = R"(
attribute name string
attribute uid string
attribute mail string
attribute ou string

class team : top {
  require ou
}
class person : top {
  require name, uid
  aux online
}
auxclass online {
  allow mail
}
structure {
  require team descendant person
  forbid person child top
}
)";

DistinguishedName Dn(const char* text) {
  return *DistinguishedName::Parse(text);
}

}  // namespace

int main() {
  auto primary = DirectoryServer::Create(kSchema);
  if (!primary.ok()) {
    std::printf("error: %s\n", primary.status().ToString().c_str());
    return 1;
  }
  primary->EnableChangelog();

  // Activity on the primary: a staffed team (one transaction — the team
  // alone would be illegal), a later hire, a modify and a move.
  UpdateTransaction bootstrap;
  EntrySpec team;
  team.classes = {"team", "top"};
  team.values = {{"ou", "research"}};
  bootstrap.Insert(Dn("ou=research"), team);
  EntrySpec ada;
  ada.classes = {"person", "top"};
  ada.values = {{"uid", "ada"}, {"name", "Ada Lovelace"}};
  bootstrap.Insert(Dn("uid=ada,ou=research"), ada);
  (void)primary->Apply(bootstrap);

  EntrySpec bob;
  bob.classes = {"person", "top", "online"};
  bob.values = {{"uid", "bob"},
                {"name", "Bob Babbage"},
                {"mail", "bob@example.org"}};
  (void)primary->Add(Dn("uid=bob,ou=research"), bob);

  Modification add_class;
  add_class.kind = Modification::Kind::kAddClass;
  add_class.cls = *primary->vocab().FindClass("online");
  Modification add_mail;
  add_mail.kind = Modification::Kind::kAddValue;
  add_mail.attr = *primary->vocab().FindAttribute("mail");
  add_mail.value = Value("ada@example.org");
  (void)primary->Modify(Dn("uid=ada,ou=research"), {add_class, add_mail});

  std::printf("=== primary changelog (LDIF change records) ===\n%s",
              primary->changelog()->ToLdif(primary->vocab()).c_str());

  // Ship to a fresh replica.
  auto replica = DirectoryServer::Create(kSchema);
  auto applied = ApplyChangeLdif(
      primary->changelog()->ToLdif(primary->vocab()), &*replica);
  if (!applied.ok()) {
    std::printf("replay error: %s\n", applied.status().ToString().c_str());
    return 1;
  }
  std::printf("=== replica after replaying %zu change(s) ===\n%s",
              *applied, replica->ExportLdif().c_str());
  std::printf("converged: %s\n",
              replica->ExportLdif() == primary->ExportLdif() ? "yes" : "no");

  // Incremental shipping: only the new changes flow.
  uint64_t shipped = primary->changelog()->last_sequence();
  EntrySpec carol;
  carol.classes = {"person", "top"};
  carol.values = {{"uid", "carol"}, {"name", "Carol"}};
  (void)primary->Add(Dn("uid=carol,ou=research"), carol);
  std::string delta =
      primary->changelog()->ToLdif(primary->vocab(), shipped);
  std::printf("\n=== incremental delta ===\n%s", delta.c_str());
  (void)ApplyChangeLdif(delta, &*replica);
  std::printf("converged after delta: %s\n",
              replica->ExportLdif() == primary->ExportLdif() ? "yes" : "no");

  // The replica enforces the schema on replay too: a hand-tampered change
  // file cannot corrupt it.
  const char* tampered =
      "dn: ou=lonely\n"
      "changetype: add\n"
      "objectClass: team\n"
      "objectClass: top\n"
      "ou: lonely\n";
  auto bad = ApplyChangeLdif(tampered, &*replica);
  std::printf("\ntampered change file: %s\n",
              bad.ok() ? "accepted (?!)" : bad.status().ToString().c_str());
  return 0;
}
