// Quickstart: author a bounding-schema, load a directory from LDIF, test
// legality, and see a violation report.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/legality_checker.h"
#include "ldap/ldif.h"
#include "schema/schema_format.h"

namespace {

constexpr char kSchema[] = R"(
attribute name string
attribute uid string
attribute mail string

class team : top {
}
class person : top {
  require name, uid
  aux online
}
auxclass online {
  allow mail
}
structure {
  require-class team
  require team descendant person   # every team employs somebody
  forbid person child top          # persons are leaves
}
)";

constexpr char kData[] = R"(
dn: ou=research
objectClass: team
objectClass: top

dn: uid=ada,ou=research
objectClass: person
objectClass: online
objectClass: top
name: Ada Lovelace
uid: ada
mail: ada@example.org
)";

}  // namespace

int main() {
  using namespace ldapbound;

  // 1. Parse the bounding-schema.
  auto vocab = std::make_shared<Vocabulary>();
  auto schema = ParseDirectorySchema(kSchema, vocab);
  if (!schema.ok()) {
    std::printf("schema error: %s\n", schema.status().ToString().c_str());
    return 1;
  }

  // 2. Load the directory.
  Directory directory(vocab);
  auto loaded = LoadLdif(kData, &directory);
  if (!loaded.ok()) {
    std::printf("ldif error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu entries\n", *loaded);

  // 3. Check legality: the instance above is within the bounds.
  LegalityChecker checker(*schema);
  Status legal = checker.EnsureLegal(directory);
  std::printf("instance legal? %s\n", legal.ok() ? "yes" : "no");

  // 4. Break it: a person entry without the required attributes, placed as
  //    a child of another person.
  auto ada = directory.FindChildByRdn(directory.roots()[0], "uid=ada");
  EntrySpec intern;
  intern.rdn = "uid=intern";
  intern.classes = {"person", "top"};
  auto id = directory.AddEntryFromSpec(ada, intern);
  if (!id.ok()) {
    std::printf("insert error: %s\n", id.status().ToString().c_str());
    return 1;
  }

  std::vector<Violation> violations;
  if (!checker.CheckLegal(directory, &violations)) {
    std::printf("now illegal, %zu violations:\n%s", violations.size(),
                DescribeViolations(violations, *vocab).c_str());
  }
  return 0;
}
