// Schema evolution (§6.2): the paper observes that many directory schema
// changes are "extremely lightweight, involving no modifications to
// existing directory entries" — unlike relational schema evolution. This
// example classifies changes as legality-preserving or not, applies them
// to the live white-pages deployment, and shows when revalidation (and the
// Section 5 consistency check) is needed.
//
//   $ ./build/examples/schema_evolution
#include <cstdio>

#include "consistency/inference.h"
#include "core/legality_checker.h"
#include "schema/evolution.h"
#include "workload/white_pages.h"

using namespace ldapbound;

namespace {

void Apply(DirectorySchema& schema, const Directory& directory,
           const SchemaChange& change) {
  const Vocabulary& vocab = schema.vocab();
  bool preserving = IsLegalityPreserving(change.kind);
  std::printf("\n>> %s   [%s]\n", change.ToString(vocab).c_str(),
              preserving ? "legality-preserving" : "needs revalidation");
  Status status = ApplySchemaChange(&schema, change);
  if (!status.ok()) {
    std::printf("   rejected: %s\n", status.ToString().c_str());
    return;
  }
  if (preserving) {
    std::printf("   applied; existing entries untouched by construction\n");
    return;
  }
  // Tightening change: revalidate the instance and the schema itself.
  ConsistencyChecker consistency(schema);
  if (!consistency.IsConsistent()) {
    std::printf("   schema became INCONSISTENT:\n%s",
                consistency.engine().Explain(SchemaElement::Bottom()).c_str());
    return;
  }
  LegalityChecker checker(schema);
  std::vector<Violation> violations;
  if (checker.CheckLegal(directory, &violations)) {
    std::printf("   instance still legal\n");
  } else {
    std::printf("   instance now ILLEGAL (%zu violations), e.g.:\n   %s\n",
                violations.size(),
                violations.front().Describe(vocab).c_str());
  }
}

}  // namespace

int main() {
  auto vocab = std::make_shared<Vocabulary>();
  auto schema = MakeWhitePagesSchema(vocab);
  if (!schema.ok()) {
    std::printf("error: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  auto directory = MakeFigure1Instance(*schema);
  if (!directory.ok()) {
    std::printf("error: %s\n", directory.status().ToString().c_str());
    return 1;
  }
  std::printf("deployed: Figure 1 instance under the Figures 2+3 schema\n");

  // The §6.2 lightweight examples.
  SchemaChange allow;
  allow.kind = SchemaChange::Kind::kAddAllowedAttribute;
  allow.cls = *vocab->FindClass("person");
  allow.attr = vocab->InternAttribute("cellularPhone");
  Apply(*schema, *directory, allow);

  SchemaChange aux;
  aux.kind = SchemaChange::Kind::kAddAuxiliaryAllowance;
  aux.cls = *vocab->FindClass("orgUnit");
  aux.other_cls = *vocab->FindClass("online");
  Apply(*schema, *directory, aux);

  SchemaChange new_class;
  new_class.kind = SchemaChange::Kind::kAddCoreClass;
  new_class.cls = *vocab->FindClass("person");
  new_class.other_cls = vocab->InternClass("contractor");
  Apply(*schema, *directory, new_class);

  // A tightening change the deployment happens to satisfy...
  SchemaChange key;
  key.kind = SchemaChange::Kind::kAddKeyAttribute;
  key.attr = *vocab->FindAttribute("uid");
  Apply(*schema, *directory, key);

  // ...one it does not...
  SchemaChange require_phone;
  require_phone.kind = SchemaChange::Kind::kAddRequiredAttribute;
  require_phone.cls = *vocab->FindClass("person");
  require_phone.attr = *vocab->FindAttribute("cellularPhone");
  Apply(*schema, *directory, require_phone);

  // ...and one that breaks the schema itself (a §5.1 cycle).
  SchemaChange cyclic;
  cyclic.kind = SchemaChange::Kind::kAddRequiredEdge;
  cyclic.relationship = {*vocab->FindClass("person"), Axis::kDescendant,
                         *vocab->FindClass("person"), false};
  Apply(*schema, *directory, cyclic);
  return 0;
}
