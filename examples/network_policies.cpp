// A directory-enabled-networks (DEN) scenario, the second application the
// paper's introduction motivates: network devices, interfaces and policies
// live in one tree with people, and the bounding-schema keeps the two
// worlds from being mixed up — e.g. a person can never belong to
// packetRouter (§1), and policies must sit under the device they govern.
//
//   $ ./build/examples/network_policies
#include <cstdio>

#include "core/legality_checker.h"
#include "ldap/ldif.h"
#include "schema/schema_format.h"
#include "update/incremental.h"

using namespace ldapbound;

namespace {

constexpr char kDenSchema[] = R"(
attribute cn string
attribute ipAddress string
attribute bandwidth integer
attribute priority integer
attribute owner string

class site : top {
  require cn
}
class device : top {
  require cn
  aux managed
}
class packetRouter : device {
  allow bandwidth
}
class interface : top {
  require cn, ipAddress
}
class policy : top {
  require cn, priority
}
class person : top {
  require cn
}
auxclass managed {
  allow owner
}
structure {
  require-class site
  require device ancestor site         # devices live under a site
  require packetRouter child interface # a router exposes an interface
  require policy ancestor device       # policies govern a device
  require site descendant device       # no empty sites
  forbid person descendant top         # people are leaves here
  forbid interface descendant device   # no devices nested under interfaces
  forbid device descendant device      # no devices nested in devices
}
)";

constexpr char kDenData[] = R"(
dn: cn=hq
objectClass: site
objectClass: top
cn: hq

dn: cn=router1,cn=hq
objectClass: packetRouter
objectClass: device
objectClass: managed
objectClass: top
cn: router1
bandwidth: 10000
owner: netops

dn: cn=eth0,cn=router1,cn=hq
objectClass: interface
objectClass: top
cn: eth0
ipAddress: 10.0.0.1

dn: cn=gold-traffic,cn=router1,cn=hq
objectClass: policy
objectClass: top
cn: gold-traffic
priority: 1

dn: cn=netops-lead,cn=hq
objectClass: person
objectClass: top
cn: netops-lead
)";

int Fail(const Status& status) {
  std::printf("error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  auto vocab = std::make_shared<Vocabulary>();
  auto schema = ParseDirectorySchema(kDenSchema, vocab);
  if (!schema.ok()) return Fail(schema.status());

  Directory directory(vocab);
  auto loaded = LoadLdif(kDenData, &directory);
  if (!loaded.ok()) return Fail(loaded.status());
  std::printf("loaded %zu DEN entries\n", *loaded);

  LegalityChecker checker(*schema);
  std::printf("network tree legal? %s\n",
              checker.EnsureLegal(directory).ok() ? "yes" : "no");

  // The §1 taboo: the person must not also become a packetRouter. The
  // class schema rejects this as an exclusive core-class combination.
  EntryId hq = directory.roots()[0];
  EntryId lead = directory.FindChildByRdn(hq, "cn=netops-lead");
  Status status = directory.AddClass(lead, *vocab->FindClass("packetRouter"));
  if (!status.ok()) return Fail(status);
  std::vector<Violation> violations;
  checker.CheckEntryContent(directory, lead, &violations);
  std::printf("\nperson + packetRouter => %zu violation(s):\n%s",
              violations.size(),
              DescribeViolations(violations, *vocab).c_str());
  (void)directory.RemoveClass(lead, *vocab->FindClass("packetRouter"));

  // Incremental validation of a deployment: a new router arrives with its
  // interface and policy as one subtree.
  std::printf("\ndeploying router2 (incremental Figure 5 checks)...\n");
  EntrySpec router;
  router.rdn = "cn=router2";
  router.classes = {"packetRouter", "device", "top"};
  router.values = {{"cn", "router2"}};
  EntryId router2 = directory.AddEntryFromSpec(hq, router).value();
  EntrySpec iface;
  iface.rdn = "cn=eth0";
  iface.classes = {"interface", "top"};
  iface.values = {{"cn", "eth0"}, {"ipAddress", "10.0.1.1"}};
  EntryId eth = directory.AddEntryFromSpec(router2, iface).value();

  EntrySet delta(directory.IdCapacity());
  delta.Insert(router2);
  delta.Insert(eth);
  IncrementalValidator validator(*schema);
  violations.clear();
  bool ok = validator.CheckAfterInsert(directory, delta, &violations);
  std::printf("router2 subtree accepted? %s\n", ok ? "yes" : "no");

  // A mis-deployment: nesting a device under an interface.
  EntrySpec rogue;
  rogue.rdn = "cn=rogue";
  rogue.classes = {"device", "top"};
  rogue.values = {{"cn", "rogue"}};
  EntryId rogue_id = directory.AddEntryFromSpec(eth, rogue).value();
  EntrySet delta2(directory.IdCapacity());
  delta2.Insert(rogue_id);
  violations.clear();
  ok = validator.CheckAfterInsert(directory, delta2, &violations);
  std::printf("\nrogue device under an interface accepted? %s\n",
              ok ? "yes" : "no");
  std::printf("%s", DescribeViolations(violations, *vocab).c_str());
  return 0;
}
