// Schema consistency doctor (Section 5): runs the inference system over
// bounding-schemas, explains inconsistencies with derivation traces, and
// materializes witness instances for consistent schemas.
//
//   $ ./build/examples/schema_doctor
#include <cstdio>

#include "consistency/inference.h"
#include "consistency/witness.h"
#include "ldap/ldif.h"
#include "schema/schema_format.h"

using namespace ldapbound;

namespace {

void Diagnose(const char* title, const char* text) {
  std::printf("\n=== %s ===\n%s\n", title, text);
  auto vocab = std::make_shared<Vocabulary>();
  auto schema = ParseDirectorySchema(text, vocab);
  if (!schema.ok()) {
    std::printf("parse error: %s\n", schema.status().ToString().c_str());
    return;
  }
  ConsistencyChecker checker(*schema);
  if (checker.IsConsistent()) {
    std::printf("verdict: CONSISTENT\n");
    auto impossible = checker.engine().ImpossibleClasses();
    for (ClassId c : impossible) {
      std::printf("  note: class '%s' can never be populated\n",
                  vocab->ClassName(c).c_str());
    }
    for (const SchemaElement& e : FindRedundantElements(*schema)) {
      std::printf("  lint: redundant element: %s\n",
                  e.ToString(*vocab).c_str());
    }
    auto witness = WitnessBuilder(*schema).Build();
    if (witness.ok()) {
      std::printf("witness instance (%zu entries):\n%s",
                  witness->NumEntries(), WriteLdif(*witness).c_str());
    } else {
      std::printf("witness: %s\n", witness.status().ToString().c_str());
    }
  } else {
    std::printf("verdict: INCONSISTENT\nderivation of the contradiction:\n%s",
                checker.engine().Explain(SchemaElement::Bottom()).c_str());
  }
}

}  // namespace

int main() {
  // §5.1's cycle: c1 must exist, needs a c2 child, which needs a c1
  // descendant — no finite instance works.
  Diagnose("Cycle (Section 5.1)", R"(
class c1 : top {
}
class c2 : top {
}
structure {
  require-class c1
  require c1 child c2
  require c2 descendant c1
}
)");

  // The same edges without c1-required: consistent, but the doctor warns
  // that c1/c2 can never be populated.
  Diagnose("Dormant cycle (footnote 3)", R"(
class c1 : top {
}
class c2 : top {
}
structure {
  require c1 child c2
  require c2 descendant c1
}
)");

  // §5.1's subtler cycle, visible only through the class hierarchy.
  Diagnose("Cycle via subclassing (Section 5.1)", R"(
class c2 : top {
}
class c1 : c2 {
}
class c5 : c1 {
}
class c4 : top {
}
class c3 : c4 {
}
structure {
  require-class c1
  require c2 child c3
  require c4 descendant c5
}
)");

  // §5.2's contradiction: required and forbidden at once.
  Diagnose("Contradiction (Section 5.2)", R"(
class c1 : top {
}
class c2 : top {
}
structure {
  require-class c1
  require c1 descendant c2
  forbid c1 descendant c2
}
)");

  // A healthy schema: witness generation shows a minimal legal instance.
  Diagnose("Healthy schema", R"(
attribute cn string
class dept : top {
  require cn
}
class person : top {
  require cn
}
structure {
  require-class dept
  require dept descendant person
  require person ancestor dept
  forbid person child top
}
)");
  return 0;
}
