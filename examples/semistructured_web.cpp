// Section 6: bounding constraints beyond LDAP — an OEM-style labeled data
// graph (with sharing and cycles) checked against required/forbidden
// reachability constraints, including the paper's country / corporation
// example.
//
//   $ ./build/examples/semistructured_web
#include <cstdio>

#include "semistructured/graph_constraints.h"

using namespace ldapbound;

int main() {
  DataGraph web;

  // Countries and corporations (§6): national corporations live under a
  // country, international corporations own country subtrees, and
  // conglomerates own corporations.
  GraphNodeId usa = web.AddNode("country");
  GraphNodeId france = web.AddNode("country");
  GraphNodeId acme = web.AddNode("corporation");      // national (US) corp
  GraphNodeId megacorp = web.AddNode("corporation");  // international corp
  GraphNodeId brand = web.AddNode("corporation");     // conglomerate member
  (void)web.AddEdge(usa, acme);        // country -> corporation
  (void)web.AddEdge(megacorp, france); // corporation -> country
  (void)web.AddEdge(megacorp, brand);  // corporation -> corporation

  // People (shared between corporations: a graph, not a tree).
  GraphNodeId ada = web.AddNode("person");
  GraphNodeId profile = web.AddNode("profile");
  GraphNodeId name = web.AddNode("name");
  (void)web.AddEdge(acme, ada);
  (void)web.AddEdge(brand, ada);  // shared node
  (void)web.AddEdge(ada, profile);
  (void)web.AddEdge(profile, name);  // name at depth 2: no fixed path length

  std::vector<GraphConstraint> constraints{
      // "each person node must have a (descendant) name node"
      {"person", Axis::kDescendant, "name", /*forbidden=*/false},
      // "forbid a country node to be a descendant of another country node"
      {"country", Axis::kDescendant, "country", /*forbidden=*/true},
      // every profile hangs directly off a person
      {"profile", Axis::kParent, "person", /*forbidden=*/false},
  };

  std::printf("constraints:\n");
  for (const GraphConstraint& c : constraints) {
    std::printf("  %s\n", c.ToString().c_str());
  }

  std::vector<GraphViolation> violations;
  bool ok = CheckGraphConstraints(web, constraints, &violations);
  std::printf("\ninitial web graph: %s\n", ok ? "LEGAL" : "ILLEGAL");

  // Now nest france's subtree under a US corporation: countries become
  // nested and the forbidden constraint fires.
  std::printf("\nlinking acme -> megacorp (nests france under usa)...\n");
  (void)web.AddEdge(acme, megacorp);
  violations.clear();
  ok = CheckGraphConstraints(web, constraints, &violations);
  std::printf("after the link: %s\n", ok ? "LEGAL" : "ILLEGAL");
  for (const GraphViolation& v : violations) {
    std::printf("  node %u (%s) violates %s\n", v.node,
                web.Label(v.node).c_str(), v.constraint.ToString().c_str());
  }

  // A person losing their name subtree violates the required constraint.
  std::printf("\nadding a second person without a name...\n");
  GraphNodeId ghost = web.AddNode("person");
  (void)web.AddEdge(brand, ghost);
  violations.clear();
  CheckGraphConstraints(web, constraints, &violations);
  for (const GraphViolation& v : violations) {
    std::printf("  node %u (%s) violates %s\n", v.node,
                web.Label(v.node).c_str(), v.constraint.ToString().c_str());
  }
  return 0;
}
