// The paper's running example end-to-end: the Figure 1 corporate white
// pages under the Figures 2+3 bounding-schema, with searches and guarded
// update transactions (§4.1's motivating scenario).
//
//   $ ./build/examples/white_pages
#include <cstdio>

#include "core/legality_checker.h"
#include "ldap/filter.h"
#include "ldap/ldif.h"
#include "ldap/search.h"
#include "schema/schema_format.h"
#include "update/transaction.h"
#include "workload/white_pages.h"

using namespace ldapbound;

namespace {

void Banner(const char* text) { std::printf("\n=== %s ===\n", text); }

int Fail(const Status& status) {
  std::printf("error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  auto vocab = std::make_shared<Vocabulary>();
  auto schema = MakeWhitePagesSchema(vocab);
  if (!schema.ok()) return Fail(schema.status());

  Banner("Bounding-schema (Figures 2 and 3)");
  std::printf("%s", FormatDirectorySchema(*schema).c_str());

  Banner("Figure 1 instance, as LDIF");
  auto directory = MakeFigure1Instance(*schema);
  if (!directory.ok()) return Fail(directory.status());
  std::printf("%s", WriteLdif(*directory).c_str());

  Banner("Legality (Theorem 3.1 reduction)");
  LegalityChecker checker(*schema);
  std::printf("Figure 1 legal? %s\n",
              checker.EnsureLegal(*directory).ok() ? "yes" : "no");

  Banner("LDAP search: researchers with an e-mail address");
  SearchRequest request;
  request.base = *DistinguishedName::Parse("o=att");
  request.scope = SearchScope::kSubtree;
  auto filter = ParseFilter("(&(objectClass=researcher)(mail=*))", *vocab);
  if (!filter.ok()) return Fail(filter.status());
  request.filter = *filter;
  auto hits = Search(*directory, request);
  if (!hits.ok()) return Fail(hits.status());
  for (EntryId id : *hits) {
    std::printf("  %s\n", DnOf(*directory, id)->ToString().c_str());
  }

  Banner("Update transaction (the §4.1 example)");
  // A new orgUnit alone would violate orgGroup ->> person ...
  EntrySpec unit;
  unit.classes = {"orgUnit", "orgGroup", "top"};
  unit.values = {{"ou", "voice"}};
  UpdateTransaction lonely;
  lonely.Insert(*DistinguishedName::Parse("ou=voice,ou=attLabs,o=att"),
                unit);
  TransactionExecutor executor(&*directory, *schema);
  Status status = executor.Commit(lonely);
  std::printf("insert orgUnit alone: %s\n", status.ToString().c_str());

  // ... but together with its person children it commits.
  UpdateTransaction staffed;
  staffed.Insert(*DistinguishedName::Parse("ou=voice,ou=attLabs,o=att"),
                 unit);
  EntrySpec alice;
  alice.classes = {"researcher", "person", "top", "online"};
  alice.values = {{"uid", "alice"},
                  {"name", "alice armstrong"},
                  {"mail", "alice@att.example"}};
  staffed.Insert(
      *DistinguishedName::Parse("uid=alice,ou=voice,ou=attLabs,o=att"),
      alice);
  CommitStats stats;
  status = executor.Commit(staffed, &stats);
  if (!status.ok()) return Fail(status);
  std::printf("insert orgUnit + person: OK (%zu entries, %zu subtree)\n",
              stats.inserted_entries, stats.inserted_subtrees);
  std::printf("still legal? %s\n",
              checker.EnsureLegal(*directory).ok() ? "yes" : "no");

  Banner("A deletion the schema refuses");
  UpdateTransaction empty_out;
  empty_out.Delete(
      *DistinguishedName::Parse("uid=alice,ou=voice,ou=attLabs,o=att"));
  status = executor.Commit(empty_out);
  std::printf("delete the unit's only person: %s\n",
              status.ToString().c_str());
  std::printf("directory unchanged and legal? %s\n",
              checker.EnsureLegal(*directory).ok() ? "yes" : "no");
  return 0;
}
