file(REMOVE_RECURSE
  "CMakeFiles/semistructured_web.dir/semistructured_web.cpp.o"
  "CMakeFiles/semistructured_web.dir/semistructured_web.cpp.o.d"
  "semistructured_web"
  "semistructured_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semistructured_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
