# Empty dependencies file for semistructured_web.
# This may be replaced when dependencies are built.
