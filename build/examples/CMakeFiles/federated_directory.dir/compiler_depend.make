# Empty compiler generated dependencies file for federated_directory.
# This may be replaced when dependencies are built.
