file(REMOVE_RECURSE
  "CMakeFiles/federated_directory.dir/federated_directory.cpp.o"
  "CMakeFiles/federated_directory.dir/federated_directory.cpp.o.d"
  "federated_directory"
  "federated_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
