# Empty dependencies file for network_policies.
# This may be replaced when dependencies are built.
