file(REMOVE_RECURSE
  "CMakeFiles/network_policies.dir/network_policies.cpp.o"
  "CMakeFiles/network_policies.dir/network_policies.cpp.o.d"
  "network_policies"
  "network_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
