file(REMOVE_RECURSE
  "CMakeFiles/white_pages.dir/white_pages.cpp.o"
  "CMakeFiles/white_pages.dir/white_pages.cpp.o.d"
  "white_pages"
  "white_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/white_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
