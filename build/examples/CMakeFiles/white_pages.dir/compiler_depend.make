# Empty compiler generated dependencies file for white_pages.
# This may be replaced when dependencies are built.
