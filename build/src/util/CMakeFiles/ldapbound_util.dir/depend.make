# Empty dependencies file for ldapbound_util.
# This may be replaced when dependencies are built.
