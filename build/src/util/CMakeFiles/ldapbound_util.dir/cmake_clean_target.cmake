file(REMOVE_RECURSE
  "libldapbound_util.a"
)
