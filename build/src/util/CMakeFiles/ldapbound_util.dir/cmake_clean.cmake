file(REMOVE_RECURSE
  "CMakeFiles/ldapbound_util.dir/base64.cc.o"
  "CMakeFiles/ldapbound_util.dir/base64.cc.o.d"
  "CMakeFiles/ldapbound_util.dir/status.cc.o"
  "CMakeFiles/ldapbound_util.dir/status.cc.o.d"
  "CMakeFiles/ldapbound_util.dir/string_util.cc.o"
  "CMakeFiles/ldapbound_util.dir/string_util.cc.o.d"
  "libldapbound_util.a"
  "libldapbound_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldapbound_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
