# Empty dependencies file for ldapbound_server.
# This may be replaced when dependencies are built.
