file(REMOVE_RECURSE
  "libldapbound_server.a"
)
