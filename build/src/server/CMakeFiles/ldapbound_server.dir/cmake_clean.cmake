file(REMOVE_RECURSE
  "CMakeFiles/ldapbound_server.dir/changelog.cc.o"
  "CMakeFiles/ldapbound_server.dir/changelog.cc.o.d"
  "CMakeFiles/ldapbound_server.dir/directory_server.cc.o"
  "CMakeFiles/ldapbound_server.dir/directory_server.cc.o.d"
  "libldapbound_server.a"
  "libldapbound_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldapbound_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
