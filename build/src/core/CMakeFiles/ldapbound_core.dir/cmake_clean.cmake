file(REMOVE_RECURSE
  "CMakeFiles/ldapbound_core.dir/legality_checker.cc.o"
  "CMakeFiles/ldapbound_core.dir/legality_checker.cc.o.d"
  "CMakeFiles/ldapbound_core.dir/naive_checker.cc.o"
  "CMakeFiles/ldapbound_core.dir/naive_checker.cc.o.d"
  "CMakeFiles/ldapbound_core.dir/translation.cc.o"
  "CMakeFiles/ldapbound_core.dir/translation.cc.o.d"
  "CMakeFiles/ldapbound_core.dir/violation.cc.o"
  "CMakeFiles/ldapbound_core.dir/violation.cc.o.d"
  "libldapbound_core.a"
  "libldapbound_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldapbound_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
