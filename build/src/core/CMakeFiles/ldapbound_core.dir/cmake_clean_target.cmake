file(REMOVE_RECURSE
  "libldapbound_core.a"
)
