# Empty compiler generated dependencies file for ldapbound_core.
# This may be replaced when dependencies are built.
