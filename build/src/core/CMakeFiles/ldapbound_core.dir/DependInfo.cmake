
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/legality_checker.cc" "src/core/CMakeFiles/ldapbound_core.dir/legality_checker.cc.o" "gcc" "src/core/CMakeFiles/ldapbound_core.dir/legality_checker.cc.o.d"
  "/root/repo/src/core/naive_checker.cc" "src/core/CMakeFiles/ldapbound_core.dir/naive_checker.cc.o" "gcc" "src/core/CMakeFiles/ldapbound_core.dir/naive_checker.cc.o.d"
  "/root/repo/src/core/translation.cc" "src/core/CMakeFiles/ldapbound_core.dir/translation.cc.o" "gcc" "src/core/CMakeFiles/ldapbound_core.dir/translation.cc.o.d"
  "/root/repo/src/core/violation.cc" "src/core/CMakeFiles/ldapbound_core.dir/violation.cc.o" "gcc" "src/core/CMakeFiles/ldapbound_core.dir/violation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/ldapbound_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ldapbound_query.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ldapbound_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldapbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
