file(REMOVE_RECURSE
  "libldapbound_semistructured.a"
)
