# Empty compiler generated dependencies file for ldapbound_semistructured.
# This may be replaced when dependencies are built.
