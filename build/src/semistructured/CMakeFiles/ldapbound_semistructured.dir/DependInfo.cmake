
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semistructured/data_graph.cc" "src/semistructured/CMakeFiles/ldapbound_semistructured.dir/data_graph.cc.o" "gcc" "src/semistructured/CMakeFiles/ldapbound_semistructured.dir/data_graph.cc.o.d"
  "/root/repo/src/semistructured/graph_constraints.cc" "src/semistructured/CMakeFiles/ldapbound_semistructured.dir/graph_constraints.cc.o" "gcc" "src/semistructured/CMakeFiles/ldapbound_semistructured.dir/graph_constraints.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ldapbound_util.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ldapbound_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
