file(REMOVE_RECURSE
  "CMakeFiles/ldapbound_semistructured.dir/data_graph.cc.o"
  "CMakeFiles/ldapbound_semistructured.dir/data_graph.cc.o.d"
  "CMakeFiles/ldapbound_semistructured.dir/graph_constraints.cc.o"
  "CMakeFiles/ldapbound_semistructured.dir/graph_constraints.cc.o.d"
  "libldapbound_semistructured.a"
  "libldapbound_semistructured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldapbound_semistructured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
