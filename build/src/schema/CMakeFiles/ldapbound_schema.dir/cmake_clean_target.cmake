file(REMOVE_RECURSE
  "libldapbound_schema.a"
)
