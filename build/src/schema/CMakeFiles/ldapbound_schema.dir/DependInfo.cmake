
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schema/attribute_schema.cc" "src/schema/CMakeFiles/ldapbound_schema.dir/attribute_schema.cc.o" "gcc" "src/schema/CMakeFiles/ldapbound_schema.dir/attribute_schema.cc.o.d"
  "/root/repo/src/schema/class_schema.cc" "src/schema/CMakeFiles/ldapbound_schema.dir/class_schema.cc.o" "gcc" "src/schema/CMakeFiles/ldapbound_schema.dir/class_schema.cc.o.d"
  "/root/repo/src/schema/directory_schema.cc" "src/schema/CMakeFiles/ldapbound_schema.dir/directory_schema.cc.o" "gcc" "src/schema/CMakeFiles/ldapbound_schema.dir/directory_schema.cc.o.d"
  "/root/repo/src/schema/evolution.cc" "src/schema/CMakeFiles/ldapbound_schema.dir/evolution.cc.o" "gcc" "src/schema/CMakeFiles/ldapbound_schema.dir/evolution.cc.o.d"
  "/root/repo/src/schema/schema_format.cc" "src/schema/CMakeFiles/ldapbound_schema.dir/schema_format.cc.o" "gcc" "src/schema/CMakeFiles/ldapbound_schema.dir/schema_format.cc.o.d"
  "/root/repo/src/schema/structure_schema.cc" "src/schema/CMakeFiles/ldapbound_schema.dir/structure_schema.cc.o" "gcc" "src/schema/CMakeFiles/ldapbound_schema.dir/structure_schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/ldapbound_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldapbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
