file(REMOVE_RECURSE
  "CMakeFiles/ldapbound_schema.dir/attribute_schema.cc.o"
  "CMakeFiles/ldapbound_schema.dir/attribute_schema.cc.o.d"
  "CMakeFiles/ldapbound_schema.dir/class_schema.cc.o"
  "CMakeFiles/ldapbound_schema.dir/class_schema.cc.o.d"
  "CMakeFiles/ldapbound_schema.dir/directory_schema.cc.o"
  "CMakeFiles/ldapbound_schema.dir/directory_schema.cc.o.d"
  "CMakeFiles/ldapbound_schema.dir/evolution.cc.o"
  "CMakeFiles/ldapbound_schema.dir/evolution.cc.o.d"
  "CMakeFiles/ldapbound_schema.dir/schema_format.cc.o"
  "CMakeFiles/ldapbound_schema.dir/schema_format.cc.o.d"
  "CMakeFiles/ldapbound_schema.dir/structure_schema.cc.o"
  "CMakeFiles/ldapbound_schema.dir/structure_schema.cc.o.d"
  "libldapbound_schema.a"
  "libldapbound_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldapbound_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
