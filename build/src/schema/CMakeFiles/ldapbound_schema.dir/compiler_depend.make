# Empty compiler generated dependencies file for ldapbound_schema.
# This may be replaced when dependencies are built.
