file(REMOVE_RECURSE
  "CMakeFiles/ldapbound_federation.dir/federation.cc.o"
  "CMakeFiles/ldapbound_federation.dir/federation.cc.o.d"
  "libldapbound_federation.a"
  "libldapbound_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldapbound_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
