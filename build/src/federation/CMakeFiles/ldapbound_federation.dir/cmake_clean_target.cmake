file(REMOVE_RECURSE
  "libldapbound_federation.a"
)
