# Empty compiler generated dependencies file for ldapbound_federation.
# This may be replaced when dependencies are built.
