file(REMOVE_RECURSE
  "libldapbound_model.a"
)
