file(REMOVE_RECURSE
  "CMakeFiles/ldapbound_model.dir/directory.cc.o"
  "CMakeFiles/ldapbound_model.dir/directory.cc.o.d"
  "CMakeFiles/ldapbound_model.dir/value.cc.o"
  "CMakeFiles/ldapbound_model.dir/value.cc.o.d"
  "CMakeFiles/ldapbound_model.dir/vocabulary.cc.o"
  "CMakeFiles/ldapbound_model.dir/vocabulary.cc.o.d"
  "libldapbound_model.a"
  "libldapbound_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldapbound_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
