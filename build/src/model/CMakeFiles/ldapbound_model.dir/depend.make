# Empty dependencies file for ldapbound_model.
# This may be replaced when dependencies are built.
