
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/directory.cc" "src/model/CMakeFiles/ldapbound_model.dir/directory.cc.o" "gcc" "src/model/CMakeFiles/ldapbound_model.dir/directory.cc.o.d"
  "/root/repo/src/model/value.cc" "src/model/CMakeFiles/ldapbound_model.dir/value.cc.o" "gcc" "src/model/CMakeFiles/ldapbound_model.dir/value.cc.o.d"
  "/root/repo/src/model/vocabulary.cc" "src/model/CMakeFiles/ldapbound_model.dir/vocabulary.cc.o" "gcc" "src/model/CMakeFiles/ldapbound_model.dir/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ldapbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
