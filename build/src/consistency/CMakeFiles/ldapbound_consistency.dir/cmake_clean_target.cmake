file(REMOVE_RECURSE
  "libldapbound_consistency.a"
)
