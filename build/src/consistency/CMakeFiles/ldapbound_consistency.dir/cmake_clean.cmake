file(REMOVE_RECURSE
  "CMakeFiles/ldapbound_consistency.dir/element.cc.o"
  "CMakeFiles/ldapbound_consistency.dir/element.cc.o.d"
  "CMakeFiles/ldapbound_consistency.dir/inference.cc.o"
  "CMakeFiles/ldapbound_consistency.dir/inference.cc.o.d"
  "CMakeFiles/ldapbound_consistency.dir/witness.cc.o"
  "CMakeFiles/ldapbound_consistency.dir/witness.cc.o.d"
  "libldapbound_consistency.a"
  "libldapbound_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldapbound_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
