# Empty dependencies file for ldapbound_consistency.
# This may be replaced when dependencies are built.
