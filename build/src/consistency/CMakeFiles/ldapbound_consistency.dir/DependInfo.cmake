
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consistency/element.cc" "src/consistency/CMakeFiles/ldapbound_consistency.dir/element.cc.o" "gcc" "src/consistency/CMakeFiles/ldapbound_consistency.dir/element.cc.o.d"
  "/root/repo/src/consistency/inference.cc" "src/consistency/CMakeFiles/ldapbound_consistency.dir/inference.cc.o" "gcc" "src/consistency/CMakeFiles/ldapbound_consistency.dir/inference.cc.o.d"
  "/root/repo/src/consistency/witness.cc" "src/consistency/CMakeFiles/ldapbound_consistency.dir/witness.cc.o" "gcc" "src/consistency/CMakeFiles/ldapbound_consistency.dir/witness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/ldapbound_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ldapbound_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ldapbound_query.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ldapbound_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldapbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
