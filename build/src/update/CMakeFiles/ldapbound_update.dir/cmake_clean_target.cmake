file(REMOVE_RECURSE
  "libldapbound_update.a"
)
