file(REMOVE_RECURSE
  "CMakeFiles/ldapbound_update.dir/incremental.cc.o"
  "CMakeFiles/ldapbound_update.dir/incremental.cc.o.d"
  "CMakeFiles/ldapbound_update.dir/subtree_snapshot.cc.o"
  "CMakeFiles/ldapbound_update.dir/subtree_snapshot.cc.o.d"
  "CMakeFiles/ldapbound_update.dir/transaction.cc.o"
  "CMakeFiles/ldapbound_update.dir/transaction.cc.o.d"
  "libldapbound_update.a"
  "libldapbound_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldapbound_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
