# Empty dependencies file for ldapbound_update.
# This may be replaced when dependencies are built.
