# Empty dependencies file for ldapbound_workload.
# This may be replaced when dependencies are built.
