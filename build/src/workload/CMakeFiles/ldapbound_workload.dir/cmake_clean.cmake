file(REMOVE_RECURSE
  "CMakeFiles/ldapbound_workload.dir/random_gen.cc.o"
  "CMakeFiles/ldapbound_workload.dir/random_gen.cc.o.d"
  "CMakeFiles/ldapbound_workload.dir/white_pages.cc.o"
  "CMakeFiles/ldapbound_workload.dir/white_pages.cc.o.d"
  "libldapbound_workload.a"
  "libldapbound_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldapbound_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
