
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/random_gen.cc" "src/workload/CMakeFiles/ldapbound_workload.dir/random_gen.cc.o" "gcc" "src/workload/CMakeFiles/ldapbound_workload.dir/random_gen.cc.o.d"
  "/root/repo/src/workload/white_pages.cc" "src/workload/CMakeFiles/ldapbound_workload.dir/white_pages.cc.o" "gcc" "src/workload/CMakeFiles/ldapbound_workload.dir/white_pages.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/ldapbound_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ldapbound_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldapbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
