file(REMOVE_RECURSE
  "libldapbound_workload.a"
)
