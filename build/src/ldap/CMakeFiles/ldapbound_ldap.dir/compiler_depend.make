# Empty compiler generated dependencies file for ldapbound_ldap.
# This may be replaced when dependencies are built.
