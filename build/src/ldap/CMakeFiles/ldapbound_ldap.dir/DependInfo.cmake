
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ldap/dn.cc" "src/ldap/CMakeFiles/ldapbound_ldap.dir/dn.cc.o" "gcc" "src/ldap/CMakeFiles/ldapbound_ldap.dir/dn.cc.o.d"
  "/root/repo/src/ldap/filter.cc" "src/ldap/CMakeFiles/ldapbound_ldap.dir/filter.cc.o" "gcc" "src/ldap/CMakeFiles/ldapbound_ldap.dir/filter.cc.o.d"
  "/root/repo/src/ldap/ldif.cc" "src/ldap/CMakeFiles/ldapbound_ldap.dir/ldif.cc.o" "gcc" "src/ldap/CMakeFiles/ldapbound_ldap.dir/ldif.cc.o.d"
  "/root/repo/src/ldap/query_parser.cc" "src/ldap/CMakeFiles/ldapbound_ldap.dir/query_parser.cc.o" "gcc" "src/ldap/CMakeFiles/ldapbound_ldap.dir/query_parser.cc.o.d"
  "/root/repo/src/ldap/search.cc" "src/ldap/CMakeFiles/ldapbound_ldap.dir/search.cc.o" "gcc" "src/ldap/CMakeFiles/ldapbound_ldap.dir/search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/ldapbound_model.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ldapbound_query.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldapbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
