file(REMOVE_RECURSE
  "libldapbound_ldap.a"
)
