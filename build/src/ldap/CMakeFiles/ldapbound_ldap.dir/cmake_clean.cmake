file(REMOVE_RECURSE
  "CMakeFiles/ldapbound_ldap.dir/dn.cc.o"
  "CMakeFiles/ldapbound_ldap.dir/dn.cc.o.d"
  "CMakeFiles/ldapbound_ldap.dir/filter.cc.o"
  "CMakeFiles/ldapbound_ldap.dir/filter.cc.o.d"
  "CMakeFiles/ldapbound_ldap.dir/ldif.cc.o"
  "CMakeFiles/ldapbound_ldap.dir/ldif.cc.o.d"
  "CMakeFiles/ldapbound_ldap.dir/query_parser.cc.o"
  "CMakeFiles/ldapbound_ldap.dir/query_parser.cc.o.d"
  "CMakeFiles/ldapbound_ldap.dir/search.cc.o"
  "CMakeFiles/ldapbound_ldap.dir/search.cc.o.d"
  "libldapbound_ldap.a"
  "libldapbound_ldap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldapbound_ldap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
