file(REMOVE_RECURSE
  "CMakeFiles/ldapbound_query.dir/evaluator.cc.o"
  "CMakeFiles/ldapbound_query.dir/evaluator.cc.o.d"
  "CMakeFiles/ldapbound_query.dir/matcher.cc.o"
  "CMakeFiles/ldapbound_query.dir/matcher.cc.o.d"
  "CMakeFiles/ldapbound_query.dir/query.cc.o"
  "CMakeFiles/ldapbound_query.dir/query.cc.o.d"
  "CMakeFiles/ldapbound_query.dir/value_index.cc.o"
  "CMakeFiles/ldapbound_query.dir/value_index.cc.o.d"
  "libldapbound_query.a"
  "libldapbound_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldapbound_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
