# Empty dependencies file for ldapbound_query.
# This may be replaced when dependencies are built.
