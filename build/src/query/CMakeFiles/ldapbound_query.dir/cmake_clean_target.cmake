file(REMOVE_RECURSE
  "libldapbound_query.a"
)
