file(REMOVE_RECURSE
  "CMakeFiles/ldapbound.dir/ldapbound_cli.cc.o"
  "CMakeFiles/ldapbound.dir/ldapbound_cli.cc.o.d"
  "ldapbound"
  "ldapbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldapbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
