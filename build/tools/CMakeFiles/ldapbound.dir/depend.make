# Empty dependencies file for ldapbound.
# This may be replaced when dependencies are built.
