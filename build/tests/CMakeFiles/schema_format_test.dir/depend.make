# Empty dependencies file for schema_format_test.
# This may be replaced when dependencies are built.
