file(REMOVE_RECURSE
  "CMakeFiles/schema_format_test.dir/schema/schema_format_test.cc.o"
  "CMakeFiles/schema_format_test.dir/schema/schema_format_test.cc.o.d"
  "schema_format_test"
  "schema_format_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
