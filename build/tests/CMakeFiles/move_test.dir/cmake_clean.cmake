file(REMOVE_RECURSE
  "CMakeFiles/move_test.dir/update/move_test.cc.o"
  "CMakeFiles/move_test.dir/update/move_test.cc.o.d"
  "move_test"
  "move_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
