file(REMOVE_RECURSE
  "CMakeFiles/directory_server_test.dir/server/directory_server_test.cc.o"
  "CMakeFiles/directory_server_test.dir/server/directory_server_test.cc.o.d"
  "directory_server_test"
  "directory_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
