# Empty compiler generated dependencies file for directory_server_test.
# This may be replaced when dependencies are built.
