file(REMOVE_RECURSE
  "CMakeFiles/graph_constraints_test.dir/semistructured/graph_constraints_test.cc.o"
  "CMakeFiles/graph_constraints_test.dir/semistructured/graph_constraints_test.cc.o.d"
  "graph_constraints_test"
  "graph_constraints_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_constraints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
