# Empty dependencies file for white_pages_test.
# This may be replaced when dependencies are built.
