file(REMOVE_RECURSE
  "CMakeFiles/white_pages_test.dir/core/white_pages_test.cc.o"
  "CMakeFiles/white_pages_test.dir/core/white_pages_test.cc.o.d"
  "white_pages_test"
  "white_pages_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/white_pages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
