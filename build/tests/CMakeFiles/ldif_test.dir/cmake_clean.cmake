file(REMOVE_RECURSE
  "CMakeFiles/ldif_test.dir/ldap/ldif_test.cc.o"
  "CMakeFiles/ldif_test.dir/ldap/ldif_test.cc.o.d"
  "ldif_test"
  "ldif_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
