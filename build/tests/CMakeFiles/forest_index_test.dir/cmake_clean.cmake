file(REMOVE_RECURSE
  "CMakeFiles/forest_index_test.dir/model/forest_index_test.cc.o"
  "CMakeFiles/forest_index_test.dir/model/forest_index_test.cc.o.d"
  "forest_index_test"
  "forest_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forest_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
