# Empty compiler generated dependencies file for forest_index_test.
# This may be replaced when dependencies are built.
