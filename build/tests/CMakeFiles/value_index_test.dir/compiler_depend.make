# Empty compiler generated dependencies file for value_index_test.
# This may be replaced when dependencies are built.
