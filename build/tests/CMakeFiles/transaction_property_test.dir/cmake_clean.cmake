file(REMOVE_RECURSE
  "CMakeFiles/transaction_property_test.dir/update/transaction_property_test.cc.o"
  "CMakeFiles/transaction_property_test.dir/update/transaction_property_test.cc.o.d"
  "transaction_property_test"
  "transaction_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transaction_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
