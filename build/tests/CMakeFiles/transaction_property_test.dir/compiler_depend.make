# Empty compiler generated dependencies file for transaction_property_test.
# This may be replaced when dependencies are built.
