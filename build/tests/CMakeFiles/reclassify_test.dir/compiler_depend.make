# Empty compiler generated dependencies file for reclassify_test.
# This may be replaced when dependencies are built.
