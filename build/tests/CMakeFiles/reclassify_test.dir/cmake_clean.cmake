file(REMOVE_RECURSE
  "CMakeFiles/reclassify_test.dir/update/reclassify_test.cc.o"
  "CMakeFiles/reclassify_test.dir/update/reclassify_test.cc.o.d"
  "reclassify_test"
  "reclassify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reclassify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
