file(REMOVE_RECURSE
  "CMakeFiles/structure_schema_test.dir/schema/structure_schema_test.cc.o"
  "CMakeFiles/structure_schema_test.dir/schema/structure_schema_test.cc.o.d"
  "structure_schema_test"
  "structure_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structure_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
