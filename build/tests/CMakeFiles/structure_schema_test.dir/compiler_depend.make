# Empty compiler generated dependencies file for structure_schema_test.
# This may be replaced when dependencies are built.
