# Empty dependencies file for class_schema_test.
# This may be replaced when dependencies are built.
