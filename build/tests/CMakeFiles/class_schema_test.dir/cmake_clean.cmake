file(REMOVE_RECURSE
  "CMakeFiles/class_schema_test.dir/schema/class_schema_test.cc.o"
  "CMakeFiles/class_schema_test.dir/schema/class_schema_test.cc.o.d"
  "class_schema_test"
  "class_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/class_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
