file(REMOVE_RECURSE
  "CMakeFiles/legality_content_test.dir/core/legality_content_test.cc.o"
  "CMakeFiles/legality_content_test.dir/core/legality_content_test.cc.o.d"
  "legality_content_test"
  "legality_content_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legality_content_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
