
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/update/incremental_property_test.cc" "tests/CMakeFiles/incremental_property_test.dir/update/incremental_property_test.cc.o" "gcc" "tests/CMakeFiles/incremental_property_test.dir/update/incremental_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ldapbound_core.dir/DependInfo.cmake"
  "/root/repo/build/src/federation/CMakeFiles/ldapbound_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/ldapbound_server.dir/DependInfo.cmake"
  "/root/repo/build/src/update/CMakeFiles/ldapbound_update.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/ldapbound_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/ldap/CMakeFiles/ldapbound_ldap.dir/DependInfo.cmake"
  "/root/repo/build/src/semistructured/CMakeFiles/ldapbound_semistructured.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ldapbound_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ldapbound_query.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/ldapbound_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ldapbound_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldapbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
