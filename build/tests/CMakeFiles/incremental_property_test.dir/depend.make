# Empty dependencies file for incremental_property_test.
# This may be replaced when dependencies are built.
