file(REMOVE_RECURSE
  "CMakeFiles/oracle_property_test.dir/core/oracle_property_test.cc.o"
  "CMakeFiles/oracle_property_test.dir/core/oracle_property_test.cc.o.d"
  "oracle_property_test"
  "oracle_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
