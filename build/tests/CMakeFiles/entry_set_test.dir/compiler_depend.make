# Empty compiler generated dependencies file for entry_set_test.
# This may be replaced when dependencies are built.
