file(REMOVE_RECURSE
  "CMakeFiles/entry_set_test.dir/model/entry_set_test.cc.o"
  "CMakeFiles/entry_set_test.dir/model/entry_set_test.cc.o.d"
  "entry_set_test"
  "entry_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entry_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
