file(REMOVE_RECURSE
  "CMakeFiles/legality_structure_test.dir/core/legality_structure_test.cc.o"
  "CMakeFiles/legality_structure_test.dir/core/legality_structure_test.cc.o.d"
  "legality_structure_test"
  "legality_structure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legality_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
