# Empty dependencies file for legality_structure_test.
# This may be replaced when dependencies are built.
