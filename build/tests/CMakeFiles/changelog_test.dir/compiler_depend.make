# Empty compiler generated dependencies file for changelog_test.
# This may be replaced when dependencies are built.
