file(REMOVE_RECURSE
  "CMakeFiles/changelog_test.dir/server/changelog_test.cc.o"
  "CMakeFiles/changelog_test.dir/server/changelog_test.cc.o.d"
  "changelog_test"
  "changelog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/changelog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
