file(REMOVE_RECURSE
  "CMakeFiles/attribute_schema_test.dir/schema/attribute_schema_test.cc.o"
  "CMakeFiles/attribute_schema_test.dir/schema/attribute_schema_test.cc.o.d"
  "attribute_schema_test"
  "attribute_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
