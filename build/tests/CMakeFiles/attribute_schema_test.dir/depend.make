# Empty dependencies file for attribute_schema_test.
# This may be replaced when dependencies are built.
