file(REMOVE_RECURSE
  "CMakeFiles/bench_structure_legality.dir/bench_structure_legality.cpp.o"
  "CMakeFiles/bench_structure_legality.dir/bench_structure_legality.cpp.o.d"
  "bench_structure_legality"
  "bench_structure_legality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_structure_legality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
