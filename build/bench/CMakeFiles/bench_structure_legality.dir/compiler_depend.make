# Empty compiler generated dependencies file for bench_structure_legality.
# This may be replaced when dependencies are built.
