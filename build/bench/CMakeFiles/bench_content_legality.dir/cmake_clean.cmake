file(REMOVE_RECURSE
  "CMakeFiles/bench_content_legality.dir/bench_content_legality.cpp.o"
  "CMakeFiles/bench_content_legality.dir/bench_content_legality.cpp.o.d"
  "bench_content_legality"
  "bench_content_legality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_content_legality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
