# Empty dependencies file for bench_content_legality.
# This may be replaced when dependencies are built.
