#include "server/admission.h"

#include <string>

#include "server/group_commit.h"
#include "util/metrics.h"

namespace ldapbound {
namespace {

struct AdmissionMetrics {
  Counter& admitted;
  Counter& rejected_overloaded;
  Counter& rejected_deadline;

  static AdmissionMetrics& Get() {
    MetricRegistry& r = MetricRegistry::Default();
    static constexpr char kRejected[] = "ldapbound_admission_rejected_total";
    static constexpr char kRejectedHelp[] =
        "Writes shed by admission control, by reason";
    static AdmissionMetrics m{
        r.GetCounter("ldapbound_admission_admitted_total",
                     "Writes admitted past admission control"),
        r.GetCounter(kRejected, kRejectedHelp, "reason=\"overloaded\""),
        r.GetCounter(kRejected, kRejectedHelp, "reason=\"deadline\""),
    };
    return m;
  }
};

}  // namespace

void AdmissionController::RecordQueuedDeadlineShed() {
  rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
  AdmissionMetrics::Get().rejected_deadline.Increment();
}

Status AdmissionController::AdmitWrite(const Deadline& deadline) {
  if (deadline.expired()) {
    rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
    AdmissionMetrics::Get().rejected_deadline.Increment();
    // Deadline sheds do not feed the overload streak: an expired budget
    // says the *client* is slow or retrying stale work, not that we are.
    return Status::DeadlineExceeded(
        "op deadline expired before admission (no work was done; safe to "
        "retry with a fresh budget)");
  }
  if (options_.max_queue_depth > 0 && queue_ != nullptr) {
    const size_t depth = queue_->depth();
    if (depth >= options_.max_queue_depth) {
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      AdmissionMetrics::Get().rejected_overloaded.Increment();
      const uint64_t streak =
          shed_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options_.overload_degrade_threshold > 0 &&
          streak == options_.overload_degrade_threshold) {
        degrade_signal_.store(true, std::memory_order_release);
      }
      return Status::Overloaded(
          "write shed: group-commit queue depth " + std::to_string(depth) +
          " at limit " + std::to_string(options_.max_queue_depth) +
          " (retry with backoff)");
    }
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  shed_streak_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace ldapbound
