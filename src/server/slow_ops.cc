#include "server/slow_ops.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/json.h"

namespace ldapbound {

namespace {

void AppendU64Field(std::string& out, const char* key, uint64_t value,
                    bool first = false) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",", key,
                value);
  out += buf;
}

void AppendStrField(std::string& out, const char* key,
                    const std::string& value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += JsonQuote(value);
}

}  // namespace

std::string SlowOp::RenderJson() const {
  std::string out = "{";
  AppendU64Field(out, "op_id", op_id, /*first=*/true);
  AppendStrField(out, "op", op);
  AppendStrField(out, "target", target);
  AppendStrField(out, "outcome", outcome);
  if (!detail.empty()) AppendStrField(out, "detail", detail);
  if (!explain.empty()) AppendStrField(out, "explain", explain);
  AppendU64Field(out, "start_unix_ms", start_unix_ms);
  AppendU64Field(out, "duration_ns", duration_ns);
  if (wire_request_id != 0) {
    AppendU64Field(out, "request_id", wire_request_id);
  }
  out += ",\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const Tracer::Event& e = spans[i];
    if (i > 0) out += ',';
    out += "{\"name\":";
    out += JsonQuote(e.name);
    AppendU64Field(out, "start_ns", e.start_ns);
    AppendU64Field(out, "dur_ns", e.dur_ns);
    out += '}';
  }
  out += "]}";
  return out;
}

SlowOpLog::SlowOpLog(size_t capacity, uint64_t min_duration_ns)
    : capacity_(capacity == 0 ? 1 : capacity),
      min_duration_ns_(min_duration_ns) {}

void SlowOpLog::Record(SlowOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (op.duration_ns < min_duration_ns_) return;
  if (ops_.size() < capacity_) {
    ops_.push_back(std::move(op));
    return;
  }
  // Evict the fastest retained op if the newcomer is slower. Capacity is
  // small (tens), so a linear scan beats heap bookkeeping.
  size_t fastest = 0;
  for (size_t i = 1; i < ops_.size(); ++i) {
    if (ops_[i].duration_ns < ops_[fastest].duration_ns) fastest = i;
  }
  if (op.duration_ns > ops_[fastest].duration_ns) {
    ops_[fastest] = std::move(op);
  }
}

std::vector<SlowOp> SlowOpLog::Snapshot() const {
  std::vector<SlowOp> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = ops_;
  }
  std::sort(out.begin(), out.end(), [](const SlowOp& a, const SlowOp& b) {
    if (a.duration_ns != b.duration_ns) return a.duration_ns > b.duration_ns;
    return a.op_id < b.op_id;
  });
  return out;
}

uint64_t SlowOpLog::retention_floor_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ops_.size() < capacity_) return min_duration_ns_;
  uint64_t fastest = ops_[0].duration_ns;
  for (size_t i = 1; i < ops_.size(); ++i) {
    fastest = std::min(fastest, ops_[i].duration_ns);
  }
  // When full, a newcomer is only kept if strictly slower than the
  // fastest retained op (and past the min-duration gate).
  return std::max(min_duration_ns_, fastest + 1);
}

uint64_t SlowOpLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::string SlowOpLog::RenderJson() const {
  std::vector<SlowOp> ops = Snapshot();
  std::string out = "{";
  AppendU64Field(out, "capacity", capacity_, /*first=*/true);
  AppendU64Field(out, "min_duration_ns", min_duration_ns_);
  AppendU64Field(out, "recorded", recorded());
  out += ",\"ops\":[";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) out += ',';
    out += ops[i].RenderJson();
  }
  out += "]}";
  return out;
}

}  // namespace ldapbound
