#ifndef LDAPBOUND_SERVER_HEALTH_H_
#define LDAPBOUND_SERVER_HEALTH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "util/backoff.h"
#include "util/status.h"

namespace ldapbound {

/// Server health, as a state machine (DESIGN.md §11). Replaces the ad-hoc
/// "WAL failed → read-only bool" flip: a fault now moves the server
/// through explicit states with logged, counted transitions, and — when a
/// recovery probe is attached — back out again without an operator.
///
///   kHealthy     writes admitted, /healthz 200.
///   kDegraded    read-only: a WAL append/fsync failure (incl. disk full)
///                or sustained overload was reported. Reads and searches
///                keep serving the last legal state; writes are rejected
///                with kUnavailable (retryable). /healthz 503.
///   kDraining    the probe decided to attempt recovery and is waiting
///                for in-flight writes to drain out of the commit path.
///   kRecovering  the drain is done; the probe is re-establishing WAL
///                writability (snapshot resync). Success → kHealthy,
///                failure → kDegraded and the probe backs off.
///
/// Legal transitions: kHealthy→kDegraded (fault reported), kDegraded→
/// kDraining→kRecovering (probe attempt), kRecovering→kHealthy (probe
/// succeeded), kRecovering→kDegraded (probe failed). Anything else is a
/// programming error and is ignored with a logged warning rather than
/// crashing the server.
enum class HealthState : uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kDraining = 2,
  kRecovering = 3,
};

/// Lower-case state name ("healthy", "degraded", ...) for /healthz,
/// /statusz and log events.
std::string_view HealthStateName(HealthState state);

/// Owns the health state, its observability (gauge, per-target transition
/// counters, JSON log events) and the supervised recovery probe thread.
///
/// Threading: state() and degraded-reason reads are safe from any thread.
/// Fault reports are safe from any thread. The probe thread is started by
/// StartProbe and joined by StopProbe/destruction; the recover callback
/// runs on the probe thread and must do its own locking (the
/// DirectoryServer callback takes the write mutex).
class HealthManager {
 public:
  HealthManager();
  ~HealthManager();

  HealthManager(const HealthManager&) = delete;
  HealthManager& operator=(const HealthManager&) = delete;

  HealthState state() const { return state_.load(std::memory_order_acquire); }
  bool healthy() const { return state() == HealthState::kHealthy; }

  /// Why the server left kHealthy (empty while healthy). For error
  /// messages and /statusz.
  std::string reason() const;

  /// Reports a write-path fault (WAL append/fsync failure, disk full):
  /// kHealthy→kDegraded, recording `status` as the reason and waking the
  /// probe. Reporting while already degraded/draining/recovering keeps
  /// the first reason (the probe is already on it).
  void ReportWalFailure(const Status& status);

  /// Reports sustained overload (the admission controller shed
  /// `shed_streak` consecutive writes): same transition as a WAL fault
  /// but the recovery attempt has no log to repair — it just waits for
  /// the queue to empty.
  void ReportOverload(uint64_t shed_streak);

  /// Called by the recover callback once in-flight writes are drained,
  /// moving kDraining→kRecovering (a probe attempt's halfway point).
  void EnterRecovering();

  /// Runs one recovery attempt inline: kDegraded→kDraining, invokes
  /// `recover` (which calls EnterRecovering after its drain), then
  /// kHealthy on OK or back to kDegraded on error. Returns the recover
  /// status — or kFailedPrecondition when the server was not degraded
  /// (already healthy, or another attempt is in flight). The probe thread
  /// goes through this; tests and operator tooling may call it directly.
  Status AttemptRecovery(const std::function<Status()>& recover);

  /// Starts the supervised recovery probe: whenever the state is
  /// kDegraded, waits out the (exponentially backed-off) delay, moves to
  /// kDraining and calls `recover`. `recover` returns OK when the server
  /// is writable again (→ kHealthy, backoff reset) and an error to retry
  /// later (→ kDegraded, backoff grows). Call at most once; the callback
  /// must stay valid until StopProbe.
  void StartProbe(std::function<Status()> recover,
                  const ExponentialBackoff::Options& backoff);

  /// Stops and joins the probe thread (no-op when not started). Safe to
  /// call twice; called by the destructor.
  void StopProbe();

  /// True between StartProbe and StopProbe — /statusz reports whether
  /// auto-recovery is armed.
  bool probe_running() const;

  /// Total state transitions (for /statusz; per-target counts are in the
  /// metric family ldapbound_health_transitions_total).
  uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }
  uint64_t recovery_attempts() const {
    return recovery_attempts_.load(std::memory_order_relaxed);
  }
  uint64_t recoveries() const {
    return recoveries_.load(std::memory_order_relaxed);
  }

  /// The delay the probe will wait before its next attempt (for tests and
  /// /statusz; 0 before StartProbe).
  uint64_t next_probe_delay_ms() const;

 private:
  void ProbeLoop();
  /// Applies `to` if the transition from the current state is legal;
  /// returns whether it was applied. `reason` replaces the degraded
  /// reason on entry to kDegraded and clears it on entry to kHealthy.
  bool Transition(HealthState to, std::string_view reason);

  std::atomic<HealthState> state_{HealthState::kHealthy};
  std::atomic<uint64_t> transitions_{0};
  std::atomic<uint64_t> recovery_attempts_{0};
  std::atomic<uint64_t> recoveries_{0};

  mutable std::mutex mu_;  // guards reason_, backoff_, probe lifecycle
  std::condition_variable cv_;
  std::string reason_;
  std::function<Status()> recover_;
  ExponentialBackoff backoff_;
  bool probe_started_ = false;
  bool stop_ = false;
  std::thread probe_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_HEALTH_H_
