#ifndef LDAPBOUND_SERVER_REQUEST_STAGES_H_
#define LDAPBOUND_SERVER_REQUEST_STAGES_H_

#include <cstddef>
#include <cstdint>

#include "util/trace.h"

namespace ldapbound {

/// The wire path's stage model (DESIGN.md §13): every dispatched request
/// is stamped with a monotonic timestamp as it crosses each boundary, so
/// a tail latency decomposes into queue wait, execution, durability wait
/// and write-back instead of one opaque client-side number.
///
///   reactor            worker                 reactor
///   kDecoded ──► kEnqueued ──► kWorkerStart ──► kExecuteDone ──►
///     kResponseQueued ──► kBytesFlushed
///
/// with the worker's execution window refined by whichever of these the
/// op crosses: kSnapshotPinned (reads), kAdmitted (writes, admission
/// verdict), kCommitEnqueued / kCommitDurable (writes, WAL durability).
enum class WireStage : uint8_t {
  kDecoded = 0,      ///< reactor: frame parsed out of the read buffer
  kEnqueued,         ///< reactor: pushed onto the dispatch queue
  kWorkerStart,      ///< worker: popped from the dispatch queue
  kAdmitted,         ///< directory server: admission verdict (writes)
  kSnapshotPinned,   ///< worker: MVCC snapshot pinned (reads)
  kCommitEnqueued,   ///< group-commit enqueue / inline WAL append start
  kCommitDurable,    ///< WAL durability reached (fsync acknowledged)
  kExecuteDone,      ///< worker: Execute returned
  kResponseQueued,   ///< reactor: response appended to the conn buffer
  kBytesFlushed,     ///< reactor: the response's last byte hit the socket
  kCount
};

constexpr size_t kWireStageCount = static_cast<size_t>(WireStage::kCount);

/// One request's stamps, in Tracer::NowNs() time (the trace-span
/// timebase, so synthesized stage spans and checker spans line up in the
/// same slow-op record). 0 = the request never crossed that boundary.
struct WireStageStamps {
  uint64_t ns[kWireStageCount] = {};

  void Mark(WireStage stage) {
    ns[static_cast<size_t>(stage)] = Tracer::NowNs();
  }
  uint64_t at(WireStage stage) const {
    return ns[static_cast<size_t>(stage)];
  }
};

/// Lets layers below the worker loop (directory_server admission and WAL
/// durability, group_commit enqueue) stamp the wire request currently
/// executing on this thread without threading a parameter through every
/// signature. The worker installs a scope around Execute; MarkCurrent is
/// a no-op on threads with no live scope (CLI ops, tests, recovery).
class WireStageScope {
 public:
  explicit WireStageScope(WireStageStamps* stamps) : prev_(tls_) {
    tls_ = stamps;
  }
  ~WireStageScope() { tls_ = prev_; }
  WireStageScope(const WireStageScope&) = delete;
  WireStageScope& operator=(const WireStageScope&) = delete;

  static void MarkCurrent(WireStage stage) {
    if (tls_ != nullptr) tls_->Mark(stage);
  }

 private:
  static inline thread_local WireStageStamps* tls_ = nullptr;
  WireStageStamps* prev_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_REQUEST_STAGES_H_
