#include "server/changelog.h"

#include "server/directory_server.h"
#include "util/base64.h"
#include "util/string_util.h"

namespace ldapbound {

void Changelog::Append(ChangeRecord record) {
  record.sequence = next_sequence_++;
  records_.push_back(std::move(record));
}

namespace {

void EmitValueLine(std::string& out, const std::string& attr,
                   const std::string& value) {
  if (IsLdifSafe(value)) {
    out += attr + ": " + value + "\n";
  } else {
    out += attr + ":: " + Base64Encode(value) + "\n";
  }
}

}  // namespace

std::string Changelog::ToLdif(const Vocabulary& vocab,
                              uint64_t after_sequence) const {
  std::string out;
  for (const ChangeRecord& record : records_) {
    if (record.sequence <= after_sequence) continue;
    out += "# txn: " + std::to_string(record.txn) + "\n";
    EmitValueLine(out, "dn", record.dn);
    switch (record.kind) {
      case ChangeRecord::Kind::kAdd: {
        out += "changetype: add\n";
        for (const std::string& cls : record.spec.classes) {
          out += "objectClass: " + cls + "\n";
        }
        for (const auto& [attr, value] : record.spec.values) {
          EmitValueLine(out, attr, value);
        }
        break;
      }
      case ChangeRecord::Kind::kDelete:
        out += "changetype: delete\n";
        break;
      case ChangeRecord::Kind::kModify: {
        out += "changetype: modify\n";
        for (const Modification& mod : record.mods) {
          switch (mod.kind) {
            case Modification::Kind::kAddValue:
              out += "add: " + vocab.AttributeName(mod.attr) + "\n";
              EmitValueLine(out, vocab.AttributeName(mod.attr),
                            mod.value.ToString());
              break;
            case Modification::Kind::kRemoveValue:
              out += "delete: " + vocab.AttributeName(mod.attr) + "\n";
              EmitValueLine(out, vocab.AttributeName(mod.attr),
                            mod.value.ToString());
              break;
            case Modification::Kind::kAddClass:
              out += "add: objectClass\n";
              out += "objectClass: " + vocab.ClassName(mod.cls) + "\n";
              break;
            case Modification::Kind::kRemoveClass:
              out += "delete: objectClass\n";
              out += "objectClass: " + vocab.ClassName(mod.cls) + "\n";
              break;
          }
          out += "-\n";
        }
        break;
      }
      case ChangeRecord::Kind::kModifyDn: {
        out += "changetype: modrdn\n";
        EmitValueLine(out, "newrdn",
                      record.new_rdn.empty()
                          ? std::string(
                                SplitEscaped(record.dn, ',').front())
                          : record.new_rdn);
        out += "deleteoldrdn: 0\n";
        EmitValueLine(out, "newsuperior", record.new_parent_dn);
        break;
      }
    }
    out += "\n";
  }
  return out;
}

namespace {

// A tokenized change record: its txn id and its raw "attr[:]: value"
// lines in order.
struct RawChange {
  uint64_t txn = 0;
  size_t line = 0;
  std::vector<std::pair<std::string, std::string>> lines;  // attr, value
};

Status ChangeError(size_t line, const std::string& msg) {
  return Status::InvalidArgument("change LDIF line " + std::to_string(line) +
                                 ": " + msg);
}

Result<std::vector<RawChange>> TokenizeChanges(std::string_view text) {
  std::vector<RawChange> changes;
  RawChange current;
  bool in_record = false;
  uint64_t pending_txn = 0;

  auto flush = [&]() {
    if (in_record) changes.push_back(std::move(current));
    current = RawChange{};
    in_record = false;
  };

  size_t number = 0;
  for (std::string_view raw : Split(text, '\n')) {
    ++number;
    if (!raw.empty() && raw.back() == '\r') raw.remove_suffix(1);
    if (!raw.empty() && raw[0] == '#') {
      std::string_view comment = StripWhitespace(raw.substr(1));
      if (StartsWith(comment, "txn:")) {
        pending_txn = 0;
        for (char c : StripWhitespace(comment.substr(4))) {
          if (c < '0' || c > '9') break;
          pending_txn = pending_txn * 10 + (c - '0');
        }
      }
      continue;
    }
    if (StripWhitespace(raw).empty()) {
      flush();
      continue;
    }
    if (raw == "-") {
      current.lines.emplace_back("-", "");
      continue;
    }
    size_t colon = raw.find(':');
    if (colon == std::string_view::npos) {
      return ChangeError(number, "expected 'attr: value'");
    }
    std::string attr(StripWhitespace(raw.substr(0, colon)));
    std::string_view rest = raw.substr(colon + 1);
    bool base64 = false;
    if (!rest.empty() && rest[0] == ':') {
      base64 = true;
      rest.remove_prefix(1);
    }
    std::string value(StripWhitespace(rest));
    if (base64) {
      auto decoded = Base64Decode(value);
      if (!decoded.ok()) return ChangeError(number, decoded.status().message());
      value = *decoded;
    }
    if (!in_record) {
      in_record = true;
      current.txn = pending_txn;
      current.line = number;
    }
    current.lines.emplace_back(std::move(attr), std::move(value));
  }
  flush();
  return changes;
}

}  // namespace

Result<size_t> ApplyChangeLdif(std::string_view text,
                               DirectoryServer* server) {
  LDAPBOUND_ASSIGN_OR_RETURN(std::vector<RawChange> changes,
                             TokenizeChanges(text));
  const Vocabulary& vocab = server->vocab();
  size_t applied = 0;

  // Pending transaction built from consecutive add/delete records sharing
  // a txn id.
  UpdateTransaction pending;
  uint64_t pending_txn = 0;
  size_t pending_count = 0;
  auto commit_pending = [&]() -> Status {
    if (pending.empty()) return Status::OK();
    Status status = server->Apply(pending);
    if (status.ok()) applied += pending_count;
    pending = UpdateTransaction();
    pending_txn = 0;
    pending_count = 0;
    return status;
  };

  for (const RawChange& change : changes) {
    if (change.lines.empty() ||
        !EqualsIgnoreCase(change.lines[0].first, "dn")) {
      return ChangeError(change.line, "change record must start with dn:");
    }
    auto dn = DistinguishedName::Parse(change.lines[0].second);
    if (!dn.ok()) return ChangeError(change.line, dn.status().message());
    if (change.lines.size() < 2 ||
        !EqualsIgnoreCase(change.lines[1].first, "changetype")) {
      return ChangeError(change.line, "missing changetype:");
    }
    const std::string& type = change.lines[1].second;

    if (EqualsIgnoreCase(type, "add") || EqualsIgnoreCase(type, "delete")) {
      // Groupable records.
      if (!pending.empty() && change.txn != pending_txn) {
        LDAPBOUND_RETURN_IF_ERROR(commit_pending());
      }
      if (pending.empty()) pending_txn = change.txn;
      if (EqualsIgnoreCase(type, "add")) {
        EntrySpec spec;
        for (size_t i = 2; i < change.lines.size(); ++i) {
          const auto& [attr, value] = change.lines[i];
          if (EqualsIgnoreCase(attr, "objectClass")) {
            spec.classes.push_back(value);
          } else {
            spec.values.emplace_back(attr, value);
          }
        }
        pending.Insert(*dn, std::move(spec));
      } else {
        pending.Delete(*dn);
      }
      ++pending_count;
      // A record with txn 0 is never grouped with its neighbors.
      if (change.txn == 0) LDAPBOUND_RETURN_IF_ERROR(commit_pending());
      continue;
    }

    // Non-groupable change: flush any pending transaction first.
    LDAPBOUND_RETURN_IF_ERROR(commit_pending());

    if (EqualsIgnoreCase(type, "modify")) {
      std::vector<Modification> mods;
      size_t i = 2;
      while (i < change.lines.size()) {
        const auto& [op, attr_name] = change.lines[i];
        bool add = EqualsIgnoreCase(op, "add");
        bool del = EqualsIgnoreCase(op, "delete");
        if (!add && !del) {
          return ChangeError(change.line,
                             "modify op must be add: or delete: (got '" +
                                 op + "')");
        }
        ++i;
        for (; i < change.lines.size() && change.lines[i].first != "-";
             ++i) {
          const auto& [attr, value] = change.lines[i];
          Modification mod;
          if (EqualsIgnoreCase(attr, "objectClass")) {
            mod.kind = add ? Modification::Kind::kAddClass
                           : Modification::Kind::kRemoveClass;
            mod.cls = server->mutable_vocab().InternClass(value);
          } else {
            mod.kind = add ? Modification::Kind::kAddValue
                           : Modification::Kind::kRemoveValue;
            auto attr_id = vocab.FindAttribute(attr);
            if (!attr_id.ok()) {
              return ChangeError(change.line, attr_id.status().message());
            }
            mod.attr = *attr_id;
            auto parsed = Value::Parse(vocab.AttributeType(*attr_id), value);
            if (!parsed.ok()) {
              return ChangeError(change.line, parsed.status().message());
            }
            mod.value = *parsed;
          }
          mods.push_back(std::move(mod));
        }
        if (i < change.lines.size() && change.lines[i].first == "-") ++i;
      }
      LDAPBOUND_RETURN_IF_ERROR(server->Modify(*dn, mods));
      ++applied;
      continue;
    }

    if (EqualsIgnoreCase(type, "modrdn") ||
        EqualsIgnoreCase(type, "moddn")) {
      std::string new_rdn;
      std::string new_superior;
      for (size_t i = 2; i < change.lines.size(); ++i) {
        const auto& [attr, value] = change.lines[i];
        if (EqualsIgnoreCase(attr, "newrdn")) new_rdn = value;
        if (EqualsIgnoreCase(attr, "newsuperior")) new_superior = value;
      }
      if (new_rdn.empty()) {
        return ChangeError(change.line, "modrdn without newrdn:");
      }
      DistinguishedName parent;
      if (!new_superior.empty()) {
        auto parsed = DistinguishedName::Parse(new_superior);
        if (!parsed.ok()) {
          return ChangeError(change.line, parsed.status().message());
        }
        parent = *parsed;
      }
      LDAPBOUND_RETURN_IF_ERROR(server->ModifyDn(*dn, parent, new_rdn));
      ++applied;
      continue;
    }

    return ChangeError(change.line, "unknown changetype '" + type + "'");
  }
  LDAPBOUND_RETURN_IF_ERROR(commit_pending());
  return applied;
}

}  // namespace ldapbound
