#include "server/changelog.h"

#include "server/directory_server.h"
#include "util/base64.h"
#include "util/string_util.h"

namespace ldapbound {

void Changelog::Append(ChangeRecord record) {
  record.sequence = next_sequence_++;
  records_.push_back(std::move(record));
}

namespace {

void EmitValueLine(std::string& out, const std::string& attr,
                   const std::string& value) {
  if (IsLdifSafe(value)) {
    out += attr + ": " + value + "\n";
  } else {
    out += attr + ":: " + Base64Encode(value) + "\n";
  }
}

}  // namespace

std::string ChangeRecordsToLdif(const std::vector<ChangeRecord>& records,
                                const Vocabulary& vocab) {
  std::string out;
  for (const ChangeRecord& record : records) {
    out += "# txn: " + std::to_string(record.txn) + "\n";
    if (record.sequence != 0) {
      out += "# seq: " + std::to_string(record.sequence) + "\n";
    }
    EmitValueLine(out, "dn", record.dn);
    switch (record.kind) {
      case ChangeRecord::Kind::kAdd: {
        out += "changetype: add\n";
        for (const std::string& cls : record.spec.classes) {
          out += "objectClass: " + cls + "\n";
        }
        for (const auto& [attr, value] : record.spec.values) {
          EmitValueLine(out, attr, value);
        }
        break;
      }
      case ChangeRecord::Kind::kDelete:
        out += "changetype: delete\n";
        break;
      case ChangeRecord::Kind::kModify: {
        out += "changetype: modify\n";
        for (const Modification& mod : record.mods) {
          switch (mod.kind) {
            case Modification::Kind::kAddValue:
              out += "add: " + vocab.AttributeName(mod.attr) + "\n";
              EmitValueLine(out, vocab.AttributeName(mod.attr),
                            mod.value.ToString());
              break;
            case Modification::Kind::kRemoveValue:
              out += "delete: " + vocab.AttributeName(mod.attr) + "\n";
              EmitValueLine(out, vocab.AttributeName(mod.attr),
                            mod.value.ToString());
              break;
            case Modification::Kind::kAddClass:
              out += "add: objectClass\n";
              out += "objectClass: " + vocab.ClassName(mod.cls) + "\n";
              break;
            case Modification::Kind::kRemoveClass:
              out += "delete: objectClass\n";
              out += "objectClass: " + vocab.ClassName(mod.cls) + "\n";
              break;
          }
          out += "-\n";
        }
        break;
      }
      case ChangeRecord::Kind::kModifyDn: {
        out += "changetype: modrdn\n";
        EmitValueLine(out, "newrdn",
                      record.new_rdn.empty()
                          ? std::string(
                                SplitEscaped(record.dn, ',').front())
                          : record.new_rdn);
        out += "deleteoldrdn: 0\n";
        EmitValueLine(out, "newsuperior", record.new_parent_dn);
        break;
      }
    }
    out += "\n";
  }
  return out;
}

std::string Changelog::ToLdif(const Vocabulary& vocab,
                              uint64_t after_sequence) const {
  std::vector<ChangeRecord> selected;
  for (const ChangeRecord& record : records_) {
    if (record.sequence > after_sequence) selected.push_back(record);
  }
  return ChangeRecordsToLdif(selected, vocab);
}

namespace {

// A tokenized change record: its txn id, optional sequence number, and its
// raw "attr[:]: value" lines in order.
struct RawChange {
  uint64_t txn = 0;
  uint64_t seq = 0;      // from a "# seq:" comment; 0 when absent
  size_t ordinal = 0;    // 1-based position in the change stream
  size_t line = 0;
  std::vector<std::pair<std::string, std::string>> lines;  // attr, value
};

Status ChangeError(size_t line, const std::string& msg) {
  return Status::InvalidArgument("change LDIF line " + std::to_string(line) +
                                 ": " + msg);
}

Result<std::vector<RawChange>> TokenizeChanges(std::string_view text) {
  std::vector<RawChange> changes;
  RawChange current;
  bool in_record = false;
  uint64_t pending_txn = 0;
  uint64_t pending_seq = 0;

  auto flush = [&]() {
    if (in_record) {
      current.ordinal = changes.size() + 1;
      changes.push_back(std::move(current));
    }
    current = RawChange{};
    in_record = false;
  };

  auto parse_counter = [](std::string_view digits) {
    uint64_t value = 0;
    for (char c : StripWhitespace(digits)) {
      if (c < '0' || c > '9') break;
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    return value;
  };

  size_t number = 0;
  for (std::string_view raw : Split(text, '\n')) {
    ++number;
    if (!raw.empty() && raw.back() == '\r') raw.remove_suffix(1);
    if (!raw.empty() && raw[0] == '#') {
      std::string_view comment = StripWhitespace(raw.substr(1));
      if (StartsWith(comment, "txn:")) {
        pending_txn = parse_counter(comment.substr(4));
      } else if (StartsWith(comment, "seq:")) {
        pending_seq = parse_counter(comment.substr(4));
      }
      continue;
    }
    if (StripWhitespace(raw).empty()) {
      flush();
      continue;
    }
    if (raw == "-") {
      current.lines.emplace_back("-", "");
      continue;
    }
    size_t colon = raw.find(':');
    if (colon == std::string_view::npos) {
      return ChangeError(number, "expected 'attr: value'");
    }
    std::string attr(StripWhitespace(raw.substr(0, colon)));
    std::string_view rest = raw.substr(colon + 1);
    bool base64 = false;
    if (!rest.empty() && rest[0] == ':') {
      base64 = true;
      rest.remove_prefix(1);
    }
    std::string value(StripWhitespace(rest));
    if (base64) {
      auto decoded = Base64Decode(value);
      if (!decoded.ok()) return ChangeError(number, decoded.status().message());
      value = *decoded;
    }
    if (!in_record) {
      in_record = true;
      current.txn = pending_txn;
      current.seq = pending_seq;
      current.line = number;
      pending_seq = 0;
    }
    current.lines.emplace_back(std::move(attr), std::move(value));
  }
  flush();
  return changes;
}

}  // namespace

namespace {

// Decorates a replay failure with everything an operator needs to resume:
// the failing record's ordinal, its shipped sequence number (when the
// stream carries "# seq:" comments), its DN and source line, and how many
// records were already applied. The status code of `cause` is preserved.
Status AnnotateReplayFailure(const RawChange& change, const std::string& dn,
                             size_t applied, const Status& cause) {
  std::string msg = "replay failed at change record #" +
                    std::to_string(change.ordinal);
  if (change.seq != 0) msg += " (seq " + std::to_string(change.seq) + ")";
  msg += " dn '" + dn + "' (line " + std::to_string(change.line) +
         "): " + cause.message();
  msg += "; " + std::to_string(applied) +
         " records applied before the failure";
  if (change.seq != 0) {
    msg += " — fix the record and resume from seq " +
           std::to_string(change.seq);
  }
  return Status(cause.code(), msg);
}

}  // namespace

Result<size_t> ApplyChangeLdif(std::string_view text,
                               DirectoryServer* server) {
  LDAPBOUND_ASSIGN_OR_RETURN(std::vector<RawChange> changes,
                             TokenizeChanges(text));
  const Vocabulary& vocab = server->vocab();
  size_t applied = 0;

  // Pending transaction built from consecutive add/delete records sharing
  // a txn id. `pending_first` / `pending_dn` identify the group's first
  // record for failure reporting (the whole group commits or fails as one).
  UpdateTransaction pending;
  uint64_t pending_txn = 0;
  size_t pending_count = 0;
  const RawChange* pending_first = nullptr;
  std::string pending_dn;
  auto commit_pending = [&]() -> Status {
    if (pending.empty()) return Status::OK();
    Status status = server->Apply(pending);
    if (status.ok()) {
      applied += pending_count;
    } else if (pending_first != nullptr) {
      status = AnnotateReplayFailure(*pending_first, pending_dn, applied,
                                     status);
    }
    pending = UpdateTransaction();
    pending_txn = 0;
    pending_count = 0;
    pending_first = nullptr;
    pending_dn.clear();
    return status;
  };

  for (const RawChange& change : changes) {
    if (change.lines.empty() ||
        !EqualsIgnoreCase(change.lines[0].first, "dn")) {
      return ChangeError(change.line, "change record must start with dn:");
    }
    auto dn = DistinguishedName::Parse(change.lines[0].second);
    if (!dn.ok()) return ChangeError(change.line, dn.status().message());
    if (change.lines.size() < 2 ||
        !EqualsIgnoreCase(change.lines[1].first, "changetype")) {
      return ChangeError(change.line, "missing changetype:");
    }
    const std::string& type = change.lines[1].second;

    if (EqualsIgnoreCase(type, "add") || EqualsIgnoreCase(type, "delete")) {
      // Groupable records.
      if (!pending.empty() && change.txn != pending_txn) {
        LDAPBOUND_RETURN_IF_ERROR(commit_pending());
      }
      if (pending.empty()) {
        pending_txn = change.txn;
        pending_first = &change;
        pending_dn = change.lines[0].second;
      }
      if (EqualsIgnoreCase(type, "add")) {
        EntrySpec spec;
        for (size_t i = 2; i < change.lines.size(); ++i) {
          const auto& [attr, value] = change.lines[i];
          if (EqualsIgnoreCase(attr, "objectClass")) {
            spec.classes.push_back(value);
          } else {
            spec.values.emplace_back(attr, value);
          }
        }
        pending.Insert(*dn, std::move(spec));
      } else {
        pending.Delete(*dn);
      }
      ++pending_count;
      // A record with txn 0 is never grouped with its neighbors.
      if (change.txn == 0) LDAPBOUND_RETURN_IF_ERROR(commit_pending());
      continue;
    }

    // Non-groupable change: flush any pending transaction first.
    LDAPBOUND_RETURN_IF_ERROR(commit_pending());

    if (EqualsIgnoreCase(type, "modify")) {
      std::vector<Modification> mods;
      size_t i = 2;
      while (i < change.lines.size()) {
        const auto& [op, attr_name] = change.lines[i];
        bool add = EqualsIgnoreCase(op, "add");
        bool del = EqualsIgnoreCase(op, "delete");
        if (!add && !del) {
          return ChangeError(change.line,
                             "modify op must be add: or delete: (got '" +
                                 op + "')");
        }
        ++i;
        for (; i < change.lines.size() && change.lines[i].first != "-";
             ++i) {
          const auto& [attr, value] = change.lines[i];
          Modification mod;
          if (EqualsIgnoreCase(attr, "objectClass")) {
            mod.kind = add ? Modification::Kind::kAddClass
                           : Modification::Kind::kRemoveClass;
            mod.cls = server->mutable_vocab().InternClass(value);
          } else {
            mod.kind = add ? Modification::Kind::kAddValue
                           : Modification::Kind::kRemoveValue;
            auto attr_id = vocab.FindAttribute(attr);
            if (!attr_id.ok()) {
              return ChangeError(change.line, attr_id.status().message());
            }
            mod.attr = *attr_id;
            auto parsed = Value::Parse(vocab.AttributeType(*attr_id), value);
            if (!parsed.ok()) {
              return ChangeError(change.line, parsed.status().message());
            }
            mod.value = *parsed;
          }
          mods.push_back(std::move(mod));
        }
        if (i < change.lines.size() && change.lines[i].first == "-") ++i;
      }
      Status status = server->Modify(*dn, mods);
      if (!status.ok()) {
        return AnnotateReplayFailure(change, dn->ToString(), applied, status);
      }
      ++applied;
      continue;
    }

    if (EqualsIgnoreCase(type, "modrdn") ||
        EqualsIgnoreCase(type, "moddn")) {
      std::string new_rdn;
      std::string new_superior;
      for (size_t i = 2; i < change.lines.size(); ++i) {
        const auto& [attr, value] = change.lines[i];
        if (EqualsIgnoreCase(attr, "newrdn")) new_rdn = value;
        if (EqualsIgnoreCase(attr, "newsuperior")) new_superior = value;
      }
      if (new_rdn.empty()) {
        return ChangeError(change.line, "modrdn without newrdn:");
      }
      DistinguishedName parent;
      if (!new_superior.empty()) {
        auto parsed = DistinguishedName::Parse(new_superior);
        if (!parsed.ok()) {
          return ChangeError(change.line, parsed.status().message());
        }
        parent = *parsed;
      }
      Status status = server->ModifyDn(*dn, parent, new_rdn);
      if (!status.ok()) {
        return AnnotateReplayFailure(change, dn->ToString(), applied, status);
      }
      ++applied;
      continue;
    }

    return ChangeError(change.line, "unknown changetype '" + type + "'");
  }
  LDAPBOUND_RETURN_IF_ERROR(commit_pending());
  return applied;
}

}  // namespace ldapbound
