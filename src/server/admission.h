#ifndef LDAPBOUND_SERVER_ADMISSION_H_
#define LDAPBOUND_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "util/deadline.h"
#include "util/status.h"

namespace ldapbound {

class GroupCommitQueue;

/// Write-path admission control (DESIGN.md §11): bounds the group-commit
/// queue so overload is shed at the door — with a retryable kOverloaded —
/// instead of growing an unbounded convoy of writers whose latency has
/// already blown past any useful budget. Also the front door for op
/// deadlines: an op that arrives with its budget already spent is
/// cancelled here, before it has done any work.
///
/// All state is relaxed atomics; Admit is called on every write before
/// the write mutex is taken and must not serialize writers itself.
struct AdmissionOptions {
  /// Reject writes while the group-commit queue holds this many commits.
  /// 0 = unbounded (admission control off, the pre-§11 behavior).
  size_t max_queue_depth = 0;

  /// Deadline given to ops that do not bring their own. 0 = infinite.
  uint64_t default_deadline_ms = 0;

  /// After this many *consecutive* overload rejections, report sustained
  /// overload to the HealthManager (degraded mode sheds cheaper: no queue
  /// probe, a bare kUnavailable). 0 disables the escalation.
  uint64_t overload_degrade_threshold = 0;
};

class AdmissionController {
 public:
  /// `queue` may be null (inline-WAL or no-WAL servers have no commit
  /// queue to bound; deadline admission still applies).
  AdmissionController(const AdmissionOptions& options, GroupCommitQueue* queue)
      : options_(options), queue_(queue) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admits or sheds one write. kDeadlineExceeded when `deadline` already
  /// expired; kOverloaded when the queue is at its bound. OK otherwise.
  Status AdmitWrite(const Deadline& deadline);

  /// Records a deadline cancellation at the post-queue check (write mutex
  /// acquired, budget found spent) so both shed points share one counter.
  void RecordQueuedDeadlineShed();

  /// The deadline for an op that did not bring one.
  Deadline DefaultDeadline() const {
    return options_.default_deadline_ms == 0
               ? Deadline()
               : Deadline::AfterMs(options_.default_deadline_ms);
  }

  const AdmissionOptions& options() const { return options_; }

  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t rejected_overload() const {
    return rejected_overload_.load(std::memory_order_relaxed);
  }
  uint64_t rejected_deadline() const {
    return rejected_deadline_.load(std::memory_order_relaxed);
  }

  /// Overload rejections since the last admit — the sustained-overload
  /// signal. Reset by any successful admission.
  uint64_t shed_streak() const {
    return shed_streak_.load(std::memory_order_relaxed);
  }

  /// True when AdmitWrite just crossed overload_degrade_threshold; the
  /// caller (DirectoryServer) reports it to the HealthManager. Returned
  /// as a side channel so this class needs no health dependency.
  bool TakeDegradeSignal() {
    return degrade_signal_.exchange(false, std::memory_order_acq_rel);
  }

 private:
  const AdmissionOptions options_;
  GroupCommitQueue* const queue_;
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> rejected_deadline_{0};
  std::atomic<uint64_t> shed_streak_{0};
  std::atomic<bool> degrade_signal_{false};
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_ADMISSION_H_
