#ifndef LDAPBOUND_SERVER_FLIGHT_RECORDER_H_
#define LDAPBOUND_SERVER_FLIGHT_RECORDER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/metrics.h"

namespace ldapbound {

/// How the always-on flight recorder samples (DESIGN.md §13).
struct FlightRecorderOptions {
  /// Sampling period. 1 Hz keeps a spike diagnosable at second
  /// granularity while costing one registry walk per second.
  uint32_t interval_ms = 1000;

  /// Retained samples; 300 at 1 Hz = a 5-minute window (the /timeseries
  /// acceptance floor is 60 s). Memory is bounded by
  /// capacity x series x 8 bytes (~0.5 MB at 200 series).
  size_t capacity = 300;

  /// Only series whose rendered name starts with this prefix are
  /// recorded ("" = everything). The default keeps the ring to the
  /// ldapbound_* families (server ops, wire stages, net, WAL, ...).
  std::string prefix = "ldapbound_";
};

/// Always-on flight recorder: a background sampler snapshots the metric
/// registry once per interval into a bounded in-memory ring, so the
/// monitor's /timeseries endpoint can explain a spike minutes after it
/// happened without any external scraper. Counters and gauges are
/// recorded directly; histograms as their _count/_sum pair (rates and
/// interval means fall out of the deltas).
///
/// Concurrency: sampling walks the registry under the registry's own
/// mutex (values are relaxed-atomic reads, so a sample is a consistent
/// *set of series*, not a consistent cut — the scrape contract). The
/// ring is guarded by its own mutex; RenderJson and SampleOnce are safe
/// from any thread while the sampler runs.
class FlightRecorder {
 public:
  /// Starts the sampler thread over `registry` (nullptr = the
  /// process-wide default registry). Takes one sample immediately so a
  /// just-started server already answers /timeseries.
  static std::unique_ptr<FlightRecorder> Start(
      const FlightRecorderOptions& options = {},
      const MetricRegistry* registry = nullptr);

  /// Stops and joins the sampler; idempotent. The ring stays readable.
  void Stop();
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Takes one sample right now (the sampler thread's body; tests call
  /// it directly to advance time deterministically).
  void SampleOnce();

  size_t sample_count() const;
  const FlightRecorderOptions& options() const { return options_; }

  /// The ring as JSON, oldest sample first:
  ///   {"interval_ms":...,"capacity":...,"series":["name",...],
  ///    "samples":[{"t_ms":...,"v":[...]},...]}
  /// `v` is index-aligned with `series`; a series that appeared after a
  /// sample was taken renders as null there. `window_seconds` > 0 keeps
  /// only samples younger than that (0 = everything retained).
  std::string RenderJson(uint64_t window_seconds = 0) const;

 private:
  FlightRecorder(const FlightRecorderOptions& options,
                 const MetricRegistry* registry);
  void SamplerLoop();

  struct Sample {
    uint64_t t_ms = 0;        ///< wall clock, unix ms
    std::vector<double> v;    ///< index-aligned with series_
  };

  const FlightRecorderOptions options_;
  const MetricRegistry* registry_;

  mutable std::mutex mu_;
  std::vector<std::string> series_;  ///< append-only series name table
  std::unordered_map<std::string, size_t> series_index_;
  std::deque<Sample> ring_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread sampler_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_FLIGHT_RECORDER_H_
