#include "server/group_commit.h"

#include <chrono>
#include <vector>

#include "server/request_stages.h"
#include "server/wal.h"
#include "util/metrics.h"

namespace ldapbound {
namespace {

struct GroupCommitMetrics {
  Histogram& batch_size;
  Counter& groups;
  Gauge& queue_depth;

  static GroupCommitMetrics& Get() {
    static GroupCommitMetrics m{
        MetricRegistry::Default().GetHistogram(
            "ldapbound_wal_group_commit_batch_size",
            "Commits per flushed WAL group (1 = no batching win)"),
        MetricRegistry::Default().GetCounter(
            "ldapbound_wal_group_commits_total",
            "WAL frame groups flushed (one fsync each)"),
        MetricRegistry::Default().GetGauge(
            "ldapbound_wal_group_commit_queue_depth",
            "Commits waiting in the group-commit queue"),
    };
    return m;
  }
};

}  // namespace

struct GroupCommitQueue::Ticket {
  enum class State { kQueued, kLeader, kDone };

  std::string payload;
  Deadline deadline;
  Status status = Status::OK();
  State state = State::kQueued;
  // Per-ticket wakeup: waiters sleep on their own condvar so finishing a
  // group wakes exactly its members, not every committer in the queue (a
  // notify_all herd serializes badly on few cores). Notified only under
  // mu_, so a waiter can never destroy the ticket mid-notify.
  std::condition_variable cv;
};

GroupCommitQueue::GroupCommitQueue(WriteAheadLog* wal, size_t max_batch,
                                   uint32_t hold_us)
    : wal_(wal), max_batch_(max_batch < 1 ? 1 : max_batch),
      hold_us_(hold_us) {}

GroupCommitQueue::~GroupCommitQueue() = default;

GroupCommitQueue::Ticket* GroupCommitQueue::Enqueue(std::string payload,
                                                    Deadline deadline) {
  // Wire-path stage model: the durability wait starts here (the caller's
  // Wait ends it via WalPersist's kCommitDurable stamp).
  WireStageScope::MarkCurrent(WireStage::kCommitEnqueued);
  auto* ticket = new Ticket{std::move(payload), deadline};
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(ticket);
  depth_.store(queue_.size(), std::memory_order_relaxed);
  if (!flush_active_) {
    // No group is being flushed and nobody is leading: this commit opens
    // the next group and will flush it from its own Wait.
    flush_active_ = true;
    ticket->state = Ticket::State::kLeader;
  }
  GroupCommitMetrics::Get().queue_depth.Set(queue_.size());
  // Wake a leader holding its batch open for followers (only leaders and
  // Drain ever sleep on the queue-level condvar).
  cv_.notify_all();
  return ticket;
}

Status GroupCommitQueue::Wait(Ticket* ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  ticket->cv.wait(lock,
                  [&] { return ticket->state != Ticket::State::kQueued; });
  if (ticket->state == Ticket::State::kLeader) {
    LeadFlush(lock);  // flushes a group containing `ticket`
  }
  Status status = ticket->status;
  lock.unlock();
  delete ticket;
  return status;
}

void GroupCommitQueue::LeadFlush(std::unique_lock<std::mutex>& lock) {
  // Hold the group open so concurrent committers can join. A full batch
  // closes the window early; so does a slice of the window passing with
  // no new arrivals — once committers stop showing up, waiting out the
  // rest of the hold would add latency without adding batching.
  if (hold_us_ > 0 && queue_.size() < max_batch_ && !poisoned()) {
    auto hold_until = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(hold_us_);
    // The hold window spends the queued commits' latency budgets to buy
    // batching; never spend past the tightest budget in the group.
    // (Deadlines of followers arriving mid-hold don't re-clamp — they
    // joined knowing the window was open.)
    for (const Ticket* t : queue_) {
      if (!t->deadline.infinite() && t->deadline.time() < hold_until) {
        hold_until = t->deadline.time();
      }
    }
    const auto slice = std::chrono::microseconds(hold_us_ / 4 + 1);
    size_t seen = queue_.size();
    while (!cv_.wait_for(lock, slice,
                         [&] { return queue_.size() >= max_batch_; })) {
      if (queue_.size() == seen ||
          std::chrono::steady_clock::now() >= hold_until) {
        break;
      }
      seen = queue_.size();
    }
  }
  size_t n = queue_.size() < max_batch_ ? queue_.size() : max_batch_;
  std::vector<Ticket*> batch(queue_.begin(), queue_.begin() + n);
  queue_.erase(queue_.begin(), queue_.begin() + n);
  depth_.store(queue_.size(), std::memory_order_relaxed);
  GroupCommitMetrics::Get().queue_depth.Set(queue_.size());

  Status status;
  if (poisoned()) {
    // An earlier group's flush failed: the durable log may end mid-way
    // through that group. Appending this one would yield a log that skips
    // the failed commits yet keeps later ones that may depend on them, so
    // fail fast with the WAL untouched until a resync re-bases the log on
    // current in-memory state.
    status = poison_status_;
  } else {
    lock.unlock();
    std::vector<std::string_view> payloads;
    payloads.reserve(batch.size());
    for (const Ticket* t : batch) payloads.push_back(t->payload);
    status = wal_->AppendGroup(payloads);
    GroupCommitMetrics::Get().batch_size.Observe(static_cast<double>(n));
    GroupCommitMetrics::Get().groups.Increment();
    groups_flushed_.fetch_add(1, std::memory_order_relaxed);
    commits_flushed_.fetch_add(n, std::memory_order_relaxed);
    lock.lock();
    if (!status.ok() && !poisoned()) {
      poison_status_ = Status(
          status.code(),
          "group-commit queue poisoned by failed WAL flush: " +
              std::string(status.message()));
      poisoned_.store(true, std::memory_order_release);
    }
  }

  for (Ticket* t : batch) {
    t->status = status;
    t->state = Ticket::State::kDone;
    t->cv.notify_one();
  }
  if (!queue_.empty()) {
    queue_.front()->state = Ticket::State::kLeader;
    queue_.front()->cv.notify_one();
  } else {
    flush_active_ = false;
  }
  // Usually nobody is here: only Drain sleeps on the queue condvar.
  cv_.notify_all();
}

void GroupCommitQueue::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return queue_.empty() && !flush_active_; });
}

void GroupCommitQueue::ResetAfterResync() {
  std::lock_guard<std::mutex> lock(mu_);
  // Caller holds the write mutex and drained the queue, so nothing can be
  // queued or flushing here; the resynced WAL supersedes every frame the
  // poisoned log may or may not have kept.
  poison_status_ = Status::OK();
  poisoned_.store(false, std::memory_order_release);
}

}  // namespace ldapbound
