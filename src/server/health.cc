#include "server/health.h"

#include <chrono>

#include "util/log.h"
#include "util/metrics.h"

namespace ldapbound {
namespace {

struct HealthMetrics {
  Gauge& state;
  Counter& to_healthy;
  Counter& to_degraded;
  Counter& to_draining;
  Counter& to_recovering;
  Counter& recovery_attempts;
  Counter& recoveries;

  static HealthMetrics& Get() {
    MetricRegistry& r = MetricRegistry::Default();
    static constexpr char kTransitions[] = "ldapbound_health_transitions_total";
    static constexpr char kTransitionsHelp[] =
        "Health state-machine transitions, by target state";
    static HealthMetrics m{
        r.GetGauge("ldapbound_health_state",
                   "Current health state (0 healthy, 1 degraded, 2 draining, "
                   "3 recovering)"),
        r.GetCounter(kTransitions, kTransitionsHelp, "to=\"healthy\""),
        r.GetCounter(kTransitions, kTransitionsHelp, "to=\"degraded\""),
        r.GetCounter(kTransitions, kTransitionsHelp, "to=\"draining\""),
        r.GetCounter(kTransitions, kTransitionsHelp, "to=\"recovering\""),
        r.GetCounter("ldapbound_health_recovery_attempts_total",
                     "Recovery probe attempts (drain + WAL resync)"),
        r.GetCounter("ldapbound_health_recoveries_total",
                     "Recovery probe attempts that returned the server to "
                     "healthy"),
    };
    return m;
  }

  Counter& ForTarget(HealthState to) {
    switch (to) {
      case HealthState::kHealthy:
        return to_healthy;
      case HealthState::kDegraded:
        return to_degraded;
      case HealthState::kDraining:
        return to_draining;
      case HealthState::kRecovering:
        return to_recovering;
    }
    return to_degraded;  // unreachable
  }
};

bool LegalTransition(HealthState from, HealthState to) {
  switch (to) {
    case HealthState::kDegraded:
      // Fault report, or a failed recovery attempt falling back.
      return from == HealthState::kHealthy || from == HealthState::kDraining ||
             from == HealthState::kRecovering;
    case HealthState::kDraining:
      return from == HealthState::kDegraded;
    case HealthState::kRecovering:
      return from == HealthState::kDraining;
    case HealthState::kHealthy:
      return from == HealthState::kRecovering;
  }
  return false;
}

}  // namespace

std::string_view HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kDraining:
      return "draining";
    case HealthState::kRecovering:
      return "recovering";
  }
  return "unknown";
}

HealthManager::HealthManager() { HealthMetrics::Get().state.Set(0); }

HealthManager::~HealthManager() { StopProbe(); }

std::string HealthManager::reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reason_;
}

bool HealthManager::Transition(HealthState to, std::string_view reason) {
  HealthState from;
  {
    std::lock_guard<std::mutex> lock(mu_);
    from = state_.load(std::memory_order_relaxed);
    if (from == to) return false;
    if (!LegalTransition(from, to)) {
      if (JsonLog::Default().enabled()) {
        JsonLog::Default().Write(LogEvent("health_transition_rejected")
                                     .Str("from", HealthStateName(from))
                                     .Str("to", HealthStateName(to)));
      }
      return false;
    }
    if (to == HealthState::kDegraded) {
      // Repeat fault reports while already degraded never get here (the
      // from == to check above short-circuits them), so any reason that
      // does arrive is fresh information: either the first fault, or the
      // outcome of a recovery attempt that fell back.
      if (!reason.empty()) {
        reason_.assign(reason.data(), reason.size());
      }
    } else if (to == HealthState::kHealthy) {
      reason_.clear();
    }
    state_.store(to, std::memory_order_release);
  }
  transitions_.fetch_add(1, std::memory_order_relaxed);
  HealthMetrics& metrics = HealthMetrics::Get();
  metrics.state.Set(static_cast<int64_t>(to));
  metrics.ForTarget(to).Increment();
  if (JsonLog::Default().enabled()) {
    LogEvent event("health_transition");
    event.Str("from", HealthStateName(from)).Str("to", HealthStateName(to));
    if (!reason.empty()) event.Str("reason", reason);
    JsonLog::Default().Write(event);
  }
  cv_.notify_all();
  return true;
}

void HealthManager::ReportWalFailure(const Status& status) {
  Transition(HealthState::kDegraded, status.message());
}

void HealthManager::ReportOverload(uint64_t shed_streak) {
  Transition(HealthState::kDegraded,
             "sustained overload: " + std::to_string(shed_streak) +
                 " consecutive writes shed by admission control");
}

void HealthManager::EnterRecovering() {
  Transition(HealthState::kRecovering, "");
}

Status HealthManager::AttemptRecovery(const std::function<Status()>& recover) {
  // Transition() is the arbiter: two concurrent attempts race on
  // kDegraded→kDraining and exactly one wins.
  if (!Transition(HealthState::kDraining, "")) {
    return Status::FailedPrecondition(
        "recovery not attempted: server is " +
        std::string(HealthStateName(state())));
  }
  recovery_attempts_.fetch_add(1, std::memory_order_relaxed);
  HealthMetrics::Get().recovery_attempts.Increment();
  Status status = recover();
  if (status.ok()) {
    recoveries_.fetch_add(1, std::memory_order_relaxed);
    HealthMetrics::Get().recoveries.Increment();
    Transition(HealthState::kHealthy, "");
  } else {
    // From kDraining or kRecovering, depending on how far `recover` got.
    Transition(HealthState::kDegraded, status.message());
  }
  return status;
}

void HealthManager::StartProbe(std::function<Status()> recover,
                               const ExponentialBackoff::Options& backoff) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (probe_started_) return;
    probe_started_ = true;
    stop_ = false;
    recover_ = std::move(recover);
    backoff_ = ExponentialBackoff(backoff);
  }
  probe_ = std::thread([this] { ProbeLoop(); });
}

void HealthManager::StopProbe() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!probe_started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (probe_.joinable()) probe_.join();
  std::lock_guard<std::mutex> lock(mu_);
  probe_started_ = false;
}

bool HealthManager::probe_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probe_started_;
}

uint64_t HealthManager::next_probe_delay_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probe_started_ ? backoff_.current_ms() : 0;
}

void HealthManager::ProbeLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait(lock, [&] {
      return stop_ ||
             state_.load(std::memory_order_relaxed) == HealthState::kDegraded;
    });
    if (stop_) return;
    // Back off before the attempt: the fault that degraded us (full disk,
    // dying device) rarely clears instantly, and hammering fsync on a sick
    // disk makes things worse. The schedule resets on success.
    const uint64_t delay_ms = backoff_.NextDelayMs();
    cv_.wait_for(lock, std::chrono::milliseconds(delay_ms),
                 [&] { return stop_; });
    if (stop_) return;
    if (state_.load(std::memory_order_relaxed) != HealthState::kDegraded) {
      continue;
    }
    // Run the attempt unlocked: the recover callback takes the server's
    // write mutex and can block on a drain.
    lock.unlock();
    Status status = AttemptRecovery(recover_);
    lock.lock();
    if (status.ok()) backoff_.Reset();
  }
}

}  // namespace ldapbound
