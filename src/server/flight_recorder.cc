#include "server/flight_recorder.h"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/json.h"

namespace ldapbound {

namespace {

uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Most samples are integral counter/gauge values; render them without a
/// fractional tail so the JSON stays compact and diff-friendly.
void AppendValue(std::string& out, double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out += buf;
}

}  // namespace

std::unique_ptr<FlightRecorder> FlightRecorder::Start(
    const FlightRecorderOptions& options, const MetricRegistry* registry) {
  std::unique_ptr<FlightRecorder> recorder(new FlightRecorder(
      options, registry != nullptr ? registry : &MetricRegistry::Default()));
  recorder->SampleOnce();
  recorder->sampler_ =
      std::thread([raw = recorder.get()]() { raw->SamplerLoop(); });
  return recorder;
}

FlightRecorder::FlightRecorder(const FlightRecorderOptions& options,
                               const MetricRegistry* registry)
    : options_(options), registry_(registry) {}

FlightRecorder::~FlightRecorder() { Stop(); }

void FlightRecorder::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  std::lock_guard<std::mutex> lock(stop_mu_);
  stopped_ = true;
}

void FlightRecorder::SamplerLoop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  for (;;) {
    if (stop_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                          [this] { return stopping_; })) {
      return;
    }
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

void FlightRecorder::SampleOnce() {
  Sample sample;
  sample.t_ms = NowUnixMs();
  std::lock_guard<std::mutex> lock(mu_);
  sample.v.assign(series_.size(),
                  std::numeric_limits<double>::quiet_NaN());
  registry_->ForEachSample([this, &sample](const std::string& series,
                                           double value) {
    if (!options_.prefix.empty() &&
        series.compare(0, options_.prefix.size(), options_.prefix) != 0) {
      return;
    }
    auto [it, inserted] = series_index_.emplace(series, series_.size());
    if (inserted) series_.push_back(series);
    if (it->second >= sample.v.size()) {
      sample.v.resize(it->second + 1,
                      std::numeric_limits<double>::quiet_NaN());
    }
    sample.v[it->second] = value;
  });
  ring_.push_back(std::move(sample));
  while (ring_.size() > options_.capacity) ring_.pop_front();
}

size_t FlightRecorder::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::string FlightRecorder::RenderJson(uint64_t window_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t cutoff_ms = 0;
  if (window_seconds > 0 && !ring_.empty()) {
    uint64_t now_ms = ring_.back().t_ms;
    uint64_t span = window_seconds * 1000;
    cutoff_ms = now_ms > span ? now_ms - span : 0;
  }
  std::string out = "{";
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "\"interval_ms\":%u,\"capacity\":%zu,\"series\":[",
                options_.interval_ms, options_.capacity);
  out += buf;
  for (size_t i = 0; i < series_.size(); ++i) {
    if (i > 0) out += ',';
    // Label values carry double quotes (op="add"), so quote properly.
    out += JsonQuote(series_[i]);
  }
  out += "],\"samples\":[";
  bool first = true;
  for (const Sample& sample : ring_) {
    if (sample.t_ms < cutoff_ms) continue;
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"t_ms\":%" PRIu64 ",\"v\":[",
                  sample.t_ms);
    out += buf;
    for (size_t i = 0; i < series_.size(); ++i) {
      if (i > 0) out += ',';
      if (i >= sample.v.size() || std::isnan(sample.v[i])) {
        out += "null";
      } else {
        AppendValue(out, sample.v[i]);
      }
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace ldapbound
