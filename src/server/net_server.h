#ifndef LDAPBOUND_SERVER_NET_SERVER_H_
#define LDAPBOUND_SERVER_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "model/directory_snapshot.h"
#include "server/request_stages.h"
#include "server/wire.h"
#include "util/result.h"

namespace ldapbound {

class DirectoryServer;

/// Where and how the wire front end listens.
struct NetServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read back via port()

  /// Reactor threads. Each owns its own epoll instance and its own
  /// SO_REUSEPORT listening socket: the kernel steers accepted
  /// connections across the listeners, and a connection lives its whole
  /// life on one reactor, so connection state needs no cross-reactor
  /// locking. 0 = hardware_concurrency.
  size_t reactors = 0;

  /// Accepted connections (across all reactors) beyond this are shed at
  /// the door: a kShed frame with a retryable kOverloaded code, then
  /// close. Protects the fd budget the way admission control protects
  /// the commit queue.
  size_t max_connections = 4096;

  /// Decoded requests waiting for a worker. When the dispatch queue is
  /// at this bound a new request is answered kOverloaded (retryable)
  /// immediately instead of queueing unboundedly behind a stalled commit
  /// path. 0 = unbounded.
  size_t max_pending_ops = 1024;

  /// Threads executing requests against the DirectoryServer. Writes
  /// block on WAL durability, so more than one keeps searches flowing
  /// while a commit group holds its fsync.
  size_t worker_threads = 2;

  /// Connections with no traffic for this long are closed by the
  /// reactor's sweep. 0 = never.
  uint32_t idle_timeout_ms = 60000;

  /// How long Stop() lets queued responses flush before force-closing;
  /// bytes still owed at the force-close surface as
  /// Stats::owed_bytes_at_stop.
  uint32_t drain_grace_ms = 500;

  /// Paged-search cursors (kSearchEntries) idle longer than this are
  /// reaped and their retained snapshot version released; continuing a
  /// reaped cursor gets a retryable kCursorExpired. 0 = never reap.
  uint32_t cursor_idle_timeout_ms = 30000;

  /// Per-frame payload cap (see wire.h); larger declared lengths are
  /// protocol errors that close the connection.
  size_t max_frame_payload = kMaxFramePayload;

  /// Stage-level request observability (DESIGN.md §13): stamp every
  /// dispatched request at each pipeline boundary, record per-stage
  /// log-linear histograms (ldapbound_wire_stage_ns{stage=...}) and feed
  /// slow wire requests — request_id plus full stage breakdown — into
  /// the DirectoryServer's slow-op ring. Off = the A/B baseline for the
  /// overhead budget in EXPERIMENTS.md.
  bool stage_metrics = true;
};

/// Async wire-level front end for a DirectoryServer (DESIGN.md §12/§15):
/// N reactor threads, each owning its own epoll instance, its own
/// SO_REUSEPORT listening socket and the full lifetime of every
/// connection the kernel steers to it — nonblocking accept with
/// EMFILE/ENFILE backoff, bounded batched reads per wakeup,
/// per-connection frame queues flushed with one sendmsg gather, idle
/// reaping. A shared worker pool executes decoded requests so a commit
/// blocked on fsync never stalls any event loop; each completion is
/// posted back to the owning reactor's eventfd. All socket writes use
/// MSG_NOSIGNAL: a client disconnecting mid-response is an EPIPE that
/// closes that one connection, never a SIGPIPE that kills the process.
///
/// Overload and lifecycle semantics:
///  - the connection limit (global across reactors) and the
///    dispatch-queue bound shed with retryable kOverloaded frames at the
///    wire; per-op admission control (queue depth, deadlines, health) is
///    the DirectoryServer's own and its verdicts are relayed with their
///    retryable flag intact;
///  - while the health state machine reports kDraining the reactors
///    stop accepting new connections (existing ones keep flushing and
///    reads keep serving — writes already get retryable kUnavailable
///    from the server);
///  - Stop() drains gracefully: no new connections, workers finish the
///    queued requests, pending responses flush (bounded by
///    drain_grace_ms), then everything closes.
///
/// Reads (search/validate) run against pinned MVCC snapshots, never the
/// live directory — Start enables MVCC on the server (idempotent), and
/// any number of workers may then read while writers commit. Paged
/// kSearchEntries scans retain their snapshot *version* by value (COW
/// refcounts), never by epoch pin: a pin held across client think time
/// would stall reclamation for every reader (DESIGN.md §15).
class NetServer {
 public:
  /// Binds, starts the reactor and worker threads. `server` must
  /// outlive the returned NetServer and must not be moved afterwards.
  static Result<std::unique_ptr<NetServer>> Start(
      DirectoryServer* server, const NetServerOptions& options = {});

  /// Graceful drain + shutdown; idempotent.
  void Stop();
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (the actual one when options.port was 0).
  uint16_t port() const { return port_; }

  const NetServerOptions& options() const { return options_; }

  /// Wire-level counters, aggregated across reactors (mirrored as
  /// ldapbound_net_* metric families, which carry a `reactor` label on
  /// the reactor-owned series).
  struct Stats {
    uint64_t reactors = 0;
    uint64_t connections_accepted = 0;
    uint64_t connections_active = 0;
    uint64_t connections_shed = 0;   ///< refused at the connection limit
    uint64_t accept_errors = 0;      ///< accept4 failures (EMFILE/ENFILE/...)
    uint64_t ops_shed = 0;           ///< refused at the dispatch bound
    uint64_t frames_in = 0;
    uint64_t frames_out = 0;
    uint64_t protocol_errors = 0;
    uint64_t idle_closed = 0;
    uint64_t ops_ok = 0;
    uint64_t ops_rejected = 0;       ///< executed but non-OK status
    uint64_t dispatch_queue_depth = 0;  ///< decoded, waiting for a worker
    uint64_t owed_bytes_at_stop = 0; ///< unflushed response bytes force-closed
    uint64_t cursors_open = 0;       ///< live paged-search cursors
    uint64_t cursors_expired = 0;    ///< cursors reaped by the idle timeout
  };
  Stats stats() const;

 private:
  struct ReactorCounters;
  struct SharedCounters;

  NetServer(DirectoryServer* server, const NetServerOptions& options,
            uint16_t port);

  /// A dispatched response waiting for its bytes to clear the socket:
  /// once the connection's flushed-byte counter passes `end_offset`, the
  /// request's kBytesFlushed stamp lands and the record finalizes into
  /// the stage histograms (and, when slow, the slow-op ring).
  struct StageRecord {
    uint64_t end_offset = 0;  ///< conn bytes_queued after this response
    WireOp op = WireOp::kPing;
    uint64_t request_id = 0;
    WireCode code = WireCode::kOk;
    WireStageStamps stages;
  };

  struct Conn {
    uint64_t gen = 0;
    std::string in;        ///< unparsed request bytes
    /// Encoded response frames not yet fully written; flushed with one
    /// sendmsg gather across up to kMaxIovGather frames per call.
    std::deque<std::string> out_frames;
    size_t out_off = 0;    ///< sent bytes of out_frames.front()
    size_t out_bytes = 0;  ///< unsent bytes across out_frames
    uint32_t inflight = 0; ///< dispatched requests, response pending
    bool read_closed = false;  ///< peer half-closed (EOF seen)
    bool closing = false;      ///< close once out drains and inflight==0
    std::chrono::steady_clock::time_point last_activity;
    uint64_t bytes_queued = 0;   ///< lifetime response bytes queued
    uint64_t bytes_flushed = 0;  ///< lifetime response bytes sent
    uint64_t out_hwm = 0;        ///< out-buffer high-watermark (bytes)
    std::deque<StageRecord> pending_flush;  ///< FIFO by end_offset
  };

  struct WorkItem {
    size_t reactor = 0;  ///< owning reactor; completions route back here
    int fd = -1;
    uint64_t gen = 0;
    WireOp op = WireOp::kPing;
    uint64_t request_id = 0;
    std::string body;
    WireStageStamps stages;
  };

  struct Completion {
    int fd = -1;
    uint64_t gen = 0;
    std::string bytes;
    WireOp op = WireOp::kPing;
    uint64_t request_id = 0;
    WireCode code = WireCode::kOk;
    WireStageStamps stages;
  };

  /// One reactor shard: its listener, its epoll/eventfd, its
  /// connections. Only its own thread touches conns/next_gen/accept
  /// state; completions is the one cross-thread mailbox (workers post,
  /// the reactor drains).
  struct Reactor {
    size_t index = 0;
    int listen_fd = -1;
    int epoll_fd = -1;
    int wake_fd = -1;  ///< eventfd: completions posted / stop requested
    std::thread thread;
    std::unordered_map<int, Conn> conns;
    uint64_t next_gen = 1;
    std::mutex completions_mu;
    std::vector<Completion> completions;
    std::string shed_frame;  ///< pre-encoded once per reactor
    bool accept_disarmed = false;  ///< EPOLLIN off after fd exhaustion
    std::chrono::steady_clock::time_point accept_rearm_at{};
    std::unique_ptr<ReactorCounters> counters;
  };

  /// A paged kSearchEntries scan in flight. The by-value snapshot copy
  /// retains exactly the COW state of its version through shared_ptr
  /// refcounts — deliberately NOT an epoch pin, which is thread-affine
  /// and would stall all reclamation while a client paginates.
  struct PagedCursor {
    DirectorySnapshot snap;
    uint64_t snapshot_version = 0;
    std::chrono::steady_clock::time_point last_used;
  };

  void ReactorLoop(Reactor& r);
  void WorkerLoop();

  void HandleAccept(Reactor& r);
  void HandleReadable(Reactor& r, int fd, Conn& conn);
  bool FlushWrites(Reactor& r, int fd, Conn& conn);  ///< false = conn died
  void CloseConn(Reactor& r, int fd);
  void SweepIdle(Reactor& r);
  void ReapIdleCursors();
  void DrainCompletions(Reactor& r);
  void UpdateEpoll(Reactor& r, int fd, Conn& conn);
  /// Arms (on) or disarms (off, EMFILE/ENFILE backoff) the listener's
  /// EPOLLIN interest.
  void ArmAccept(Reactor& r, bool on);

  /// Parses complete frames out of conn.in, dispatching the whole batch
  /// under one queue lock. Returns false on protocol error (error
  /// response queued, conn marked closing).
  bool ParseAndDispatch(Reactor& r, int fd, Conn& conn);

  /// Queues `response` for `conn` (owning reactor thread only).
  void QueueResponse(Reactor& r, Conn& conn, const WireResponse& response);

  /// Retires every pending_flush record whose bytes have cleared the
  /// socket: stamps kBytesFlushed, observes the per-stage histograms and
  /// offers slow requests to the server's slow-op ring (reactor thread).
  void FinalizeFlushed(Conn& conn);

  /// Executes one request against the DirectoryServer (worker threads).
  WireResponse Execute(const WorkItem& item);
  WireResponse ExecuteSearchEntries(const WorkItem& item);

  void PostCompletion(size_t reactor, Completion completion);

  DirectoryServer* server_;
  const NetServerOptions options_;
  uint16_t port_;

  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> active_conns_{0};  ///< across reactors (shed bound)

  mutable std::mutex queue_mu_;  ///< mutable: stats() reads the depth
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;

  mutable std::mutex cursors_mu_;
  std::unordered_map<uint64_t, PagedCursor> cursors_;
  uint64_t next_cursor_id_ = 1;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> owed_bytes_at_stop_{0};
  std::atomic<uint64_t> cursors_expired_{0};

  std::unique_ptr<SharedCounters> shared_;
};

/// Filtered, scoped search against a pinned MVCC snapshot — the wire
/// kSearch implementation, exposed for tests. Supports the filters a
/// snapshot can answer from postings alone: "" (match everything),
/// "(objectClass=C)" (class membership) and "(attr=value)" (equality);
/// anything else is kInvalidArgument. `base_dn` "" = the whole forest
/// (kSubtree/kOneLevel only). Returns matching alive entry ids,
/// ascending.
Result<std::vector<EntryId>> SnapshotSearch(const DirectorySnapshot& snapshot,
                                            const Vocabulary& vocab,
                                            std::string_view base_dn,
                                            uint8_t scope,
                                            std::string_view filter);

/// One hit of a paged snapshot scan: the entry and the order-maintenance
/// label that gives the scan its stable preorder position.
struct SnapshotPageHit {
  uint64_t label = 0;
  EntryId id = kInvalidEntryId;
};

/// Paged variant of SnapshotSearch — the wire kSearchEntries scan,
/// exposed for tests. Hits come back in ascending label order (stable
/// preorder within the snapshot), restricted to labels >= from_label,
/// at most `limit` of them; resuming with from_label = last label + 1
/// continues exactly where the previous page stopped.
Result<std::vector<SnapshotPageHit>> SnapshotSearchPage(
    const DirectorySnapshot& snapshot, const Vocabulary& vocab,
    std::string_view base_dn, uint8_t scope, std::string_view filter,
    uint64_t from_label, size_t limit);

/// Reconstructs entry `id`'s DN at `snapshot`'s version by walking the
/// parent chain and reading each ancestor's RDN out of its payload blob
/// — never touches the live Directory or the Vocabulary.
Result<std::string> SnapshotEntryDn(const DirectorySnapshot& snapshot,
                                    EntryId id);

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_NET_SERVER_H_
