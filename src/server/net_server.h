#ifndef LDAPBOUND_SERVER_NET_SERVER_H_
#define LDAPBOUND_SERVER_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "model/directory_snapshot.h"
#include "server/request_stages.h"
#include "server/wire.h"
#include "util/result.h"

namespace ldapbound {

class DirectoryServer;

/// Where and how the wire front end listens.
struct NetServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read back via port()

  /// Accepted connections beyond this are shed at the door: a kShed
  /// frame with a retryable kOverloaded code, then close. Protects the
  /// reactor's fd budget the way admission control protects the commit
  /// queue.
  size_t max_connections = 4096;

  /// Decoded requests waiting for a worker. When the dispatch queue is
  /// at this bound a new request is answered kOverloaded (retryable)
  /// immediately instead of queueing unboundedly behind a stalled commit
  /// path. 0 = unbounded.
  size_t max_pending_ops = 1024;

  /// Threads executing requests against the DirectoryServer. Writes
  /// block on WAL durability, so more than one keeps searches flowing
  /// while a commit group holds its fsync.
  size_t worker_threads = 2;

  /// Connections with no traffic for this long are closed by the
  /// reactor's sweep. 0 = never.
  uint32_t idle_timeout_ms = 60000;

  /// Per-frame payload cap (see wire.h); larger declared lengths are
  /// protocol errors that close the connection.
  size_t max_frame_payload = kMaxFramePayload;

  /// Stage-level request observability (DESIGN.md §13): stamp every
  /// dispatched request at each pipeline boundary, record per-stage
  /// log-linear histograms (ldapbound_wire_stage_ns{stage=...}) and feed
  /// slow wire requests — request_id plus full stage breakdown — into
  /// the DirectoryServer's slow-op ring. Off = the A/B baseline for the
  /// overhead budget in EXPERIMENTS.md.
  bool stage_metrics = true;
};

/// Async wire-level front end for a DirectoryServer (DESIGN.md §12): one
/// epoll reactor thread owns every socket — nonblocking accept,
/// per-connection read/write buffers with partial-frame handling, idle
/// reaping — and a small worker pool executes decoded requests so a
/// commit blocked on fsync never stalls the event loop. All socket
/// writes use send(MSG_NOSIGNAL): a client disconnecting mid-response is
/// an EPIPE that closes that one connection, never a SIGPIPE that kills
/// the process.
///
/// Overload and lifecycle semantics:
///  - the connection limit and the dispatch-queue bound shed with
///    retryable kOverloaded frames at the wire; per-op admission control
///    (queue depth, deadlines, health) is the DirectoryServer's own and
///    its verdicts are relayed with their retryable flag intact;
///  - while the health state machine reports kDraining the reactor
///    stops accepting new connections (existing ones keep flushing and
///    reads keep serving — writes already get retryable kUnavailable
///    from the server);
///  - Stop() drains gracefully: no new connections, workers finish the
///    queued requests, pending responses flush (bounded by a grace
///    period), then everything closes.
///
/// Reads (search/validate) run against pinned MVCC snapshots, never the
/// live directory — Start enables MVCC on the server (idempotent), and
/// any number of workers may then read while writers commit.
class NetServer {
 public:
  /// Binds, starts the reactor and worker threads. `server` must
  /// outlive the returned NetServer and must not be moved afterwards.
  static Result<std::unique_ptr<NetServer>> Start(
      DirectoryServer* server, const NetServerOptions& options = {});

  /// Graceful drain + shutdown; idempotent.
  void Stop();
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (the actual one when options.port was 0).
  uint16_t port() const { return port_; }

  const NetServerOptions& options() const { return options_; }

  /// Wire-level counters (mirrored as ldapbound_net_* metric families).
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_active = 0;
    uint64_t connections_shed = 0;   ///< refused at the connection limit
    uint64_t ops_shed = 0;           ///< refused at the dispatch bound
    uint64_t frames_in = 0;
    uint64_t frames_out = 0;
    uint64_t protocol_errors = 0;
    uint64_t idle_closed = 0;
    uint64_t ops_ok = 0;
    uint64_t ops_rejected = 0;       ///< executed but non-OK status
    uint64_t dispatch_queue_depth = 0;  ///< decoded, waiting for a worker
  };
  Stats stats() const;

 private:
  NetServer(DirectoryServer* server, const NetServerOptions& options,
            int listen_fd, uint16_t port);

  /// A dispatched response waiting for its bytes to clear the socket:
  /// once the connection's flushed-byte counter passes `end_offset`, the
  /// request's kBytesFlushed stamp lands and the record finalizes into
  /// the stage histograms (and, when slow, the slow-op ring).
  struct StageRecord {
    uint64_t end_offset = 0;  ///< conn bytes_queued after this response
    WireOp op = WireOp::kPing;
    uint64_t request_id = 0;
    WireCode code = WireCode::kOk;
    WireStageStamps stages;
  };

  struct Conn {
    uint64_t gen = 0;
    std::string in;        ///< unparsed request bytes
    std::string out;       ///< encoded responses not yet written
    size_t out_off = 0;
    uint32_t inflight = 0; ///< dispatched requests, response pending
    bool read_closed = false;  ///< peer half-closed (EOF seen)
    bool closing = false;      ///< close once out drains and inflight==0
    std::chrono::steady_clock::time_point last_activity;
    uint64_t bytes_queued = 0;   ///< lifetime response bytes queued
    uint64_t bytes_flushed = 0;  ///< lifetime response bytes sent
    uint64_t out_hwm = 0;        ///< out-buffer high-watermark (bytes)
    std::deque<StageRecord> pending_flush;  ///< FIFO by end_offset
  };

  struct WorkItem {
    int fd = -1;
    uint64_t gen = 0;
    WireOp op = WireOp::kPing;
    uint64_t request_id = 0;
    std::string body;
    WireStageStamps stages;
  };

  struct Completion {
    int fd = -1;
    uint64_t gen = 0;
    std::string bytes;
    WireOp op = WireOp::kPing;
    uint64_t request_id = 0;
    WireCode code = WireCode::kOk;
    WireStageStamps stages;
  };

  void ReactorLoop();
  void WorkerLoop();

  void HandleAccept();
  void HandleReadable(int fd, Conn& conn);
  bool FlushWrites(int fd, Conn& conn);  ///< false = connection died
  void CloseConn(int fd);
  void SweepIdle();
  void DrainCompletions();
  void UpdateEpoll(int fd, Conn& conn);

  /// Parses complete frames out of conn.in, dispatching each. Returns
  /// false on protocol error (error response queued, conn marked
  /// closing).
  bool ParseAndDispatch(int fd, Conn& conn);

  /// Queues `response` for `fd` (reactor thread only).
  void QueueResponse(int fd, Conn& conn, const WireResponse& response);

  /// Retires every pending_flush record whose bytes have cleared the
  /// socket: stamps kBytesFlushed, observes the per-stage histograms and
  /// offers slow requests to the server's slow-op ring (reactor thread).
  void FinalizeFlushed(Conn& conn);

  /// Executes one request against the DirectoryServer (worker threads).
  WireResponse Execute(const WorkItem& item);

  void PostCompletion(Completion completion);

  DirectoryServer* server_;
  const NetServerOptions options_;
  int listen_fd_;
  uint16_t port_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: completions posted / stop requested

  std::thread reactor_;
  std::vector<std::thread> workers_;

  std::unordered_map<int, Conn> conns_;
  uint64_t next_gen_ = 1;

  mutable std::mutex queue_mu_;  ///< mutable: stats() reads the depth
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  struct Counters;
  std::unique_ptr<Counters> counters_;
};

/// Filtered, scoped search against a pinned MVCC snapshot — the wire
/// kSearch implementation, exposed for tests. Supports the filters a
/// snapshot can answer from postings alone: "" (match everything),
/// "(objectClass=C)" (class membership) and "(attr=value)" (equality);
/// anything else is kInvalidArgument. `base_dn` "" = the whole forest
/// (kSubtree/kOneLevel only). Returns matching alive entry ids,
/// ascending.
Result<std::vector<EntryId>> SnapshotSearch(const DirectorySnapshot& snapshot,
                                            const Vocabulary& vocab,
                                            std::string_view base_dn,
                                            uint8_t scope,
                                            std::string_view filter);

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_NET_SERVER_H_
