#include "server/wire.h"

#include <cstring>

namespace ldapbound {

namespace {

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("wire: truncated ") + what);
}

}  // namespace

WireCode WireCodeFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireCode::kOk;
    case StatusCode::kInvalidArgument:
      return WireCode::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireCode::kNotFound;
    case StatusCode::kAlreadyExists:
      return WireCode::kAlreadyExists;
    case StatusCode::kIllegal:
      return WireCode::kIllegal;
    case StatusCode::kUnavailable:
      return WireCode::kUnavailable;
    case StatusCode::kOverloaded:
      return WireCode::kOverloaded;
    case StatusCode::kDeadlineExceeded:
      return WireCode::kDeadlineExceeded;
    // The remaining in-process codes (FailedPrecondition, OutOfRange,
    // Inconsistent, Internal, DiskFull) have no client-actionable
    // distinction on the wire.
    default:
      return WireCode::kInternal;
  }
}

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutU16(std::string& out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string& out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutString(std::string& out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

Result<uint8_t> WireCursor::GetU8() {
  if (remaining() < 1) return Truncated("u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> WireCursor::GetU16() {
  if (remaining() < 2) return Truncated("u16");
  uint16_t v = static_cast<uint16_t>(
      static_cast<uint8_t>(data_[pos_]) |
      static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + 1])) << 8);
  pos_ += 2;
  return v;
}

Result<uint32_t> WireCursor::GetU32() {
  if (remaining() < 4) return Truncated("u32");
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(data_[pos_ + i]);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> WireCursor::GetU64() {
  if (remaining() < 8) return Truncated("u64");
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(data_[pos_ + i]);
  }
  pos_ += 8;
  return v;
}

Result<std::string_view> WireCursor::GetString() {
  LDAPBOUND_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (remaining() < len) return Truncated("string");
  std::string_view s = data_.substr(pos_, len);
  pos_ += len;
  return s;
}

std::string EncodeFrame(WireOp op, uint64_t request_id,
                        std::string_view body) {
  std::string out;
  out.reserve(4 + 1 + 8 + body.size());
  PutU32(out, static_cast<uint32_t>(1 + 8 + body.size()));
  PutU8(out, static_cast<uint8_t>(op));
  PutU64(out, request_id);
  out.append(body.data(), body.size());
  return out;
}

std::string EncodePingRequest(uint64_t request_id) {
  return EncodeFrame(WireOp::kPing, request_id, "");
}

std::string EncodeSearchRequest(uint64_t request_id, std::string_view base_dn,
                                uint8_t scope, std::string_view filter) {
  std::string body;
  PutString(body, base_dn);
  PutU8(body, scope);
  PutString(body, filter);
  return EncodeFrame(WireOp::kSearch, request_id, body);
}

std::string EncodeAddRequest(
    uint64_t request_id, std::string_view dn,
    const std::vector<std::string>& classes,
    const std::vector<std::pair<std::string, std::string>>& values) {
  std::string body;
  PutString(body, dn);
  PutU16(body, static_cast<uint16_t>(classes.size()));
  for (const std::string& c : classes) PutString(body, c);
  PutU16(body, static_cast<uint16_t>(values.size()));
  for (const auto& [attr, value] : values) {
    PutString(body, attr);
    PutString(body, value);
  }
  return EncodeFrame(WireOp::kAdd, request_id, body);
}

std::string EncodeDeleteRequest(uint64_t request_id, std::string_view dn) {
  std::string body;
  PutString(body, dn);
  return EncodeFrame(WireOp::kDelete, request_id, body);
}

std::string EncodeValidateRequest(uint64_t request_id) {
  return EncodeFrame(WireOp::kValidate, request_id, "");
}

std::string EncodeSearchEntriesRequest(uint64_t request_id,
                                       std::string_view base_dn, uint8_t scope,
                                       std::string_view filter,
                                       uint32_t page_size,
                                       std::string_view cookie) {
  std::string body;
  PutString(body, base_dn);
  PutU8(body, scope);
  PutString(body, filter);
  PutU32(body, page_size);
  PutString(body, cookie);
  return EncodeFrame(WireOp::kSearchEntries, request_id, body);
}

std::string EncodeResponseFrame(const WireResponse& response) {
  std::string payload;
  payload.reserve(1 + 8 + 2 + 4 + response.message.size() +
                  response.body.size());
  PutU8(payload, static_cast<uint8_t>(response.op));
  PutU64(payload, response.request_id);
  PutU8(payload, static_cast<uint8_t>(response.code));
  PutU8(payload, response.retryable ? WireResponse::kRetryableFlag : 0);
  PutString(payload, response.message);
  payload += response.body;

  std::string out;
  out.reserve(4 + payload.size());
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

Result<bool> ExtractFrame(std::string_view buffer, size_t max_payload,
                          WireRequest* request, size_t* consumed) {
  if (buffer.size() < 4) return false;
  WireCursor header(buffer);
  uint32_t payload_len = *header.GetU32();
  if (payload_len > max_payload) {
    return Status::InvalidArgument(
        "wire: frame payload of " + std::to_string(payload_len) +
        " bytes exceeds the limit of " + std::to_string(max_payload));
  }
  if (payload_len < 1 + 8) {
    return Status::InvalidArgument(
        "wire: frame payload of " + std::to_string(payload_len) +
        " bytes is shorter than the op + request-id header");
  }
  if (buffer.size() < 4 + static_cast<size_t>(payload_len)) return false;

  WireCursor cursor(buffer.substr(4, payload_len));
  request->op = static_cast<WireOp>(*cursor.GetU8());
  request->request_id = *cursor.GetU64();
  request->body = buffer.substr(4 + 1 + 8, payload_len - 1 - 8);
  *consumed = 4 + payload_len;
  return true;
}

Result<WireResponse> DecodeResponsePayload(std::string_view payload) {
  WireCursor cursor(payload);
  WireResponse response;
  LDAPBOUND_ASSIGN_OR_RETURN(uint8_t op, cursor.GetU8());
  response.op = static_cast<WireOp>(op);
  LDAPBOUND_ASSIGN_OR_RETURN(response.request_id, cursor.GetU64());
  LDAPBOUND_ASSIGN_OR_RETURN(uint8_t code, cursor.GetU8());
  response.code = static_cast<WireCode>(code);
  LDAPBOUND_ASSIGN_OR_RETURN(uint8_t flags, cursor.GetU8());
  response.retryable = (flags & WireResponse::kRetryableFlag) != 0;
  LDAPBOUND_ASSIGN_OR_RETURN(std::string_view message, cursor.GetString());
  response.message = std::string(message);
  response.body =
      std::string(payload.substr(payload.size() - cursor.remaining()));
  return response;
}

Result<std::vector<EntryId>> DecodeSearchResponseBody(std::string_view body) {
  WireCursor cursor(body);
  LDAPBOUND_ASSIGN_OR_RETURN(uint32_t count, cursor.GetU32());
  if (cursor.remaining() != static_cast<size_t>(count) * 8) {
    return Status::InvalidArgument("wire: search body size does not match "
                                   "its id count");
  }
  std::vector<EntryId> ids;
  ids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ids.push_back(static_cast<EntryId>(*cursor.GetU64()));
  }
  return ids;
}

Result<WireValidateResult> DecodeValidateResponseBody(std::string_view body) {
  WireCursor cursor(body);
  WireValidateResult result;
  LDAPBOUND_ASSIGN_OR_RETURN(uint8_t legal, cursor.GetU8());
  result.structure_legal = legal != 0;
  LDAPBOUND_ASSIGN_OR_RETURN(result.num_entries, cursor.GetU64());
  LDAPBOUND_ASSIGN_OR_RETURN(result.version, cursor.GetU64());
  return result;
}

Result<WireSearchEntriesResult> DecodeSearchEntriesResponseBody(
    std::string_view body) {
  WireCursor cursor(body);
  WireSearchEntriesResult result;
  LDAPBOUND_ASSIGN_OR_RETURN(uint32_t count, cursor.GetU32());
  LDAPBOUND_ASSIGN_OR_RETURN(uint8_t has_more, cursor.GetU8());
  result.has_more = has_more != 0;
  LDAPBOUND_ASSIGN_OR_RETURN(std::string_view cookie, cursor.GetString());
  result.cookie = std::string(cookie);
  result.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireEntry entry;
    LDAPBOUND_ASSIGN_OR_RETURN(uint64_t id, cursor.GetU64());
    entry.id = static_cast<EntryId>(id);
    LDAPBOUND_ASSIGN_OR_RETURN(std::string_view dn, cursor.GetString());
    entry.dn = std::string(dn);
    LDAPBOUND_ASSIGN_OR_RETURN(uint16_t nclasses, cursor.GetU16());
    entry.classes.reserve(nclasses);
    for (uint16_t c = 0; c < nclasses; ++c) {
      LDAPBOUND_ASSIGN_OR_RETURN(std::string_view cls, cursor.GetString());
      entry.classes.emplace_back(cls);
    }
    LDAPBOUND_ASSIGN_OR_RETURN(uint16_t nvalues, cursor.GetU16());
    entry.values.reserve(nvalues);
    for (uint16_t v = 0; v < nvalues; ++v) {
      LDAPBOUND_ASSIGN_OR_RETURN(std::string_view attr, cursor.GetString());
      LDAPBOUND_ASSIGN_OR_RETURN(std::string_view value, cursor.GetString());
      entry.values.emplace_back(std::string(attr), std::string(value));
    }
    result.entries.push_back(std::move(entry));
  }
  if (!cursor.exhausted()) {
    return Status::InvalidArgument(
        "wire: search-entries body has trailing bytes");
  }
  return result;
}

std::string EncodeSearchCookie(const WireSearchCookie& cookie) {
  std::string out;
  out.reserve(24);
  PutU64(out, cookie.cursor_id);
  PutU64(out, cookie.snapshot_version);
  PutU64(out, cookie.next_label);
  return out;
}

Result<WireSearchCookie> DecodeSearchCookie(std::string_view bytes) {
  if (bytes.size() != 24) {
    return Status::InvalidArgument(
        "wire: malformed pagination cookie (" +
        std::to_string(bytes.size()) + " bytes, want 24)");
  }
  WireCursor cursor(bytes);
  WireSearchCookie cookie;
  cookie.cursor_id = *cursor.GetU64();
  cookie.snapshot_version = *cursor.GetU64();
  cookie.next_label = *cursor.GetU64();
  return cookie;
}

}  // namespace ldapbound
