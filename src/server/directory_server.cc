#include "server/directory_server.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "consistency/inference.h"
#include "core/legality_checker.h"
#include "ldap/filter.h"
#include "ldap/ldif.h"
#include "schema/schema_format.h"
#include "server/request_stages.h"
#include "update/incremental.h"
#include "util/failpoint.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ldapbound {

namespace {

// Process-wide per-operation mirrors of the per-server StatCounters
// (ldapbound_server_* families). `ok`/`rejected` are incremented at
// exactly the sites that bump the local counters, so the global series
// stay consistent with the sum of every live server's stats().
struct OpMetrics {
  Counter& ok;
  Counter& rejected;
  Histogram& latency_ns;
};

OpMetrics MakeOpMetrics(std::string_view op) {
  MetricRegistry& r = MetricRegistry::Default();
  std::string prefix = "op=\"" + std::string(op) + "\"";
  return OpMetrics{
      r.GetCounter("ldapbound_server_ops_total",
                   "DirectoryServer operations by outcome",
                   prefix + ",outcome=\"ok\""),
      r.GetCounter("ldapbound_server_ops_total",
                   "DirectoryServer operations by outcome",
                   prefix + ",outcome=\"rejected\""),
      r.GetHistogram("ldapbound_server_op_ns",
                     "Wall nanoseconds of one DirectoryServer operation",
                     prefix),
  };
}

struct ServerMetrics {
  OpMetrics add;
  OpMetrics del;
  OpMetrics apply;
  OpMetrics modify;
  OpMetrics modify_dn;
  OpMetrics search;
  OpMetrics import;
};

ServerMetrics& GetServerMetrics() {
  // Registered once, leaked with the registry (see util/metrics.h).
  static ServerMetrics* metrics = new ServerMetrics{
      MakeOpMetrics("add"),       MakeOpMetrics("delete"),
      MakeOpMetrics("apply"),     MakeOpMetrics("modify"),
      MakeOpMetrics("modify_dn"), MakeOpMetrics("search"),
      MakeOpMetrics("import"),
  };
  return *metrics;
}

constexpr size_t kMaxDetailChars = 512;

/// Deadline check at the last cancellation-safe point: the write mutex is
/// held but no side effect has happened yet. Past this point the commit
/// always runs to durability (util/deadline.h).
Status CheckQueuedDeadline(AdmissionController* admission,
                           const Deadline& deadline) {
  if (!deadline.expired()) return Status::OK();
  if (admission != nullptr) admission->RecordQueuedDeadlineShed();
  return Status::DeadlineExceeded(
      "commit cancelled while queued for the write mutex: op deadline "
      "expired before any work (safe to retry with a fresh budget)");
}

uint64_t WallClockMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Per-operation diagnostics scope: assigns the operation id, tags
/// same-thread trace spans with it (TraceOpScope), captures those spans
/// for the slow-op log (SpanCollector), and on destruction emits one
/// structured log event and offers the record to the SlowOpLog.
///
/// Fully passive — no id drawn, nothing captured — when neither the slow
/// log nor the JSON log is on, and when an outer operation is already
/// being tracked on this thread (Add/Delete delegate to Apply; the outer
/// call is the operation).
class OpTracker {
 public:
  OpTracker(SlowOpLog* log, std::atomic<uint64_t>& next_op_id, const char* op,
            std::string target) {
    bool want_json = JsonLog::Default().enabled();
    if ((log == nullptr && !want_json) || TraceOpScope::current() != 0) return;
    log_ = log;
    op_ = op;
    target_ = std::move(target);
    op_id_ = next_op_id.fetch_add(1, std::memory_order_relaxed);
    start_unix_ms_ = WallClockMs();
    start_ns_ = Tracer::NowNs();
    scope_.emplace(op_id_);
    if (log_ != nullptr) collector_.emplace();
    active_ = true;
  }
  OpTracker(const OpTracker&) = delete;
  OpTracker& operator=(const OpTracker&) = delete;

  void Ok() { outcome_ = "ok"; }
  void Rejected(std::string_view detail, std::string explain = "") {
    outcome_ = "rejected";
    detail_ = detail.substr(0, kMaxDetailChars);
    explain_ = std::move(explain);
  }

  ~OpTracker() {
    if (!active_) return;
    uint64_t duration_ns = Tracer::NowNs() - start_ns_;
    std::vector<Tracer::Event> spans;
    if (collector_.has_value()) {
      spans = collector_->TakeEvents();
      collector_.reset();
    }
    scope_.reset();
    JsonLog& json = JsonLog::Default();
    if (json.enabled()) {
      LogEvent event("op");
      event.Num("op_id", op_id_)
          .Str("op", op_)
          .Str("target", target_)
          .Str("outcome", outcome_)
          .Num("duration_ns", duration_ns);
      if (!detail_.empty()) event.Str("detail", detail_);
      json.Write(event);
    }
    if (log_ != nullptr) {
      SlowOp record;
      record.op_id = op_id_;
      record.op = op_;
      record.target = std::move(target_);
      record.outcome = outcome_;
      record.detail = std::move(detail_);
      record.explain = std::move(explain_);
      record.start_unix_ms = start_unix_ms_;
      record.duration_ns = duration_ns;
      record.spans = std::move(spans);
      log_->Record(std::move(record));
    }
  }

 private:
  SlowOpLog* log_ = nullptr;
  const char* op_ = "";
  std::string target_;
  std::string outcome_ = "error";  // early exits that never mark an outcome
  std::string detail_;
  std::string explain_;
  uint64_t op_id_ = 0;
  uint64_t start_unix_ms_ = 0;
  uint64_t start_ns_ = 0;
  std::optional<TraceOpScope> scope_;
  std::optional<SpanCollector> collector_;
  bool active_ = false;
};

/// One "detected by" line per violation — the constraint-level summary the
/// slow-op record keeps alongside the human-readable detail.
std::string ExplainViolations(const std::vector<Violation>& violations,
                              const Vocabulary& vocab) {
  std::string out;
  for (const Violation& v : violations) {
    if (!out.empty()) out += '\n';
    out += v.DetectedBy(vocab);
  }
  return out;
}

}  // namespace

DirectoryServer::DirectoryServer(std::shared_ptr<Vocabulary> vocab,
                                 DirectorySchema schema)
    : vocab_(std::move(vocab)),
      schema_(std::make_unique<DirectorySchema>(std::move(schema))),
      directory_(std::make_unique<Directory>(vocab_)),
      write_mu_(std::make_unique<std::mutex>()),
      stats_(std::make_unique<StatCounters>()),
      health_(std::make_unique<HealthManager>()) {}

Result<DirectoryServer> DirectoryServer::Create(
    std::string_view schema_text) {
  auto vocab = std::make_shared<Vocabulary>();
  LDAPBOUND_ASSIGN_OR_RETURN(DirectorySchema schema,
                             ParseDirectorySchema(schema_text, vocab));
  return Create(std::move(vocab), std::move(schema));
}

Result<DirectoryServer> DirectoryServer::Create(
    std::shared_ptr<Vocabulary> vocab, DirectorySchema schema) {
  LDAPBOUND_RETURN_IF_ERROR(schema.Validate());
  ConsistencyChecker consistency(schema);
  LDAPBOUND_RETURN_IF_ERROR(consistency.EnsureConsistent());
  return DirectoryServer(std::move(vocab), std::move(schema));
}

// Add and Delete delegate to Apply, so their latency histograms nest the
// apply one; their outcome counters are independent of the apply family.
Status DirectoryServer::Add(const DistinguishedName& dn, EntrySpec spec,
                            Deadline deadline) {
  OpMetrics& op = GetServerMetrics().add;
  OpTracker tracker(slow_ops_.get(), stats_->next_op_id, "add", dn.ToString());
  LatencyTimer timer(op.latency_ns);
  UpdateTransaction txn;
  txn.Insert(dn, std::move(spec));
  Status status = Apply(txn, nullptr, deadline);
  if (status.ok()) {
    ++stats_->adds;
    tracker.Ok();
  } else {
    tracker.Rejected(status.message());
  }
  (status.ok() ? op.ok : op.rejected).Increment();
  return status;
}

Status DirectoryServer::Delete(const DistinguishedName& dn,
                               Deadline deadline) {
  OpMetrics& op = GetServerMetrics().del;
  OpTracker tracker(slow_ops_.get(), stats_->next_op_id, "delete",
                    dn.ToString());
  LatencyTimer timer(op.latency_ns);
  UpdateTransaction txn;
  txn.Delete(dn);
  Status status = Apply(txn, nullptr, deadline);
  if (status.ok()) {
    ++stats_->deletes;
    tracker.Ok();
  } else {
    tracker.Rejected(status.message());
  }
  (status.ok() ? op.ok : op.rejected).Increment();
  return status;
}

Status DirectoryServer::CheckWritable() const {
  HealthState state = health_->state();
  if (state == HealthState::kHealthy) return Status::OK();
  std::string reason = health_->reason();
  return Status::Unavailable(
      "server is read-only (" + std::string(HealthStateName(state)) +
      (reason.empty() ? "" : ": " + reason) +
      ") — reads stay available; retry writes once the server recovers");
}

Status DirectoryServer::AdmitWrite(Deadline* deadline) {
  if (admission_ == nullptr) {
    // No admission control configured; explicit deadlines still hold.
    if (deadline->expired()) {
      return Status::DeadlineExceeded(
          "op deadline expired before admission (no work was done; safe to "
          "retry with a fresh budget)");
    }
    WireStageScope::MarkCurrent(WireStage::kAdmitted);
    return Status::OK();
  }
  if (deadline->infinite()) *deadline = admission_->DefaultDeadline();
  Status status = admission_->AdmitWrite(*deadline);
  if (!status.ok() && admission_->TakeDegradeSignal()) {
    health_->ReportOverload(admission_->shed_streak());
  }
  if (status.ok()) WireStageScope::MarkCurrent(WireStage::kAdmitted);
  return status;
}

Status DirectoryServer::WalPersist(std::string payload,
                                   const Deadline& deadline,
                                   std::unique_lock<std::mutex>& lock) {
  if (wal_ == nullptr) {
    lock.unlock();
    return Status::OK();
  }
  Status status;
  if (group_commit_ != nullptr) {
    GroupCommitQueue::Ticket* ticket = nullptr;
    status = [&]() -> Status {
      // Mid-commit crash point: the in-memory commit is applied but
      // nothing has reached the log — after recovery the commit must be
      // absent (it was never acknowledged).
      LDAPBOUND_FAILPOINT("server.commit");
      // The deadline only clamps the leader's hold window; it cannot
      // cancel this commit any more (it is snapshot-visible).
      ticket = group_commit_->Enqueue(std::move(payload), deadline);
      return Status::OK();
    }();
    lock.unlock();
    if (status.ok()) status = group_commit_->Wait(ticket);
  } else {
    status = [&]() -> Status {
      LDAPBOUND_FAILPOINT("server.commit");
      WireStageScope::MarkCurrent(WireStage::kCommitEnqueued);
      return wal_->Append(payload);
    }();
    if (!status.ok()) {
      // Degrade before releasing the mutex: in inline mode no queue
      // poisoning protects the log, so the next writer must already see
      // the unhealthy state when it acquires the mutex.
      stats_->wal_resync_needed.store(true, std::memory_order_release);
      health_->ReportWalFailure(status);
    }
    lock.unlock();
  }
  if (!status.ok()) {
    // The in-memory state is now ahead of the durable state and cannot be
    // trusted as a replication source; degrade to read-only. Under group
    // commit a racing writer may already be past CheckWritable — the
    // poisoned queue fails its flush without touching the log. The
    // recovery probe (EnableResilience) repairs this automatically via a
    // snapshot resync; without it, restart via Recover().
    stats_->wal_resync_needed.store(true, std::memory_order_release);
    health_->ReportWalFailure(status);
    return Status(status.code(),
                  "write-ahead log append failed (server is now read-only; "
                  "recover from '" + wal_->dir() + "'): " + status.message());
  }
  WireStageScope::MarkCurrent(WireStage::kCommitDurable);
  return status;
}

Status DirectoryServer::Apply(const UpdateTransaction& txn,
                              CommitStats* stats, Deadline deadline) {
  OpMetrics& op = GetServerMetrics().apply;
  OpTracker tracker(slow_ops_.get(), stats_->next_op_id, "apply",
                    "txn(" + std::to_string(txn.ops().size()) + " ops)");
  LDAPBOUND_TRACE_SPAN("server.apply");
  LatencyTimer timer(op.latency_ns);
  Status admitted = AdmitWrite(&deadline);
  if (!admitted.ok()) {
    tracker.Rejected(admitted.message());
    return admitted;
  }
  std::unique_lock<std::mutex> lock(*write_mu_);
  LDAPBOUND_RETURN_IF_ERROR(CheckWritable());
  LDAPBOUND_RETURN_IF_ERROR(CheckQueuedDeadline(admission_.get(), deadline));
  IncrementalValidator::Options validator_options;
  validator_options.check = check_options_;
  // The serving path wants commit cost O(|Δ|), not O(|D|): walk the delta
  // directly for insert checks and test only the doomed subtrees' surviving
  // ancestors for delete checks (both property-tested equivalent to the
  // paper-faithful Δ-queries).
  validator_options.delta_driven_insert = true;
  validator_options.ancestor_path_optimization = true;
  TransactionExecutor executor(directory_.get(), *schema_, validator_options);
  Status status = executor.Commit(txn, stats);
  if (!status.ok()) {
    ++stats_->rejected;
    op.rejected.Increment();
    tracker.Rejected(status.message());
    return status;
  }
  // Snapshot readers must see this transaction once Apply returns OK:
  // publish under the mutex, before the durability wait.
  PublishSnapshotLocked();
  if ((changelog_ != nullptr || wal_ != nullptr) && !txn.empty()) {
    uint64_t txn_id = NextRecordTxnId();
    std::vector<ChangeRecord> records;
    records.reserve(txn.ops().size());
    for (const UpdateOp& op : txn.ops()) {
      ChangeRecord record;
      record.txn = txn_id;
      record.dn = op.dn.ToString();
      if (op.kind == UpdateOp::Kind::kInsert) {
        record.kind = ChangeRecord::Kind::kAdd;
        record.spec = op.spec;
      } else {
        record.kind = ChangeRecord::Kind::kDelete;
      }
      records.push_back(std::move(record));
    }
    std::string payload;
    if (wal_ != nullptr) payload = ChangeRecordsToLdif(records, *vocab_);
    // The changelog mirrors the in-memory commit order, so it is appended
    // under the write mutex, before the durability wait — concurrent
    // writers cannot interleave its records out of commit order. (Should
    // the WAL append then fail, the server goes read-only and the extra
    // record still describes the in-memory state.)
    if (changelog_ != nullptr) {
      for (ChangeRecord& record : records) {
        changelog_->Append(std::move(record));
      }
    }
    // Durability before acknowledgement: the commit only returns OK once
    // its log frame — or the frame's group — is on disk. Releases the
    // write mutex.
    LDAPBOUND_RETURN_IF_ERROR(WalPersist(std::move(payload), deadline, lock));
  }
  op.ok.Increment();
  tracker.Ok();
  return status;
}

DirectoryServer::Modification DirectoryServer::Inverse(
    const Modification& mod) {
  Modification inverse = mod;
  switch (mod.kind) {
    case Modification::Kind::kAddValue:
      inverse.kind = Modification::Kind::kRemoveValue;
      break;
    case Modification::Kind::kRemoveValue:
      inverse.kind = Modification::Kind::kAddValue;
      break;
    case Modification::Kind::kAddClass:
      inverse.kind = Modification::Kind::kRemoveClass;
      break;
    case Modification::Kind::kRemoveClass:
      inverse.kind = Modification::Kind::kAddClass;
      break;
  }
  return inverse;
}

Status DirectoryServer::ApplyOneModification(EntryId id,
                                             const Modification& mod,
                                             std::vector<Modification>* undo) {
  const Entry& entry = directory_->entry(id);
  switch (mod.kind) {
    case Modification::Kind::kAddValue:
      if (entry.HasValue(mod.attr, mod.value)) return Status::OK();  // no-op
      LDAPBOUND_RETURN_IF_ERROR(
          directory_->AddValue(id, mod.attr, mod.value));
      break;
    case Modification::Kind::kRemoveValue:
      if (!entry.HasValue(mod.attr, mod.value)) return Status::OK();
      LDAPBOUND_RETURN_IF_ERROR(
          directory_->RemoveValue(id, mod.attr, mod.value));
      break;
    case Modification::Kind::kAddClass:
      if (entry.HasClass(mod.cls)) return Status::OK();
      LDAPBOUND_RETURN_IF_ERROR(directory_->AddClass(id, mod.cls));
      break;
    case Modification::Kind::kRemoveClass:
      if (!entry.HasClass(mod.cls)) return Status::OK();
      LDAPBOUND_RETURN_IF_ERROR(directory_->RemoveClass(id, mod.cls));
      break;
  }
  undo->push_back(Inverse(mod));
  return Status::OK();
}

Status DirectoryServer::Modify(const DistinguishedName& dn,
                               const std::vector<Modification>& mods,
                               Deadline deadline) {
  OpMetrics& op = GetServerMetrics().modify;
  OpTracker tracker(slow_ops_.get(), stats_->next_op_id, "modify",
                    dn.ToString());
  LDAPBOUND_TRACE_SPAN("server.modify");
  LatencyTimer timer(op.latency_ns);
  Status admitted = AdmitWrite(&deadline);
  if (!admitted.ok()) {
    tracker.Rejected(admitted.message());
    return admitted;
  }
  std::unique_lock<std::mutex> lock(*write_mu_);
  LDAPBOUND_RETURN_IF_ERROR(CheckWritable());
  LDAPBOUND_RETURN_IF_ERROR(CheckQueuedDeadline(admission_.get(), deadline));
  auto resolved = ResolveDn(*directory_, dn);
  if (!resolved.ok()) {
    ++stats_->rejected;
    op.rejected.Increment();
    tracker.Rejected(resolved.status().message());
    return resolved.status();
  }
  EntryId id = *resolved;

  std::vector<Modification> undo;
  auto rollback = [&]() {
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      std::vector<Modification> ignored;
      (void)ApplyOneModification(id, *it, &ignored);
    }
  };

  for (const Modification& mod : mods) {
    Status status = ApplyOneModification(id, mod, &undo);
    if (!status.ok()) {
      rollback();
      ++stats_->rejected;
      op.rejected.Increment();
      tracker.Rejected(status.message());
      return status;
    }
  }

  // Which class memberships actually changed (derived from the undo log:
  // it records only effective mutations).
  std::vector<ClassId> added_classes;
  std::vector<ClassId> removed_classes;
  for (const Modification& inverse : undo) {
    if (inverse.kind == Modification::Kind::kRemoveClass) {
      added_classes.push_back(inverse.cls);  // inverse of an effective add
    } else if (inverse.kind == Modification::Kind::kAddClass) {
      removed_classes.push_back(inverse.cls);
    }
  }

  // Re-check. Value-only modifies need the entry's content plus key
  // uniqueness; class changes run the reclassification validator, which
  // covers the entry's content and exactly the entries whose structural
  // requirements can be affected.
  LegalityChecker checker(*schema_, check_options_);
  std::vector<Violation> violations;
  bool ok;
  if (added_classes.empty() && removed_classes.empty()) {
    ok = checker.CheckEntryContent(*directory_, id, &violations);
  } else {
    IncrementalValidator::Options validator_options;
    validator_options.check = check_options_;
    IncrementalValidator validator(*schema_, validator_options);
    ok = validator.CheckAfterReclassify(*directory_, id, added_classes,
                                        removed_classes, &violations);
  }
  ok = checker.CheckKeys(*directory_, &violations) && ok;
  if (!ok) {
    rollback();
    ++stats_->rejected;
    op.rejected.Increment();
    Status status = Status::Illegal("modify of '" + dn.ToString() +
                                    "' violates the schema:\n" +
                                    DescribeViolations(violations, *vocab_));
    tracker.Rejected(status.message(), ExplainViolations(violations, *vocab_));
    return status;
  }
  PublishSnapshotLocked();
  if (changelog_ != nullptr || wal_ != nullptr) {
    ChangeRecord record;
    record.kind = ChangeRecord::Kind::kModify;
    record.txn = NextRecordTxnId();
    record.dn = dn.ToString();
    record.mods = mods;
    std::string payload;
    if (wal_ != nullptr) payload = ChangeRecordsToLdif({record}, *vocab_);
    if (changelog_ != nullptr) changelog_->Append(std::move(record));
    LDAPBOUND_RETURN_IF_ERROR(WalPersist(std::move(payload), deadline, lock));
  }
  ++stats_->modifies;
  op.ok.Increment();
  tracker.Ok();
  return Status::OK();
}

Status DirectoryServer::ModifyDn(const DistinguishedName& dn,
                                 const DistinguishedName& new_parent_dn,
                                 std::string new_rdn, Deadline deadline) {
  OpMetrics& op = GetServerMetrics().modify_dn;
  OpTracker tracker(slow_ops_.get(), stats_->next_op_id, "modify_dn",
                    dn.ToString());
  LDAPBOUND_TRACE_SPAN("server.modify_dn");
  LatencyTimer timer(op.latency_ns);
  Status admitted = AdmitWrite(&deadline);
  if (!admitted.ok()) {
    tracker.Rejected(admitted.message());
    return admitted;
  }
  std::unique_lock<std::mutex> lock(*write_mu_);
  LDAPBOUND_RETURN_IF_ERROR(CheckWritable());
  LDAPBOUND_RETURN_IF_ERROR(CheckQueuedDeadline(admission_.get(), deadline));
  auto entry = ResolveDn(*directory_, dn);
  if (!entry.ok()) {
    ++stats_->rejected;
    op.rejected.Increment();
    tracker.Rejected(entry.status().message());
    return entry.status();
  }
  EntryId new_parent = kInvalidEntryId;
  if (!new_parent_dn.IsEmpty()) {
    auto resolved = ResolveDn(*directory_, new_parent_dn);
    if (!resolved.ok()) {
      ++stats_->rejected;
      op.rejected.Increment();
      tracker.Rejected(resolved.status().message());
      return resolved.status();
    }
    new_parent = *resolved;
  }

  EntryId old_parent = directory_->entry(*entry).parent();
  std::string old_rdn = directory_->entry(*entry).rdn();

  Status status = directory_->MoveSubtree(*entry, new_parent);
  if (!status.ok()) {
    ++stats_->rejected;
    op.rejected.Increment();
    tracker.Rejected(status.message());
    return status;
  }
  if (!new_rdn.empty()) {
    status = directory_->Rename(*entry, new_rdn);
    if (!status.ok()) {
      (void)directory_->MoveSubtree(*entry, old_parent);
      ++stats_->rejected;
      op.rejected.Increment();
      tracker.Rejected(status.message());
      return status;
    }
  }

  IncrementalValidator validator(*schema_);
  std::vector<Violation> violations;
  if (!validator.CheckAfterMove(*directory_, *entry, old_parent,
                                &violations)) {
    (void)directory_->Rename(*entry, old_rdn);
    (void)directory_->MoveSubtree(*entry, old_parent);
    ++stats_->rejected;
    op.rejected.Increment();
    Status illegal = Status::Illegal("moving '" + dn.ToString() +
                                     "' violates the schema:\n" +
                                     DescribeViolations(violations, *vocab_));
    tracker.Rejected(illegal.message(), ExplainViolations(violations, *vocab_));
    return illegal;
  }
  PublishSnapshotLocked();
  if (changelog_ != nullptr || wal_ != nullptr) {
    ChangeRecord record;
    record.kind = ChangeRecord::Kind::kModifyDn;
    record.txn = NextRecordTxnId();
    record.dn = dn.ToString();
    record.new_parent_dn = new_parent_dn.ToString();
    record.new_rdn = directory_->entry(*entry).rdn();
    std::string payload;
    if (wal_ != nullptr) payload = ChangeRecordsToLdif({record}, *vocab_);
    if (changelog_ != nullptr) changelog_->Append(std::move(record));
    LDAPBOUND_RETURN_IF_ERROR(WalPersist(std::move(payload), deadline, lock));
  }
  ++stats_->modifies;
  op.ok.Increment();
  tracker.Ok();
  return Status::OK();
}

Result<std::vector<EntryId>> DirectoryServer::Search(
    const SearchRequest& request, Deadline deadline) const {
  OpMetrics& op = GetServerMetrics().search;
  OpTracker tracker(slow_ops_.get(), stats_->next_op_id, "search",
                    request.base.ToString());
  LDAPBOUND_TRACE_SPAN("server.search");
  LatencyTimer timer(op.latency_ns);
  if (deadline.expired()) {
    op.rejected.Increment();
    Status expired = Status::DeadlineExceeded(
        "search cancelled: deadline expired before the scan started");
    tracker.Rejected(expired.message());
    return expired;
  }
  tracker.Ok();
  stats_->searches.fetch_add(1, std::memory_order_relaxed);
  op.ok.Increment();
  return ldapbound::Search(*directory_, request);
}

Result<std::vector<EntryId>> DirectoryServer::Search(
    std::string_view base_dn, std::string_view filter) const {
  SearchRequest request;
  LDAPBOUND_ASSIGN_OR_RETURN(request.base,
                             DistinguishedName::Parse(base_dn));
  request.scope = SearchScope::kSubtree;
  LDAPBOUND_ASSIGN_OR_RETURN(request.filter, ParseFilter(filter, *vocab_));
  return Search(request);
}

Result<size_t> DirectoryServer::ImportLdif(std::string_view text) {
  OpMetrics& op = GetServerMetrics().import;
  OpTracker tracker(slow_ops_.get(), stats_->next_op_id, "import",
                    "ldif(" + std::to_string(text.size()) + " bytes)");
  LDAPBOUND_TRACE_SPAN("server.import");
  LatencyTimer timer(op.latency_ns);
  std::lock_guard<std::mutex> lock(*write_mu_);
  auto imported = [&]() -> Result<size_t> {
    LDAPBOUND_RETURN_IF_ERROR(CheckWritable());
    // Load into a scratch directory first so failures cannot disturb the
    // live one; on success, load again into the live directory.
    Directory scratch(vocab_);
    {
      std::string current = WriteLdif(*directory_);
      LDAPBOUND_RETURN_IF_ERROR(LoadLdif(current, &scratch).status());
    }
    LDAPBOUND_ASSIGN_OR_RETURN(size_t created, LoadLdif(text, &scratch));
    LegalityChecker checker(*schema_, check_options_);
    LDAPBOUND_RETURN_IF_ERROR(checker.EnsureLegal(scratch));
    LDAPBOUND_RETURN_IF_ERROR(LoadLdif(text, directory_.get()).status());
    PublishSnapshotLocked();
    // Bulk imports bypass the changelog, so they must reach the WAL as a
    // snapshot or the durable state would silently diverge.
    if (wal_ != nullptr) {
      Status status = CompactLocked();
      if (!status.ok()) {
        stats_->wal_resync_needed.store(true, std::memory_order_release);
        health_->ReportWalFailure(status);
        return status;
      }
    }
    return created;
  }();
  if (imported.ok()) {
    ++stats_->imports;
    op.ok.Increment();
    tracker.Ok();
  } else {
    ++stats_->rejected;
    op.rejected.Increment();
    tracker.Rejected(imported.status().message());
  }
  return imported;
}

std::string DirectoryServer::ExportLdif() const {
  return WriteLdif(*directory_);
}

bool DirectoryServer::IsLegal() const {
  LegalityChecker checker(*schema_, check_options_);
  return checker.CheckLegal(*directory_);
}

Status DirectoryServer::EnableWal(const std::string& dir,
                                  const WalOptions& options) {
  std::lock_guard<std::mutex> lock(*write_mu_);
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("WAL already enabled");
  }
  LDAPBOUND_RETURN_IF_ERROR(CheckWritable());
  LDAPBOUND_ASSIGN_OR_RETURN(WalDirListing listing, ListWalDir(dir));
  if (!listing.segments.empty() || listing.snapshot.has_value()) {
    return Status::FailedPrecondition(
        "WAL directory '" + dir +
        "' already contains a log; restart it via DirectoryServer::Recover");
  }
  // The schema is part of the durable state: Recover() must be able to
  // rebuild the server from the directory alone. It goes down before the
  // first segment so no crash window leaves a log without its schema.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("create WAL directory '" + dir +
                            "': " + ec.message());
  }
  LDAPBOUND_RETURN_IF_ERROR(
      AtomicWriteFile(dir + "/" + WriteAheadLog::kSchemaFileName,
                      FormatDirectorySchema(*schema_)));
  LDAPBOUND_ASSIGN_OR_RETURN(std::unique_ptr<WriteAheadLog> wal,
                             WriteAheadLog::Open(dir, options, /*next_seq=*/1));
  wal_ = std::move(wal);
  if (options.group_commit_max_batch > 1) {
    group_commit_ = std::make_unique<GroupCommitQueue>(
        wal_.get(), options.group_commit_max_batch,
        options.group_commit_hold_us);
  }
  // Pre-existing entries (e.g. a bulk-loaded seed) predate the log; write
  // them down as the initial snapshot.
  if (directory_->NumEntries() > 0) {
    Status status = CompactLocked();
    if (!status.ok()) {
      group_commit_ = nullptr;
      wal_ = nullptr;
      return status;
    }
  }
  return Status::OK();
}

Status DirectoryServer::Compact() {
  std::lock_guard<std::mutex> lock(*write_mu_);
  return CompactLocked();
}

Status DirectoryServer::CompactLocked() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("WAL not enabled");
  }
  LDAPBOUND_RETURN_IF_ERROR(CheckWritable());
  // The snapshot must cover every queued commit and no frame may land
  // after it with a sequence the snapshot already contains — otherwise
  // recovery would apply that commit twice. The write mutex is held, so
  // nothing new can enqueue behind the drain.
  if (group_commit_ != nullptr) group_commit_->Drain();
  return wal_->Compact(ExportLdif());
}

Result<DirectoryServer> DirectoryServer::Recover(const std::string& dir,
                                                 const WalOptions& options,
                                                 WalRecoveryReport* report) {
  LDAPBOUND_ASSIGN_OR_RETURN(WalDirListing listing, ListWalDir(dir));
  if (listing.schema_text.empty()) {
    return Status::NotFound("WAL directory '" + dir + "' has no " +
                            WriteAheadLog::kSchemaFileName +
                            " — nothing to recover");
  }
  LDAPBOUND_ASSIGN_OR_RETURN(DirectoryServer server,
                             Create(listing.schema_text));

  WalRecoveryReport local_report;
  if (report == nullptr) report = &local_report;
  *report = WalRecoveryReport{};

  uint64_t after_seq = 0;
  if (listing.snapshot.has_value()) {
    std::ifstream in(listing.snapshot->first, std::ios::binary);
    if (!in) {
      return Status::NotFound("cannot open snapshot '" +
                              listing.snapshot->first + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto loaded = server.ImportLdif(buffer.str());
    if (!loaded.ok()) {
      return Status(loaded.status().code(),
                    "snapshot '" + listing.snapshot->first +
                        "' does not load: " + loaded.status().message());
    }
    after_seq = listing.snapshot->second;
    report->snapshot_seq = after_seq;
    report->snapshot_entries = *loaded;
  }

  Status replayed = ReplayWal(
      listing, after_seq,
      [&server](uint64_t seq, std::string_view payload) -> Status {
        auto applied = ApplyChangeLdif(payload, &server);
        if (!applied.ok()) {
          return Status(applied.status().code(),
                        "WAL frame seq " + std::to_string(seq) +
                            " does not replay: " + applied.status().message());
        }
        return Status::OK();
      },
      report);
  LDAPBOUND_RETURN_IF_ERROR(replayed);

  // The log only ever recorded committed-and-checked mutations, so the
  // replayed instance must be legal; anything else means the directory
  // was tampered with (or a bug) — refuse it.
  if (!server.IsLegal()) {
    return Status::Illegal(
        "recovered directory is not a legal instance of its schema "
        "(replayed " + std::to_string(report->frames_replayed) +
        " frames up to seq " + std::to_string(report->last_seq) + ")");
  }

  LDAPBOUND_ASSIGN_OR_RETURN(
      server.wal_,
      WriteAheadLog::Open(dir, options, report->last_seq + 1));
  if (options.group_commit_max_batch > 1) {
    server.group_commit_ = std::make_unique<GroupCommitQueue>(
        server.wal_.get(), options.group_commit_max_batch,
        options.group_commit_hold_us);
  }
  // Recovery work is not traffic; start the counters clean.
  server.stats_ = std::make_unique<StatCounters>();
  return server;
}

void DirectoryServer::EnableResilience(const ResilienceOptions& options) {
  std::lock_guard<std::mutex> lock(*write_mu_);
  admission_ = std::make_unique<AdmissionController>(options.admission,
                                                     group_commit_.get());
  if (options.auto_recover) {
    health_->StartProbe([this] { return DrainAndResync(); },
                        options.recovery_backoff);
  }
}

Status DirectoryServer::DrainAndResync() {
  std::lock_guard<std::mutex> lock(*write_mu_);
  // With the write mutex held no new commit can enter; draining lets
  // every already-queued commit fail out through the poisoned queue, so
  // nothing is in flight when the log is re-based.
  if (group_commit_ != nullptr) group_commit_->Drain();
  health_->EnterRecovering();
  if (wal_ != nullptr &&
      stats_->wal_resync_needed.load(std::memory_order_acquire)) {
    // Re-base the log on the in-memory state: it is the acknowledged
    // history plus possibly a suffix of unacknowledged-but-applied
    // commits, which is exactly what the server must continue from (MVCC
    // readers have seen them).
    LDAPBOUND_RETURN_IF_ERROR(wal_->ResyncFromSnapshot(ExportLdif()));
    if (group_commit_ != nullptr) group_commit_->ResetAfterResync();
    stats_->wal_resync_needed.store(false, std::memory_order_release);
  }
  return Status::OK();
}

Status DirectoryServer::TryRecoverNow() {
  return health_->AttemptRecovery([this] { return DrainAndResync(); });
}

DirectoryServer::Stats DirectoryServer::stats() const {
  Stats snapshot;
  snapshot.adds = stats_->adds.load(std::memory_order_relaxed);
  snapshot.deletes = stats_->deletes.load(std::memory_order_relaxed);
  snapshot.modifies = stats_->modifies.load(std::memory_order_relaxed);
  snapshot.searches = stats_->searches.load(std::memory_order_relaxed);
  snapshot.imports = stats_->imports.load(std::memory_order_relaxed);
  snapshot.rejected = stats_->rejected.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace ldapbound
