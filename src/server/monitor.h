#ifndef LDAPBOUND_SERVER_MONITOR_H_
#define LDAPBOUND_SERVER_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "util/result.h"

namespace ldapbound {

class DirectoryServer;
class FlightRecorder;
class NetServer;

/// Where the monitor listens. The default binds the loopback interface on
/// an ephemeral port (port 0); read the bound port back via port().
struct MonitorOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;

  /// Per-connection socket I/O timeouts (SO_RCVTIMEO / SO_SNDTIMEO on the
  /// accepted fd): the monitor serves from a single accept thread, so a
  /// silent client — connects, sends nothing — or a stalled reader must
  /// not park it forever and starve every later scrape. 0 disables.
  uint32_t io_timeout_ms = 5000;
};

/// Embedded HTTP monitor endpoint — the operational surface of a
/// DirectoryServer, on plain POSIX sockets (no dependencies):
///
///   GET /metrics  Prometheus text exposition of the process-wide metric
///                 registry (legality pipeline, server ops, WAL, tracer)
///   GET /healthz  "ok" while the health state machine reports healthy;
///                 503 with the state name and degradation reason in any
///                 other state (degraded / draining / recovering)
///   GET /statusz  JSON summary: schema shape, entry count, WAL state,
///                 operation counters, slow-op log configuration
///   GET /slowz    the slow-op diagnostics ring as JSON (slowest first)
///   GET /timeseries  the flight recorder's 1 Hz metric history as JSON
///                 (?window=SECONDS keeps only the most recent span)
///
/// One accept thread serves one request per connection (scrapes are rare
/// and tiny; no keep-alive). /metrics, /healthz and /slowz read only
/// internally synchronized state and are safe at any time. /statusz reads
/// directory and WAL state, so it obeys the DirectoryServer read contract:
/// its numbers may be mid-commit approximations, which scrapes tolerate.
class MonitorServer {
 public:
  /// Binds and starts the accept thread. `server` must outlive the
  /// returned monitor.
  static Result<std::unique_ptr<MonitorServer>> Start(
      const DirectoryServer* server, const MonitorOptions& options = {});

  /// Stops accepting, closes the socket, joins the thread. Idempotent.
  void Stop();
  ~MonitorServer();

  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// The bound port (the actual one when options.port was 0).
  uint16_t port() const { return port_; }

  /// Attaches (or detaches, with nullptr) the wire front end so /statusz
  /// can report its connection and shed counters. The net server must
  /// stay alive until detached or until this monitor has stopped.
  void SetNetServer(const NetServer* net) {
    net_.store(net, std::memory_order_release);
  }

  /// Attaches (or detaches, with nullptr) the flight recorder backing
  /// /timeseries. Same lifetime contract as SetNetServer.
  void SetFlightRecorder(const FlightRecorder* recorder) {
    flight_.store(recorder, std::memory_order_release);
  }

  /// The response body one endpoint would serve right now (no socket
  /// involved; tests and the CLI's `status` command use this).
  std::string RenderStatusz() const;
  std::string RenderSlowz() const;
  /// The /timeseries body; window_seconds 0 = everything retained.
  std::string RenderTimeseries(uint64_t window_seconds = 0) const;
  /// The /healthz body; `*http_code` (when non-null) gets 200 or 503.
  std::string RenderHealthz(int* http_code = nullptr) const;

 private:
  MonitorServer(const DirectoryServer* server, int listen_fd, uint16_t port,
                uint32_t io_timeout_ms);
  void AcceptLoop();
  void HandleConnection(int fd);

  const DirectoryServer* server_;
  std::atomic<const NetServer*> net_{nullptr};
  std::atomic<const FlightRecorder*> flight_{nullptr};
  int listen_fd_;
  uint16_t port_;
  uint32_t io_timeout_ms_;
  std::thread thread_;
  bool stopped_ = false;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_MONITOR_H_
