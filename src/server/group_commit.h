#ifndef LDAPBOUND_SERVER_GROUP_COMMIT_H_
#define LDAPBOUND_SERVER_GROUP_COMMIT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "util/deadline.h"
#include "util/result.h"

namespace ldapbound {

class WriteAheadLog;

/// The commit queue behind WAL group commit: batches concurrently
/// submitted transactions into one frame group made durable by a single
/// fsync (WriteAheadLog::AppendGroup), using leader/follower handoff —
/// the first committer whose group is open becomes the leader, holds the
/// batch open for up to `group_commit_hold_us` (or until
/// `group_commit_max_batch` commits are pending), flushes the whole group
/// with one fsync, wakes its followers, and hands leadership to the next
/// queued committer.
///
/// Durability contract: a transaction is acknowledged (its Wait returns
/// OK) only after the fsync of *its* group — exactly the
/// fsync-before-ack rule of §7, with the cost amortized over the batch.
/// Frames are appended in queue order, which the server makes equal to
/// in-memory commit order by enqueueing under its write mutex, so the
/// recovered prefix is always a prefix of the acknowledged history.
///
/// Threading: Enqueue must be called with the server's write mutex held
/// (it never blocks); Wait must be called after that mutex is released
/// (it blocks on the group fsync, letting other writers pipeline their
/// in-memory commits behind it). Drain is called with the write mutex
/// held, so no new commits can arrive while it waits.
class GroupCommitQueue {
 public:
  /// One queued commit. Opaque to callers; owned by the queue between
  /// Enqueue and Wait.
  struct Ticket;

  /// `wal` must outlive the queue. `max_batch` >= 1; `hold_us` may be 0
  /// (flush immediately, batching only what is already queued).
  GroupCommitQueue(WriteAheadLog* wal, size_t max_batch, uint32_t hold_us);
  ~GroupCommitQueue();

  GroupCommitQueue(const GroupCommitQueue&) = delete;
  GroupCommitQueue& operator=(const GroupCommitQueue&) = delete;

  /// Claims the next commit slot (queue order = acknowledgement order).
  /// Called with the server's write mutex held; never blocks. The deadline
  /// does NOT cancel the commit once enqueued (it is already applied in
  /// memory — see util/deadline.h); it only clamps how long a leader may
  /// hold the group open waiting for followers, so a commit near its
  /// budget is not taxed the full batching window.
  Ticket* Enqueue(std::string payload, Deadline deadline = Deadline());

  /// Blocks until the ticket's group is durable and returns the group's
  /// append status; consumes the ticket. Called after the write mutex is
  /// released.
  Status Wait(Ticket* ticket);

  /// Waits until every enqueued commit has been flushed. Called with the
  /// write mutex held (compaction and bulk import must not snapshot while
  /// frames are still queued, or recovery would apply them twice).
  void Drain();

  size_t max_batch() const { return max_batch_; }
  uint32_t hold_us() const { return hold_us_; }

  /// Commits currently waiting (enqueued, group not yet flushed). Lock-
  /// free: read by the admission controller on every write, before the
  /// write mutex is taken, so a bounded queue rejects instead of queueing.
  size_t depth() const { return depth_.load(std::memory_order_relaxed); }

  /// True once a group flush has failed. A failed flush may have left a
  /// torn prefix of its frames in the log; appending *later* groups would
  /// make the durable log skip the failed commits while containing ones
  /// that depend on them, so every subsequent flush fails fast (with the
  /// poisoning status) without touching the WAL. Cleared only by
  /// ResetAfterResync.
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  /// Re-arms the queue after the WAL has been resynced from a snapshot
  /// (WriteAheadLog::ResyncFromSnapshot). Called with the server's write
  /// mutex held and the queue drained — no commit may be in flight.
  void ResetAfterResync();

  /// Flushed groups / commits so far (for /statusz).
  uint64_t groups_flushed() const {
    return groups_flushed_.load(std::memory_order_relaxed);
  }
  uint64_t commits_flushed() const {
    return commits_flushed_.load(std::memory_order_relaxed);
  }

 private:
  /// Runs one leader flush; called by Wait with `lock` held, returns with
  /// it held and the leader's own ticket done.
  void LeadFlush(std::unique_lock<std::mutex>& lock);

  WriteAheadLog* wal_;
  const size_t max_batch_;
  const uint32_t hold_us_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Ticket*> queue_;
  bool flush_active_ = false;
  /// Set under mu_ by the first failed flush; poison_status_ is written
  /// once (also under mu_) and read by later leaders under mu_.
  std::atomic<bool> poisoned_{false};
  Status poison_status_ = Status::OK();
  std::atomic<size_t> depth_{0};
  std::atomic<uint64_t> groups_flushed_{0};
  std::atomic<uint64_t> commits_flushed_{0};
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_GROUP_COMMIT_H_
