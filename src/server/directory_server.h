#ifndef LDAPBOUND_SERVER_DIRECTORY_SERVER_H_
#define LDAPBOUND_SERVER_DIRECTORY_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/legality_checker.h"
#include "ldap/search.h"
#include "schema/directory_schema.h"
#include "server/admission.h"
#include "server/changelog.h"
#include "server/group_commit.h"
#include "server/health.h"
#include "server/modification.h"
#include "server/slow_ops.h"
#include "server/wal.h"
#include "update/transaction.h"
#include "util/deadline.h"

namespace ldapbound {

/// An embeddable, schema-guarded directory: the facade a directory
/// application would link against. It owns a Directory and its
/// bounding-schema and guarantees the invariant the paper is after —
/// *every externally visible state is a legal instance*:
///
///  - construction verifies the schema is well-formed AND consistent
///    (an inconsistent schema would make every mutation fail, §5);
///  - Add / Delete / Apply run as transactions with the Theorem 4.1
///    discipline (subtree normalization, incremental Figure 5 checks,
///    rollback on violation);
///  - Modify applies value/class mutations to one entry, re-checks
///    incrementally, and undoes them on violation;
///  - ImportLdif bulk-loads and validates, refusing illegal data sets;
///  - with EnableWal, committed mutations are fsync'd to a write-ahead
///    changelog before being acknowledged, and Recover() rebuilds the
///    exact acknowledged state after a crash (see server/wal.h).
///
/// Concurrency contract (serialized writers, many readers): the mutating
/// operations (Add, Delete, Apply, Modify, ModifyDn, ImportLdif, Compact)
/// are serialized internally on a write mutex, so any number of threads
/// may issue them concurrently — they commit one at a time, in mutex
/// order. Under WAL group commit (WalOptions::group_commit_max_batch > 1)
/// a committer releases the write mutex before blocking on its group's
/// fsync, so the next writer's in-memory commit pipelines behind the
/// previous one's durability wait — that is where the group-commit
/// throughput win comes from. The setup calls (EnableChangelog,
/// EnableWal, EnableMvcc, EnableSlowOps, set_check_options) must happen
/// before traffic, from one thread.
///
/// Reads come in two flavors:
///  - the live const reads — Search, ExportLdif, IsLegal, stats() — are
///    safe to call concurrently with each other and with stats-counter
///    updates (the counters are atomic), but NOT concurrently with a
///    mutation of the directory itself: callers who interleave writes and
///    live reads across threads must serialize them externally (e.g. a
///    shared_mutex held shared around reads);
///  - with EnableMvcc, PinSnapshot() hands out an immutable epoch-pinned
///    snapshot of the last committed state (DESIGN.md §10). Pinning and
///    reading a snapshot is lock-free and safe from any thread, fully
///    concurrent with the writers — no external serialization needed.
///    Every successful commit publishes the next snapshot before it
///    blocks on durability, so a pin taken after a mutation returned OK
///    sees that mutation.
class DirectoryServer {
 public:
  /// Parses `schema_text`, checks consistency, starts with an empty
  /// (trivially... only if Cr = ∅) directory. When the schema requires
  /// classes, the instance is illegal-until-populated: bulk-load via
  /// ImportLdif or build up with transactions; reads are always allowed.
  static Result<DirectoryServer> Create(std::string_view schema_text);

  /// Adopts an existing schema (validated + consistency-checked).
  static Result<DirectoryServer> Create(std::shared_ptr<Vocabulary> vocab,
                                        DirectorySchema schema);

  DirectoryServer(DirectoryServer&&) = default;
  DirectoryServer& operator=(DirectoryServer&&) = default;

  const DirectorySchema& schema() const { return *schema_; }
  const Directory& directory() const { return *directory_; }
  const Vocabulary& vocab() const { return *vocab_; }
  Vocabulary& mutable_vocab() { return *vocab_; }

  /// One modification of a Modify request (see server/modification.h).
  using Modification = ldapbound::Modification;

  /// Adds one entry (a single-insert transaction).
  ///
  /// Every mutating op takes an optional deadline — a cancellation budget,
  /// not an execution bound (util/deadline.h): it is checked at admission
  /// and once more after the write mutex is acquired, before any side
  /// effect; past those points the op always runs to durability. A
  /// default-constructed (infinite) deadline is replaced by the admission
  /// controller's configured default, when EnableResilience set one.
  Status Add(const DistinguishedName& dn, EntrySpec spec,
             Deadline deadline = Deadline());

  /// Deletes one leaf entry (a single-delete transaction).
  Status Delete(const DistinguishedName& dn, Deadline deadline = Deadline());

  /// Applies a multi-operation transaction atomically.
  Status Apply(const UpdateTransaction& txn, CommitStats* stats = nullptr,
               Deadline deadline = Deadline());

  /// Applies `mods` to the entry named `dn`, re-checks legality, and rolls
  /// the entry back if the result would be illegal. Value-only mods re-check
  /// the entry's content plus key uniqueness; class mods additionally
  /// re-check the structure schema (class membership participates in
  /// structural relationships).
  Status Modify(const DistinguishedName& dn,
                const std::vector<Modification>& mods,
                Deadline deadline = Deadline());

  /// The LDAP ModDN operation: moves the subtree named `dn` under
  /// `new_parent_dn` (empty DN = make it a root), optionally renaming its
  /// RDN to `new_rdn`. Incrementally re-checked (IncrementalValidator::
  /// CheckAfterMove); moved back on violation.
  Status ModifyDn(const DistinguishedName& dn,
                  const DistinguishedName& new_parent_dn,
                  std::string new_rdn = "", Deadline deadline = Deadline());

  /// Filtered, scoped search (read-only; no legality interaction). The
  /// deadline is checked before the scan starts — an expired budget gets
  /// kDeadlineExceeded without touching the index.
  Result<std::vector<EntryId>> Search(const SearchRequest& request,
                                      Deadline deadline = Deadline()) const;

  /// Parses an RFC-1960 filter string and searches under `base_dn` with
  /// subtree scope.
  Result<std::vector<EntryId>> Search(std::string_view base_dn,
                                      std::string_view filter) const;

  /// Bulk-loads LDIF and validates the result; on any error or violation
  /// the directory is left unchanged. Returns entries created.
  /// NOTE: bulk imports are NOT recorded in the changelog — replication
  /// setups should seed primary and replicas from the same LDIF before
  /// enabling the log.
  Result<size_t> ImportLdif(std::string_view text);

  /// The directory as LDIF.
  std::string ExportLdif() const;

  /// True if the current instance is legal (an empty directory is legal
  /// iff the schema requires no classes).
  bool IsLegal() const;

  /// Turns on the MVCC read path (DESIGN.md §10): builds the snapshot
  /// posting maps over the current state and publishes the first
  /// snapshot; every subsequent successful commit republishes in O(Δ).
  /// Idempotent. Call before traffic, from one thread.
  void EnableMvcc() {
    std::lock_guard<std::mutex> lock(*write_mu_);
    directory_->EnableSnapshots();
  }
  bool mvcc_enabled() const { return directory_->snapshots_enabled(); }

  /// Pins the latest published snapshot (empty when EnableMvcc was not
  /// called). Lock-free; safe from any thread concurrently with writers.
  PinnedSnapshot PinSnapshot() const { return directory_->PinSnapshot(); }

  /// Starts recording committed mutations as ChangeRecords (for
  /// replication and audit; see server/changelog.h). Idempotent.
  void EnableChangelog() {
    if (changelog_ == nullptr) changelog_ = std::make_unique<Changelog>();
  }

  /// The change log, or nullptr when not enabled.
  const Changelog* changelog() const { return changelog_.get(); }

  /// Makes commits durable: every subsequent committed mutation is
  /// serialized into the write-ahead changelog under `dir` and fsync'd
  /// before the mutating call returns OK. `dir` must be fresh (no
  /// segments or snapshots) — restarting over an existing log goes
  /// through Recover() instead. Writes the canonical schema text to
  /// `dir/schema.lbs` and, when the directory is already populated, an
  /// initial snapshot, so the WAL directory alone reconstructs the state.
  Status EnableWal(const std::string& dir, const WalOptions& options = {});

  /// Rebuilds a server from a WAL directory: parses `schema.lbs`, loads
  /// the newest snapshot, replays the log (truncating a torn tail,
  /// rejecting mid-log corruption — see server/wal.h), re-verifies that
  /// the recovered instance is legal, and re-attaches the log for further
  /// commits. `report`, when non-null, receives what recovery found.
  static Result<DirectoryServer> Recover(const std::string& dir,
                                         const WalOptions& options = {},
                                         WalRecoveryReport* report = nullptr);

  /// Log-truncation compaction: snapshots the current state into the WAL
  /// directory and deletes the log segments the snapshot supersedes.
  /// Requires EnableWal.
  Status Compact();

  /// The write-ahead log, or nullptr when not enabled.
  const WriteAheadLog* wal() const { return wal_.get(); }

  /// The group-commit queue, or nullptr when WAL group commit is not
  /// enabled (no WAL, or group_commit_max_batch <= 1).
  const GroupCommitQueue* group_commit() const { return group_commit_.get(); }

  /// Overload & fault resilience (DESIGN.md §11): admission control,
  /// default deadlines, degraded-mode escalation and — when auto_recover
  /// is set — the supervised recovery probe that returns a degraded
  /// server to healthy without an operator.
  struct ResilienceOptions {
    AdmissionOptions admission;

    /// Start the recovery probe: after a WAL failure the server degrades
    /// to read-only as always, and the probe then drains the commit path,
    /// resyncs the WAL from a snapshot of the in-memory state, and
    /// restores writability, retrying with exponential backoff while the
    /// fault persists. Off by default: without it a degraded server stays
    /// read-only until restarted via Recover() (the pre-§11 behavior).
    bool auto_recover = false;
    ExponentialBackoff::Options recovery_backoff;
  };

  /// Turns the resilience layer on. Call after EnableWal, before traffic,
  /// from one thread. With auto_recover the probe thread captures `this`,
  /// so — like a served MonitorServer — the server must not be moved
  /// afterwards.
  void EnableResilience(const ResilienceOptions& options);

  /// Health state machine (never null). healthy → degraded(read-only) →
  /// draining → recovering; see server/health.h.
  const HealthManager* health() const { return health_.get(); }
  HealthState health_state() const { return health_->state(); }

  /// The admission controller, or nullptr before EnableResilience.
  const AdmissionController* admission() const { return admission_.get(); }

  /// Runs one recovery attempt right now (drain + WAL resync), regardless
  /// of whether the probe is armed. Returns kFailedPrecondition when the
  /// server is not degraded. What an operator endpoint or a test calls
  /// instead of waiting out the probe's backoff.
  Status TryRecoverNow();

  /// True when the server is refusing writes (any non-healthy state).
  /// Kept under its historical name: before the §11 state machine this
  /// was a bool flipped by a WAL append failure.
  bool wal_failed() const { return !health_->healthy(); }

  /// Starts slow-op diagnostics: every top-level operation (nested
  /// delegations like Add -> Apply count once) is timed and offered to a
  /// bounded keep-the-slowest log; retained records carry the trace spans
  /// the operation's thread recorded (checker passes, constraint queries,
  /// WAL fsyncs) and, for rejections, the per-violation "detected by"
  /// summary. Served by the monitor endpoint's /slowz. Call before
  /// traffic, from the writer thread.
  void EnableSlowOps(size_t capacity = 32, uint64_t min_duration_ns = 0) {
    if (slow_ops_ == nullptr) {
      slow_ops_ = std::make_unique<SlowOpLog>(capacity, min_duration_ns);
    }
  }

  /// The slow-op log, or nullptr when not enabled. The log is internally
  /// synchronized: reading it is safe concurrently with any operation.
  const SlowOpLog* slow_ops() const { return slow_ops_.get(); }

  /// Mutable access for co-located record producers (the wire front end
  /// offers completed requests with their stage breakdown — DESIGN.md
  /// §13); same synchronization contract as slow_ops().
  SlowOpLog* mutable_slow_ops() { return slow_ops_.get(); }

  /// Worker configuration for the legality passes this server runs
  /// (ImportLdif validation, IsLegal, Modify's key recheck, and the
  /// transaction validators). Defaults to hardware concurrency; set
  /// num_threads = 1 to force serial checking. Violation output is
  /// identical for every configuration.
  void set_check_options(const CheckOptions& options) {
    check_options_ = options;
  }
  const CheckOptions& check_options() const { return check_options_; }

  /// Operation counters (a point-in-time snapshot; the live counters are
  /// atomic, so stats() is safe concurrently with Searches and with the
  /// single writer). These are per-server and reset by Recover();
  /// process-wide, monotonic mirrors (per-op latency histograms and
  /// outcome counters, ldapbound_server_* families) live in the metric
  /// registry (util/metrics.h) for `ldapbound stats --metrics`.
  struct Stats {
    size_t adds = 0;
    size_t deletes = 0;
    size_t modifies = 0;
    size_t searches = 0;
    size_t imports = 0;   ///< successful ImportLdif bulk loads
    size_t rejected = 0;  ///< mutations refused by the schema
  };
  Stats stats() const;

 private:
  DirectoryServer(std::shared_ptr<Vocabulary> vocab, DirectorySchema schema);

  Status ApplyOneModification(EntryId id, const Modification& mod,
                              std::vector<Modification>* undo);
  static Modification Inverse(const Modification& mod);

  /// Refuses mutations while the server is not healthy (degraded /
  /// draining / recovering) with a retryable kUnavailable.
  Status CheckWritable() const;

  /// Admission + default-deadline resolution for one write op. On OK,
  /// `*deadline` holds the effective deadline to thread through the
  /// commit path.
  Status AdmitWrite(Deadline* deadline);

  /// The recovery probe's body: takes the write mutex, drains the commit
  /// queue (every queued commit fails out through the poisoned queue),
  /// resyncs the WAL from a snapshot of the in-memory state, and re-arms
  /// the queue.
  Status DrainAndResync();

  /// Publishes the next MVCC snapshot after a successful in-memory
  /// commit; no-op when EnableMvcc was not called. The publish folds
  /// writer-side delta state, so the caller must hold write_mu_.
  void PublishSnapshotLocked() {
    if (directory_->snapshots_enabled()) directory_->PublishSnapshot();
  }

  /// Compact() body; `write_mu_` must be held (EnableWal and ImportLdif
  /// call it with the mutex already taken).
  Status CompactLocked();

  /// The acknowledgement gate of every commit: makes `payload` (the
  /// serialized change records; ignored when the WAL is off) durable.
  /// `lock` is the held write mutex; WalPersist always returns with it
  /// released. Inline mode appends + fsyncs under the lock (WAL order =
  /// commit order trivially) and then unlocks; group mode enqueues under
  /// the lock (queue order = commit order), unlocks, and blocks on the
  /// group's single fsync — so the next writer's in-memory commit
  /// overlaps this one's durability wait. On failure the server becomes
  /// read-only.
  Status WalPersist(std::string payload, const Deadline& deadline,
                    std::unique_lock<std::mutex>& lock);

  /// Txn-id source for change records when no Changelog is attached.
  uint64_t NextRecordTxnId() {
    return changelog_ != nullptr ? changelog_->NextTxnId() : next_txn_++;
  }

  /// Live atomic counters behind Stats; search counting happens in const
  /// reads, so they sit behind a pointer to keep the server movable.
  struct StatCounters {
    std::atomic<size_t> adds{0};
    std::atomic<size_t> deletes{0};
    std::atomic<size_t> modifies{0};
    std::atomic<size_t> searches{0};
    std::atomic<size_t> imports{0};
    std::atomic<size_t> rejected{0};
    /// Operation-id source for slow-op records and log/trace correlation.
    std::atomic<uint64_t> next_op_id{1};
    /// Set on WAL append failure, cleared by a successful resync: tells
    /// the recovery probe whether the log actually needs re-basing (an
    /// overload-triggered degrade has nothing to repair).
    std::atomic<bool> wal_resync_needed{false};
  };

  std::shared_ptr<Vocabulary> vocab_;
  std::unique_ptr<DirectorySchema> schema_;
  std::unique_ptr<Directory> directory_;
  std::unique_ptr<Changelog> changelog_;
  std::unique_ptr<WriteAheadLog> wal_;
  /// Declared after wal_ so it is destroyed first (it holds a raw pointer
  /// to the log).
  std::unique_ptr<GroupCommitQueue> group_commit_;
  std::unique_ptr<SlowOpLog> slow_ops_;
  /// Serializes the mutating operations (heap-held for movability).
  std::unique_ptr<std::mutex> write_mu_;
  uint64_t next_txn_ = 1;
  CheckOptions check_options_;
  std::unique_ptr<StatCounters> stats_;
  std::unique_ptr<AdmissionController> admission_;
  /// Declared last so it is destroyed first: its probe thread (when
  /// armed) touches wal_, group_commit_ and write_mu_ and must be joined
  /// before they die.
  std::unique_ptr<HealthManager> health_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_DIRECTORY_SERVER_H_
