#ifndef LDAPBOUND_SERVER_MODIFICATION_H_
#define LDAPBOUND_SERVER_MODIFICATION_H_

#include <cstdint>

#include "model/value.h"
#include "model/vocabulary.h"

namespace ldapbound {

/// One modification of an LDAP Modify request, plus explicit class
/// operations (standard LDAP folds those into objectClass value mods;
/// both spellings are accepted and recorded canonically).
struct Modification {
  enum class Kind : uint8_t {
    kAddValue,
    kRemoveValue,
    kAddClass,
    kRemoveClass,
  };
  Kind kind;
  AttributeId attr = kInvalidAttributeId;  // value mods
  Value value;                             // value mods
  ClassId cls = kInvalidClassId;           // class mods
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_MODIFICATION_H_
