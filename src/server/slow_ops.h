#ifndef LDAPBOUND_SERVER_SLOW_OPS_H_
#define LDAPBOUND_SERVER_SLOW_OPS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/trace.h"

namespace ldapbound {

/// One retained operation record of the slow-op diagnostics: what the
/// operation was, how it ended, how long it took, the trace spans its
/// thread recorded while it ran (checker passes, constraint queries, WAL
/// appends/fsyncs — see util/trace.h TraceOpScope/SpanCollector), and, for
/// rejections, the constraint-level "detected by" summary.
struct SlowOp {
  uint64_t op_id = 0;          ///< server-wide operation id
  std::string op;              ///< "add", "apply", "search", "import", ...
  std::string target;          ///< DN / request summary
  std::string outcome;         ///< "ok", "rejected", "error"
  std::string detail;          ///< rejection message (truncated)
  std::string explain;         ///< per-violation "detected by" lines
  uint64_t start_unix_ms = 0;  ///< wall-clock start
  uint64_t duration_ns = 0;
  /// The wire request id for records produced by the net server's stage
  /// pipeline (0 = not a wire request): lets an operator line a /slowz
  /// entry up with the client that sent it.
  uint64_t wire_request_id = 0;
  std::vector<Tracer::Event> spans;  ///< calling-thread spans, in record order

  /// The record as a JSON object (spans included, names escaped).
  std::string RenderJson() const;
};

/// Bounded keep-the-slowest log: retains the `capacity` slowest operations
/// seen so far (by duration), evicting the fastest retained one when a
/// slower operation arrives. Thread-safe; Record takes a mutex, so it is
/// called once per operation — never on per-entry paths. Served as JSON by
/// the monitor endpoint's /slowz.
class SlowOpLog {
 public:
  explicit SlowOpLog(size_t capacity = 32, uint64_t min_duration_ns = 0);

  /// Offers one finished operation. Operations faster than
  /// `min_duration_ns` are counted but never retained.
  void Record(SlowOp op);

  /// The retained operations, slowest first.
  std::vector<SlowOp> Snapshot() const;

  /// {"capacity":...,"min_duration_ns":...,"recorded":...,"ops":[...]} —
  /// ops slowest first.
  std::string RenderJson() const;

  size_t capacity() const { return capacity_; }
  uint64_t min_duration_ns() const { return min_duration_ns_; }

  /// Operations offered to Record since construction (retained or not).
  uint64_t recorded() const;

  /// The smallest duration that could currently be retained: callers on
  /// hot paths (the net server's stage pipeline) check it before paying
  /// for the SlowOp's strings and span vector. Advisory — a concurrent
  /// Record can move the floor, so Record re-checks under the mutex.
  uint64_t retention_floor_ns() const;

 private:
  const size_t capacity_;
  const uint64_t min_duration_ns_;
  mutable std::mutex mu_;
  uint64_t recorded_ = 0;
  std::vector<SlowOp> ops_;  // unordered; Snapshot sorts
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_SLOW_OPS_H_
