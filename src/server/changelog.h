#ifndef LDAPBOUND_SERVER_CHANGELOG_H_
#define LDAPBOUND_SERVER_CHANGELOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "model/directory.h"
#include "server/modification.h"

namespace ldapbound {

class DirectoryServer;

/// One committed DirectoryServer mutation, as recorded for replication and
/// audit. Serialized as RFC 2849 LDIF *change records* (changetype:
/// add / delete / modify / modrdn), with a `# txn: N` comment preserving
/// the transaction grouping that Theorem 4.1 checking depends on —
/// standard LDIF consumers ignore the comment; our replayer uses it to
/// re-commit grouped records atomically.
struct ChangeRecord {
  enum class Kind : uint8_t { kAdd, kDelete, kModify, kModifyDn };

  Kind kind;
  uint64_t sequence = 0;  ///< assigned by Changelog::Append
  uint64_t txn = 0;       ///< records sharing a txn id replay atomically
  std::string dn;

  EntrySpec spec;                   ///< kAdd
  std::vector<Modification> mods;   ///< kModify
  std::string new_parent_dn;        ///< kModifyDn
  std::string new_rdn;              ///< kModifyDn (empty = keep)
};

/// An append-only log of committed changes.
class Changelog {
 public:
  /// Appends, assigning the next sequence number.
  void Append(ChangeRecord record);

  const std::vector<ChangeRecord>& records() const { return records_; }
  uint64_t last_sequence() const { return next_sequence_ - 1; }

  /// Fresh transaction id for grouping the records of one commit.
  uint64_t NextTxnId() { return next_txn_++; }

  /// Serializes records with sequence > `after_sequence` as LDIF change
  /// records.
  std::string ToLdif(const Vocabulary& vocab,
                     uint64_t after_sequence = 0) const;

 private:
  std::vector<ChangeRecord> records_;
  uint64_t next_sequence_ = 1;
  uint64_t next_txn_ = 1;
};

/// Serializes `records` as RFC 2849 LDIF change records, each preceded by
/// its `# txn:` comment (and a `# seq:` comment when the record carries a
/// nonzero sequence number — replay failures quote it so operators can
/// resume with ToLdif(after_sequence)). This is the payload format of both
/// Changelog::ToLdif and the write-ahead log frames.
std::string ChangeRecordsToLdif(const std::vector<ChangeRecord>& records,
                                const Vocabulary& vocab);

/// Parses LDIF change records and applies them to `server` through its
/// guarded operations (records sharing a `# txn:` id commit as one
/// transaction). Stops at the first failure, returning it; previously
/// applied changes remain (replication is sequential). The failure Status
/// identifies the failing record — its ordinal in the stream, its `# seq:`
/// number when present, its DN and source line — plus how many records had
/// already been applied, so an operator can fix the record and resume
/// replay from that sequence number. Returns the number of change records
/// applied.
Result<size_t> ApplyChangeLdif(std::string_view text,
                               DirectoryServer* server);

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_CHANGELOG_H_
