#include "server/monitor.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "server/directory_server.h"
#include "server/flight_recorder.h"
#include "server/net_server.h"
#include "util/json.h"
#include "util/metrics.h"

namespace ldapbound {

namespace {

void AppendU64Field(std::string& out, const char* key, uint64_t value,
                    bool first = false) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",", key,
                value);
  out += buf;
}

void AppendBoolField(std::string& out, const char* key, bool value,
                     bool first = false) {
  if (!first) out += ',';
  out += '"';
  out += key;
  out += value ? "\":true" : "\":false";
}

/// `include_body` = false renders the HEAD variant: identical status
/// line and headers (Content-Length still describes the body a GET
/// would carry), no body bytes.
std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body,
                         bool include_body = true) {
  char head[160];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                code, reason, content_type, body.size());
  return include_body ? head + body : std::string(head);
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a scraper that closes mid-response must surface as
    // EPIPE here, not as a process-killing SIGPIPE (nothing in the
    // library installs a handler, and a server must not die because a
    // client hung up).
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away (EPIPE/ECONNRESET); a retry re-scrapes
    }
    off += static_cast<size_t>(n);
  }
}

/// Extracts the request path from "GET /path?query HTTP/1.1..." or the
/// HEAD equivalent (health probes commonly send HEAD); empty on any
/// other method. `*is_head` (when non-null) reports which method it
/// was; `*query` (when non-null) gets the part after '?', "" when none.
std::string ParseRequestPath(const std::string& request,
                             bool* is_head = nullptr,
                             std::string* query = nullptr) {
  size_t start;
  if (request.rfind("GET ", 0) == 0) {
    start = 4;
    if (is_head != nullptr) *is_head = false;
  } else if (request.rfind("HEAD ", 0) == 0) {
    start = 5;
    if (is_head != nullptr) *is_head = true;
  } else {
    return "";
  }
  size_t end = request.find(' ', start);
  if (end == std::string::npos) return "";
  std::string path = request.substr(start, end - start);
  size_t qmark = path.find('?');
  if (qmark != std::string::npos) {
    if (query != nullptr) *query = path.substr(qmark + 1);
    path.resize(qmark);
  } else if (query != nullptr) {
    query->clear();
  }
  return path;
}

/// The value of `key=N` in a query string ("window=30&x=1"); `fallback`
/// when absent or non-numeric.
uint64_t QueryUintParam(const std::string& query, const char* key,
                        uint64_t fallback) {
  std::string needle = std::string(key) + "=";
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    std::string_view param(query.data() + pos,
                           (amp == std::string::npos ? query.size() : amp) -
                               pos);
    if (param.substr(0, needle.size()) == needle) {
      uint64_t value = 0;
      bool any = false;
      for (char c : param.substr(needle.size())) {
        if (c < '0' || c > '9') return fallback;
        value = value * 10 + static_cast<uint64_t>(c - '0');
        any = true;
      }
      return any ? value : fallback;
    }
    if (amp == std::string::npos) break;
    pos = amp + 1;
  }
  return fallback;
}

}  // namespace

Result<std::unique_ptr<MonitorServer>> MonitorServer::Start(
    const DirectoryServer* server, const MonitorOptions& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("monitor: socket: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("monitor: bad bind address '" +
                                   options.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal(
        "monitor: bind " + options.bind_address + ":" +
        std::to_string(options.port) + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    Status status = Status::Internal(std::string("monitor: listen: ") +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status status = Status::Internal(std::string("monitor: getsockname: ") +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<MonitorServer>(new MonitorServer(
      server, fd, ntohs(bound.sin_port), options.io_timeout_ms));
}

MonitorServer::MonitorServer(const DirectoryServer* server, int listen_fd,
                             uint16_t port, uint32_t io_timeout_ms)
    : server_(server),
      listen_fd_(listen_fd),
      port_(port),
      io_timeout_ms_(io_timeout_ms) {
  thread_ = std::thread([this]() { AcceptLoop(); });
}

MonitorServer::~MonitorServer() { Stop(); }

void MonitorServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // shutdown() wakes the blocked accept(); the loop then sees the failure
  // and exits. close() after join so no connection outlives the fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
}

void MonitorServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // shut down (or the listen socket died)
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void MonitorServer::HandleConnection(int fd) {
  // The single accept thread serves everyone: bound both directions of
  // this connection so a silent or stalled client times out instead of
  // starving every later scrape.
  if (io_timeout_ms_ > 0) {
    timeval tv{};
    tv.tv_sec = io_timeout_ms_ / 1000;
    tv.tv_usec = static_cast<suseconds_t>((io_timeout_ms_ % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  // Scrape requests fit one read almost always; keep reading until the
  // header terminator anyway, bounded so a bad client cannot park here.
  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF, error, or the receive timeout fired (EAGAIN)
    }
    request.append(buf, static_cast<size_t>(n));
  }
  bool is_head = false;
  std::string query;
  std::string path = ParseRequestPath(request, &is_head, &query);
  auto respond = [&](int code, const char* reason, const char* type,
                     const std::string& body) {
    WriteAll(fd, HttpResponse(code, reason, type, body,
                              /*include_body=*/!is_head));
  };
  if (path == "/metrics") {
    respond(200, "OK", "text/plain; version=0.0.4",
            MetricRegistry::Default().RenderPrometheus());
  } else if (path == "/healthz") {
    int code = 200;
    std::string body = RenderHealthz(&code);
    respond(code, code == 200 ? "OK" : "Service Unavailable", "text/plain",
            body);
  } else if (path == "/statusz") {
    respond(200, "OK", "application/json", RenderStatusz());
  } else if (path == "/slowz") {
    respond(200, "OK", "application/json", RenderSlowz());
  } else if (path == "/timeseries") {
    respond(200, "OK", "application/json",
            RenderTimeseries(QueryUintParam(query, "window", 0)));
  } else if (path.empty()) {
    respond(400, "Bad Request", "text/plain",
            "only GET and HEAD are served here\n");
  } else {
    respond(404, "Not Found", "text/plain",
            "endpoints: /metrics /healthz /statusz /slowz /timeseries\n");
  }
}

std::string MonitorServer::RenderHealthz(int* http_code) const {
  const HealthManager& health = *server_->health();
  HealthState state = health.state();
  if (state == HealthState::kHealthy) {
    if (http_code != nullptr) *http_code = 200;
    return "ok\n";
  }
  if (http_code != nullptr) *http_code = 503;
  std::string body = std::string(HealthStateName(state)) +
                     ": server is read-only";
  std::string reason = health.reason();
  if (!reason.empty()) body += " (" + reason + ")";
  body += "\n";
  return body;
}

std::string MonitorServer::RenderStatusz() const {
  const DirectoryServer& s = *server_;
  const StructureSchema& structure = s.schema().structure();
  DirectoryServer::Stats stats = s.stats();

  std::string out = "{\"schema\":{";
  AppendU64Field(out, "classes", s.vocab().num_classes(), /*first=*/true);
  AppendU64Field(out, "attributes", s.vocab().num_attributes());
  AppendU64Field(out, "required_classes", structure.required_classes().size());
  AppendU64Field(out, "required_relationships", structure.required().size());
  AppendU64Field(out, "forbidden_relationships", structure.forbidden().size());
  AppendU64Field(out, "key_attributes",
                 s.schema().key_attributes().size());
  out += "}";
  AppendU64Field(out, "entries", s.directory().NumEntries());

  out += ",\"health\":{\"state\":";
  out += JsonQuote(std::string(HealthStateName(s.health_state())));
  {
    const HealthManager& health = *s.health();
    std::string reason = health.reason();
    if (!reason.empty()) {
      out += ",\"reason\":";
      out += JsonQuote(reason);
    }
    AppendU64Field(out, "transitions", health.transitions());
    AppendU64Field(out, "recovery_attempts", health.recovery_attempts());
    AppendU64Field(out, "recoveries", health.recoveries());
    AppendBoolField(out, "auto_recover", health.probe_running());
    if (health.probe_running()) {
      AppendU64Field(out, "next_probe_delay_ms", health.next_probe_delay_ms());
    }
  }
  out += "}";

  out += ",\"admission\":{";
  AppendBoolField(out, "enabled", s.admission() != nullptr, /*first=*/true);
  if (const AdmissionController* adm = s.admission()) {
    AppendU64Field(out, "max_queue_depth", adm->options().max_queue_depth);
    AppendU64Field(out, "default_deadline_ms",
                   adm->options().default_deadline_ms);
    AppendU64Field(out, "admitted", adm->admitted());
    AppendU64Field(out, "rejected_overload", adm->rejected_overload());
    AppendU64Field(out, "rejected_deadline", adm->rejected_deadline());
    AppendU64Field(out, "shed_streak", adm->shed_streak());
  }
  if (s.group_commit() != nullptr) {
    AppendU64Field(out, "queue_depth", s.group_commit()->depth());
    AppendBoolField(out, "queue_poisoned", s.group_commit()->poisoned());
  }
  out += "}";

  out += ",\"wal\":{";
  AppendBoolField(out, "enabled", s.wal() != nullptr, /*first=*/true);
  AppendBoolField(out, "failed", s.wal_failed());
  if (s.wal() != nullptr) {
    out += ",\"dir\":";
    out += JsonQuote(s.wal()->dir());
    AppendU64Field(out, "next_seq", s.wal()->next_seq());
  }
  out += ",\"group_commit\":{";
  AppendBoolField(out, "enabled", s.group_commit() != nullptr,
                  /*first=*/true);
  if (s.group_commit() != nullptr) {
    const GroupCommitQueue& q = *s.group_commit();
    AppendU64Field(out, "max_batch", q.max_batch());
    AppendU64Field(out, "hold_us", q.hold_us());
    AppendU64Field(out, "groups_flushed", q.groups_flushed());
    AppendU64Field(out, "commits_flushed", q.commits_flushed());
  }
  out += "}}";

  out += ",\"stats\":{";
  AppendU64Field(out, "adds", stats.adds, /*first=*/true);
  AppendU64Field(out, "deletes", stats.deletes);
  AppendU64Field(out, "modifies", stats.modifies);
  AppendU64Field(out, "searches", stats.searches);
  AppendU64Field(out, "imports", stats.imports);
  AppendU64Field(out, "rejected", stats.rejected);
  out += "}";

  out += ",\"mvcc\":{";
  AppendBoolField(out, "enabled", s.mvcc_enabled(), /*first=*/true);
  if (const SnapshotStore* store = s.directory().snapshot_store()) {
    AppendU64Field(out, "publishes", store->publishes());
    AppendU64Field(out, "reclaim_lag", store->reclaim_lag());
    AppendU64Field(out, "live_readers", store->epochs().live_readers());
    if (PinnedSnapshot snap = s.PinSnapshot()) {
      AppendU64Field(out, "version", snap->version);
      AppendU64Field(out, "num_alive", snap->num_alive);
    }
  }
  out += "}";

  out += ",\"net\":{";
  const NetServer* net = net_.load(std::memory_order_acquire);
  AppendBoolField(out, "enabled", net != nullptr, /*first=*/true);
  if (net != nullptr) {
    NetServer::Stats wire = net->stats();
    AppendU64Field(out, "port", net->port());
    AppendU64Field(out, "reactors", wire.reactors);
    AppendU64Field(out, "connections_accepted", wire.connections_accepted);
    AppendU64Field(out, "connections_active", wire.connections_active);
    AppendU64Field(out, "connections_shed", wire.connections_shed);
    AppendU64Field(out, "accept_errors", wire.accept_errors);
    AppendU64Field(out, "ops_shed", wire.ops_shed);
    AppendU64Field(out, "ops_ok", wire.ops_ok);
    AppendU64Field(out, "ops_rejected", wire.ops_rejected);
    AppendU64Field(out, "dispatch_queue_depth", wire.dispatch_queue_depth);
    AppendU64Field(out, "frames_in", wire.frames_in);
    AppendU64Field(out, "frames_out", wire.frames_out);
    AppendU64Field(out, "protocol_errors", wire.protocol_errors);
    AppendU64Field(out, "idle_closed", wire.idle_closed);
    AppendU64Field(out, "owed_bytes_at_stop", wire.owed_bytes_at_stop);
    AppendU64Field(out, "cursors_open", wire.cursors_open);
    AppendU64Field(out, "cursors_expired", wire.cursors_expired);
  }
  out += "}";

  out += ",\"slow_ops\":{";
  AppendBoolField(out, "enabled", s.slow_ops() != nullptr, /*first=*/true);
  if (s.slow_ops() != nullptr) {
    AppendU64Field(out, "capacity", s.slow_ops()->capacity());
    AppendU64Field(out, "min_duration_ns", s.slow_ops()->min_duration_ns());
    AppendU64Field(out, "recorded", s.slow_ops()->recorded());
  }
  out += "}}";
  return out;
}

std::string MonitorServer::RenderSlowz() const {
  if (server_->slow_ops() == nullptr) {
    return "{\"enabled\":false,\"ops\":[]}";
  }
  return server_->slow_ops()->RenderJson();
}

std::string MonitorServer::RenderTimeseries(uint64_t window_seconds) const {
  const FlightRecorder* recorder = flight_.load(std::memory_order_acquire);
  if (recorder == nullptr) {
    return "{\"enabled\":false,\"series\":[],\"samples\":[]}";
  }
  return recorder->RenderJson(window_seconds);
}

}  // namespace ldapbound
