#include "server/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace ldapbound {

namespace {

namespace fs = std::filesystem;

// Process-wide WAL observability (ldapbound_wal_* families). Updated once
// per append/fsync/compaction — the dominant cost at every site is the
// disk I/O being metered.
struct WalMetrics {
  Histogram& append_ns;   ///< one Append: frame build + write (+ fsync)
  Histogram& fsync_ns;    ///< one segment fsync
  Histogram& compact_ns;  ///< one Compact: snapshot + rotate + GC
  Counter& frames_appended;
  Counter& appended_bytes;  ///< frame bytes (header + payload)
  Counter& rotations;       ///< size-triggered segment rotations
  Counter& segments_created;
  Counter& compactions;
  Counter& snapshot_bytes;  ///< LDIF bytes written by compactions
  Counter& disk_full;       ///< appends/fsyncs/snapshots failed with ENOSPC
  Counter& resyncs;         ///< post-failure snapshot resyncs completed
};

WalMetrics& GetWalMetrics() {
  MetricRegistry& r = MetricRegistry::Default();
  static WalMetrics* metrics = new WalMetrics{
      r.GetHistogram("ldapbound_wal_append_ns",
                     "Wall nanoseconds of one WAL append "
                     "(including fsync when sync mode is on)"),
      r.GetHistogram("ldapbound_wal_fsync_ns",
                     "Wall nanoseconds of one WAL segment fsync"),
      r.GetHistogram("ldapbound_wal_compact_ns",
                     "Wall nanoseconds of one WAL compaction"),
      r.GetCounter("ldapbound_wal_frames_appended_total",
                   "Frames durably appended to the WAL"),
      r.GetCounter("ldapbound_wal_appended_bytes_total",
                   "Frame bytes (headers + payloads) appended to the WAL"),
      r.GetCounter("ldapbound_wal_rotations_total",
                   "Segment rotations triggered by the size threshold"),
      r.GetCounter("ldapbound_wal_segments_created_total",
                   "WAL segment files created"),
      r.GetCounter("ldapbound_wal_compactions_total",
                   "Snapshot compactions completed"),
      r.GetCounter("ldapbound_wal_snapshot_bytes_total",
                   "Snapshot LDIF bytes written by compactions"),
      r.GetCounter("ldapbound_wal_disk_full_total",
                   "WAL writes that failed with ENOSPC (disk full)"),
      r.GetCounter("ldapbound_wal_resyncs_total",
                   "Post-failure snapshot resyncs (ResyncFromSnapshot)"),
  };
  return *metrics;
}

constexpr char kSegmentMagic[8] = {'L', 'D', 'B', 'W', 'A', 'L', '1', '\n'};
constexpr size_t kSegmentHeaderSize = 16;  // magic + u64 first sequence
constexpr size_t kFrameHeaderSize = 16;    // u32 len + u64 seq + u32 crc

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

/// Disk exhaustion is an operator-actionable condition distinct from an
/// I/O fault (free space vs replace-the-disk), so it gets its own status
/// code, message and counter; the health manager degrades with a
/// disk-full reason the monitor endpoint surfaces.
Status DiskFull(const std::string& what) {
  GetWalMetrics().disk_full.Increment();
  return Status::DiskFull(what + ": disk full (ENOSPC)");
}

Status Errno(const std::string& what) {
  if (errno == ENOSPC) return DiskFull(what);
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Failpoint probe usable in non-returning position (AppendGroup must
/// retire the group's sequences before propagating an injected error);
/// compiles to nothing when failpoints are off, like the macro.
Status HitFailpoint(const char* site) {
#ifdef LDAPBOUND_FAILPOINTS_ENABLED
  return Failpoints::Hit(site);
#else
  (void)site;
  return Status::OK();
#endif
}

Status WriteFully(int fd, std::string_view data) {
  const char* p = data.data();
  size_t remaining = data.size();
  while (remaining > 0) {
    ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("wal write");
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open directory '" + dir + "'");
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync directory '" + dir + "'");
  return Status::OK();
}

Status WriteFileAndSync(const std::string& path, std::string_view data) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Errno("create '" + path + "'");
  Status status = WriteFully(fd, data);
  if (status.ok() && ::fsync(fd) != 0) status = Errno("fsync '" + path + "'");
  ::close(fd);
  return status;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses exactly 16 lowercase hex digits; returns false on anything else.
bool ParseHex16(std::string_view digits, uint64_t* out) {
  if (digits.size() != 16) return false;
  uint64_t v = 0;
  for (char c : digits) {
    uint32_t nibble;
    if (c >= '0' && c <= '9') nibble = static_cast<uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') nibble = static_cast<uint32_t>(c - 'a' + 10);
    else return false;
    v = (v << 4) | nibble;
  }
  *out = v;
  return true;
}

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string Hex8(uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

}  // namespace

std::string WriteAheadLog::SegmentFileName(uint64_t first_seq) {
  return "wal-" + Hex16(first_seq) + ".log";
}

std::string WriteAheadLog::SnapshotFileName(uint64_t through_seq) {
  return "snap-" + Hex16(through_seq) + ".ldif";
}

Result<WalDirListing> ListWalDir(const std::string& dir) {
  WalDirListing listing;
  listing.dir = dir;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return listing;
  if (!fs::is_directory(dir, ec)) {
    return Status::InvalidArgument("'" + dir + "' is not a directory");
  }
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name == WriteAheadLog::kSchemaFileName) {
      LDAPBOUND_ASSIGN_OR_RETURN(listing.schema_text,
                                 ReadFileBytes(entry.path().string()));
      continue;
    }
    uint64_t seq = 0;
    if (StartsWith(name, "wal-") && name.size() == 4 + 16 + 4 &&
        name.substr(20) == ".log" && ParseHex16(name.substr(4, 16), &seq)) {
      listing.segments.push_back({entry.path().string(), seq});
      continue;
    }
    if (StartsWith(name, "snap-") && name.size() == 5 + 16 + 5 &&
        name.substr(21) == ".ldif" && ParseHex16(name.substr(5, 16), &seq)) {
      if (!listing.snapshot.has_value() || seq > listing.snapshot->second) {
        listing.snapshot = {entry.path().string(), seq};
      }
      continue;
    }
    // .tmp leftovers and foreign files: ignored (compaction collects tmps).
  }
  if (ec) return Status::Internal("scanning '" + dir + "': " + ec.message());
  std::sort(listing.segments.begin(), listing.segments.end(),
            [](const WalSegment& a, const WalSegment& b) {
              return a.first_seq < b.first_seq;
            });
  return listing;
}

Status ReplayWal(const WalDirListing& listing, uint64_t after_seq,
                 const std::function<Status(uint64_t, std::string_view)>& apply,
                 WalRecoveryReport* report) {
  report->last_seq = std::max(report->last_seq, after_seq);
  uint64_t expected_next = after_seq + 1;
  for (size_t i = 0; i < listing.segments.size(); ++i) {
    const WalSegment& segment = listing.segments[i];
    const bool is_last = (i + 1 == listing.segments.size());
    // A segment wholly covered by the snapshot (every frame ≤ after_seq,
    // known from the next segment's first sequence) is stale — skip it;
    // the next compaction garbage-collects it.
    if (!is_last && listing.segments[i + 1].first_seq <= after_seq + 1) {
      continue;
    }
    ++report->segments_scanned;

    LDAPBOUND_ASSIGN_OR_RETURN(std::string data,
                               ReadFileBytes(segment.path));
    const size_t size = data.size();

    auto corrupt = [&](size_t offset, const std::string& why) {
      return Status::InvalidArgument(
          "corrupt WAL segment '" + segment.path + "' at offset " +
          std::to_string(offset) + ": " + why +
          " (mid-log corruption; refusing to recover past it)");
    };
    auto torn = [&](size_t offset) -> Status {
      // Torn tail: the bytes past `offset` are an interrupted append of a
      // frame that was never acknowledged. Truncate back to the last
      // valid frame and recover successfully.
      if (::truncate(segment.path.c_str(),
                     static_cast<off_t>(offset)) != 0) {
        return Errno("truncate torn tail of '" + segment.path + "'");
      }
      report->torn_tail_truncated = true;
      report->torn_tail_segment = segment.path;
      report->torn_tail_offset = offset;
      return Status::OK();
    };

    if (size < kSegmentHeaderSize) {
      // An interrupted rotation can leave the final segment without a
      // complete header; it holds no frames.
      if (is_last) return torn(0);
      return corrupt(0, "segment header truncated");
    }
    if (std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
      return corrupt(0, "bad segment magic");
    }
    uint64_t header_seq = GetU64(data.data() + 8);
    if (header_seq != segment.first_seq) {
      return corrupt(8, "header first-sequence " + std::to_string(header_seq) +
                            " does not match file name sequence " +
                            std::to_string(segment.first_seq));
    }

    size_t offset = kSegmentHeaderSize;
    while (offset < size) {
      if (size - offset < kFrameHeaderSize) {
        if (is_last) return torn(offset);
        return corrupt(offset, "frame header truncated");
      }
      const char* frame = data.data() + offset;
      uint32_t length = GetU32(frame);
      uint64_t seq = GetU64(frame + 4);
      uint32_t stored_crc = GetU32(frame + 12);
      if (offset + kFrameHeaderSize + length > size ||
          offset + kFrameHeaderSize + length < offset) {
        // The frame (or a garbage length field) extends past end-of-file:
        // an interrupted append.
        if (is_last) return torn(offset);
        return corrupt(offset, "frame payload truncated");
      }
      std::string_view payload(frame + kFrameHeaderSize, length);
      uint32_t actual = Crc32c(std::string_view(frame, 12));
      actual = Crc32cExtend(actual, payload);
      if (Crc32cUnmask(stored_crc) != actual) {
        const bool final_frame = (offset + kFrameHeaderSize + length == size);
        if (is_last && final_frame) return torn(offset);
        return corrupt(offset, "CRC32C mismatch on frame seq " +
                                   std::to_string(seq) + " (stored 0x" +
                                   Hex8(Crc32cUnmask(stored_crc)) +
                                   ", computed 0x" + Hex8(actual) + ")");
      }
      if (seq > after_seq) {
        if (seq != expected_next) {
          return corrupt(offset, "sequence gap: expected commit " +
                                     std::to_string(expected_next) +
                                     ", found " + std::to_string(seq));
        }
        LDAPBOUND_RETURN_IF_ERROR(apply(seq, payload));
        ++expected_next;
        ++report->frames_replayed;
        report->last_seq = seq;
      }
      offset += kFrameHeaderSize + length;
    }
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view text) {
  std::string tmp = path + ".tmp";
  LDAPBOUND_RETURN_IF_ERROR(WriteFileAndSync(tmp, text));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename '" + tmp + "' to '" + path + "'");
  }
  return SyncDirectory(fs::path(path).parent_path().string());
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& dir, const WalOptions& options, uint64_t next_seq) {
  if (next_seq == 0) {
    return Status::InvalidArgument("WAL sequences are 1-based");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("create WAL directory '" + dir +
                            "': " + ec.message());
  }
  LDAPBOUND_ASSIGN_OR_RETURN(WalDirListing listing, ListWalDir(dir));
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(dir, options, next_seq));
  if (listing.segments.empty()) {
    LDAPBOUND_RETURN_IF_ERROR(wal->OpenSegment(next_seq, /*create=*/true));
    LDAPBOUND_RETURN_IF_ERROR(SyncDirectory(dir));
    return wal;
  }
  const WalSegment& last = listing.segments.back();
  if (last.first_seq > next_seq) {
    return Status::Internal("WAL segment '" + last.path +
                            "' starts at sequence " +
                            std::to_string(last.first_seq) +
                            ", after the next sequence " +
                            std::to_string(next_seq));
  }
  uint64_t file_size = fs::file_size(last.path, ec);
  if (ec) return Status::Internal("stat '" + last.path + "': " + ec.message());
  if (file_size < kSegmentHeaderSize) {
    // Recovery truncated an interrupted rotation back to nothing; the
    // segment can only be reused if it would start at the next sequence.
    if (last.first_seq != next_seq) {
      return Status::Internal("headerless WAL segment '" + last.path +
                              "' does not start at the next sequence");
    }
    LDAPBOUND_RETURN_IF_ERROR(wal->OpenSegment(next_seq, /*create=*/true));
    LDAPBOUND_RETURN_IF_ERROR(SyncDirectory(dir));
    return wal;
  }
  LDAPBOUND_RETURN_IF_ERROR(
      wal->OpenSegment(last.first_seq, /*create=*/false));
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

Status WriteAheadLog::OpenSegment(uint64_t first_seq, bool create) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  segment_path_ = dir_ + "/" + SegmentFileName(first_seq);
  int flags = create ? (O_CREAT | O_TRUNC | O_WRONLY)
                     : (O_WRONLY | O_APPEND);
  fd_ = ::open(segment_path_.c_str(), flags, 0644);
  if (fd_ < 0) return Errno("open WAL segment '" + segment_path_ + "'");
  segment_first_seq_ = first_seq;
  if (create) {
    GetWalMetrics().segments_created.Increment();
    std::string header(kSegmentMagic, sizeof(kSegmentMagic));
    PutU64(header, first_seq);
    Status status = WriteFully(fd_, header);
    if (status.ok() && ::fsync(fd_) != 0) {
      status = Errno("fsync '" + segment_path_ + "'");
    }
    if (!status.ok()) return status;
    segment_bytes_ = kSegmentHeaderSize;
  } else {
    off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) return Errno("lseek '" + segment_path_ + "'");
    segment_bytes_ = static_cast<size_t>(end);
  }
  return Status::OK();
}

Status WriteAheadLog::SyncSegment() {
  if (fd_ < 0) return Status::Internal("WAL segment not open");
  LDAPBOUND_TRACE_SPAN("wal.fsync");
  LatencyTimer timer(GetWalMetrics().fsync_ns);
  if (::fsync(fd_) != 0) return Errno("fsync '" + segment_path_ + "'");
  return Status::OK();
}

Status WriteAheadLog::RotateIfNeeded() {
  if (segment_bytes_ <= kSegmentHeaderSize ||
      segment_bytes_ < options_.segment_bytes) {
    return Status::OK();
  }
  // The filled segment must be durable before the next one becomes
  // visible, or a crash could lose acknowledged frames that only lived in
  // the page cache while later frames survived.
  LDAPBOUND_RETURN_IF_ERROR(SyncSegment());
  LDAPBOUND_FAILPOINT("wal.rotate");
  LDAPBOUND_RETURN_IF_ERROR(OpenSegment(next_seq_, /*create=*/true));
  GetWalMetrics().rotations.Increment();
  return SyncDirectory(dir_);
}

Status WriteAheadLog::Append(std::string_view payload) {
  return AppendGroup({payload});
}

Status WriteAheadLog::AppendGroup(
    const std::vector<std::string_view>& payloads) {
  if (payloads.empty()) return Status::OK();
  LDAPBOUND_TRACE_SPAN("wal.append");
  LatencyTimer timer(GetWalMetrics().append_ns);
  LDAPBOUND_RETURN_IF_ERROR(RotateIfNeeded());
  std::string frames;
  size_t total = 0;
  for (std::string_view payload : payloads) {
    total += kFrameHeaderSize + payload.size();
  }
  frames.reserve(total);
  uint64_t seq = next_seq_;
  for (std::string_view payload : payloads) {
    const size_t base = frames.size();
    PutU32(frames, static_cast<uint32_t>(payload.size()));
    PutU64(frames, seq);
    // The CRC covers the 12 length+sequence bytes plus the payload.
    uint32_t crc = Crc32c(std::string_view(frames.data() + base, 12));
    crc = Crc32cExtend(crc, payload);
    PutU32(frames, Crc32cMask(crc));
    frames.append(payload);
    ++seq;
  }
  // From here on the group's sequence numbers are consumed even on
  // failure (see the retire lambda): a failed write or fsync may have
  // left any prefix of the frames durable, so those sequences can never
  // be reused — a later resync stamps its snapshot past them, and any
  // torn frame they labeled is skipped by recovery as ≤ the snapshot.
  auto retire = [&](Status status) {
    next_seq_ = seq;
    return status;
  };
  Status injected = HitFailpoint("wal.write");
  if (!injected.ok()) return retire(injected);
  injected = HitFailpoint("wal.write.enospc");
  if (!injected.ok()) return retire(DiskFull("wal write '" + segment_path_ + "'"));
  Status written = WriteFully(fd_, frames);
  if (!written.ok()) return retire(written);
  segment_bytes_ += frames.size();
  if (options_.sync) {
    injected = HitFailpoint("wal.fsync");
    if (!injected.ok()) return retire(injected);
    injected = HitFailpoint("wal.fsync.enospc");
    if (!injected.ok()) {
      return retire(DiskFull("fsync '" + segment_path_ + "'"));
    }
    Status synced = SyncSegment();
    if (!synced.ok()) return retire(synced);
  }
  next_seq_ = seq;
  WalMetrics& metrics = GetWalMetrics();
  metrics.frames_appended.Increment(payloads.size());
  metrics.appended_bytes.Increment(frames.size());
  return Status::OK();
}

Status WriteAheadLog::Compact(std::string_view snapshot_ldif) {
  LDAPBOUND_TRACE_SPAN("wal.compact");
  LatencyTimer timer(GetWalMetrics().compact_ns);
  const uint64_t through = next_seq_ - 1;
  LDAPBOUND_RETURN_IF_ERROR(SyncSegment());
  const std::string final_path = dir_ + "/" + SnapshotFileName(through);
  const std::string tmp_path = final_path + ".tmp";
  LDAPBOUND_RETURN_IF_ERROR(WriteFileAndSync(tmp_path, snapshot_ldif));
  LDAPBOUND_FAILPOINT("wal.rename");
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Errno("rename snapshot '" + tmp_path + "'");
  }
  LDAPBOUND_RETURN_IF_ERROR(SyncDirectory(dir_));
  // Start a fresh segment (unless the active one is still empty) so every
  // older segment is wholly ≤ `through` and deletable.
  if (segment_bytes_ > kSegmentHeaderSize) {
    LDAPBOUND_RETURN_IF_ERROR(OpenSegment(next_seq_, /*create=*/true));
  }
  LDAPBOUND_RETURN_IF_ERROR(DeleteObsolete(through));
  WalMetrics& metrics = GetWalMetrics();
  metrics.compactions.Increment();
  metrics.snapshot_bytes.Increment(snapshot_ldif.size());
  return SyncDirectory(dir_);
}

Status WriteAheadLog::ResyncFromSnapshot(std::string_view snapshot_ldif) {
  LDAPBOUND_TRACE_SPAN("wal.resync");
  // Drop the old segment fd without fsync: its durable content up to the
  // last acknowledged group is already on disk (fsync-before-ack), and
  // everything after — including torn frames of the failed group — is
  // superseded by the snapshot below, whose sequence covers the retired
  // group (AppendGroup consumed those sequences on failure).
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const uint64_t through = next_seq_ - 1;
  const std::string final_path = dir_ + "/" + SnapshotFileName(through);
  const std::string tmp_path = final_path + ".tmp";
  LDAPBOUND_FAILPOINT("wal.resync.snapshot");
  LDAPBOUND_FAILPOINT_AS("wal.resync.enospc",
                         DiskFull("resync snapshot '" + tmp_path + "'"));
  LDAPBOUND_RETURN_IF_ERROR(WriteFileAndSync(tmp_path, snapshot_ldif));
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Errno("rename snapshot '" + tmp_path + "'");
  }
  LDAPBOUND_RETURN_IF_ERROR(SyncDirectory(dir_));
  LDAPBOUND_RETURN_IF_ERROR(OpenSegment(next_seq_, /*create=*/true));
  LDAPBOUND_RETURN_IF_ERROR(DeleteObsolete(through));
  WalMetrics& metrics = GetWalMetrics();
  metrics.resyncs.Increment();
  metrics.snapshot_bytes.Increment(snapshot_ldif.size());
  return SyncDirectory(dir_);
}

Status WriteAheadLog::DeleteObsolete(uint64_t snapshot_seq) {
  LDAPBOUND_ASSIGN_OR_RETURN(WalDirListing listing, ListWalDir(dir_));
  std::error_code ec;
  for (const WalSegment& segment : listing.segments) {
    if (segment.first_seq < segment_first_seq_ &&
        segment.path != segment_path_) {
      fs::remove(segment.path, ec);
    }
  }
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      std::error_code ignore;
      fs::remove(entry.path(), ignore);
      continue;
    }
    uint64_t seq = 0;
    if (StartsWith(name, "snap-") && name.size() == 5 + 16 + 5 &&
        name.substr(21) == ".ldif" && ParseHex16(name.substr(5, 16), &seq) &&
        seq < snapshot_seq) {
      std::error_code ignore;
      fs::remove(entry.path(), ignore);
    }
  }
  return Status::OK();
}

}  // namespace ldapbound
