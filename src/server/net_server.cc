#include "server/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/legality_checker.h"
#include "ldap/dn.h"
#include "ldap/search.h"
#include "server/directory_server.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace ldapbound {

namespace {

/// How often a reactor wakes with no events: idle sweeping, cursor
/// reaping, accept re-arming and drain progress all ride on this.
constexpr int kEpollTimeoutMs = 250;

/// How long an EMFILE/ENFILE accept failure keeps the listener's EPOLLIN
/// disarmed. Accepting again immediately would spin hot — the ready
/// queue stays ready while the process is out of fds.
constexpr auto kAcceptBackoff = std::chrono::milliseconds(100);

/// Read budget per readable wakeup. Level-triggered epoll re-arms on
/// leftover socket bytes, so the cap bounds how long one firehose
/// connection can hold its reactor without starving the rest.
constexpr size_t kMaxReadBytesPerWake = 256 * 1024;

/// Response frames gathered into one sendmsg call. Safely under Linux's
/// IOV_MAX (1024); past a few dozen frames the syscall amortization has
/// flattened anyway.
constexpr size_t kMaxIovGather = 64;

/// Hard cap on a kSearchEntries page; keeps one page comfortably inside
/// the frame payload limit for realistic entry sizes.
constexpr uint32_t kMaxSearchEntriesPage = 1024;

Status Errno(const char* what) {
  return Status::Internal(std::string("net: ") + what + ": " +
                          std::strerror(errno));
}

/// Slow-op / span naming for wire requests (span names must be literals:
/// Tracer::Event stores the pointer).
const char* WireOpName(WireOp op) {
  switch (op) {
    case WireOp::kPing:
      return "wire.ping";
    case WireOp::kSearch:
      return "wire.search";
    case WireOp::kAdd:
      return "wire.add";
    case WireOp::kDelete:
      return "wire.delete";
    case WireOp::kValidate:
      return "wire.validate";
    case WireOp::kSearchEntries:
      return "wire.search_entries";
    default:
      return "wire.op";
  }
}

const char* WireOutcomeName(WireCode code) {
  switch (code) {
    case WireCode::kOk:
      return "ok";
    case WireCode::kInternal:
    case WireCode::kProtocolError:
      return "error";
    default:
      return "rejected";
  }
}

/// The pre-encoded frame a connection refused at the door receives.
std::string EncodeShedFrame() {
  WireResponse shed;
  shed.op = WireOp::kShed;
  shed.request_id = 0;
  shed.code = WireCode::kOverloaded;
  shed.retryable = true;
  shed.message = "connection refused: at the connection limit or "
                 "draining; retry with backoff";
  return EncodeResponseFrame(shed);
}

}  // namespace

/// Per-reactor atomics (for stats()) mirrored into ldapbound_net_*
/// metric series carrying this reactor's `reactor` label, so /metrics
/// shows how evenly SO_REUSEPORT spreads the load.
struct NetServer::ReactorCounters {
  explicit ReactorCounters(size_t index)
      : label(MakeLabel("reactor", std::to_string(index))),
        m_accepted(MetricRegistry::Default().GetCounter(
            "ldapbound_net_connections_total", "Wire connections accepted",
            label)),
        m_shed_conns(MetricRegistry::Default().GetCounter(
            "ldapbound_net_connections_shed_total",
            "Wire connections refused at the connection limit or while "
            "draining",
            label)),
        m_frames_in(MetricRegistry::Default().GetCounter(
            "ldapbound_net_frames_in_total", "Wire request frames parsed",
            label)),
        m_frames_out(MetricRegistry::Default().GetCounter(
            "ldapbound_net_frames_out_total", "Wire response frames queued",
            label)),
        m_protocol_errors(MetricRegistry::Default().GetCounter(
            "ldapbound_net_protocol_errors_total",
            "Malformed wire frames (connection closed)", label)),
        m_idle_closed(MetricRegistry::Default().GetCounter(
            "ldapbound_net_idle_closed_total",
            "Wire connections reaped by the idle timeout", label)),
        m_active(MetricRegistry::Default().GetGauge(
            "ldapbound_net_connections_active",
            "Currently open wire connections", label)),
        m_accept_emfile(MetricRegistry::Default().GetCounter(
            "ldapbound_net_accept_errors_total",
            "accept4 failures by errno class (EMFILE/ENFILE back off the "
            "listener)",
            MakeLabel("reason", "emfile") + "," + label)),
        m_accept_enfile(MetricRegistry::Default().GetCounter(
            "ldapbound_net_accept_errors_total",
            "accept4 failures by errno class (EMFILE/ENFILE back off the "
            "listener)",
            MakeLabel("reason", "enfile") + "," + label)),
        m_accept_other(MetricRegistry::Default().GetCounter(
            "ldapbound_net_accept_errors_total",
            "accept4 failures by errno class (EMFILE/ENFILE back off the "
            "listener)",
            MakeLabel("reason", "other") + "," + label)),
        h_epoll_batch(MetricRegistry::Default().GetHistogram(
            "ldapbound_net_epoll_wakeup_events",
            "Ready events per epoll_wait wakeup (event-carrying wakeups "
            "only)",
            label)),
        h_completion_batch(MetricRegistry::Default().GetHistogram(
            "ldapbound_net_completion_batch",
            "Worker completions drained per eventfd wakeup", label)),
        h_out_hwm(MetricRegistry::Default().GetHistogram(
            "ldapbound_net_conn_out_hwm_bytes",
            "Per-connection write-buffer high-watermark, observed at "
            "connection close",
            label)) {}

  void CountAcceptError(int err) {
    accept_errors.fetch_add(1, std::memory_order_relaxed);
    if (err == EMFILE) {
      m_accept_emfile.Increment();
    } else if (err == ENFILE) {
      m_accept_enfile.Increment();
    } else {
      m_accept_other.Increment();
    }
  }

  const std::string label;

  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> shed_conns{0};
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> frames_out{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> idle_closed{0};
  std::atomic<uint64_t> accept_errors{0};

  Counter& m_accepted;
  Counter& m_shed_conns;
  Counter& m_frames_in;
  Counter& m_frames_out;
  Counter& m_protocol_errors;
  Counter& m_idle_closed;
  Gauge& m_active;
  Counter& m_accept_emfile;
  Counter& m_accept_enfile;
  Counter& m_accept_other;
  Histogram& h_epoll_batch;
  Histogram& h_completion_batch;
  Histogram& h_out_hwm;
};

/// Counters with no reactor affiliation: the dispatch queue and the
/// worker pool are shared, and the stage histograms decompose the whole
/// pipeline regardless of which shard carried the socket.
struct NetServer::SharedCounters {
  SharedCounters()
      : m_shed_ops(MetricRegistry::Default().GetCounter(
            "ldapbound_net_ops_shed_total",
            "Wire requests shed at the dispatch-queue bound")),
        m_ops_ok(MetricRegistry::Default().GetCounter(
            "ldapbound_net_ops_total", "Wire requests executed, by outcome",
            "outcome=\"ok\"")),
        m_ops_rejected(MetricRegistry::Default().GetCounter(
            "ldapbound_net_ops_total", "Wire requests executed, by outcome",
            "outcome=\"rejected\"")),
        g_queue_depth(MetricRegistry::Default().GetGauge(
            "ldapbound_net_dispatch_queue_depth",
            "Decoded wire requests waiting for a worker")),
        g_cursors_open(MetricRegistry::Default().GetGauge(
            "ldapbound_net_cursors_open",
            "Paged-search cursors retaining a snapshot version")),
        m_cursors_expired(MetricRegistry::Default().GetCounter(
            "ldapbound_net_cursors_expired_total",
            "Paged-search cursors reaped by the idle timeout")),
        stage_dispatch(StageHistogram("dispatch")),
        stage_queue_wait(StageHistogram("queue_wait")),
        stage_execute(StageHistogram("execute")),
        stage_commit_wait(StageHistogram("commit_wait")),
        stage_completion(StageHistogram("completion")),
        stage_write_back(StageHistogram("write_back")),
        stage_total(StageHistogram("total")) {}

  static Histogram& StageHistogram(const char* stage) {
    return MetricRegistry::Default().GetHistogram(
        "ldapbound_wire_stage_ns",
        "Per-stage wire request latency decomposition (DESIGN.md §13): "
        "dispatch = decode to enqueue, queue_wait = enqueue to worker, "
        "execute = worker execution (commit_wait = its WAL durability "
        "share), completion = execute done to response queued, write_back "
        "= response queued to bytes flushed, total = decode to flush",
        MakeLabel("stage", stage));
  }

  std::atomic<uint64_t> shed_ops{0};
  std::atomic<uint64_t> ops_ok{0};
  std::atomic<uint64_t> ops_rejected{0};

  Counter& m_shed_ops;
  Counter& m_ops_ok;
  Counter& m_ops_rejected;
  Gauge& g_queue_depth;
  Gauge& g_cursors_open;
  Counter& m_cursors_expired;
  Histogram& stage_dispatch;
  Histogram& stage_queue_wait;
  Histogram& stage_execute;
  Histogram& stage_commit_wait;
  Histogram& stage_completion;
  Histogram& stage_write_back;
  Histogram& stage_total;
};

Result<std::unique_ptr<NetServer>> NetServer::Start(
    DirectoryServer* server, const NetServerOptions& options) {
  size_t nreactors = options.reactors;
  if (nreactors == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    nreactors = hw == 0 ? 1 : hw;
  }

  // One SO_REUSEPORT listener per reactor, all on the same port: the
  // option must be set on every socket *before* bind, and with port 0
  // the first bind learns the ephemeral port the rest then join.
  std::vector<int> listen_fds;
  auto fail = [&listen_fds](Status status) {
    for (int fd : listen_fds) ::close(fd);
    return status;
  };
  uint16_t port = options.port;
  for (size_t i = 0; i < nreactors; ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) return fail(Errno("socket"));
    listen_fds.push_back(fd);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      return fail(Errno("setsockopt(SO_REUSEPORT)"));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
        1) {
      return fail(Status::InvalidArgument("net: bad bind address '" +
                                          options.bind_address + "'"));
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return fail(Errno("bind"));
    }
    if (i == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        return fail(Errno("getsockname"));
      }
      port = ntohs(bound.sin_port);
    }
    if (::listen(fd, 1024) != 0) return fail(Errno("listen"));
  }

  // The read side of the serving path is snapshot-only; make sure the
  // server publishes them (idempotent, must happen before traffic).
  server->EnableMvcc();

  std::unique_ptr<NetServer> net(new NetServer(server, options, port));
  for (size_t i = 0; i < nreactors; ++i) {
    auto r = std::make_unique<Reactor>();
    r->index = i;
    r->listen_fd = listen_fds[i];
    r->shed_frame = EncodeShedFrame();
    r->counters = std::make_unique<ReactorCounters>(i);
    net->reactors_.push_back(std::move(r));
  }
  listen_fds.clear();  // owned by the reactors (destructor closes) now
  for (auto& r : net->reactors_) {
    r->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    r->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (r->epoll_fd < 0 || r->wake_fd < 0) {
      return Errno("epoll/eventfd");  // fds closed by the destructor
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = r->listen_fd;
    if (::epoll_ctl(r->epoll_fd, EPOLL_CTL_ADD, r->listen_fd, &ev) != 0) {
      return Errno("epoll_ctl(listen)");
    }
    epoll_event wake{};
    wake.events = EPOLLIN;
    wake.data.fd = r->wake_fd;
    if (::epoll_ctl(r->epoll_fd, EPOLL_CTL_ADD, r->wake_fd, &wake) != 0) {
      return Errno("epoll_ctl(wake)");
    }
  }

  size_t workers = options.worker_threads == 0 ? 1 : options.worker_threads;
  for (size_t i = 0; i < workers; ++i) {
    net->workers_.emplace_back([raw = net.get()]() { raw->WorkerLoop(); });
  }
  for (auto& r : net->reactors_) {
    r->thread = std::thread(
        [raw = net.get(), reactor = r.get()]() { raw->ReactorLoop(*reactor); });
  }
  return net;
}

NetServer::NetServer(DirectoryServer* server, const NetServerOptions& options,
                     uint16_t port)
    : server_(server),
      options_(options),
      port_(port),
      shared_(std::make_unique<SharedCounters>()) {}

NetServer::~NetServer() {
  Stop();
  for (auto& r : reactors_) {
    if (r->epoll_fd >= 0) ::close(r->epoll_fd);
    if (r->wake_fd >= 0) ::close(r->wake_fd);
    if (r->listen_fd >= 0) ::close(r->listen_fd);
  }
}

void NetServer::Stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  // Workers drain what is queued, post their completions, and exit;
  // joining them first means every reactor's final drain sees everything.
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  for (auto& r : reactors_) {
    if (r->wake_fd >= 0) {
      uint64_t one = 1;
      (void)!::write(r->wake_fd, &one, sizeof(one));
    }
    if (r->thread.joinable()) r->thread.join();
  }
  // Every reactor is gone: drop the cursors so their retained snapshot
  // versions free before the DirectoryServer goes away.
  std::lock_guard<std::mutex> lock(cursors_mu_);
  cursors_.clear();
  shared_->g_cursors_open.Set(0);
}

NetServer::Stats NetServer::stats() const {
  Stats s;
  s.reactors = reactors_.size();
  for (const auto& r : reactors_) {
    const ReactorCounters& c = *r->counters;
    s.connections_accepted += c.accepted.load(std::memory_order_relaxed);
    s.connections_shed += c.shed_conns.load(std::memory_order_relaxed);
    s.accept_errors += c.accept_errors.load(std::memory_order_relaxed);
    s.frames_in += c.frames_in.load(std::memory_order_relaxed);
    s.frames_out += c.frames_out.load(std::memory_order_relaxed);
    s.protocol_errors += c.protocol_errors.load(std::memory_order_relaxed);
    s.idle_closed += c.idle_closed.load(std::memory_order_relaxed);
  }
  s.connections_active = active_conns_.load(std::memory_order_relaxed);
  s.ops_shed = shared_->shed_ops.load(std::memory_order_relaxed);
  s.ops_ok = shared_->ops_ok.load(std::memory_order_relaxed);
  s.ops_rejected = shared_->ops_rejected.load(std::memory_order_relaxed);
  s.owed_bytes_at_stop = owed_bytes_at_stop_.load(std::memory_order_relaxed);
  s.cursors_expired = cursors_expired_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(cursors_mu_);
    s.cursors_open = cursors_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.dispatch_queue_depth = queue_.size();
  }
  return s;
}

void NetServer::ReactorLoop(Reactor& r) {
  std::chrono::steady_clock::time_point drain_start{};
  bool draining_out = false;
  const auto drain_grace = std::chrono::milliseconds(options_.drain_grace_ms);
  for (;;) {
    epoll_event events[128];
    int n = ::epoll_wait(r.epoll_fd, events, 128, kEpollTimeoutMs);
    if (n < 0 && errno != EINTR) return;  // epoll fd died: nothing to do
    if (n > 0) {
      r.counters->h_epoll_batch.Observe(static_cast<uint64_t>(n));
    }

    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == r.listen_fd) {
        HandleAccept(r);
        continue;
      }
      if (fd == r.wake_fd) {
        uint64_t drained;
        while (::read(r.wake_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = r.conns.find(fd);
      if (it == r.conns.end()) continue;  // closed earlier this batch
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        CloseConn(r, fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!FlushWrites(r, fd, it->second)) {
          CloseConn(r, fd);
          continue;
        }
        // FlushWrites may close a finished connection; re-find.
        it = r.conns.find(fd);
        if (it == r.conns.end()) continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        HandleReadable(r, fd, it->second);
      }
    }

    DrainCompletions(r);
    SweepIdle(r);
    // One reactor sweeps the shared cursor table; which one is
    // arbitrary, the table has its own lock.
    if (r.index == 0) ReapIdleCursors();
    if (r.accept_disarmed &&
        std::chrono::steady_clock::now() >= r.accept_rearm_at) {
      ArmAccept(r, true);
    }

    if (stopping_.load(std::memory_order_acquire)) {
      // Workers are joined before the reactors are woken for shutdown,
      // so every completion has been posted by now; let queued responses
      // flush within the grace period, then force-close.
      if (!draining_out) {
        draining_out = true;
        drain_start = std::chrono::steady_clock::now();
      }
      // A conn still owes bytes, or still owes a response a worker has
      // not posted yet (Stop() joins workers before waking the reactors,
      // but a reactor can see stopping_ on its own timeout first).
      bool pending = false;
      for (auto& [fd, conn] : r.conns) {
        if (conn.out_bytes > 0 || conn.inflight > 0) pending = true;
      }
      if (!pending ||
          std::chrono::steady_clock::now() - drain_start > drain_grace) {
        std::vector<int> fds;
        fds.reserve(r.conns.size());
        uint64_t owed = 0;
        for (auto& [fd, conn] : r.conns) {
          owed += conn.out_bytes;
          fds.push_back(fd);
        }
        if (owed > 0) {
          owed_bytes_at_stop_.fetch_add(owed, std::memory_order_relaxed);
        }
        for (int fd : fds) CloseConn(r, fd);
        return;
      }
    }
  }
}

void NetServer::ArmAccept(Reactor& r, bool on) {
  epoll_event ev{};
  ev.events = on ? EPOLLIN : 0;
  ev.data.fd = r.listen_fd;
  ::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, r.listen_fd, &ev);
  r.accept_disarmed = !on;
}

void NetServer::HandleAccept(Reactor& r) {
  for (;;) {
    int fd = ::accept4(r.listen_fd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      r.counters->CountAcceptError(errno);
      // Out of fds (or kernel memory): the ready queue stays readable,
      // so re-arming immediately would spin the reactor hot doing
      // nothing. Disarm the listener and retry after a breather —
      // pending connections just wait in the backlog.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        ArmAccept(r, false);
        r.accept_rearm_at = std::chrono::steady_clock::now() + kAcceptBackoff;
      }
      return;
    }
    bool draining =
        stopping_.load(std::memory_order_acquire) ||
        server_->health_state() == HealthState::kDraining;
    if (draining ||
        active_conns_.load(std::memory_order_relaxed) >=
            options_.max_connections) {
      // Shed at the door: a retryable frame, then close. Best-effort —
      // the client may already be gone, which is fine.
      (void)!::send(fd, r.shed_frame.data(), r.shed_frame.size(),
                    MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
      r.counters->shed_conns.fetch_add(1, std::memory_order_relaxed);
      r.counters->m_shed_conns.Increment();
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.gen = r.next_gen++;
    conn.last_activity = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    r.conns.emplace(fd, std::move(conn));
    active_conns_.fetch_add(1, std::memory_order_relaxed);
    r.counters->accepted.fetch_add(1, std::memory_order_relaxed);
    r.counters->m_accepted.Increment();
    r.counters->m_active.Set(static_cast<int64_t>(r.conns.size()));
  }
}

void NetServer::HandleReadable(Reactor& r, int fd, Conn& conn) {
  char buf[16 * 1024];
  size_t budget = kMaxReadBytesPerWake;
  for (;;) {
    size_t want = std::min(sizeof(buf), budget);
    if (want == 0) break;  // budget spent; LT epoll re-fires for the rest
    ssize_t n = ::read(fd, buf, want);
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      budget -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(r, fd);  // ECONNRESET and friends
      return;
    }
    // EOF: the peer half-closed its send side. Responses still owed (a
    // client may legitimately shutdown(SHUT_WR) after its last request
    // and read the answers) keep the connection; otherwise close now.
    conn.read_closed = true;
    break;
  }
  if (!ParseAndDispatch(r, fd, conn)) {
    // Protocol error: the error frame is queued; stop reading, flush.
    conn.read_closed = true;
  }
  if (!FlushWrites(r, fd, conn)) {
    CloseConn(r, fd);
    return;
  }
  // FlushWrites closes a connection that finished (closing, or EOF with
  // nothing owed); only a still-open one needs its epoll mask refreshed.
  if (r.conns.find(fd) != r.conns.end()) UpdateEpoll(r, fd, conn);
}

bool NetServer::ParseAndDispatch(Reactor& r, int fd, Conn& conn) {
  size_t consumed_total = 0;
  bool ok = true;
  // Decode the whole readable batch first, then enqueue it under one
  // queue lock with one worker wakeup — per-frame lock/notify was
  // measurable reactor overhead at high pipelining depths.
  std::vector<WorkItem> batch;
  for (;;) {
    WireRequest request;
    size_t consumed = 0;
    std::string_view rest =
        std::string_view(conn.in).substr(consumed_total);
    Result<bool> extracted =
        ExtractFrame(rest, options_.max_frame_payload, &request, &consumed);
    if (!extracted.ok()) {
      r.counters->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      r.counters->m_protocol_errors.Increment();
      WireResponse error;
      error.op = WireOp::kShed;
      error.request_id = 0;
      error.code = WireCode::kProtocolError;
      error.message = extracted.status().message();
      QueueResponse(r, conn, error);
      conn.closing = true;
      ok = false;
      break;
    }
    if (!*extracted) break;  // partial frame: wait for more bytes
    uint64_t decoded_ns = options_.stage_metrics ? Tracer::NowNs() : 0;
    r.counters->frames_in.fetch_add(1, std::memory_order_relaxed);
    r.counters->m_frames_in.Increment();

    if (request.op == WireOp::kPing) {
      WireResponse pong;
      pong.op = WireOp::kPing;
      pong.request_id = request.request_id;
      QueueResponse(r, conn, pong);
      shared_->ops_ok.fetch_add(1, std::memory_order_relaxed);
    } else if (stopping_.load(std::memory_order_acquire)) {
      WireResponse unavailable;
      unavailable.op = request.op;
      unavailable.request_id = request.request_id;
      unavailable.code = WireCode::kUnavailable;
      unavailable.retryable = true;
      unavailable.message = "server is draining";
      QueueResponse(r, conn, unavailable);
    } else {
      WorkItem item;
      item.reactor = r.index;
      item.fd = fd;
      item.gen = conn.gen;
      item.op = request.op;
      item.request_id = request.request_id;
      item.body = std::string(request.body);
      if (options_.stage_metrics) {
        item.stages.ns[static_cast<size_t>(WireStage::kDecoded)] = decoded_ns;
      }
      batch.push_back(std::move(item));
    }
    consumed_total += consumed;
  }
  if (consumed_total > 0) conn.in.erase(0, consumed_total);

  if (!batch.empty()) {
    std::vector<std::pair<WireOp, uint64_t>> shed;
    size_t enqueued = 0;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      for (WorkItem& item : batch) {
        if (options_.max_pending_ops > 0 &&
            queue_.size() >= options_.max_pending_ops) {
          shed.emplace_back(item.op, item.request_id);
          continue;
        }
        if (options_.stage_metrics) item.stages.Mark(WireStage::kEnqueued);
        queue_.push_back(std::move(item));
        ++enqueued;
        conn.inflight++;
      }
      shared_->g_queue_depth.Set(static_cast<int64_t>(queue_.size()));
    }
    if (enqueued == 1) {
      queue_cv_.notify_one();
    } else if (enqueued > 1) {
      queue_cv_.notify_all();
    }
    for (const auto& [op, request_id] : shed) {
      shared_->shed_ops.fetch_add(1, std::memory_order_relaxed);
      shared_->m_shed_ops.Increment();
      WireResponse overloaded;
      overloaded.op = op;
      overloaded.request_id = request_id;
      overloaded.code = WireCode::kOverloaded;
      overloaded.retryable = true;
      overloaded.message =
          "shed at the wire: dispatch queue is full; retry with backoff";
      QueueResponse(r, conn, overloaded);
    }
  }
  return ok;
}

void NetServer::QueueResponse(Reactor& r, Conn& conn,
                              const WireResponse& response) {
  // Append-only: the caller flushes once after the whole parse batch.
  // Flushing here could close (and erase) the Conn mid-iteration.
  std::string frame = EncodeResponseFrame(response);
  conn.bytes_queued += frame.size();
  conn.out_bytes += frame.size();
  conn.out_frames.push_back(std::move(frame));
  if (conn.out_bytes > conn.out_hwm) conn.out_hwm = conn.out_bytes;
  r.counters->frames_out.fetch_add(1, std::memory_order_relaxed);
  r.counters->m_frames_out.Increment();
}

bool NetServer::FlushWrites(Reactor& r, int fd, Conn& conn) {
  while (!conn.out_frames.empty()) {
    // Gather the queued frames into one sendmsg (writev cannot pass
    // MSG_NOSIGNAL) instead of one send() per frame.
    iovec iov[kMaxIovGather];
    size_t cnt = 0;
    size_t front_off = conn.out_off;
    for (std::string& frame : conn.out_frames) {
      if (cnt == kMaxIovGather) break;
      iov[cnt].iov_base = frame.data() + front_off;
      iov[cnt].iov_len = frame.size() - front_off;
      front_off = 0;
      ++cnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = cnt;
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        FinalizeFlushed(conn);
        return true;
      }
      return false;  // EPIPE / ECONNRESET: the peer is gone
    }
    conn.bytes_flushed += static_cast<uint64_t>(n);
    conn.out_bytes -= static_cast<size_t>(n);
    conn.last_activity = std::chrono::steady_clock::now();
    size_t left = static_cast<size_t>(n);
    while (left > 0) {
      size_t avail = conn.out_frames.front().size() - conn.out_off;
      if (left >= avail) {
        left -= avail;
        conn.out_frames.pop_front();
        conn.out_off = 0;
      } else {
        conn.out_off += left;
        left = 0;
      }
    }
  }
  FinalizeFlushed(conn);
  if (conn.closing || (conn.read_closed && conn.inflight == 0)) {
    CloseConn(r, fd);
    return true;  // closed cleanly, not an error; caller must re-find
  }
  return true;
}

void NetServer::FinalizeFlushed(Conn& conn) {
  while (!conn.pending_flush.empty() &&
         conn.pending_flush.front().end_offset <= conn.bytes_flushed) {
    StageRecord rec = std::move(conn.pending_flush.front());
    conn.pending_flush.pop_front();
    rec.stages.Mark(WireStage::kBytesFlushed);

    auto at = [&rec](WireStage s) { return rec.stages.at(s); };
    auto span_ns = [&at](WireStage a, WireStage b) -> uint64_t {
      // A stage pair contributes only when the op crossed both
      // boundaries in order (clock is monotonic; 0 = never crossed).
      if (at(a) == 0 || at(b) < at(a)) return 0;
      return at(b) - at(a);
    };
    struct StageSpan {
      const char* name;  // literal: Tracer::Event stores the pointer
      Histogram& hist;
      WireStage from;
      WireStage to;
    };
    const StageSpan kSpans[] = {
        {"wire.dispatch", shared_->stage_dispatch, WireStage::kDecoded,
         WireStage::kEnqueued},
        {"wire.queue_wait", shared_->stage_queue_wait, WireStage::kEnqueued,
         WireStage::kWorkerStart},
        {"wire.execute", shared_->stage_execute, WireStage::kWorkerStart,
         WireStage::kExecuteDone},
        {"wire.commit_wait", shared_->stage_commit_wait,
         WireStage::kCommitEnqueued, WireStage::kCommitDurable},
        {"wire.completion", shared_->stage_completion,
         WireStage::kExecuteDone, WireStage::kResponseQueued},
        {"wire.write_back", shared_->stage_write_back,
         WireStage::kResponseQueued, WireStage::kBytesFlushed},
        {"wire.total", shared_->stage_total, WireStage::kDecoded,
         WireStage::kBytesFlushed},
    };

    SlowOpLog* log = server_->mutable_slow_ops();
    // Only pay for the SlowOp's strings and span vector when the request
    // is slow enough to displace something in the ring — at tens of
    // thousands of ops/s, building a discarded record for every request
    // is measurable reactor-thread overhead. The floor is advisory (a
    // concurrent Record can raise it); Record re-checks under the mutex.
    uint64_t total_ns = span_ns(WireStage::kDecoded, WireStage::kBytesFlushed);
    const bool offer = log != nullptr && total_ns >= log->retention_floor_ns();
    SlowOp op;
    for (const StageSpan& span : kSpans) {
      if (at(span.from) == 0 || at(span.to) == 0) continue;
      uint64_t dur = span_ns(span.from, span.to);
      span.hist.Observe(dur);
      if (offer) {
        Tracer::Event event;
        event.name = span.name;
        event.tid = 0;
        event.start_ns = at(span.from);
        event.dur_ns = dur;
        event.op_id = rec.request_id;
        op.spans.push_back(event);
      }
    }
    if (!offer) continue;
    // Offer the request to the slow-op ring: the keep-the-slowest policy
    // and its min-duration floor decide retention, so /slowz explains
    // tail wire requests with their full stage breakdown.
    op.op = WireOpName(rec.op);
    op.target = "wire request " + std::to_string(rec.request_id);
    op.outcome = WireOutcomeName(rec.code);
    op.wire_request_id = rec.request_id;
    op.duration_ns = total_ns;
    uint64_t now_unix_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    uint64_t dur_ms = op.duration_ns / 1000000;
    op.start_unix_ms = now_unix_ms > dur_ms ? now_unix_ms - dur_ms : 0;
    log->Record(std::move(op));
  }
}

void NetServer::CloseConn(Reactor& r, int fd) {
  auto it = r.conns.find(fd);
  if (it == r.conns.end()) return;
  r.counters->h_out_hwm.Observe(it->second.out_hwm);
  ::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  r.conns.erase(it);
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  r.counters->m_active.Set(static_cast<int64_t>(r.conns.size()));
}

void NetServer::SweepIdle(Reactor& r) {
  if (options_.idle_timeout_ms == 0) return;
  auto now = std::chrono::steady_clock::now();
  auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<int> idle;
  for (auto& [fd, conn] : r.conns) {
    if (conn.inflight == 0 && now - conn.last_activity > limit) {
      idle.push_back(fd);
    }
  }
  for (int fd : idle) {
    r.counters->idle_closed.fetch_add(1, std::memory_order_relaxed);
    r.counters->m_idle_closed.Increment();
    CloseConn(r, fd);
  }
}

void NetServer::ReapIdleCursors() {
  if (options_.cursor_idle_timeout_ms == 0) return;
  auto now = std::chrono::steady_clock::now();
  auto limit = std::chrono::milliseconds(options_.cursor_idle_timeout_ms);
  std::lock_guard<std::mutex> lock(cursors_mu_);
  for (auto it = cursors_.begin(); it != cursors_.end();) {
    if (now - it->second.last_used > limit) {
      it = cursors_.erase(it);
      cursors_expired_.fetch_add(1, std::memory_order_relaxed);
      shared_->m_cursors_expired.Increment();
    } else {
      ++it;
    }
  }
  shared_->g_cursors_open.Set(static_cast<int64_t>(cursors_.size()));
}

void NetServer::DrainCompletions(Reactor& r) {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(r.completions_mu);
    batch.swap(r.completions);
  }
  if (batch.empty()) return;
  r.counters->h_completion_batch.Observe(batch.size());
  // Queue every completion's frame first, then flush each touched
  // connection once: a pipelining client's whole response batch goes out
  // in one sendmsg gather instead of one send() per response.
  std::vector<int> touched;
  for (Completion& completion : batch) {
    auto it = r.conns.find(completion.fd);
    // The fd may have been closed and reused since the request was
    // dispatched; the generation check keeps a stale response from
    // reaching the wrong client. (fds are reactor-local, so a reused fd
    // on another reactor is simply never found here.)
    if (it == r.conns.end() || it->second.gen != completion.gen) continue;
    Conn& conn = it->second;
    conn.inflight--;
    conn.bytes_queued += completion.bytes.size();
    conn.out_bytes += completion.bytes.size();
    conn.out_frames.push_back(std::move(completion.bytes));
    if (conn.out_bytes > conn.out_hwm) conn.out_hwm = conn.out_bytes;
    if (options_.stage_metrics) {
      completion.stages.Mark(WireStage::kResponseQueued);
      StageRecord rec;
      rec.end_offset = conn.bytes_queued;
      rec.op = completion.op;
      rec.request_id = completion.request_id;
      rec.code = completion.code;
      rec.stages = completion.stages;
      conn.pending_flush.push_back(std::move(rec));
    }
    if (completion.code == WireCode::kProtocolError) {
      // A worker-detected protocol error (e.g. a malformed pagination
      // cookie): flush the error frame, then close.
      conn.closing = true;
    }
    r.counters->frames_out.fetch_add(1, std::memory_order_relaxed);
    r.counters->m_frames_out.Increment();
    touched.push_back(completion.fd);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (int fd : touched) {
    auto it = r.conns.find(fd);
    if (it == r.conns.end()) continue;
    if (!FlushWrites(r, fd, it->second)) {
      CloseConn(r, fd);
      continue;
    }
    it = r.conns.find(fd);  // FlushWrites may close a finished conn
    if (it != r.conns.end()) UpdateEpoll(r, fd, it->second);
  }
}

void NetServer::UpdateEpoll(Reactor& r, int fd, Conn& conn) {
  epoll_event ev{};
  ev.events = 0;
  if (!conn.read_closed && !conn.closing) ev.events |= EPOLLIN;
  if (conn.out_bytes > 0) ev.events |= EPOLLOUT;
  ev.data.fd = fd;
  ::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, fd, &ev);
}

void NetServer::WorkerLoop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) return;  // stopping and drained
      item = std::move(queue_.front());
      queue_.pop_front();
      shared_->g_queue_depth.Set(static_cast<int64_t>(queue_.size()));
    }
    WireResponse response;
    if (options_.stage_metrics) {
      item.stages.Mark(WireStage::kWorkerStart);
      // The scope lets the layers below (admission verdict, group-commit
      // enqueue, WAL durability) stamp this request without plumbing.
      WireStageScope scope(&item.stages);
      response = Execute(item);
      item.stages.Mark(WireStage::kExecuteDone);
    } else {
      response = Execute(item);
    }
    if (response.ok()) {
      shared_->ops_ok.fetch_add(1, std::memory_order_relaxed);
      shared_->m_ops_ok.Increment();
    } else {
      shared_->ops_rejected.fetch_add(1, std::memory_order_relaxed);
      shared_->m_ops_rejected.Increment();
    }
    Completion completion;
    completion.fd = item.fd;
    completion.gen = item.gen;
    completion.bytes = EncodeResponseFrame(response);
    completion.op = item.op;
    completion.request_id = item.request_id;
    completion.code = response.code;
    completion.stages = item.stages;
    PostCompletion(item.reactor, std::move(completion));
  }
}

void NetServer::PostCompletion(size_t reactor, Completion completion) {
  Reactor& r = *reactors_[reactor];
  {
    std::lock_guard<std::mutex> lock(r.completions_mu);
    r.completions.push_back(std::move(completion));
  }
  uint64_t one = 1;
  (void)!::write(r.wake_fd, &one, sizeof(one));
}

WireResponse NetServer::Execute(const WorkItem& item) {
  WireResponse response;
  response.op = item.op;
  response.request_id = item.request_id;

  auto fail = [&](const Status& status) {
    response.code = WireCodeFromStatus(status);
    response.retryable = status.retryable();
    response.message = status.ToString();
    return response;
  };

  switch (item.op) {
    case WireOp::kSearch: {
      WireCursor cursor(item.body);
      auto base = cursor.GetString();
      if (!base.ok()) return fail(base.status());
      auto scope = cursor.GetU8();
      if (!scope.ok()) return fail(scope.status());
      auto filter = cursor.GetString();
      if (!filter.ok()) return fail(filter.status());
      PinnedSnapshot snap = server_->PinSnapshot();
      if (!snap) {
        return fail(Status::Internal("MVCC snapshots are not enabled"));
      }
      WireStageScope::MarkCurrent(WireStage::kSnapshotPinned);
      auto hits =
          SnapshotSearch(*snap, server_->vocab(), *base, *scope, *filter);
      if (!hits.ok()) return fail(hits.status());
      PutU32(response.body, static_cast<uint32_t>(hits->size()));
      for (EntryId id : *hits) PutU64(response.body, id);
      return response;
    }
    case WireOp::kSearchEntries:
      return ExecuteSearchEntries(item);
    case WireOp::kAdd: {
      WireCursor cursor(item.body);
      auto dn_text = cursor.GetString();
      if (!dn_text.ok()) return fail(dn_text.status());
      auto dn = DistinguishedName::Parse(*dn_text);
      if (!dn.ok()) return fail(dn.status());
      auto nclasses = cursor.GetU16();
      if (!nclasses.ok()) return fail(nclasses.status());
      EntrySpec spec;
      for (uint16_t i = 0; i < *nclasses; ++i) {
        auto cls = cursor.GetString();
        if (!cls.ok()) return fail(cls.status());
        spec.classes.emplace_back(*cls);
      }
      auto nvalues = cursor.GetU16();
      if (!nvalues.ok()) return fail(nvalues.status());
      for (uint16_t i = 0; i < *nvalues; ++i) {
        auto attr = cursor.GetString();
        if (!attr.ok()) return fail(attr.status());
        auto value = cursor.GetString();
        if (!value.ok()) return fail(value.status());
        spec.values.emplace_back(std::string(*attr), std::string(*value));
      }
      Status status = server_->Add(*dn, std::move(spec));
      if (!status.ok()) return fail(status);
      return response;
    }
    case WireOp::kDelete: {
      WireCursor cursor(item.body);
      auto dn_text = cursor.GetString();
      if (!dn_text.ok()) return fail(dn_text.status());
      auto dn = DistinguishedName::Parse(*dn_text);
      if (!dn.ok()) return fail(dn.status());
      Status status = server_->Delete(*dn);
      if (!status.ok()) return fail(status);
      return response;
    }
    case WireOp::kValidate: {
      PinnedSnapshot snap = server_->PinSnapshot();
      if (!snap) {
        return fail(Status::Internal("MVCC snapshots are not enabled"));
      }
      WireStageScope::MarkCurrent(WireStage::kSnapshotPinned);
      LegalityChecker checker(server_->schema(),
                              server_->check_options());
      auto legal = checker.CheckStructureSnapshot(*snap);
      if (!legal.ok()) return fail(legal.status());
      PutU8(response.body, *legal ? 1 : 0);
      PutU64(response.body, snap->num_alive);
      PutU64(response.body, snap->version);
      return response;
    }
    default:
      return fail(Status::InvalidArgument(
          "unknown wire op " +
          std::to_string(static_cast<unsigned>(item.op))));
  }
}

WireResponse NetServer::ExecuteSearchEntries(const WorkItem& item) {
  WireResponse response;
  response.op = item.op;
  response.request_id = item.request_id;
  auto fail = [&](const Status& status) {
    response.code = WireCodeFromStatus(status);
    response.retryable = status.retryable();
    response.message = status.ToString();
    return response;
  };

  WireCursor cursor(item.body);
  auto base = cursor.GetString();
  if (!base.ok()) return fail(base.status());
  auto scope = cursor.GetU8();
  if (!scope.ok()) return fail(scope.status());
  auto filter = cursor.GetString();
  if (!filter.ok()) return fail(filter.status());
  auto page_size = cursor.GetU32();
  if (!page_size.ok()) return fail(page_size.status());
  auto cookie = cursor.GetString();
  if (!cookie.ok()) return fail(cookie.status());
  if (*page_size == 0) {
    return fail(
        Status::InvalidArgument("search-entries: page_size must be > 0"));
  }
  const size_t limit = std::min(*page_size, kMaxSearchEntriesPage);

  const auto now = std::chrono::steady_clock::now();
  uint64_t cursor_id = 0;
  uint64_t from_label = 0;
  DirectorySnapshot snap;
  if (cookie->empty()) {
    PinnedSnapshot pinned = server_->PinSnapshot();
    if (!pinned) {
      return fail(Status::Internal("MVCC snapshots are not enabled"));
    }
    WireStageScope::MarkCurrent(WireStage::kSnapshotPinned);
    // Copy the snapshot by value and release the pin immediately: the
    // copy retains exactly this version's COW state through refcounts,
    // while a pin held across pages (worse, across client think time)
    // would stall reclamation for every reader.
    snap = *pinned;
    pinned.Release();
  } else {
    auto decoded = DecodeSearchCookie(*cookie);
    if (!decoded.ok()) {
      // A cookie the server never minted is a protocol error; the
      // reactor closes the connection after this frame flushes.
      response.code = WireCode::kProtocolError;
      response.message = decoded.status().message();
      return response;
    }
    cursor_id = decoded->cursor_id;
    from_label = decoded->next_label;
    std::lock_guard<std::mutex> lock(cursors_mu_);
    auto it = cursors_.find(cursor_id);
    if (it == cursors_.end() ||
        it->second.snapshot_version != decoded->snapshot_version) {
      response.code = WireCode::kCursorExpired;
      response.retryable = true;
      response.message =
          "search-entries: pagination cursor expired (reaped or "
          "superseded); restart from an empty cookie";
      return response;
    }
    it->second.last_used = now;
    // Copy out under the lock: the idle reaper may erase this slot the
    // moment we release it, and the copy keeps the version alive.
    snap = it->second.snap;
  }

  auto page = SnapshotSearchPage(snap, server_->vocab(), *base, *scope,
                                 *filter, from_label, limit + 1);
  if (!page.ok()) {
    if (cursor_id != 0) {
      std::lock_guard<std::mutex> lock(cursors_mu_);
      cursors_.erase(cursor_id);
      shared_->g_cursors_open.Set(static_cast<int64_t>(cursors_.size()));
    }
    return fail(page.status());
  }
  const bool has_more = page->size() > limit;
  if (has_more) page->resize(limit);

  std::string entries;
  for (const SnapshotPageHit& hit : *page) {
    auto dn = SnapshotEntryDn(snap, hit.id);
    if (!dn.ok()) return fail(dn.status());
    const std::string* payload = snap.EntryPayload(hit.id);
    if (payload == nullptr) {
      return fail(Status::Internal("snapshot payload missing for entry " +
                                   std::to_string(hit.id)));
    }
    PutU64(entries, hit.id);
    PutString(entries, *dn);
    // The stored payload is `str rdn | classes | values`; the response
    // carries the full DN instead of the bare RDN, so skip the leading
    // string and splice the rest verbatim.
    WireCursor skip(*payload);
    auto rdn = skip.GetString();
    if (!rdn.ok()) return fail(rdn.status());
    entries.append(payload->data() + (payload->size() - skip.remaining()),
                   skip.remaining());
  }

  std::string cookie_out;
  if (has_more) {
    std::lock_guard<std::mutex> lock(cursors_mu_);
    if (cursor_id == 0) {
      // First page of a multi-page scan: the cursor slot is what keeps
      // the snapshot version retained between pages. Single-page scans
      // never touch the table.
      cursor_id = next_cursor_id_++;
      PagedCursor cur;
      cur.snap = snap;
      cur.snapshot_version = snap.version;
      cur.last_used = now;
      cursors_.emplace(cursor_id, std::move(cur));
      shared_->g_cursors_open.Set(static_cast<int64_t>(cursors_.size()));
    }
    WireSearchCookie next;
    next.cursor_id = cursor_id;
    next.snapshot_version = snap.version;
    next.next_label = page->back().label + 1;
    cookie_out = EncodeSearchCookie(next);
  } else if (cursor_id != 0) {
    std::lock_guard<std::mutex> lock(cursors_mu_);
    cursors_.erase(cursor_id);
    shared_->g_cursors_open.Set(static_cast<int64_t>(cursors_.size()));
  }

  PutU32(response.body, static_cast<uint32_t>(page->size()));
  PutU8(response.body, has_more ? 1 : 0);
  PutString(response.body, cookie_out);
  response.body += entries;
  return response;
}

Result<std::vector<EntryId>> SnapshotSearch(const DirectorySnapshot& snapshot,
                                            const Vocabulary& vocab,
                                            std::string_view base_dn,
                                            uint8_t scope,
                                            std::string_view filter) {
  if (scope > 2) {
    return Status::InvalidArgument("search: bad scope " +
                                   std::to_string(scope));
  }
  SearchScope search_scope = static_cast<SearchScope>(scope);

  // Resolve the base: walk the RDN chain root-first through the
  // snapshot's sibling-RDN index.
  EntryId base = kInvalidEntryId;
  if (!base_dn.empty()) {
    LDAPBOUND_ASSIGN_OR_RETURN(DistinguishedName dn,
                               DistinguishedName::Parse(base_dn));
    const auto& rdns = dn.rdns();
    for (size_t i = rdns.size(); i-- > 0;) {
      base = snapshot.FindChildByRdn(base, rdns[i]);
      if (base == kInvalidEntryId) {
        return Status::NotFound("search base '" + std::string(base_dn) +
                                "' does not exist");
      }
    }
  } else if (search_scope == SearchScope::kBase) {
    return Status::InvalidArgument(
        "search: base scope needs a base DN");
  }

  // Scope predicate from the order-maintenance labels.
  uint64_t base_label = 0;
  uint64_t base_end = 0;
  if (base != kInvalidEntryId) {
    base_label = snapshot.index.labels.Get(base, 0);
    base_end = snapshot.index.end_labels.Get(base, 0);
  }
  auto in_scope = [&](EntryId id) {
    switch (search_scope) {
      case SearchScope::kBase:
        return id == base;
      case SearchScope::kOneLevel:
        return snapshot.parent(id) == base;
      case SearchScope::kSubtree:
      default: {
        if (base == kInvalidEntryId) return true;
        uint64_t label = snapshot.index.labels.Get(id, 0);
        return label >= base_label && label < base_end;
      }
    }
  };

  // The filter, as a posting iteration. A name unknown to the schema or
  // a value that does not parse as the attribute's type matches nothing
  // (LDAP filter semantics), it is not an error; only a filter *shape*
  // the snapshot cannot answer is rejected.
  std::string_view f = StripWhitespace(filter);
  if (!f.empty() && f.front() == '(' && f.back() == ')') {
    f = f.substr(1, f.size() - 2);
  }
  std::vector<EntryId> hits;
  auto collect = [&](EntryId id) {
    if (snapshot.IsAlive(id) && in_scope(id)) hits.push_back(id);
  };

  if (f.empty() || EqualsIgnoreCase(f, "objectClass=*")) {
    if (snapshot.alive != nullptr) snapshot.alive->ForEach(collect);
    return hits;
  }
  size_t eq = f.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument(
        "search: unsupported filter '" + std::string(filter) +
        "' (the wire path answers \"\", \"(objectClass=C)\" and "
        "\"(attr=value)\" filters)");
  }
  std::string_view attr = StripWhitespace(f.substr(0, eq));
  std::string_view value = f.substr(eq + 1);
  if (value == "*") {
    return Status::InvalidArgument(
        "search: presence filters are not supported on the wire search "
        "path");
  }
  if (EqualsIgnoreCase(attr, "objectClass")) {
    auto cls = vocab.FindClass(value);
    if (!cls.ok()) return hits;  // unknown class: no entry has it
    const EntrySet* members = snapshot.ClassSet(*cls);
    if (members != nullptr) members->ForEach(collect);
    return hits;
  }
  auto attr_id = vocab.FindAttribute(attr);
  if (!attr_id.ok()) return hits;  // unknown attribute: matches nothing
  auto parsed = Value::Parse(vocab.AttributeType(*attr_id), value);
  if (!parsed.ok()) return hits;  // untypable value: matches nothing
  const std::vector<EntryId>* posting =
      snapshot.ValuePosting(*attr_id, *parsed);
  if (posting != nullptr) {
    for (EntryId id : *posting) collect(id);
  }
  return hits;
}

Result<std::vector<SnapshotPageHit>> SnapshotSearchPage(
    const DirectorySnapshot& snapshot, const Vocabulary& vocab,
    std::string_view base_dn, uint8_t scope, std::string_view filter,
    uint64_t from_label, size_t limit) {
  LDAPBOUND_ASSIGN_OR_RETURN(
      std::vector<EntryId> ids,
      SnapshotSearch(snapshot, vocab, base_dn, scope, filter));
  std::vector<SnapshotPageHit> hits;
  hits.reserve(ids.size());
  for (EntryId id : ids) {
    uint64_t label = snapshot.index.labels.Get(id, 0);
    if (label < from_label) continue;
    hits.push_back(SnapshotPageHit{label, id});
  }
  // Ascending label = stable preorder within this snapshot; the scan
  // position survives across pages because the snapshot (and so its
  // labels) is immutable.
  std::sort(hits.begin(), hits.end(),
            [](const SnapshotPageHit& a, const SnapshotPageHit& b) {
              return a.label < b.label;
            });
  if (hits.size() > limit) hits.resize(limit);
  return hits;
}

Result<std::string> SnapshotEntryDn(const DirectorySnapshot& snapshot,
                                    EntryId id) {
  std::string dn;
  for (EntryId cur = id; cur != kInvalidEntryId; cur = snapshot.parent(cur)) {
    const std::string* payload = snapshot.EntryPayload(cur);
    if (payload == nullptr) {
      return Status::Internal("snapshot payload missing for entry " +
                              std::to_string(cur));
    }
    WireCursor cursor(*payload);
    LDAPBOUND_ASSIGN_OR_RETURN(std::string_view rdn, cursor.GetString());
    if (!dn.empty()) dn += ",";
    dn.append(rdn.data(), rdn.size());
  }
  return dn;
}

}  // namespace ldapbound
