#include "server/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/legality_checker.h"
#include "ldap/dn.h"
#include "ldap/search.h"
#include "server/directory_server.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace ldapbound {

namespace {

/// How often the reactor wakes with no events: idle sweeping and drain
/// progress both ride on this.
constexpr int kEpollTimeoutMs = 250;

/// How long Stop() lets pending responses flush before force-closing.
constexpr auto kDrainGrace = std::chrono::milliseconds(500);

Status Errno(const char* what) {
  return Status::Internal(std::string("net: ") + what + ": " +
                          std::strerror(errno));
}

/// Slow-op / span naming for wire requests (span names must be literals:
/// Tracer::Event stores the pointer).
const char* WireOpName(WireOp op) {
  switch (op) {
    case WireOp::kPing:
      return "wire.ping";
    case WireOp::kSearch:
      return "wire.search";
    case WireOp::kAdd:
      return "wire.add";
    case WireOp::kDelete:
      return "wire.delete";
    case WireOp::kValidate:
      return "wire.validate";
    default:
      return "wire.op";
  }
}

const char* WireOutcomeName(WireCode code) {
  switch (code) {
    case WireCode::kOk:
      return "ok";
    case WireCode::kInternal:
    case WireCode::kProtocolError:
      return "error";
    default:
      return "rejected";
  }
}

/// The pre-encoded frame a connection refused at the door receives.
const std::string& ShedFrame() {
  static const std::string* frame = [] {
    WireResponse shed;
    shed.op = WireOp::kShed;
    shed.request_id = 0;
    shed.code = WireCode::kOverloaded;
    shed.retryable = true;
    shed.message = "connection refused: at the connection limit or "
                   "draining; retry with backoff";
    return new std::string(EncodeResponseFrame(shed));
  }();
  return *frame;
}

}  // namespace

/// Own atomics (for stats()) mirrored into ldapbound_net_* metric
/// families so the monitor's /metrics sees the serving path.
struct NetServer::Counters {
  Counters()
      : m_accepted(MetricRegistry::Default().GetCounter(
            "ldapbound_net_connections_total",
            "Wire connections accepted")),
        m_shed_conns(MetricRegistry::Default().GetCounter(
            "ldapbound_net_connections_shed_total",
            "Wire connections refused at the connection limit or while "
            "draining")),
        m_shed_ops(MetricRegistry::Default().GetCounter(
            "ldapbound_net_ops_shed_total",
            "Wire requests shed at the dispatch-queue bound")),
        m_frames_in(MetricRegistry::Default().GetCounter(
            "ldapbound_net_frames_in_total", "Wire request frames parsed")),
        m_frames_out(MetricRegistry::Default().GetCounter(
            "ldapbound_net_frames_out_total",
            "Wire response frames queued")),
        m_protocol_errors(MetricRegistry::Default().GetCounter(
            "ldapbound_net_protocol_errors_total",
            "Malformed wire frames (connection closed)")),
        m_idle_closed(MetricRegistry::Default().GetCounter(
            "ldapbound_net_idle_closed_total",
            "Wire connections reaped by the idle timeout")),
        m_active(MetricRegistry::Default().GetGauge(
            "ldapbound_net_connections_active",
            "Currently open wire connections")),
        m_ops_ok(MetricRegistry::Default().GetCounter(
            "ldapbound_net_ops_total", "Wire requests executed, by outcome",
            "outcome=\"ok\"")),
        m_ops_rejected(MetricRegistry::Default().GetCounter(
            "ldapbound_net_ops_total", "Wire requests executed, by outcome",
            "outcome=\"rejected\"")),
        h_epoll_batch(MetricRegistry::Default().GetHistogram(
            "ldapbound_net_epoll_wakeup_events",
            "Ready events per epoll_wait wakeup (event-carrying wakeups "
            "only)")),
        h_completion_batch(MetricRegistry::Default().GetHistogram(
            "ldapbound_net_completion_batch",
            "Worker completions drained per eventfd wakeup")),
        g_queue_depth(MetricRegistry::Default().GetGauge(
            "ldapbound_net_dispatch_queue_depth",
            "Decoded wire requests waiting for a worker")),
        h_out_hwm(MetricRegistry::Default().GetHistogram(
            "ldapbound_net_conn_out_hwm_bytes",
            "Per-connection write-buffer high-watermark, observed at "
            "connection close")),
        stage_dispatch(StageHistogram("dispatch")),
        stage_queue_wait(StageHistogram("queue_wait")),
        stage_execute(StageHistogram("execute")),
        stage_commit_wait(StageHistogram("commit_wait")),
        stage_completion(StageHistogram("completion")),
        stage_write_back(StageHistogram("write_back")),
        stage_total(StageHistogram("total")) {}

  static Histogram& StageHistogram(const char* stage) {
    return MetricRegistry::Default().GetHistogram(
        "ldapbound_wire_stage_ns",
        "Per-stage wire request latency decomposition (DESIGN.md §13): "
        "dispatch = decode to enqueue, queue_wait = enqueue to worker, "
        "execute = worker execution (commit_wait = its WAL durability "
        "share), completion = execute done to response queued, write_back "
        "= response queued to bytes flushed, total = decode to flush",
        MakeLabel("stage", stage));
  }

  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> active{0};
  std::atomic<uint64_t> shed_conns{0};
  std::atomic<uint64_t> shed_ops{0};
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> frames_out{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> idle_closed{0};
  std::atomic<uint64_t> ops_ok{0};
  std::atomic<uint64_t> ops_rejected{0};

  Counter& m_accepted;
  Counter& m_shed_conns;
  Counter& m_shed_ops;
  Counter& m_frames_in;
  Counter& m_frames_out;
  Counter& m_protocol_errors;
  Counter& m_idle_closed;
  Gauge& m_active;
  Counter& m_ops_ok;
  Counter& m_ops_rejected;
  Histogram& h_epoll_batch;
  Histogram& h_completion_batch;
  Gauge& g_queue_depth;
  Histogram& h_out_hwm;
  Histogram& stage_dispatch;
  Histogram& stage_queue_wait;
  Histogram& stage_execute;
  Histogram& stage_commit_wait;
  Histogram& stage_completion;
  Histogram& stage_write_back;
  Histogram& stage_total;
};

Result<std::unique_ptr<NetServer>> NetServer::Start(
    DirectoryServer* server, const NetServerOptions& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("net: bad bind address '" +
                                   options.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, 1024) != 0) {
    Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }

  // The read side of the serving path is snapshot-only; make sure the
  // server publishes them (idempotent, must happen before traffic).
  server->EnableMvcc();

  std::unique_ptr<NetServer> net(
      new NetServer(server, options, fd, ntohs(bound.sin_port)));
  net->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  net->wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (net->epoll_fd_ < 0 || net->wake_fd_ < 0) {
    return Errno("epoll/eventfd");  // fds closed by the destructor
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(net->epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0 ) {
    return Errno("epoll_ctl(listen)");
  }
  epoll_event wake{};
  wake.events = EPOLLIN;
  wake.data.fd = net->wake_fd_;
  if (::epoll_ctl(net->epoll_fd_, EPOLL_CTL_ADD, net->wake_fd_, &wake) != 0) {
    return Errno("epoll_ctl(wake)");
  }

  size_t workers = options.worker_threads == 0 ? 1 : options.worker_threads;
  for (size_t i = 0; i < workers; ++i) {
    net->workers_.emplace_back([raw = net.get()]() { raw->WorkerLoop(); });
  }
  net->reactor_ = std::thread([raw = net.get()]() { raw->ReactorLoop(); });
  return net;
}

NetServer::NetServer(DirectoryServer* server, const NetServerOptions& options,
                     int listen_fd, uint16_t port)
    : server_(server),
      options_(options),
      listen_fd_(listen_fd),
      port_(port),
      counters_(std::make_unique<Counters>()) {}

NetServer::~NetServer() {
  Stop();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  ::close(listen_fd_);
}

void NetServer::Stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  // Workers drain what is queued, post their completions, and exit;
  // joining them first means the reactor's final drain sees everything.
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  if (reactor_.joinable()) reactor_.join();
}

NetServer::Stats NetServer::stats() const {
  Stats s;
  s.connections_accepted =
      counters_->accepted.load(std::memory_order_relaxed);
  s.connections_active = counters_->active.load(std::memory_order_relaxed);
  s.connections_shed = counters_->shed_conns.load(std::memory_order_relaxed);
  s.ops_shed = counters_->shed_ops.load(std::memory_order_relaxed);
  s.frames_in = counters_->frames_in.load(std::memory_order_relaxed);
  s.frames_out = counters_->frames_out.load(std::memory_order_relaxed);
  s.protocol_errors =
      counters_->protocol_errors.load(std::memory_order_relaxed);
  s.idle_closed = counters_->idle_closed.load(std::memory_order_relaxed);
  s.ops_ok = counters_->ops_ok.load(std::memory_order_relaxed);
  s.ops_rejected = counters_->ops_rejected.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.dispatch_queue_depth = queue_.size();
  }
  return s;
}

void NetServer::ReactorLoop() {
  std::chrono::steady_clock::time_point drain_start{};
  bool draining_out = false;
  for (;;) {
    epoll_event events[128];
    int n = ::epoll_wait(epoll_fd_, events, 128, kEpollTimeoutMs);
    if (n < 0 && errno != EINTR) return;  // epoll fd died: nothing to do
    if (n > 0) {
      counters_->h_epoll_batch.Observe(static_cast<uint64_t>(n));
    }

    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this batch
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        CloseConn(fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!FlushWrites(fd, it->second)) {
          CloseConn(fd);
          continue;
        }
        // FlushWrites may close a finished connection; re-find.
        it = conns_.find(fd);
        if (it == conns_.end()) continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        HandleReadable(fd, it->second);
      }
    }

    DrainCompletions();
    SweepIdle();

    if (stopping_.load(std::memory_order_acquire)) {
      // Workers are joined before the reactor is woken for shutdown, so
      // every completion has been posted by now; let queued responses
      // flush within the grace period, then force-close.
      if (!draining_out) {
        draining_out = true;
        drain_start = std::chrono::steady_clock::now();
      }
      // A conn still owes bytes, or still owes a response a worker has
      // not posted yet (Stop() joins workers before waking the reactor,
      // but the reactor can see stopping_ on its own timeout first).
      bool pending = false;
      for (auto& [fd, conn] : conns_) {
        if (conn.out_off < conn.out.size() || conn.inflight > 0) {
          pending = true;
        }
      }
      if (!pending ||
          std::chrono::steady_clock::now() - drain_start > kDrainGrace) {
        std::vector<int> fds;
        fds.reserve(conns_.size());
        for (auto& [fd, conn] : conns_) fds.push_back(fd);
        for (int fd : fds) CloseConn(fd);
        return;
      }
    }
  }
}

void NetServer::HandleAccept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or the listen socket is gone
    }
    bool draining =
        stopping_.load(std::memory_order_acquire) ||
        server_->health_state() == HealthState::kDraining;
    if (draining || conns_.size() >= options_.max_connections) {
      // Shed at the door: a retryable frame, then close. Best-effort —
      // the client may already be gone, which is fine.
      (void)!::send(fd, ShedFrame().data(), ShedFrame().size(),
                    MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
      counters_->shed_conns.fetch_add(1, std::memory_order_relaxed);
      counters_->m_shed_conns.Increment();
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.gen = next_gen_++;
    conn.last_activity = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    counters_->accepted.fetch_add(1, std::memory_order_relaxed);
    counters_->active.store(conns_.size(), std::memory_order_relaxed);
    counters_->m_accepted.Increment();
    counters_->m_active.Set(static_cast<int64_t>(conns_.size()));
  }
}

void NetServer::HandleReadable(int fd, Conn& conn) {
  char buf[16 * 1024];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(fd);  // ECONNRESET and friends
      return;
    }
    // EOF: the peer half-closed its send side. Responses still owed (a
    // client may legitimately shutdown(SHUT_WR) after its last request
    // and read the answers) keep the connection; otherwise close now.
    conn.read_closed = true;
    break;
  }
  if (!ParseAndDispatch(fd, conn)) {
    // Protocol error: the error frame is queued; stop reading, flush.
    conn.read_closed = true;
  }
  if (!FlushWrites(fd, conn)) {
    CloseConn(fd);
    return;
  }
  // FlushWrites closes a connection that finished (closing, or EOF with
  // nothing owed); only a still-open one needs its epoll mask refreshed.
  if (conns_.find(fd) != conns_.end()) UpdateEpoll(fd, conn);
}

bool NetServer::ParseAndDispatch(int fd, Conn& conn) {
  size_t consumed_total = 0;
  bool ok = true;
  for (;;) {
    WireRequest request;
    size_t consumed = 0;
    std::string_view rest =
        std::string_view(conn.in).substr(consumed_total);
    Result<bool> extracted =
        ExtractFrame(rest, options_.max_frame_payload, &request, &consumed);
    if (!extracted.ok()) {
      counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      counters_->m_protocol_errors.Increment();
      WireResponse error;
      error.op = WireOp::kShed;
      error.request_id = 0;
      error.code = WireCode::kProtocolError;
      error.message = extracted.status().message();
      QueueResponse(fd, conn, error);
      conn.closing = true;
      ok = false;
      break;
    }
    if (!*extracted) break;  // partial frame: wait for more bytes
    uint64_t decoded_ns = options_.stage_metrics ? Tracer::NowNs() : 0;
    counters_->frames_in.fetch_add(1, std::memory_order_relaxed);
    counters_->m_frames_in.Increment();

    if (request.op == WireOp::kPing) {
      WireResponse pong;
      pong.op = WireOp::kPing;
      pong.request_id = request.request_id;
      QueueResponse(fd, conn, pong);
      counters_->ops_ok.fetch_add(1, std::memory_order_relaxed);
    } else if (stopping_.load(std::memory_order_acquire)) {
      WireResponse unavailable;
      unavailable.op = request.op;
      unavailable.request_id = request.request_id;
      unavailable.code = WireCode::kUnavailable;
      unavailable.retryable = true;
      unavailable.message = "server is draining";
      QueueResponse(fd, conn, unavailable);
    } else {
      bool shed = false;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (options_.max_pending_ops > 0 &&
            queue_.size() >= options_.max_pending_ops) {
          shed = true;
        } else {
          WorkItem item;
          item.fd = fd;
          item.gen = conn.gen;
          item.op = request.op;
          item.request_id = request.request_id;
          item.body = std::string(request.body);
          if (options_.stage_metrics) {
            item.stages.ns[static_cast<size_t>(WireStage::kDecoded)] =
                decoded_ns;
            item.stages.Mark(WireStage::kEnqueued);
          }
          queue_.push_back(std::move(item));
          counters_->g_queue_depth.Set(static_cast<int64_t>(queue_.size()));
          conn.inflight++;
        }
      }
      if (shed) {
        counters_->shed_ops.fetch_add(1, std::memory_order_relaxed);
        counters_->m_shed_ops.Increment();
        WireResponse overloaded;
        overloaded.op = request.op;
        overloaded.request_id = request.request_id;
        overloaded.code = WireCode::kOverloaded;
        overloaded.retryable = true;
        overloaded.message =
            "shed at the wire: dispatch queue is full; retry with backoff";
        QueueResponse(fd, conn, overloaded);
      } else {
        queue_cv_.notify_one();
      }
    }
    consumed_total += consumed;
  }
  if (consumed_total > 0) conn.in.erase(0, consumed_total);
  return ok;
}

void NetServer::QueueResponse(int fd, Conn& conn,
                              const WireResponse& response) {
  // Append-only: the caller flushes once after the whole parse batch.
  // Flushing here could close (and erase) the Conn mid-iteration.
  (void)fd;
  std::string frame = EncodeResponseFrame(response);
  conn.bytes_queued += frame.size();
  conn.out += frame;
  size_t outstanding = conn.out.size() - conn.out_off;
  if (outstanding > conn.out_hwm) conn.out_hwm = outstanding;
  counters_->frames_out.fetch_add(1, std::memory_order_relaxed);
  counters_->m_frames_out.Increment();
}

bool NetServer::FlushWrites(int fd, Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    ssize_t n = ::send(fd, conn.out.data() + conn.out_off,
                       conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        FinalizeFlushed(conn);
        return true;
      }
      return false;  // EPIPE / ECONNRESET: the peer is gone
    }
    conn.out_off += static_cast<size_t>(n);
    conn.bytes_flushed += static_cast<uint64_t>(n);
    conn.last_activity = std::chrono::steady_clock::now();
  }
  conn.out.clear();
  conn.out_off = 0;
  FinalizeFlushed(conn);
  if (conn.closing || (conn.read_closed && conn.inflight == 0)) {
    CloseConn(fd);
    return true;  // closed cleanly, not an error; caller must re-find
  }
  return true;
}

void NetServer::FinalizeFlushed(Conn& conn) {
  while (!conn.pending_flush.empty() &&
         conn.pending_flush.front().end_offset <= conn.bytes_flushed) {
    StageRecord rec = std::move(conn.pending_flush.front());
    conn.pending_flush.pop_front();
    rec.stages.Mark(WireStage::kBytesFlushed);

    auto at = [&rec](WireStage s) { return rec.stages.at(s); };
    auto span_ns = [&at](WireStage a, WireStage b) -> uint64_t {
      // A stage pair contributes only when the op crossed both
      // boundaries in order (clock is monotonic; 0 = never crossed).
      if (at(a) == 0 || at(b) < at(a)) return 0;
      return at(b) - at(a);
    };
    struct StageSpan {
      const char* name;  // literal: Tracer::Event stores the pointer
      Histogram& hist;
      WireStage from;
      WireStage to;
    };
    const StageSpan kSpans[] = {
        {"wire.dispatch", counters_->stage_dispatch, WireStage::kDecoded,
         WireStage::kEnqueued},
        {"wire.queue_wait", counters_->stage_queue_wait, WireStage::kEnqueued,
         WireStage::kWorkerStart},
        {"wire.execute", counters_->stage_execute, WireStage::kWorkerStart,
         WireStage::kExecuteDone},
        {"wire.commit_wait", counters_->stage_commit_wait,
         WireStage::kCommitEnqueued, WireStage::kCommitDurable},
        {"wire.completion", counters_->stage_completion,
         WireStage::kExecuteDone, WireStage::kResponseQueued},
        {"wire.write_back", counters_->stage_write_back,
         WireStage::kResponseQueued, WireStage::kBytesFlushed},
        {"wire.total", counters_->stage_total, WireStage::kDecoded,
         WireStage::kBytesFlushed},
    };

    SlowOpLog* log = server_->mutable_slow_ops();
    // Only pay for the SlowOp's strings and span vector when the request
    // is slow enough to displace something in the ring — at tens of
    // thousands of ops/s, building a discarded record for every request
    // is measurable reactor-thread overhead. The floor is advisory (a
    // concurrent Record can raise it); Record re-checks under the mutex.
    uint64_t total_ns = span_ns(WireStage::kDecoded, WireStage::kBytesFlushed);
    const bool offer = log != nullptr && total_ns >= log->retention_floor_ns();
    SlowOp op;
    for (const StageSpan& span : kSpans) {
      if (at(span.from) == 0 || at(span.to) == 0) continue;
      uint64_t dur = span_ns(span.from, span.to);
      span.hist.Observe(dur);
      if (offer) {
        Tracer::Event event;
        event.name = span.name;
        event.tid = 0;
        event.start_ns = at(span.from);
        event.dur_ns = dur;
        event.op_id = rec.request_id;
        op.spans.push_back(event);
      }
    }
    if (!offer) continue;
    // Offer the request to the slow-op ring: the keep-the-slowest policy
    // and its min-duration floor decide retention, so /slowz explains
    // tail wire requests with their full stage breakdown.
    op.op = WireOpName(rec.op);
    op.target = "wire request " + std::to_string(rec.request_id);
    op.outcome = WireOutcomeName(rec.code);
    op.wire_request_id = rec.request_id;
    op.duration_ns = total_ns;
    uint64_t now_unix_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    uint64_t dur_ms = op.duration_ns / 1000000;
    op.start_unix_ms = now_unix_ms > dur_ms ? now_unix_ms - dur_ms : 0;
    log->Record(std::move(op));
  }
}

void NetServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  counters_->h_out_hwm.Observe(it->second.out_hwm);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
  counters_->active.store(conns_.size(), std::memory_order_relaxed);
  counters_->m_active.Set(static_cast<int64_t>(conns_.size()));
}

void NetServer::SweepIdle() {
  if (options_.idle_timeout_ms == 0) return;
  auto now = std::chrono::steady_clock::now();
  auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<int> idle;
  for (auto& [fd, conn] : conns_) {
    if (conn.inflight == 0 && now - conn.last_activity > limit) {
      idle.push_back(fd);
    }
  }
  for (int fd : idle) {
    counters_->idle_closed.fetch_add(1, std::memory_order_relaxed);
    counters_->m_idle_closed.Increment();
    CloseConn(fd);
  }
}

void NetServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  if (!batch.empty()) {
    counters_->h_completion_batch.Observe(batch.size());
  }
  for (Completion& completion : batch) {
    auto it = conns_.find(completion.fd);
    // The fd may have been closed and reused since the request was
    // dispatched; the generation check keeps a stale response from
    // reaching the wrong client.
    if (it == conns_.end() || it->second.gen != completion.gen) continue;
    Conn& conn = it->second;
    conn.inflight--;
    conn.bytes_queued += completion.bytes.size();
    conn.out += completion.bytes;
    size_t outstanding = conn.out.size() - conn.out_off;
    if (outstanding > conn.out_hwm) conn.out_hwm = outstanding;
    if (options_.stage_metrics) {
      completion.stages.Mark(WireStage::kResponseQueued);
      StageRecord rec;
      rec.end_offset = conn.bytes_queued;
      rec.op = completion.op;
      rec.request_id = completion.request_id;
      rec.code = completion.code;
      rec.stages = completion.stages;
      conn.pending_flush.push_back(std::move(rec));
    }
    counters_->frames_out.fetch_add(1, std::memory_order_relaxed);
    counters_->m_frames_out.Increment();
    if (!FlushWrites(completion.fd, conn)) {
      CloseConn(completion.fd);
      continue;
    }
    if (conns_.find(completion.fd) != conns_.end()) {
      UpdateEpoll(completion.fd, conn);
    }
  }
}

void NetServer::UpdateEpoll(int fd, Conn& conn) {
  epoll_event ev{};
  ev.events = 0;
  if (!conn.read_closed && !conn.closing) ev.events |= EPOLLIN;
  if (conn.out_off < conn.out.size()) ev.events |= EPOLLOUT;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void NetServer::WorkerLoop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) return;  // stopping and drained
      item = std::move(queue_.front());
      queue_.pop_front();
      counters_->g_queue_depth.Set(static_cast<int64_t>(queue_.size()));
    }
    WireResponse response;
    if (options_.stage_metrics) {
      item.stages.Mark(WireStage::kWorkerStart);
      // The scope lets the layers below (admission verdict, group-commit
      // enqueue, WAL durability) stamp this request without plumbing.
      WireStageScope scope(&item.stages);
      response = Execute(item);
      item.stages.Mark(WireStage::kExecuteDone);
    } else {
      response = Execute(item);
    }
    if (response.ok()) {
      counters_->ops_ok.fetch_add(1, std::memory_order_relaxed);
      counters_->m_ops_ok.Increment();
    } else {
      counters_->ops_rejected.fetch_add(1, std::memory_order_relaxed);
      counters_->m_ops_rejected.Increment();
    }
    Completion completion;
    completion.fd = item.fd;
    completion.gen = item.gen;
    completion.bytes = EncodeResponseFrame(response);
    completion.op = item.op;
    completion.request_id = item.request_id;
    completion.code = response.code;
    completion.stages = item.stages;
    PostCompletion(std::move(completion));
  }
}

void NetServer::PostCompletion(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(completion));
  }
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

WireResponse NetServer::Execute(const WorkItem& item) {
  WireResponse response;
  response.op = item.op;
  response.request_id = item.request_id;

  auto fail = [&](const Status& status) {
    response.code = WireCodeFromStatus(status);
    response.retryable = status.retryable();
    response.message = status.ToString();
    return response;
  };

  switch (item.op) {
    case WireOp::kSearch: {
      WireCursor cursor(item.body);
      auto base = cursor.GetString();
      if (!base.ok()) return fail(base.status());
      auto scope = cursor.GetU8();
      if (!scope.ok()) return fail(scope.status());
      auto filter = cursor.GetString();
      if (!filter.ok()) return fail(filter.status());
      PinnedSnapshot snap = server_->PinSnapshot();
      if (!snap) {
        return fail(Status::Internal("MVCC snapshots are not enabled"));
      }
      WireStageScope::MarkCurrent(WireStage::kSnapshotPinned);
      auto hits =
          SnapshotSearch(*snap, server_->vocab(), *base, *scope, *filter);
      if (!hits.ok()) return fail(hits.status());
      PutU32(response.body, static_cast<uint32_t>(hits->size()));
      for (EntryId id : *hits) PutU64(response.body, id);
      return response;
    }
    case WireOp::kAdd: {
      WireCursor cursor(item.body);
      auto dn_text = cursor.GetString();
      if (!dn_text.ok()) return fail(dn_text.status());
      auto dn = DistinguishedName::Parse(*dn_text);
      if (!dn.ok()) return fail(dn.status());
      auto nclasses = cursor.GetU16();
      if (!nclasses.ok()) return fail(nclasses.status());
      EntrySpec spec;
      for (uint16_t i = 0; i < *nclasses; ++i) {
        auto cls = cursor.GetString();
        if (!cls.ok()) return fail(cls.status());
        spec.classes.emplace_back(*cls);
      }
      auto nvalues = cursor.GetU16();
      if (!nvalues.ok()) return fail(nvalues.status());
      for (uint16_t i = 0; i < *nvalues; ++i) {
        auto attr = cursor.GetString();
        if (!attr.ok()) return fail(attr.status());
        auto value = cursor.GetString();
        if (!value.ok()) return fail(value.status());
        spec.values.emplace_back(std::string(*attr), std::string(*value));
      }
      Status status = server_->Add(*dn, std::move(spec));
      if (!status.ok()) return fail(status);
      return response;
    }
    case WireOp::kDelete: {
      WireCursor cursor(item.body);
      auto dn_text = cursor.GetString();
      if (!dn_text.ok()) return fail(dn_text.status());
      auto dn = DistinguishedName::Parse(*dn_text);
      if (!dn.ok()) return fail(dn.status());
      Status status = server_->Delete(*dn);
      if (!status.ok()) return fail(status);
      return response;
    }
    case WireOp::kValidate: {
      PinnedSnapshot snap = server_->PinSnapshot();
      if (!snap) {
        return fail(Status::Internal("MVCC snapshots are not enabled"));
      }
      WireStageScope::MarkCurrent(WireStage::kSnapshotPinned);
      LegalityChecker checker(server_->schema(),
                              server_->check_options());
      auto legal = checker.CheckStructureSnapshot(*snap);
      if (!legal.ok()) return fail(legal.status());
      PutU8(response.body, *legal ? 1 : 0);
      PutU64(response.body, snap->num_alive);
      PutU64(response.body, snap->version);
      return response;
    }
    default:
      return fail(Status::InvalidArgument(
          "unknown wire op " +
          std::to_string(static_cast<unsigned>(item.op))));
  }
}

Result<std::vector<EntryId>> SnapshotSearch(const DirectorySnapshot& snapshot,
                                            const Vocabulary& vocab,
                                            std::string_view base_dn,
                                            uint8_t scope,
                                            std::string_view filter) {
  if (scope > 2) {
    return Status::InvalidArgument("search: bad scope " +
                                   std::to_string(scope));
  }
  SearchScope search_scope = static_cast<SearchScope>(scope);

  // Resolve the base: walk the RDN chain root-first through the
  // snapshot's sibling-RDN index.
  EntryId base = kInvalidEntryId;
  if (!base_dn.empty()) {
    LDAPBOUND_ASSIGN_OR_RETURN(DistinguishedName dn,
                               DistinguishedName::Parse(base_dn));
    const auto& rdns = dn.rdns();
    for (size_t i = rdns.size(); i-- > 0;) {
      base = snapshot.FindChildByRdn(base, rdns[i]);
      if (base == kInvalidEntryId) {
        return Status::NotFound("search base '" + std::string(base_dn) +
                                "' does not exist");
      }
    }
  } else if (search_scope == SearchScope::kBase) {
    return Status::InvalidArgument(
        "search: base scope needs a base DN");
  }

  // Scope predicate from the order-maintenance labels.
  uint64_t base_label = 0;
  uint64_t base_end = 0;
  if (base != kInvalidEntryId) {
    base_label = snapshot.index.labels.Get(base, 0);
    base_end = snapshot.index.end_labels.Get(base, 0);
  }
  auto in_scope = [&](EntryId id) {
    switch (search_scope) {
      case SearchScope::kBase:
        return id == base;
      case SearchScope::kOneLevel:
        return snapshot.parent(id) == base;
      case SearchScope::kSubtree:
      default: {
        if (base == kInvalidEntryId) return true;
        uint64_t label = snapshot.index.labels.Get(id, 0);
        return label >= base_label && label < base_end;
      }
    }
  };

  // The filter, as a posting iteration. A name unknown to the schema or
  // a value that does not parse as the attribute's type matches nothing
  // (LDAP filter semantics), it is not an error; only a filter *shape*
  // the snapshot cannot answer is rejected.
  std::string_view f = StripWhitespace(filter);
  if (!f.empty() && f.front() == '(' && f.back() == ')') {
    f = f.substr(1, f.size() - 2);
  }
  std::vector<EntryId> hits;
  auto collect = [&](EntryId id) {
    if (snapshot.IsAlive(id) && in_scope(id)) hits.push_back(id);
  };

  if (f.empty() || EqualsIgnoreCase(f, "objectClass=*")) {
    if (snapshot.alive != nullptr) snapshot.alive->ForEach(collect);
    return hits;
  }
  size_t eq = f.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument(
        "search: unsupported filter '" + std::string(filter) +
        "' (the wire path answers \"\", \"(objectClass=C)\" and "
        "\"(attr=value)\" filters)");
  }
  std::string_view attr = StripWhitespace(f.substr(0, eq));
  std::string_view value = f.substr(eq + 1);
  if (value == "*") {
    return Status::InvalidArgument(
        "search: presence filters need entry payloads, which snapshots "
        "do not carry");
  }
  if (EqualsIgnoreCase(attr, "objectClass")) {
    auto cls = vocab.FindClass(value);
    if (!cls.ok()) return hits;  // unknown class: no entry has it
    const EntrySet* members = snapshot.ClassSet(*cls);
    if (members != nullptr) members->ForEach(collect);
    return hits;
  }
  auto attr_id = vocab.FindAttribute(attr);
  if (!attr_id.ok()) return hits;  // unknown attribute: matches nothing
  auto parsed = Value::Parse(vocab.AttributeType(*attr_id), value);
  if (!parsed.ok()) return hits;  // untypable value: matches nothing
  const std::vector<EntryId>* posting =
      snapshot.ValuePosting(*attr_id, *parsed);
  if (posting != nullptr) {
    for (EntryId id : *posting) collect(id);
  }
  return hits;
}

}  // namespace ldapbound
