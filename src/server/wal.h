#ifndef LDAPBOUND_SERVER_WAL_H_
#define LDAPBOUND_SERVER_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace ldapbound {

/// Durable write-ahead changelog.
///
/// The DirectoryServer invariant — every externally visible state is a
/// legal instance — is only worth anything if "visible" survives a crash:
/// a committed-and-acknowledged transaction that evaporates with the
/// process is the one failure the rollback discipline cannot see. The WAL
/// closes that gap: each committed mutation group is serialized as an LDIF
/// change record (the Changelog payload format) into a length-prefixed,
/// CRC32C-framed record, appended to a segment file and fsync'd *before*
/// the commit is acknowledged.
///
/// On-disk layout of a WAL directory:
///
///   schema.lbs               canonical bounding-schema text
///   wal-<seq16>.log          segment files; <seq16> = first commit
///                            sequence the segment holds, 16 hex digits
///   snap-<seq16>.ldif        point-in-time snapshot covering commits
///                            1..<seq16> (log-truncation compaction)
///   *.tmp                    in-flight snapshot writes; ignored and
///                            garbage-collected
///
/// Segment format: a 16-byte header (8-byte magic "LDBWAL1\n" + u64 LE
/// first sequence), then frames of
///
///   u32 LE payload length | u64 LE commit sequence | u32 LE masked CRC32C
///   | payload bytes
///
/// where the CRC covers the 12 leading header bytes plus the payload and
/// is stored masked (util/crc32c.h) so checksummed frames embedding CRCs
/// stay well-conditioned.
///
/// Recovery rule (implemented by ReplayWal): frames are replayed in
/// sequence order; a frame that extends past end-of-file, or whose CRC
/// fails *and* which is the final frame of the final segment, is a torn
/// tail — the segment is truncated back to the last valid frame and
/// recovery succeeds (the lost frame was never acknowledged). A CRC
/// mismatch or sequence gap anywhere else is mid-log corruption and
/// recovery fails with a diagnostic naming the segment, byte offset and
/// reason.
struct WalOptions {
  /// Rotate to a fresh segment once the current one exceeds this size.
  size_t segment_bytes = 1 << 20;

  /// fsync each appended frame before the commit is acknowledged. Turning
  /// this off trades the durability guarantee for commit latency (the
  /// bench_wal axis); recovery still works up to whatever the OS flushed.
  bool sync = true;

  /// Group commit: batch up to this many concurrently submitted commits
  /// into one frame group made durable by a single fsync (leader/follower
  /// handoff in DirectoryServer's commit queue). Every commit is still
  /// acknowledged only after *its* group's fsync, so the durability
  /// contract is unchanged — the fsync cost is amortized over the batch.
  /// Values <= 1 disable batching (every commit appends and syncs alone).
  size_t group_commit_max_batch = 1;

  /// How long a group-commit leader holds the batch open waiting for
  /// followers to arrive, in microseconds, once at least one commit is
  /// pending. 0 flushes immediately (batching still happens when commits
  /// are already queued).
  uint32_t group_commit_hold_us = 200;
};

/// What recovery found; filled by DirectoryServer::Recover.
struct WalRecoveryReport {
  uint64_t snapshot_seq = 0;      ///< commits covered by the loaded snapshot
  size_t snapshot_entries = 0;    ///< entries bulk-loaded from it
  size_t segments_scanned = 0;
  size_t frames_replayed = 0;
  uint64_t last_seq = 0;          ///< last commit in the recovered state
  bool torn_tail_truncated = false;
  std::string torn_tail_segment;  ///< segment that was truncated
  uint64_t torn_tail_offset = 0;  ///< new size of that segment
};

/// One segment file, named by the first commit sequence it holds.
struct WalSegment {
  std::string path;
  uint64_t first_seq = 0;
};

/// A scan of a WAL directory (no file contents except the schema).
struct WalDirListing {
  std::string dir;
  std::string schema_text;  ///< empty when schema.lbs is absent
  /// Newest snapshot (path, covered sequence), if any.
  std::optional<std::pair<std::string, uint64_t>> snapshot;
  std::vector<WalSegment> segments;  ///< sorted by first_seq
};

/// Scans `dir`. A missing directory yields an empty listing (not an
/// error); malformed file names are ignored.
Result<WalDirListing> ListWalDir(const std::string& dir);

/// Replays every frame with sequence > `after_seq` from the listed
/// segments, calling `apply(seq, payload)` in sequence order. Enforces the
/// recovery rule documented above: torn tails of the final segment are
/// truncated in place (and recorded in `report`); mid-log corruption and
/// sequence gaps fail with a precise diagnostic. `report` must not be
/// null.
Status ReplayWal(const WalDirListing& listing, uint64_t after_seq,
                 const std::function<Status(uint64_t, std::string_view)>& apply,
                 WalRecoveryReport* report);

/// The append side. Owned by a DirectoryServer; one writer per directory
/// (the server's single-writer contract extends to its WAL).
///
/// Failpoints wired through this class (util/failpoint.h):
///   "wal.write"            before appending a frame's bytes
///   "wal.write.enospc"     same site, but injects the ENOSPC (disk-full)
///                          status the real out-of-space write would produce
///   "wal.fsync"            before the durability fsync of a frame
///   "wal.fsync.enospc"     disk-full variant of the fsync site
///   "wal.rotate"           before a segment rotation creates the next file
///   "wal.rename"           before a snapshot's tmp-file is renamed into place
///   "wal.resync.snapshot"  before a post-failure resync writes its snapshot
///   "wal.resync.enospc"    disk-full variant of the resync site (the probe
///                          retries while the disk stays full)
class WriteAheadLog {
 public:
  static constexpr char kSchemaFileName[] = "schema.lbs";

  /// Opens `dir` for appending, creating it (and a first segment) when
  /// new. `next_seq` is the sequence number the next Append will carry —
  /// 1 for a fresh log, `report.last_seq + 1` after recovery.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& dir,
                                                     const WalOptions& options,
                                                     uint64_t next_seq);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one commit's payload as a frame and (per options.sync) makes
  /// it durable. On OK the commit may be acknowledged. Rotates segments as
  /// needed.
  Status Append(std::string_view payload);

  /// Appends `payloads` as consecutive frames (one commit sequence each)
  /// with a single write and a single fsync — the group-commit primitive.
  /// On OK every commit in the group may be acknowledged; on error none
  /// may (the durable prefix ends somewhere inside the group, and none of
  /// its frames were acknowledged). Rotation is checked once, before the
  /// group, so a group may overshoot segment_bytes (the threshold is
  /// soft).
  Status AppendGroup(const std::vector<std::string_view>& payloads);

  /// Sequence the next Append will carry.
  uint64_t next_seq() const { return next_seq_; }
  /// Last sequence made durable (0 when none).
  uint64_t last_sequence() const { return next_seq_ - 1; }
  const std::string& dir() const { return dir_; }
  const WalOptions& options() const { return options_; }

  /// Log-truncation compaction: writes `snapshot_ldif` as a point-in-time
  /// snapshot covering every appended commit (tmp file + fsync + rename +
  /// directory fsync), rotates to a fresh segment, then deletes the
  /// segments and snapshots the new snapshot supersedes. Crash-safe at
  /// every step: an unrenamed .tmp is ignored by recovery, and stale
  /// segments left by a crash after the rename are skipped (their frames
  /// are ≤ the snapshot sequence).
  Status Compact(std::string_view snapshot_ldif);

  /// Post-failure resync (the recovery probe of DESIGN.md §11): after a
  /// failed Append/AppendGroup the in-memory directory is ahead of the
  /// durable log, and the current segment fd may be poisoned (a failed
  /// fsync makes the kernel's page-cache state untrustworthy). This writes
  /// `snapshot_ldif` — the *current in-memory state*, which supersedes
  /// everything the log holds including any torn frames of the failed
  /// group — as a durable snapshot, opens a fresh segment on a fresh fd,
  /// and garbage-collects the old segments. Unlike Compact it never
  /// fsyncs the old segment. On OK the log is writable again and durable
  /// state == in-memory state; on error (e.g. the disk is still full) the
  /// log stays failed and the probe retries with backoff.
  Status ResyncFromSnapshot(std::string_view snapshot_ldif);

  static std::string SegmentFileName(uint64_t first_seq);
  static std::string SnapshotFileName(uint64_t through_seq);

 private:
  WriteAheadLog(std::string dir, const WalOptions& options, uint64_t next_seq)
      : dir_(std::move(dir)), options_(options), next_seq_(next_seq) {}

  Status OpenSegment(uint64_t first_seq, bool create);
  Status RotateIfNeeded();
  Status SyncSegment();
  Status DeleteObsolete(uint64_t snapshot_seq);

  std::string dir_;
  WalOptions options_;
  uint64_t next_seq_ = 1;
  int fd_ = -1;
  std::string segment_path_;
  uint64_t segment_first_seq_ = 0;
  size_t segment_bytes_ = 0;  ///< current segment size including header
};

/// Durably writes `text` to `path` via tmp file + fsync + rename +
/// directory fsync. Shared by the schema file and snapshot writers.
Status AtomicWriteFile(const std::string& path, std::string_view text);

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_WAL_H_
