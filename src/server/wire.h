#ifndef LDAPBOUND_SERVER_WIRE_H_
#define LDAPBOUND_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "model/entry_set.h"
#include "util/result.h"
#include "util/status.h"

namespace ldapbound {

/// The wire protocol of the serving path (DESIGN.md §12): length-prefixed
/// binary frames over a byte stream. Every frame is
///
///   u32 payload_len (little-endian) | payload[payload_len]
///   payload := u8 op | u64 request_id | body
///
/// Client→server frames are requests, server→client frames are responses;
/// a response echoes the request's op and request_id, so clients may
/// pipeline requests and match responses by id. Strings are u32 length +
/// bytes (no terminator). A frame whose payload exceeds the configured
/// maximum (kMaxFramePayload by default) is a protocol error and closes
/// the connection — the length prefix is attacker-controlled input and
/// must never size an allocation unchecked.
///
/// Request bodies:
///   kPing      (empty)
///   kSearch    str base_dn | u8 scope (0 base, 1 onelevel, 2 subtree) |
///              str filter — "" matches everything; "(attr=value)" is an
///              equality filter ("objectClass=C" selects class members)
///   kAdd       str dn | u16 nclasses | nclasses × str |
///              u16 nvalues | nvalues × (str attr, str value)
///   kDelete    str dn
///   kValidate  (empty)
///   kSearchEntries
///              str base_dn | u8 scope | str filter | u32 page_size |
///              str cookie — an empty cookie opens a new snapshot-pinned
///              cursor; a non-empty cookie (opaque bytes from the prior
///              page's response) continues it. The paged scan stays on
///              the snapshot the cursor pinned, so it is consistent even
///              while writers publish new versions.
///
/// Response bodies (after the common status header, see WireResponse):
///   kSearch    u32 count | count × u64 entry_id — ids only, the cheap
///              existence answer
///   kSearchEntries
///              u32 count | u8 has_more | str cookie |
///              count × (u64 entry_id | str dn | u16 nclasses |
///              nclasses × str class | u16 nvalues |
///              nvalues × (str attr, str value))
///              — full entry payloads serialized from the pinned
///              snapshot, in stable preorder (order-maintenance label
///              order). has_more != 0 means the cookie continues the
///              scan; a kCursorExpired code means the cursor was reaped
///              or superseded — retry from an empty cookie.
///   kValidate  u8 structure_legal | u64 num_entries | u64 version
///   others     (empty)
enum class WireOp : uint8_t {
  kPing = 0,
  kSearch = 1,
  kAdd = 2,
  kDelete = 3,
  kValidate = 4,
  kSearchEntries = 5,
  /// Server-initiated: the connection was refused before any request was
  /// read (connection limit / drain). Carries request_id 0.
  kShed = 0xFF,
};

/// Stable on-wire status codes. Deliberately NOT the in-process
/// StatusCode numeric values: the enum there is free to grow and reorder,
/// the wire is not. kRetryableFlag in WireResponse.flags tells a client
/// whether backing off and retrying can succeed.
enum class WireCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIllegal = 4,          ///< update refused by the bounding-schema
  kUnavailable = 5,      ///< server degraded/draining; retry with backoff
  kOverloaded = 6,       ///< shed by admission control; retry with backoff
  kDeadlineExceeded = 7, ///< cancelled before side effects
  kProtocolError = 8,    ///< malformed frame; the connection is closing
  kInternal = 9,         ///< anything else (bug, I/O failure, disk full)
  kCursorExpired = 10,   ///< pagination cursor reaped/stale; restart the scan
};

WireCode WireCodeFromStatus(const Status& status);

/// The common response header plus the op-specific body bytes.
struct WireResponse {
  static constexpr uint8_t kRetryableFlag = 0x01;

  WireOp op = WireOp::kPing;
  uint64_t request_id = 0;
  WireCode code = WireCode::kOk;
  bool retryable = false;
  std::string message;  ///< empty on success
  std::string body;     ///< op-specific payload (already encoded)

  bool ok() const { return code == WireCode::kOk; }
};

/// One decoded request frame.
struct WireRequest {
  WireOp op = WireOp::kPing;
  uint64_t request_id = 0;
  std::string_view body;  ///< points into the frame buffer
};

/// Hard default cap on a frame payload; NetServerOptions can lower it.
constexpr size_t kMaxFramePayload = 4 * 1024 * 1024;

/// Little-endian primitive / string appenders (the encode side).
void PutU8(std::string& out, uint8_t v);
void PutU16(std::string& out, uint16_t v);
void PutU32(std::string& out, uint32_t v);
void PutU64(std::string& out, uint64_t v);
void PutString(std::string& out, std::string_view s);

/// Bounds-checked sequential reader over a frame body (the decode side).
/// Every getter returns kInvalidArgument on truncation instead of reading
/// past the end — wire bytes are untrusted.
class WireCursor {
 public:
  explicit WireCursor(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<std::string_view> GetString();

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Frames `op | request_id | body` with the length prefix.
std::string EncodeFrame(WireOp op, uint64_t request_id,
                        std::string_view body);

/// Client-side request builders.
std::string EncodePingRequest(uint64_t request_id);
std::string EncodeSearchRequest(uint64_t request_id, std::string_view base_dn,
                                uint8_t scope, std::string_view filter);
std::string EncodeAddRequest(
    uint64_t request_id, std::string_view dn,
    const std::vector<std::string>& classes,
    const std::vector<std::pair<std::string, std::string>>& values);
std::string EncodeDeleteRequest(uint64_t request_id, std::string_view dn);
std::string EncodeValidateRequest(uint64_t request_id);
std::string EncodeSearchEntriesRequest(uint64_t request_id,
                                       std::string_view base_dn, uint8_t scope,
                                       std::string_view filter,
                                       uint32_t page_size,
                                       std::string_view cookie);

/// Server-side response framing. `body` is the op-specific payload.
std::string EncodeResponseFrame(const WireResponse& response);

/// Incremental frame extraction over a connection's read buffer.
/// Returns:
///   kOk + true    — one complete frame was parsed; *consumed tells the
///                   caller how many buffer bytes the frame occupied
///                   (request->body points INTO buffer — consume only
///                   after the request has been fully processed/copied)
///   kOk + false   — the buffer holds a partial frame; read more bytes
///   !ok           — protocol error (oversized or truncated-header
///                   declared length); close the connection
Result<bool> ExtractFrame(std::string_view buffer, size_t max_payload,
                          WireRequest* request, size_t* consumed);

/// Decodes a response frame payload (everything after the length prefix);
/// the client-side mirror of EncodeResponseFrame.
Result<WireResponse> DecodeResponsePayload(std::string_view payload);

/// Decoded search-response body.
Result<std::vector<EntryId>> DecodeSearchResponseBody(std::string_view body);

/// Decoded validate-response body.
struct WireValidateResult {
  bool structure_legal = false;
  uint64_t num_entries = 0;
  uint64_t version = 0;
};
Result<WireValidateResult> DecodeValidateResponseBody(std::string_view body);

/// One decoded entry of a kSearchEntries response page.
struct WireEntry {
  EntryId id = kInvalidEntryId;
  std::string dn;
  std::vector<std::string> classes;
  std::vector<std::pair<std::string, std::string>> values;
};

/// Decoded kSearchEntries response body: one page plus its continuation.
struct WireSearchEntriesResult {
  std::vector<WireEntry> entries;
  bool has_more = false;
  std::string cookie;  ///< opaque; feed back verbatim to continue
};
Result<WireSearchEntriesResult> DecodeSearchEntriesResponseBody(
    std::string_view body);

/// The pagination cookie's contents — opaque to clients, but the server
/// (and its tests) need the codec. The cursor id names the server-side
/// cursor retaining the pinned snapshot; the snapshot version guards
/// against a reused cursor slot; the label position is where the stable
/// preorder scan resumes (inclusive lower bound — the server mints it as
/// the last returned label + 1).
struct WireSearchCookie {
  uint64_t cursor_id = 0;
  uint64_t snapshot_version = 0;
  uint64_t next_label = 0;
};
std::string EncodeSearchCookie(const WireSearchCookie& cookie);
/// kInvalidArgument unless `bytes` is exactly one encoded cookie — wire
/// bytes are untrusted, and a truncated/padded cookie is a protocol error.
Result<WireSearchCookie> DecodeSearchCookie(std::string_view bytes);

}  // namespace ldapbound

#endif  // LDAPBOUND_SERVER_WIRE_H_
