#ifndef LDAPBOUND_QUERY_MATCHER_H_
#define LDAPBOUND_QUERY_MATCHER_H_

#include <memory>
#include <string>
#include <vector>

#include "model/directory.h"
#include "model/entry.h"
#include "model/value.h"
#include "model/vocabulary.h"

namespace ldapbound {

class ValueIndex;

/// A per-entry boolean condition: the atomic selection predicate of the
/// hierarchical query language. Matchers are immutable and shared between
/// query nodes via shared_ptr<const Matcher>.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// True if the condition holds for `entry`.
  virtual bool Matches(const Entry& entry) const = 0;

  /// Renders the condition in the paper's concrete syntax, e.g.
  /// "objectClass=person".
  virtual std::string ToString(const Vocabulary& vocab) const = 0;

  /// If the condition can be answered from a ValueIndex, stores the
  /// ascending id list in `*out` (possibly nullptr for "no entries") and
  /// returns true. Default: not answerable.
  virtual bool ProbeIndex(const ValueIndex& index,
                          const std::vector<EntryId>** out) const {
    (void)index;
    (void)out;
    return false;
  }
};

using MatcherPtr = std::shared_ptr<const Matcher>;

/// Matches entries that belong to a given object class, i.e. the paper's
/// ubiquitous `(objectClass=c)` selection.
class ClassMatcher : public Matcher {
 public:
  explicit ClassMatcher(ClassId cls) : cls_(cls) {}

  bool Matches(const Entry& entry) const override {
    return entry.HasClass(cls_);
  }
  std::string ToString(const Vocabulary& vocab) const override;
  bool ProbeIndex(const ValueIndex& index,
                  const std::vector<EntryId>** out) const override;

  ClassId cls() const { return cls_; }

 private:
  ClassId cls_;
};

/// Matches entries having a specific (attribute, value) pair.
class AttrEqualsMatcher : public Matcher {
 public:
  AttrEqualsMatcher(AttributeId attr, Value value)
      : attr_(attr), value_(std::move(value)) {}

  bool Matches(const Entry& entry) const override {
    return entry.HasValue(attr_, value_);
  }
  std::string ToString(const Vocabulary& vocab) const override;
  bool ProbeIndex(const ValueIndex& index,
                  const std::vector<EntryId>** out) const override;

  AttributeId attr() const { return attr_; }
  const Value& value() const { return value_; }

 private:
  AttributeId attr_;
  Value value_;
};

/// Matches entries having at least one value for an attribute (the LDAP
/// `(attr=*)` presence filter).
class AttrPresentMatcher : public Matcher {
 public:
  explicit AttrPresentMatcher(AttributeId attr) : attr_(attr) {}

  bool Matches(const Entry& entry) const override {
    return entry.HasAttribute(attr_);
  }
  std::string ToString(const Vocabulary& vocab) const override;

 private:
  AttributeId attr_;
};

/// Matches every entry.
class TrueMatcher : public Matcher {
 public:
  bool Matches(const Entry&) const override { return true; }
  std::string ToString(const Vocabulary&) const override { return "*"; }
};

/// Negation.
class NotMatcher : public Matcher {
 public:
  explicit NotMatcher(MatcherPtr inner) : inner_(std::move(inner)) {}

  bool Matches(const Entry& entry) const override {
    return !inner_->Matches(entry);
  }
  std::string ToString(const Vocabulary& vocab) const override {
    return "(!" + inner_->ToString(vocab) + ")";
  }

 private:
  MatcherPtr inner_;
};

/// Conjunction of sub-conditions.
class AndMatcher : public Matcher {
 public:
  explicit AndMatcher(std::vector<MatcherPtr> operands)
      : operands_(std::move(operands)) {}

  bool Matches(const Entry& entry) const override {
    for (const MatcherPtr& m : operands_) {
      if (!m->Matches(entry)) return false;
    }
    return true;
  }
  std::string ToString(const Vocabulary& vocab) const override;

 private:
  std::vector<MatcherPtr> operands_;
};

/// Disjunction of sub-conditions.
class OrMatcher : public Matcher {
 public:
  explicit OrMatcher(std::vector<MatcherPtr> operands)
      : operands_(std::move(operands)) {}

  bool Matches(const Entry& entry) const override {
    for (const MatcherPtr& m : operands_) {
      if (m->Matches(entry)) return true;
    }
    return false;
  }
  std::string ToString(const Vocabulary& vocab) const override;

 private:
  std::vector<MatcherPtr> operands_;
};

/// Convenience factories.
MatcherPtr MatchClass(ClassId cls);
MatcherPtr MatchAttrEquals(AttributeId attr, Value value);
MatcherPtr MatchAttrPresent(AttributeId attr);
MatcherPtr MatchAll();
MatcherPtr MatchNot(MatcherPtr inner);
MatcherPtr MatchAnd(std::vector<MatcherPtr> operands);
MatcherPtr MatchOr(std::vector<MatcherPtr> operands);

}  // namespace ldapbound

#endif  // LDAPBOUND_QUERY_MATCHER_H_
