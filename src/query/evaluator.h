#ifndef LDAPBOUND_QUERY_EVALUATOR_H_
#define LDAPBOUND_QUERY_EVALUATOR_H_

#include <cstdint>

#include "model/directory.h"
#include "model/entry_set.h"
#include "query/query.h"
#include "query/value_index.h"

namespace ldapbound {

/// Counters exposed for testing the O(|Q|·|D|) evaluation bound.
struct EvaluatorStats {
  uint64_t nodes_evaluated = 0;   ///< query AST nodes processed
  uint64_t entries_scanned = 0;   ///< per-entry work units performed
};

/// Evaluates hierarchical selection queries over a Directory.
///
/// Every AST node is processed with O(|D|) work over the directory's
/// preorder index (one pass; no pairwise joins), realizing the evaluation
/// bound of Jagadish et al. that Section 3.2 builds on:
///   - atomic select: one scan applying the matcher;
///   - child:       mark parents of B-members, intersect with A;
///   - parent:      test each A-member's parent against B;
///   - descendant:  prefix-sum B over the preorder, test A's subtree ranges;
///   - ancestor:    top-down pass propagating "has B ancestor" flags;
///   - diff / union / intersect: bitmap algebra.
///
/// An optional Δ-set enables the scoped predicates of Figure 5: atomic
/// selections can be restricted to Δ, to its complement, or suppressed.
class QueryEvaluator {
 public:
  /// `delta`, if given, must remain valid while the evaluator is used and
  /// must have capacity >= directory.IdCapacity(). `index`, if given and
  /// fresh, answers unscoped class/value selections in O(|result|); a
  /// stale or absent index falls back to the scan.
  explicit QueryEvaluator(const Directory& directory,
                          const EntrySet* delta = nullptr,
                          const ValueIndex* index = nullptr)
      : directory_(directory), delta_(delta), index_(index) {}

  /// Evaluates `query`; the result holds alive entry ids.
  EntrySet Evaluate(const Query& query);

  /// True iff the query result is empty. (Legality tests only need
  /// emptiness; this still evaluates fully but avoids materializing ids.)
  bool IsEmpty(const Query& query) { return Evaluate(query).Empty(); }

  const EvaluatorStats& stats() const { return stats_; }

 private:
  EntrySet EvaluateSelect(const Query& query);
  EntrySet EvaluateHier(const Query& query);

  const Directory& directory_;
  const EntrySet* delta_;
  const ValueIndex* index_;
  EvaluatorStats stats_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_QUERY_EVALUATOR_H_
