#ifndef LDAPBOUND_QUERY_EVALUATOR_H_
#define LDAPBOUND_QUERY_EVALUATOR_H_

#include <cstdint>
#include <unordered_map>

#include "model/directory.h"
#include "model/entry_set.h"
#include "query/explain.h"
#include "query/query.h"
#include "query/value_index.h"
#include "util/metrics.h"

namespace ldapbound {

/// Counters exposed for testing the O(|Q|·|D|) evaluation bound.
struct EvaluatorStats {
  uint64_t nodes_evaluated = 0;   ///< query AST nodes processed
  uint64_t entries_scanned = 0;   ///< per-entry work units performed
  uint64_t cache_hits = 0;        ///< atomic selections answered from the
                                  ///< shared class-selection cache
  uint64_t short_circuits = 0;    ///< lazy-emptiness early exits: an
                                  ///< IsEmpty node that concluded at a
                                  ///< witness (or an empty operand)
                                  ///< without materializing its result

  EvaluatorStats& operator+=(const EvaluatorStats& other) {
    nodes_evaluated += other.nodes_evaluated;
    entries_scanned += other.entries_scanned;
    cache_hits += other.cache_hits;
    short_circuits += other.short_circuits;
    return *this;
  }
};

/// Process-wide mirrors of the evaluator counters (ldapbound_query_*
/// families, util/metrics.h). The evaluator itself stays metrics-free —
/// its counters are plain locals on purpose (one instance per worker, no
/// atomics in the scan loops); owners that finish a query batch call
/// AddEvaluatorStatsToMetrics once to publish the aggregate.
struct QueryMetrics {
  Counter& nodes_evaluated;
  Counter& entries_scanned;
  Counter& cache_hits;
  Counter& short_circuits;
  Histogram& nodes_per_query;  ///< |Q| of each published batch
  Histogram& scan_length;      ///< entries scanned by each published batch
};
QueryMetrics& GetQueryMetrics();

/// Publishes `stats` (adds to the counters, observes the histograms).
void AddEvaluatorStatsToMetrics(const EvaluatorStats& stats);

/// Evaluates hierarchical selection queries over a Directory.
///
/// Every AST node is processed with O(|D|) work over the directory's
/// preorder index (one pass; no pairwise joins), realizing the evaluation
/// bound of Jagadish et al. that Section 3.2 builds on:
///   - atomic select: one scan applying the matcher;
///   - child:       mark parents of B-members, intersect with A;
///   - parent:      test each A-member's parent against B;
///   - descendant:  prefix-sum B over the preorder, test A's subtree ranges;
///   - ancestor:    top-down pass propagating "has B ancestor" flags;
///   - diff / union / intersect: bitmap algebra.
///
/// An optional Δ-set enables the scoped predicates of Figure 5: atomic
/// selections can be restricted to Δ, to its complement, or suppressed.
///
/// The evaluator holds mutable counters (stats_), so one instance must not
/// be shared across threads; the parallel legality engine creates one
/// evaluator per worker and merges the stats afterwards. A read-only
/// class-selection cache MAY be shared across evaluators (set_class_cache).
class QueryEvaluator {
 public:
  /// `delta`, if given, must remain valid while the evaluator is used and
  /// must have capacity >= directory.IdCapacity(). `index`, if given and
  /// fresh, answers unscoped class/value selections in O(|result|); a
  /// stale or absent index falls back to the scan.
  explicit QueryEvaluator(const Directory& directory,
                          const EntrySet* delta = nullptr,
                          const ValueIndex* index = nullptr)
      : directory_(directory), delta_(delta), index_(index) {}

  /// Optional read-only cache of unscoped `(objectClass=c)` selection
  /// results, keyed by class id. Consulted (before the value index) for
  /// kAll-scoped ClassMatcher selections only; missing classes fall back
  /// to the normal path. The cache must stay valid and unmodified while
  /// this evaluator runs; it may be shared by concurrent evaluators.
  void set_class_cache(const std::unordered_map<ClassId, EntrySet>* cache) {
    class_cache_ = cache;
  }

  /// Attaches an EXPLAIN profile: each subsequent top-level Evaluate or
  /// IsEmpty call rebuilds `*profile` with the per-node plan tree (input /
  /// output cardinalities, strategy chosen, short-circuit points, per-node
  /// latency). Pass nullptr to detach. The profile object must outlive the
  /// attached evaluations. Profiling changes no results and, when detached
  /// (the default), costs a handful of never-taken branches per AST node —
  /// never per-entry work.
  void set_profile(QueryProfile* profile) { profile_ = profile; }

  /// Evaluates `query`; the result holds alive entry ids.
  EntrySet Evaluate(const Query& query);

  /// True iff the query result is empty. Lazy: the top-level node stops at
  /// the first surviving id instead of materializing its result bitmap —
  /// a union short-circuits at the first non-empty operand, a difference
  /// becomes a word-wise subset test, a hierarchical selection stops at
  /// the first member with a qualifying related entry. Operand subtrees
  /// below the top-level node still evaluate fully.
  bool IsEmpty(const Query& query);

  const EvaluatorStats& stats() const { return stats_; }

 private:
  EntrySet EvaluateImpl(const Query& query);
  bool IsEmptyImpl(const Query& query);
  EntrySet EvaluateProfiled(const Query& query);
  bool IsEmptyProfiled(const Query& query);
  EntrySet EvaluateSelect(const Query& query);
  EntrySet EvaluateHier(const Query& query);
  bool SelectIsEmpty(const Query& query);
  bool HierIsEmpty(const Query& query);

  ExplainNode MakeNodeHeader(const Query& query, bool lazy) const;

  /// Records the strategy the CURRENT plan node chose. Bodies call this at
  /// decision points that run after their operand subtrees finished (each
  /// child frame consumes-and-clears the slot), so the value the frame
  /// reads on finish is its own. No-op when no profile is attached.
  void RecordStrategy(const char* strategy) {
    if (profile_ != nullptr) node_strategy_ = strategy;
  }

  const Directory& directory_;
  const EntrySet* delta_;
  const ValueIndex* index_;
  const std::unordered_map<ClassId, EntrySet>* class_cache_ = nullptr;
  EvaluatorStats stats_;

  // EXPLAIN state (untouched unless a profile is attached).
  QueryProfile* profile_ = nullptr;
  ExplainNode* profile_parent_ = nullptr;
  const char* node_strategy_ = nullptr;
  uint64_t profile_children_scanned_ = 0;
  uint64_t profile_children_short_circuits_ = 0;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_QUERY_EVALUATOR_H_
