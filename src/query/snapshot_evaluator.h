#ifndef LDAPBOUND_QUERY_SNAPSHOT_EVALUATOR_H_
#define LDAPBOUND_QUERY_SNAPSHOT_EVALUATOR_H_

#include "model/directory_snapshot.h"
#include "model/entry_set.h"
#include "query/evaluator.h"
#include "query/query.h"
#include "util/result.h"

namespace ldapbound {

/// Query evaluation against a pinned MVCC snapshot — the lock-free read
/// path. Answers the paper's Figure 4 structural queries (class
/// selections, the four hierarchy axes, set algebra) from snapshot state
/// alone: class/value postings for selections, the order-maintenance
/// label views for descendant tests, the parent view for child/parent/
/// ancestor. It never touches the live Directory, its Entry objects, or
/// the dense preorder cache, so any number of evaluators may run
/// concurrently with the single writer.
///
/// Unlike QueryEvaluator this evaluator is partial: matchers that need
/// entry payloads (presence, negation, conjunction) and the Δ-relative
/// scopes return an error instead of a wrong answer. The Figure 4
/// legality queries use only class selections with Scope::kAll, so
/// CheckStructureSnapshot never hits the unsupported surface.
///
/// Axis semantics match QueryEvaluator::EvaluateHier: the result of
/// ((ax) A B) is the set of A-members that have an axis-neighbor in B —
/// e.g. axis d keeps the A-members with a proper descendant in B.
class SnapshotEvaluator {
 public:
  explicit SnapshotEvaluator(const DirectorySnapshot& snapshot)
      : snap_(snapshot) {}

  /// The members of `query` at the snapshot's version, as a set with
  /// capacity == snapshot.id_capacity.
  Result<EntrySet> Evaluate(const Query& query);

  /// Emptiness of `query` (no lazy short-circuit: evaluates fully).
  Result<bool> IsEmpty(const Query& query);

  const EvaluatorStats& stats() const { return stats_; }
  const DirectorySnapshot& snapshot() const { return snap_; }

 private:
  Result<EntrySet> EvaluateSelect(const Query& query);
  Result<EntrySet> EvaluateHier(const Query& query);
  /// Capacity-normalizes to the snapshot's id space: postings are built
  /// at power-of-two capacities, and word-wise set algebra needs equal
  /// word counts.
  EntrySet Normalized(const EntrySet& set) const;

  const DirectorySnapshot& snap_;
  EvaluatorStats stats_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_QUERY_SNAPSHOT_EVALUATOR_H_
