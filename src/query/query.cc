#include "query/query.h"

namespace ldapbound {

std::string_view ScopeToString(Scope scope) {
  switch (scope) {
    case Scope::kAll:
      return "";
    case Scope::kDeltaOnly:
      return "[delta]";
    case Scope::kExcludeDelta:
      return "[old]";
    case Scope::kEmpty:
      return "[empty]";
  }
  return "?";
}

Query Query::Select(MatcherPtr matcher, Scope scope) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kSelect;
  node->matcher = std::move(matcher);
  node->scope = scope;
  return Query(std::move(node));
}

Query Query::Hier(Axis axis, Query target, Query related) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kHier;
  node->axis = axis;
  node->operands.push_back(std::move(target));
  node->operands.push_back(std::move(related));
  return Query(std::move(node));
}

Query Query::Diff(Query lhs, Query rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kDiff;
  node->operands.push_back(std::move(lhs));
  node->operands.push_back(std::move(rhs));
  return Query(std::move(node));
}

Query Query::Union(std::vector<Query> operands) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kUnion;
  node->operands = std::move(operands);
  return Query(std::move(node));
}

Query Query::Intersect(std::vector<Query> operands) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kIntersect;
  node->operands = std::move(operands);
  return Query(std::move(node));
}

size_t Query::Size() const {
  size_t n = 1;
  for (const Query& op : node_->operands) n += op.Size();
  return n;
}

std::string Query::ToString(const Vocabulary& vocab) const {
  switch (kind()) {
    case Kind::kSelect:
      return "(" + node_->matcher->ToString(vocab) + ")" +
             std::string(ScopeToString(node_->scope));
    case Kind::kHier:
      return "(" + std::string(AxisToString(node_->axis)) + " " +
             node_->operands[0].ToString(vocab) + " " +
             node_->operands[1].ToString(vocab) + ")";
    case Kind::kDiff:
      return "(? " + node_->operands[0].ToString(vocab) + " " +
             node_->operands[1].ToString(vocab) + ")";
    case Kind::kUnion: {
      std::string out = "(U";
      for (const Query& op : node_->operands) out += " " + op.ToString(vocab);
      return out + ")";
    }
    case Kind::kIntersect: {
      std::string out = "(N";
      for (const Query& op : node_->operands) out += " " + op.ToString(vocab);
      return out + ")";
    }
  }
  return "?";
}

}  // namespace ldapbound
