#ifndef LDAPBOUND_QUERY_EXPLAIN_H_
#define LDAPBOUND_QUERY_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/vocabulary.h"
#include "query/query.h"

namespace ldapbound {

/// Per-plan-node profile of one hierarchical selection query evaluation.
///
/// The paper reduces structure-schema legality to emptiness tests over
/// hierarchical selection queries (Figure 4, Theorem 3.1), so when a
/// commit is slow or rejected the operator's question is "which
/// constraint's query did it, and what did its evaluation look like?" —
/// the explainable-validation-report problem ShEx/SHACL systems solve for
/// RDF shapes. An ExplainNode answers it for one AST node: what the node
/// computed, how (index probe vs class-cache hit vs scan, sparse vs dense
/// axis path, lazy short-circuit), how much it read and produced, and how
/// long it took.
///
/// Profiles are built by QueryEvaluator when a QueryProfile is attached
/// (QueryEvaluator::set_profile); evaluation without a profile attached
/// pays a handful of predictable never-taken branches per AST node —
/// nothing per entry — and bench_explain shows the difference is noise.
struct ExplainNode {
  std::string op;        ///< "select", "child", "parent", "descendant",
                         ///< "ancestor", "diff", "union", "intersect"
  std::string detail;    ///< matcher rendering for selects ("objectClass=x")
  std::string strategy;  ///< how the node was answered; see kind constants
                         ///< in explain.cc ("scan", "index", "class-cache",
                         ///< "sparse", "dense", "delta-scan",
                         ///< "class-count", "bitmap", "subset-test", ...)
  std::string scope;     ///< instance scope of a select ("all", "delta", ...)
  bool lazy = false;           ///< evaluated via IsEmpty (verdict only)
  bool short_circuit = false;  ///< concluded at a witness / empty operand
                               ///< without materializing its result
  uint64_t out_cardinality = 0;   ///< |result| (0 for short-circuited lazy
                                  ///< nodes, which never materialize)
  uint64_t entries_scanned = 0;   ///< per-entry work of THIS node only
  uint64_t latency_ns = 0;        ///< inclusive wall time (children included)
  std::vector<uint64_t> input_cardinalities;  ///< children's out cardinalities
  std::vector<ExplainNode> children;

  /// Output rows per input row over the children's combined output;
  /// 1.0 for leaves (no inputs to be selective over).
  double Selectivity() const;

  /// Indented plan tree, one node per line:
  ///   descendant  out=0 scanned=12 18.3us [sparse, short-circuit]
  ///     select (objectClass=orgGroup)  out=9 scanned=9 4.1us [class-cache]
  std::string RenderText(int indent = 0) const;

  /// The node (recursively) as a JSON object.
  std::string RenderJson() const;
};

/// Aggregate of one profiled evaluation: the plan tree plus totals.
struct QueryProfile {
  ExplainNode root;
  uint64_t total_ns = 0;
  uint64_t total_nodes = 0;
  uint64_t total_scanned = 0;

  /// The plan tree followed by a one-line total summary.
  std::string RenderText() const;

  /// {"total_ns":...,"total_nodes":...,"total_scanned":...,"plan":{...}}
  std::string RenderJson() const;
};

/// Human-friendly duration: "843ns", "12.3us", "4.56ms", "1.20s".
std::string FormatDurationNs(uint64_t ns);

}  // namespace ldapbound

#endif  // LDAPBOUND_QUERY_EXPLAIN_H_
