#ifndef LDAPBOUND_QUERY_QUERY_H_
#define LDAPBOUND_QUERY_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "model/axis.h"
#include "query/matcher.h"

namespace ldapbound {

/// Instance scope of an atomic selection. Section 4's incremental Δ-queries
/// (Figure 5) evaluate each sub-expression against one of: the empty
/// instance, only the updated subtree Δ, only the pre-update instance D, or
/// the whole current instance (D+Δ for insertions, D−Δ for deletions when
/// the check runs against the post-update directory).
enum class Scope : uint8_t {
  kAll = 0,          ///< every alive entry of the evaluated directory
  kDeltaOnly = 1,    ///< only entries in the evaluator's Δ set
  kExcludeDelta = 2, ///< only entries NOT in the evaluator's Δ set
  kEmpty = 3,        ///< no entries (sub-expression known to contribute none)
};

std::string_view ScopeToString(Scope scope);

/// A hierarchical selection query (Jagadish et al., SIGMOD'99), as used by
/// the paper's Section 3.2 reduction:
///
///  - `Select(m)`            — atomic selection: entries matching m;
///  - `Hier(ax, A, B)`       — entries of A with an ax-related entry in B,
///                             e.g. `(d (objectClass=x) (objectClass=y))`;
///  - `Diff(A, B)`           — the paper's `(? A B)`: results of A not in B;
///  - `Union`, `Intersect`   — n-ary set combinations.
///
/// Query is an immutable value type (cheap shared-structure copies).
class Query {
 public:
  enum class Kind : uint8_t { kSelect, kHier, kDiff, kUnion, kIntersect };

  /// Atomic selection with an optional non-default scope.
  static Query Select(MatcherPtr matcher, Scope scope = Scope::kAll);

  /// Hierarchical selection: members of `node` having an `axis`-related
  /// member of `related`.
  static Query Hier(Axis axis, Query node, Query related);

  static Query Child(Query node, Query related) {
    return Hier(Axis::kChild, std::move(node), std::move(related));
  }
  static Query Parent(Query node, Query related) {
    return Hier(Axis::kParent, std::move(node), std::move(related));
  }
  static Query Descendant(Query node, Query related) {
    return Hier(Axis::kDescendant, std::move(node), std::move(related));
  }
  static Query Ancestor(Query node, Query related) {
    return Hier(Axis::kAncestor, std::move(node), std::move(related));
  }

  /// Set difference, the paper's `(? A B)`.
  static Query Diff(Query lhs, Query rhs);

  static Query Union(std::vector<Query> operands);
  static Query Intersect(std::vector<Query> operands);

  Kind kind() const { return node_->kind; }
  const MatcherPtr& matcher() const { return node_->matcher; }
  Scope scope() const { return node_->scope; }
  Axis axis() const { return node_->axis; }
  const std::vector<Query>& operands() const { return node_->operands; }

  /// Number of AST nodes: the |Q| of the O(|Q|·|D|) evaluation bound.
  size_t Size() const;

  /// Paper-style rendering, e.g.
  /// "(? (objectClass=orgGroup) (d (objectClass=orgGroup) (objectClass=person)))".
  std::string ToString(const Vocabulary& vocab) const;

 private:
  struct Node {
    Kind kind;
    MatcherPtr matcher;                // kSelect
    Scope scope = Scope::kAll;         // kSelect
    Axis axis = Axis::kChild;          // kHier
    std::vector<Query> operands;       // kHier: [node, related]; others: n-ary
  };

  explicit Query(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_QUERY_QUERY_H_
