#include "query/evaluator.h"

#include <algorithm>
#include <chrono>
#include <vector>

namespace ldapbound {

namespace {

uint64_t CountPlanNodes(const ExplainNode& node) {
  uint64_t n = 1;
  for (const ExplainNode& child : node.children) n += CountPlanNodes(child);
  return n;
}

/// Strategy reported when a node's body never picked one explicitly
/// (the set-operation nodes, whose work is bitmap algebra).
const char* DefaultStrategy(const Query& query) {
  switch (query.kind()) {
    case Query::Kind::kSelect:
      return "scan";
    case Query::Kind::kHier:
      return "?";
    case Query::Kind::kDiff:
    case Query::Kind::kUnion:
    case Query::Kind::kIntersect:
      return "bitmap";
  }
  return "?";
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

QueryMetrics& GetQueryMetrics() {
  static QueryMetrics* metrics = new QueryMetrics{
      MetricRegistry::Default().GetCounter(
          "ldapbound_query_nodes_evaluated_total",
          "Query AST nodes processed by evaluators"),
      MetricRegistry::Default().GetCounter(
          "ldapbound_query_entries_scanned_total",
          "Per-entry work units performed by evaluators"),
      MetricRegistry::Default().GetCounter(
          "ldapbound_query_cache_hits_total",
          "Atomic selections answered from the shared class-selection "
          "cache"),
      MetricRegistry::Default().GetCounter(
          "ldapbound_query_short_circuits_total",
          "Lazy-emptiness early exits (IsEmpty concluded at a witness)"),
      MetricRegistry::Default().GetHistogram(
          "ldapbound_query_nodes_per_query",
          "AST nodes evaluated per published query batch"),
      MetricRegistry::Default().GetHistogram(
          "ldapbound_query_scan_length",
          "Entries scanned per published query batch"),
  };
  return *metrics;
}

void AddEvaluatorStatsToMetrics(const EvaluatorStats& stats) {
  QueryMetrics& metrics = GetQueryMetrics();
  metrics.nodes_evaluated.Increment(stats.nodes_evaluated);
  metrics.entries_scanned.Increment(stats.entries_scanned);
  metrics.cache_hits.Increment(stats.cache_hits);
  metrics.short_circuits.Increment(stats.short_circuits);
  metrics.nodes_per_query.Observe(stats.nodes_evaluated);
  metrics.scan_length.Observe(stats.entries_scanned);
}

EntrySet QueryEvaluator::Evaluate(const Query& query) {
  if (profile_ != nullptr) return EvaluateProfiled(query);
  return EvaluateImpl(query);
}

bool QueryEvaluator::IsEmpty(const Query& query) {
  if (profile_ != nullptr) return IsEmptyProfiled(query);
  return IsEmptyImpl(query);
}

ExplainNode QueryEvaluator::MakeNodeHeader(const Query& query,
                                           bool lazy) const {
  ExplainNode node;
  node.lazy = lazy;
  switch (query.kind()) {
    case Query::Kind::kSelect:
      node.op = "select";
      node.detail = query.ToString(directory_.vocab());
      switch (query.scope()) {
        case Scope::kAll:
          node.scope = "all";
          break;
        case Scope::kDeltaOnly:
          node.scope = "delta";
          break;
        case Scope::kExcludeDelta:
          node.scope = "exclude-delta";
          break;
        case Scope::kEmpty:
          node.scope = "empty";
          break;
      }
      break;
    case Query::Kind::kHier:
      node.op = std::string(AxisToWord(query.axis()));
      break;
    case Query::Kind::kDiff:
      node.op = "diff";
      break;
    case Query::Kind::kUnion:
      node.op = "union";
      break;
    case Query::Kind::kIntersect:
      node.op = "intersect";
      break;
  }
  return node;
}

// Both profiled wrappers share the same frame discipline: push this node as
// the current parent, zero the child accumulators, run the plain body (whose
// recursive Evaluate/IsEmpty calls re-enter the dispatcher and so build the
// child subtrees), then compute this node's OWN per-entry work as the
// inclusive counter delta minus what the children accumulated.
EntrySet QueryEvaluator::EvaluateProfiled(const Query& query) {
  ExplainNode node = MakeNodeHeader(query, /*lazy=*/false);
  ExplainNode* saved_parent = profile_parent_;
  const uint64_t saved_children_scanned = profile_children_scanned_;
  const uint64_t saved_children_sc = profile_children_short_circuits_;
  profile_parent_ = &node;
  profile_children_scanned_ = 0;
  profile_children_short_circuits_ = 0;
  node_strategy_ = nullptr;
  const uint64_t scanned_before = stats_.entries_scanned;
  const uint64_t sc_before = stats_.short_circuits;
  const auto start = std::chrono::steady_clock::now();

  EntrySet result = EvaluateImpl(query);

  node.latency_ns = ElapsedNs(start);
  const uint64_t inclusive_scanned = stats_.entries_scanned - scanned_before;
  const uint64_t inclusive_sc = stats_.short_circuits - sc_before;
  node.entries_scanned = inclusive_scanned - profile_children_scanned_;
  node.short_circuit = inclusive_sc > profile_children_short_circuits_;
  node.out_cardinality = result.Count();
  node.strategy = node_strategy_ != nullptr ? node_strategy_
                                            : DefaultStrategy(query);
  node_strategy_ = nullptr;  // consumed; the parent sets its own later
  node.input_cardinalities.reserve(node.children.size());
  for (const ExplainNode& child : node.children) {
    node.input_cardinalities.push_back(child.out_cardinality);
  }
  profile_parent_ = saved_parent;
  profile_children_scanned_ = saved_children_scanned + inclusive_scanned;
  profile_children_short_circuits_ = saved_children_sc + inclusive_sc;
  if (saved_parent != nullptr) {
    saved_parent->children.push_back(std::move(node));
  } else {
    profile_->total_ns = node.latency_ns;
    profile_->total_scanned = inclusive_scanned;
    profile_->total_nodes = CountPlanNodes(node);
    profile_->root = std::move(node);
  }
  return result;
}

bool QueryEvaluator::IsEmptyProfiled(const Query& query) {
  ExplainNode node = MakeNodeHeader(query, /*lazy=*/true);
  ExplainNode* saved_parent = profile_parent_;
  const uint64_t saved_children_scanned = profile_children_scanned_;
  const uint64_t saved_children_sc = profile_children_short_circuits_;
  profile_parent_ = &node;
  profile_children_scanned_ = 0;
  profile_children_short_circuits_ = 0;
  node_strategy_ = nullptr;
  const uint64_t scanned_before = stats_.entries_scanned;
  const uint64_t sc_before = stats_.short_circuits;
  const auto start = std::chrono::steady_clock::now();

  const bool empty = IsEmptyImpl(query);

  node.latency_ns = ElapsedNs(start);
  const uint64_t inclusive_scanned = stats_.entries_scanned - scanned_before;
  const uint64_t inclusive_sc = stats_.short_circuits - sc_before;
  node.entries_scanned = inclusive_scanned - profile_children_scanned_;
  node.short_circuit = inclusive_sc > profile_children_short_circuits_;
  node.out_cardinality = 0;  // lazy nodes never materialize their result
  node.strategy = node_strategy_ != nullptr ? node_strategy_
                                            : DefaultStrategy(query);
  node_strategy_ = nullptr;
  node.input_cardinalities.reserve(node.children.size());
  for (const ExplainNode& child : node.children) {
    node.input_cardinalities.push_back(child.out_cardinality);
  }
  profile_parent_ = saved_parent;
  profile_children_scanned_ = saved_children_scanned + inclusive_scanned;
  profile_children_short_circuits_ = saved_children_sc + inclusive_sc;
  if (saved_parent != nullptr) {
    saved_parent->children.push_back(std::move(node));
  } else {
    profile_->total_ns = node.latency_ns;
    profile_->total_scanned = inclusive_scanned;
    profile_->total_nodes = CountPlanNodes(node);
    profile_->root = std::move(node);
  }
  return empty;
}

EntrySet QueryEvaluator::EvaluateImpl(const Query& query) {
  ++stats_.nodes_evaluated;
  switch (query.kind()) {
    case Query::Kind::kSelect:
      return EvaluateSelect(query);
    case Query::Kind::kHier:
      return EvaluateHier(query);
    case Query::Kind::kDiff: {
      EntrySet lhs = Evaluate(query.operands()[0]);
      EntrySet rhs = Evaluate(query.operands()[1]);
      lhs.SubtractFrom(rhs);
      return lhs;
    }
    case Query::Kind::kUnion: {
      EntrySet out(directory_.IdCapacity());
      for (const Query& op : query.operands()) {
        EntrySet part = Evaluate(op);
        out.UnionWith(part);
      }
      return out;
    }
    case Query::Kind::kIntersect: {
      if (query.operands().empty()) {
        // Empty intersection over subsets of D: all alive entries.
        return directory_.AliveSet();
      }
      EntrySet out = Evaluate(query.operands()[0]);
      for (size_t i = 1; i < query.operands().size(); ++i) {
        EntrySet part = Evaluate(query.operands()[i]);
        out.IntersectWith(part);
      }
      return out;
    }
  }
  return EntrySet(directory_.IdCapacity());
}

bool QueryEvaluator::IsEmptyImpl(const Query& query) {
  ++stats_.nodes_evaluated;
  switch (query.kind()) {
    case Query::Kind::kSelect:
      return SelectIsEmpty(query);
    case Query::Kind::kHier:
      return HierIsEmpty(query);
    case Query::Kind::kDiff: {
      // (? A B) is empty iff A ⊆ B; the subset test exits at the first
      // word holding a surviving id, and B is never evaluated when A is
      // already empty.
      EntrySet lhs = Evaluate(query.operands()[0]);
      if (lhs.Empty()) {
        ++stats_.short_circuits;  // B skipped entirely
        RecordStrategy("subset-test");
        return true;
      }
      EntrySet rhs = Evaluate(query.operands()[1]);
      bool empty = lhs.IsSubsetOf(rhs);
      if (!empty) ++stats_.short_circuits;  // exited at a surviving word
      RecordStrategy("subset-test");
      return empty;
    }
    case Query::Kind::kUnion: {
      for (const Query& op : query.operands()) {
        if (!IsEmpty(op)) {
          ++stats_.short_circuits;  // remaining operands skipped
          RecordStrategy("operand-sweep");
          return false;
        }
      }
      RecordStrategy("operand-sweep");
      return true;
    }
    case Query::Kind::kIntersect: {
      const std::vector<Query>& ops = query.operands();
      if (ops.empty()) return directory_.NumEntries() == 0;
      if (ops.size() == 1) {
        bool empty = IsEmpty(ops[0]);
        RecordStrategy("single-operand");
        return empty;
      }
      EntrySet acc = Evaluate(ops[0]);
      if (acc.Empty()) {
        ++stats_.short_circuits;  // remaining operands skipped
        RecordStrategy("incremental-intersect");
        return true;
      }
      for (size_t i = 1; i + 1 < ops.size(); ++i) {
        EntrySet part = Evaluate(ops[i]);
        acc.IntersectWith(part);
        if (acc.Empty()) {
          ++stats_.short_circuits;
          RecordStrategy("incremental-intersect");
          return true;
        }
      }
      EntrySet last = Evaluate(ops.back());
      bool empty = !acc.Intersects(last);
      if (!empty) ++stats_.short_circuits;  // exited at a common word
      RecordStrategy("incremental-intersect");
      return empty;
    }
  }
  return true;
}

EntrySet QueryEvaluator::EvaluateSelect(const Query& query) {
  EntrySet out(directory_.IdCapacity());
  const Scope scope = query.scope();
  if (scope == Scope::kEmpty) {
    RecordStrategy("empty-scope");
    return out;
  }
  const Matcher& matcher = *query.matcher();
  if (scope == Scope::kAll && class_cache_ != nullptr) {
    if (const auto* cm = dynamic_cast<const ClassMatcher*>(&matcher)) {
      auto it = class_cache_->find(cm->cls());
      if (it != class_cache_->end()) {
        ++stats_.cache_hits;
        RecordStrategy("class-cache");
        return it->second;
      }
    }
  }
  if (scope == Scope::kDeltaOnly) {
    // Δ-scoped selections touch only Δ — the ingredient that makes the
    // Figure 5 insertion checks cost O(|Δ|) rather than O(|D|).
    RecordStrategy("delta-scan");
    if (delta_ == nullptr) return out;
    delta_->ForEach([&](EntryId id) {
      if (!directory_.IsAlive(id)) return;
      ++stats_.entries_scanned;
      if (matcher.Matches(directory_.entry(id))) out.Insert(id);
    });
    return out;
  }
  if (scope == Scope::kAll && index_ != nullptr && index_->IsFresh() &&
      &index_->directory() == &directory_) {
    const std::vector<EntryId>* ids = nullptr;
    if (matcher.ProbeIndex(*index_, &ids)) {
      RecordStrategy("index");
      if (ids != nullptr) {
        for (EntryId id : *ids) {
          ++stats_.entries_scanned;
          out.Insert(id);
        }
      }
      return out;
    }
  }
  RecordStrategy("scan");
  directory_.ForEachAlive([&](const Entry& e) {
    ++stats_.entries_scanned;
    if (scope == Scope::kExcludeDelta && delta_ != nullptr &&
        delta_->Contains(e.id())) {
      return;
    }
    if (matcher.Matches(e)) out.Insert(e.id());
  });
  return out;
}

bool QueryEvaluator::SelectIsEmpty(const Query& query) {
  const Scope scope = query.scope();
  if (scope == Scope::kEmpty) {
    RecordStrategy("empty-scope");
    return true;
  }
  const Matcher& matcher = *query.matcher();
  if (scope == Scope::kAll && class_cache_ != nullptr) {
    if (const auto* cm = dynamic_cast<const ClassMatcher*>(&matcher)) {
      auto it = class_cache_->find(cm->cls());
      if (it != class_cache_->end()) {
        ++stats_.cache_hits;
        RecordStrategy("class-cache");
        return it->second.Empty();
      }
    }
  }
  if (scope == Scope::kDeltaOnly) {
    RecordStrategy("delta-scan");
    if (delta_ == nullptr) return true;
    bool empty = delta_->ForEachWhile([&](EntryId id) {
      if (!directory_.IsAlive(id)) return true;
      ++stats_.entries_scanned;
      return !matcher.Matches(directory_.entry(id));
    });
    if (!empty) ++stats_.short_circuits;  // stopped at the witness
    return empty;
  }
  if (scope == Scope::kAll && index_ != nullptr && index_->IsFresh() &&
      &index_->directory() == &directory_) {
    const std::vector<EntryId>* ids = nullptr;
    if (matcher.ProbeIndex(*index_, &ids)) {
      RecordStrategy("index");
      return ids == nullptr || ids->empty();
    }
  }
  RecordStrategy("scan");
  // Early-exit scan: stop at the first matching alive entry.
  const size_t cap = directory_.IdCapacity();
  for (size_t i = 0; i < cap; ++i) {
    EntryId id = static_cast<EntryId>(i);
    if (!directory_.IsAlive(id)) continue;
    ++stats_.entries_scanned;
    if (scope == Scope::kExcludeDelta && delta_ != nullptr &&
        delta_->Contains(id)) {
      continue;
    }
    if (matcher.Matches(directory_.entry(id))) {
      ++stats_.short_circuits;  // stopped at the witness
      return false;
    }
  }
  return true;
}

bool QueryEvaluator::HierIsEmpty(const Query& query) {
  EntrySet node_set = Evaluate(query.operands()[0]);
  if (node_set.Empty()) {
    RecordStrategy("empty-operand");
    return true;
  }
  EntrySet related = Evaluate(query.operands()[1]);
  if (related.Empty()) {
    RecordStrategy("empty-operand");
    return true;
  }
  const ForestIndex& index = directory_.GetIndex();
  const std::vector<EntryId>& preorder = index.preorder();

  // Each axis stops at the first witness; a false verdict is by
  // construction a short-circuit.
  bool empty = true;
  switch (query.axis()) {
    case Axis::kChild:
      RecordStrategy("parent-map");
      // Non-empty iff some related-member's parent is in the node set.
      empty = related.ForEachWhile([&](EntryId id) {
        ++stats_.entries_scanned;
        EntryId p = directory_.entry(id).parent();
        return p == kInvalidEntryId || !node_set.Contains(p);
      });
      break;
    case Axis::kParent:
      RecordStrategy("parent-probe");
      empty = node_set.ForEachWhile([&](EntryId id) {
        ++stats_.entries_scanned;
        EntryId p = directory_.entry(id).parent();
        return p == kInvalidEntryId || !related.Contains(p);
      });
      break;
    case Axis::kDescendant: {
      RecordStrategy("interval-probe");
      // Mark the related members' preorder positions, then probe each
      // node member's subtree interval — AnyInRange exits at the first
      // occupied word, and the whole test stops at the first witness.
      EntrySet positions(preorder.size());
      related.ForEach([&](EntryId id) {
        ++stats_.entries_scanned;
        positions.Insert(static_cast<EntryId>(index.pre(id)));
      });
      empty = node_set.ForEachWhile([&](EntryId id) {
        ++stats_.entries_scanned;
        return !positions.AnyInRange(index.pre(id) + 1, index.sub_end(id));
      });
      break;
    }
    case Axis::kAncestor: {
      // Sparse path: few candidate nodes — walk their parent chains,
      // stopping at the first member with a related ancestor.
      const size_t threshold = preorder.size() / 8;
      if (node_set.CountUpTo(threshold + 1) <= threshold) {
        RecordStrategy("chain-walk");
        empty = node_set.ForEachWhile([&](EntryId id) {
          for (EntryId p = directory_.entry(id).parent();
               p != kInvalidEntryId; p = directory_.entry(p).parent()) {
            ++stats_.entries_scanned;
            if (related.Contains(p)) return false;
          }
          return true;
        });
        break;
      }
      // Dense path: top-down pass (preorder visits parents first),
      // stopping at the first witness.
      RecordStrategy("preorder-pass");
      std::vector<uint8_t> has_anc(directory_.IdCapacity(), 0);
      for (EntryId id : preorder) {
        ++stats_.entries_scanned;
        EntryId p = directory_.entry(id).parent();
        if (p != kInvalidEntryId) {
          has_anc[id] = has_anc[p] || related.Contains(p);
        }
        if (has_anc[id] && node_set.Contains(id)) {
          empty = false;
          break;
        }
      }
      break;
    }
  }
  if (!empty) ++stats_.short_circuits;
  return empty;
}

EntrySet QueryEvaluator::EvaluateHier(const Query& query) {
  EntrySet node_set = Evaluate(query.operands()[0]);
  EntrySet related = Evaluate(query.operands()[1]);
  const ForestIndex& index = directory_.GetIndex();
  const std::vector<EntryId>& preorder = index.preorder();
  EntrySet out(directory_.IdCapacity());

  switch (query.axis()) {
    case Axis::kChild: {
      RecordStrategy("parent-map");
      // Parents of related-members, intersected with the node set.
      EntrySet parents(directory_.IdCapacity());
      related.ForEach([&](EntryId id) {
        ++stats_.entries_scanned;
        EntryId p = directory_.entry(id).parent();
        if (p != kInvalidEntryId) parents.Insert(p);
      });
      parents.IntersectWith(node_set);
      return parents;
    }
    case Axis::kParent: {
      RecordStrategy("parent-probe");
      node_set.ForEach([&](EntryId id) {
        ++stats_.entries_scanned;
        EntryId p = directory_.entry(id).parent();
        if (p != kInvalidEntryId && related.Contains(p)) out.Insert(id);
      });
      return out;
    }
    case Axis::kDescendant: {
      // Sparse path: when both operand sets are small relative to |D| —
      // the situation the Figure 5 Δ-queries create — sort the related
      // members' preorder positions and binary-search each node's subtree
      // interval: O((|A|+|B|)·log|B|) instead of a full preorder pass.
      // CountUpTo caps the size probes at the threshold they compare to.
      const size_t threshold = preorder.size() / 8;
      size_t count_a = node_set.CountUpTo(threshold + 1);
      size_t count_b = related.CountUpTo(threshold + 1);
      if ((count_a + count_b) * 8 < preorder.size()) {
        RecordStrategy("interval-search");
        std::vector<size_t> positions;
        positions.reserve(count_b);
        related.ForEach([&](EntryId id) {
          ++stats_.entries_scanned;
          positions.push_back(index.pre(id));
        });
        std::sort(positions.begin(), positions.end());
        node_set.ForEach([&](EntryId id) {
          ++stats_.entries_scanned;
          size_t lo = index.pre(id) + 1;  // proper descendants only
          size_t hi = index.sub_end(id);
          auto it = std::lower_bound(positions.begin(), positions.end(), lo);
          if (it != positions.end() && *it < hi) out.Insert(id);
        });
        return out;
      }
      // Dense path: prefix[i] = number of related-members in preorder[0..i).
      RecordStrategy("prefix-sum");
      std::vector<uint32_t> prefix(preorder.size() + 1, 0);
      for (size_t i = 0; i < preorder.size(); ++i) {
        ++stats_.entries_scanned;
        prefix[i + 1] =
            prefix[i] + (related.Contains(preorder[i]) ? 1u : 0u);
      }
      node_set.ForEach([&](EntryId id) {
        size_t lo = index.pre(id) + 1;  // proper descendants only
        size_t hi = index.sub_end(id);
        if (hi > lo && prefix[hi] > prefix[lo]) out.Insert(id);
      });
      return out;
    }
    case Axis::kAncestor: {
      // Sparse path: few candidate nodes — walk their parent chains.
      const size_t threshold = preorder.size() / 8;
      size_t count_a = node_set.CountUpTo(threshold + 1);
      if (count_a * 8 < preorder.size()) {
        RecordStrategy("chain-walk");
        node_set.ForEach([&](EntryId id) {
          for (EntryId p = directory_.entry(id).parent();
               p != kInvalidEntryId; p = directory_.entry(p).parent()) {
            ++stats_.entries_scanned;
            if (related.Contains(p)) {
              out.Insert(id);
              break;
            }
          }
        });
        return out;
      }
      // Dense path: top-down pass (preorder visits parents first).
      RecordStrategy("preorder-pass");
      std::vector<uint8_t> has_anc(directory_.IdCapacity(), 0);
      for (EntryId id : preorder) {
        ++stats_.entries_scanned;
        EntryId p = directory_.entry(id).parent();
        if (p != kInvalidEntryId) {
          has_anc[id] = has_anc[p] || related.Contains(p);
        }
        if (has_anc[id] && node_set.Contains(id)) out.Insert(id);
      }
      return out;
    }
  }
  return out;
}

}  // namespace ldapbound
