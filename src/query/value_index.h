#ifndef LDAPBOUND_QUERY_VALUE_INDEX_H_
#define LDAPBOUND_QUERY_VALUE_INDEX_H_

#include <unordered_map>
#include <vector>

#include "model/directory.h"

namespace ldapbound {

/// Secondary index over class memberships and (attribute, value) pairs —
/// the "index structures rely upon notions of schema" direction the
/// paper's conclusion leaves as future work. With it, the atomic
/// selections of hierarchical queries (overwhelmingly `objectClass=c`)
/// cost O(|result|) instead of one O(|D|) scan, making structure-legality
/// checks of selective schemas sublinear in practice.
///
/// Like ForestIndex, a ValueIndex is a snapshot tied to a directory
/// version: Refresh() rebuilds it after mutations; a stale index is simply
/// ignored by the evaluator (correctness never depends on it).
class ValueIndex {
 public:
  /// Builds the index for the directory's current state.
  explicit ValueIndex(const Directory& directory) : directory_(directory) {
    Refresh();
  }

  ValueIndex(const ValueIndex&) = delete;
  ValueIndex& operator=(const ValueIndex&) = delete;

  /// Rebuilds if the directory has changed since the last build. O(|D|).
  void Refresh();

  /// True if the index matches the directory's current version.
  bool IsFresh() const { return version_ == directory_.version(); }

  /// Entries of class `cls`, ascending; nullptr if none.
  const std::vector<EntryId>* LookupClass(ClassId cls) const;

  /// Entries having the (attr, value) pair, ascending; nullptr if none.
  const std::vector<EntryId>* LookupValue(AttributeId attr,
                                          const Value& value) const;

  const Directory& directory() const { return directory_; }

 private:
  struct PairKey {
    AttributeId attr;
    Value value;
    friend bool operator==(const PairKey& a, const PairKey& b) {
      return a.attr == b.attr && a.value == b.value;
    }
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      return k.value.Hash() * 1000003 + k.attr;
    }
  };

  const Directory& directory_;
  uint64_t version_ = ~uint64_t{0};
  std::unordered_map<ClassId, std::vector<EntryId>> by_class_;
  std::unordered_map<PairKey, std::vector<EntryId>, PairKeyHash> by_value_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_QUERY_VALUE_INDEX_H_
