#include "query/explain.h"

#include <cstdio>

#include "util/json.h"

namespace ldapbound {

std::string FormatDurationNs(uint64_t ns) {
  char buf[32];
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%lluns", static_cast<unsigned long long>(ns));
  } else if (ns < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1000ull * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

double ExplainNode::Selectivity() const {
  uint64_t in = 0;
  for (uint64_t c : input_cardinalities) in += c;
  if (in == 0) return 1.0;
  return static_cast<double>(out_cardinality) / static_cast<double>(in);
}

std::string ExplainNode::RenderText(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += op;
  if (!detail.empty()) {
    out += ' ';
    out += detail;
  }
  if (!scope.empty() && scope != "all") {
    out += " scope=";
    out += scope;
  }
  out += "  out=";
  out += std::to_string(out_cardinality);
  if (!input_cardinalities.empty()) {
    out += " in=[";
    for (size_t i = 0; i < input_cardinalities.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(input_cardinalities[i]);
    }
    out += ']';
    char buf[32];
    std::snprintf(buf, sizeof(buf), " sel=%.1f%%", Selectivity() * 100.0);
    out += buf;
  }
  out += " scanned=";
  out += std::to_string(entries_scanned);
  out += ' ';
  out += FormatDurationNs(latency_ns);
  out += " [";
  out += strategy.empty() ? "?" : strategy;
  if (lazy) out += ", lazy";
  if (short_circuit) out += ", short-circuit";
  out += "]\n";
  for (const ExplainNode& child : children) out += child.RenderText(indent + 1);
  return out;
}

std::string ExplainNode::RenderJson() const {
  std::string out = "{\"op\":" + JsonQuote(op);
  if (!detail.empty()) out += ",\"detail\":" + JsonQuote(detail);
  if (!scope.empty()) out += ",\"scope\":" + JsonQuote(scope);
  out += ",\"strategy\":" + JsonQuote(strategy);
  out += ",\"lazy\":";
  out += lazy ? "true" : "false";
  out += ",\"short_circuit\":";
  out += short_circuit ? "true" : "false";
  out += ",\"out\":" + std::to_string(out_cardinality);
  out += ",\"scanned\":" + std::to_string(entries_scanned);
  out += ",\"latency_ns\":" + std::to_string(latency_ns);
  char buf[40];
  std::snprintf(buf, sizeof(buf), ",\"selectivity\":%.6g", Selectivity());
  out += buf;
  out += ",\"inputs\":[";
  for (size_t i = 0; i < input_cardinalities.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(input_cardinalities[i]);
  }
  out += "],\"children\":[";
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out += ',';
    out += children[i].RenderJson();
  }
  out += "]}";
  return out;
}

std::string QueryProfile::RenderText() const {
  std::string out = root.RenderText();
  out += "total: ";
  out += std::to_string(total_nodes);
  out += " nodes, ";
  out += std::to_string(total_scanned);
  out += " entries scanned, ";
  out += FormatDurationNs(total_ns);
  out += '\n';
  return out;
}

std::string QueryProfile::RenderJson() const {
  std::string out = "{\"total_ns\":" + std::to_string(total_ns);
  out += ",\"total_nodes\":" + std::to_string(total_nodes);
  out += ",\"total_scanned\":" + std::to_string(total_scanned);
  out += ",\"plan\":" + root.RenderJson();
  out += '}';
  return out;
}

}  // namespace ldapbound
