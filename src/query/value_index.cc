#include "query/value_index.h"

namespace ldapbound {

void ValueIndex::Refresh() {
  if (version_ == directory_.version()) return;
  by_class_.clear();
  by_value_.clear();
  directory_.ForEachAlive([&](const Entry& e) {
    for (ClassId c : e.classes()) {
      by_class_[c].push_back(e.id());  // id order: ForEachAlive ascends
    }
    for (const AttributeValue& av : e.values()) {
      by_value_[PairKey{av.attribute, av.value}].push_back(e.id());
    }
  });
  version_ = directory_.version();
}

const std::vector<EntryId>* ValueIndex::LookupClass(ClassId cls) const {
  auto it = by_class_.find(cls);
  return it == by_class_.end() ? nullptr : &it->second;
}

const std::vector<EntryId>* ValueIndex::LookupValue(
    AttributeId attr, const Value& value) const {
  auto it = by_value_.find(PairKey{attr, value});
  return it == by_value_.end() ? nullptr : &it->second;
}

}  // namespace ldapbound
