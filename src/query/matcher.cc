#include "query/matcher.h"

#include "query/value_index.h"

namespace ldapbound {

bool ClassMatcher::ProbeIndex(const ValueIndex& index,
                              const std::vector<EntryId>** out) const {
  *out = index.LookupClass(cls_);
  return true;
}

bool AttrEqualsMatcher::ProbeIndex(const ValueIndex& index,
                                   const std::vector<EntryId>** out) const {
  *out = index.LookupValue(attr_, value_);
  return true;
}

std::string ClassMatcher::ToString(const Vocabulary& vocab) const {
  return "objectClass=" + vocab.ClassName(cls_);
}

std::string AttrEqualsMatcher::ToString(const Vocabulary& vocab) const {
  return vocab.AttributeName(attr_) + "=" + value_.ToString();
}

std::string AttrPresentMatcher::ToString(const Vocabulary& vocab) const {
  return vocab.AttributeName(attr_) + "=*";
}

std::string AndMatcher::ToString(const Vocabulary& vocab) const {
  std::string out = "(&";
  for (const MatcherPtr& m : operands_) out += m->ToString(vocab);
  out += ")";
  return out;
}

std::string OrMatcher::ToString(const Vocabulary& vocab) const {
  std::string out = "(|";
  for (const MatcherPtr& m : operands_) out += m->ToString(vocab);
  out += ")";
  return out;
}

MatcherPtr MatchClass(ClassId cls) {
  return std::make_shared<ClassMatcher>(cls);
}
MatcherPtr MatchAttrEquals(AttributeId attr, Value value) {
  return std::make_shared<AttrEqualsMatcher>(attr, std::move(value));
}
MatcherPtr MatchAttrPresent(AttributeId attr) {
  return std::make_shared<AttrPresentMatcher>(attr);
}
MatcherPtr MatchAll() { return std::make_shared<TrueMatcher>(); }
MatcherPtr MatchNot(MatcherPtr inner) {
  return std::make_shared<NotMatcher>(std::move(inner));
}
MatcherPtr MatchAnd(std::vector<MatcherPtr> operands) {
  return std::make_shared<AndMatcher>(std::move(operands));
}
MatcherPtr MatchOr(std::vector<MatcherPtr> operands) {
  return std::make_shared<OrMatcher>(std::move(operands));
}

}  // namespace ldapbound
