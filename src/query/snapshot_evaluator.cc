#include "query/snapshot_evaluator.h"

#include <algorithm>
#include <vector>

#include "query/matcher.h"

namespace ldapbound {

EntrySet SnapshotEvaluator::Normalized(const EntrySet& set) const {
  EntrySet out = set;
  if (out.capacity() != snap_.id_capacity) out.Resize(snap_.id_capacity);
  return out;
}

Result<bool> SnapshotEvaluator::IsEmpty(const Query& query) {
  LDAPBOUND_ASSIGN_OR_RETURN(EntrySet members, Evaluate(query));
  return members.Empty();
}

Result<EntrySet> SnapshotEvaluator::Evaluate(const Query& query) {
  ++stats_.nodes_evaluated;
  switch (query.kind()) {
    case Query::Kind::kSelect:
      return EvaluateSelect(query);
    case Query::Kind::kHier:
      return EvaluateHier(query);
    case Query::Kind::kDiff: {
      LDAPBOUND_ASSIGN_OR_RETURN(EntrySet left,
                                 Evaluate(query.operands()[0]));
      LDAPBOUND_ASSIGN_OR_RETURN(EntrySet right,
                                 Evaluate(query.operands()[1]));
      left.SubtractFrom(right);
      return left;
    }
    case Query::Kind::kUnion: {
      EntrySet out(snap_.id_capacity);
      for (const Query& op : query.operands()) {
        LDAPBOUND_ASSIGN_OR_RETURN(EntrySet members, Evaluate(op));
        out.UnionWith(members);
      }
      return out;
    }
    case Query::Kind::kIntersect: {
      EntrySet out;
      bool first = true;
      for (const Query& op : query.operands()) {
        LDAPBOUND_ASSIGN_OR_RETURN(EntrySet members, Evaluate(op));
        if (first) {
          out = std::move(members);
          first = false;
        } else {
          out.IntersectWith(members);
        }
      }
      if (first) out = EntrySet(snap_.id_capacity);
      return out;
    }
  }
  return Status::Internal("snapshot evaluator: unknown query kind");
}

Result<EntrySet> SnapshotEvaluator::EvaluateSelect(const Query& query) {
  if (query.scope() == Scope::kEmpty) return EntrySet(snap_.id_capacity);
  if (query.scope() != Scope::kAll) {
    return Status::Internal(
        "snapshot evaluator: delta-relative scopes need the live "
        "directory");
  }
  const Matcher* matcher = query.matcher().get();
  if (const auto* cls = dynamic_cast<const ClassMatcher*>(matcher)) {
    const EntrySet* posting = snap_.ClassSet(cls->cls());
    stats_.entries_scanned += posting == nullptr ? 0 : posting->Count();
    return posting == nullptr ? EntrySet(snap_.id_capacity)
                              : Normalized(*posting);
  }
  if (const auto* eq = dynamic_cast<const AttrEqualsMatcher*>(matcher)) {
    EntrySet out(snap_.id_capacity);
    const std::vector<EntryId>* posting =
        snap_.ValuePosting(eq->attr(), eq->value());
    if (posting != nullptr) {
      stats_.entries_scanned += posting->size();
      for (EntryId id : *posting) out.Insert(id);
    }
    return out;
  }
  if (dynamic_cast<const TrueMatcher*>(matcher) != nullptr) {
    return snap_.alive == nullptr ? EntrySet(snap_.id_capacity)
                                  : Normalized(*snap_.alive);
  }
  return Status::Internal(
      "snapshot evaluator: matcher needs entry payloads (only class, "
      "attribute-equality and match-all selections are snapshot-backed)");
}

Result<EntrySet> SnapshotEvaluator::EvaluateHier(const Query& query) {
  LDAPBOUND_ASSIGN_OR_RETURN(EntrySet node_set,
                             Evaluate(query.operands()[0]));
  LDAPBOUND_ASSIGN_OR_RETURN(EntrySet related,
                             Evaluate(query.operands()[1]));
  const size_t cap = snap_.id_capacity;
  EntrySet out(cap);

  switch (query.axis()) {
    case Axis::kChild: {
      // Parents of related-members, intersected with the node set.
      EntrySet parents(cap);
      related.ForEach([&](EntryId id) {
        ++stats_.entries_scanned;
        EntryId p = snap_.parent(id);
        if (p != kInvalidEntryId) parents.Insert(p);
      });
      parents.IntersectWith(node_set);
      return parents;
    }
    case Axis::kParent: {
      node_set.ForEach([&](EntryId id) {
        ++stats_.entries_scanned;
        EntryId p = snap_.parent(id);
        if (p != kInvalidEntryId && related.Contains(p)) out.Insert(id);
      });
      return out;
    }
    case Axis::kDescendant: {
      // Sorted related labels + one binary search per node member: a
      // proper descendant of `a` is exactly an entry whose label lies in
      // (label(a), end_label(a)) — no dense preorder needed.
      std::vector<uint64_t> labels;
      labels.reserve(related.Count());
      related.ForEach([&](EntryId id) {
        ++stats_.entries_scanned;
        uint64_t l = snap_.index.labels.Get(id, ForestIndex::kNoLabel);
        if (l != ForestIndex::kNoLabel) labels.push_back(l);
      });
      std::sort(labels.begin(), labels.end());
      node_set.ForEach([&](EntryId id) {
        ++stats_.entries_scanned;
        uint64_t lo = snap_.index.labels.Get(id, ForestIndex::kNoLabel);
        uint64_t hi = snap_.index.end_labels.Get(id, ForestIndex::kNoLabel);
        if (lo == ForestIndex::kNoLabel) return;
        auto it = std::upper_bound(labels.begin(), labels.end(), lo);
        if (it != labels.end() && *it < hi) out.Insert(id);
      });
      return out;
    }
    case Axis::kAncestor: {
      // Memoized parent-chain walk: m(x) = x in related OR m(parent(x)),
      // shared across all node members so the total work is O(cap).
      std::vector<uint8_t> memo(cap, 0);  // 0 unknown / 1 yes / 2 no
      std::vector<EntryId> path;
      auto anc_or_self_in_related = [&](EntryId start) {
        path.clear();
        uint8_t verdict = 2;
        for (EntryId x = start; x != kInvalidEntryId; x = snap_.parent(x)) {
          if (x >= cap) break;
          ++stats_.entries_scanned;
          if (memo[x] != 0) {
            verdict = memo[x];
            break;
          }
          if (related.Contains(x)) {
            memo[x] = 1;
            verdict = 1;
            break;
          }
          path.push_back(x);
        }
        for (EntryId x : path) memo[x] = verdict;
        return verdict == 1;
      };
      node_set.ForEach([&](EntryId id) {
        EntryId p = snap_.parent(id);
        if (p != kInvalidEntryId && anc_or_self_in_related(p)) {
          out.Insert(id);
        }
      });
      return out;
    }
  }
  return Status::Internal("snapshot evaluator: unknown axis");
}

}  // namespace ldapbound
