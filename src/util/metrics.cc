#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ldapbound {

namespace {

void Append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
}

/// `name{labels}` or bare `name`; `extra` (e.g. an `le` pair) is appended
/// after the caller's labels.
std::string SeriesName(const std::string& name, const std::string& labels,
                       const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

}  // namespace

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) total += BucketCount(i);
  return total;
}

size_t Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  // major = floor(log2(value)) >= kSubBucketBits; the next kSubBucketBits
  // bits below the leading one select the linear sub-bucket.
  size_t major = static_cast<size_t>(std::bit_width(value)) - 1;
  size_t sub = static_cast<size_t>(value >> (major - kSubBucketBits)) &
               (kSubBuckets - 1);
  return kSubBuckets + (major - kSubBucketBits) * kSubBuckets + sub;
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i < kSubBuckets) return i;
  size_t major = kSubBucketBits + (i - kSubBuckets) / kSubBuckets;
  size_t sub = (i - kSubBuckets) % kSubBuckets;
  uint64_t width = uint64_t{1} << (major - kSubBucketBits);
  // For the very last bucket (major 63, sub 7) the exact bound 2^64 - 1
  // falls out of the unsigned wraparound.
  return (uint64_t{1} << major) + (sub + 1) * width - 1;
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = BucketCount(i);
    total += counts[i];
  }
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double rank = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(seen + counts[i]) >= rank) {
      uint64_t lo = BucketLowerBound(i);
      uint64_t hi = BucketUpperBound(i);
      double frac = (rank - static_cast<double>(seen)) /
                    static_cast<double>(counts[i]);
      return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    }
    seen += counts[i];
  }
  return BucketUpperBound(kNumBuckets - 1);
}

MetricRegistry& MetricRegistry::Default() {
  // Leaked: metric references handed to call sites (and pool workers that
  // outlive static destructors) must stay valid forever.
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

MetricRegistry::Family& MetricRegistry::FamilyFor(std::string_view name,
                                                  std::string_view help,
                                                  Kind kind) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{}).first;
    it->second.kind = kind;
    it->second.help = std::string(help);
  } else if (it->second.kind != kind) {
    std::fprintf(stderr,
                 "metric family '%.*s' registered with conflicting kinds\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return it->second;
}

Counter& MetricRegistry::GetCounter(std::string_view name,
                                    std::string_view help,
                                    std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = FamilyFor(name, help, Kind::kCounter)
                  .series[std::string(labels)];
  if (s.counter == nullptr) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricRegistry::GetGauge(std::string_view name, std::string_view help,
                                std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = FamilyFor(name, help, Kind::kGauge).series[std::string(labels)];
  if (s.gauge == nullptr) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricRegistry::GetHistogram(std::string_view name,
                                        std::string_view help,
                                        std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = FamilyFor(name, help, Kind::kHistogram)
                  .series[std::string(labels)];
  if (s.histogram == nullptr) s.histogram = std::make_unique<Histogram>();
  return *s.histogram;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string MakeLabel(std::string_view name, std::string_view value) {
  std::string out(name);
  out += "=\"";
  out += EscapeLabelValue(value);
  out += '"';
  return out;
}

void MetricRegistry::ForEachSample(
    const std::function<void(const std::string& series, double value)>& fn)
    const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          fn(SeriesName(name, labels),
             static_cast<double>(series.counter->Value()));
          break;
        case Kind::kGauge:
          fn(SeriesName(name, labels),
             static_cast<double>(series.gauge->Value()));
          break;
        case Kind::kHistogram:
          fn(SeriesName(name + "_count", labels),
             static_cast<double>(series.histogram->Count()));
          fn(SeriesName(name + "_sum", labels),
             static_cast<double>(series.histogram->Sum()));
          break;
      }
    }
  }
}

std::string MetricRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter:
        out += "counter\n";
        break;
      case Kind::kGauge:
        out += "gauge\n";
        break;
      case Kind::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [labels, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          Append(out, "%s %" PRIu64 "\n",
                 SeriesName(name, labels).c_str(), series.counter->Value());
          break;
        case Kind::kGauge:
          Append(out, "%s %" PRId64 "\n",
                 SeriesName(name, labels).c_str(), series.gauge->Value());
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          // Cumulative `le` buckets; empty high bins beyond the last
          // occupied one are folded into +Inf to keep the exposition
          // compact.
          size_t last = 0;
          for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            if (h.BucketCount(i) > 0) last = i;
          }
          uint64_t cumulative = 0;
          for (size_t i = 0; i <= last; ++i) {
            cumulative += h.BucketCount(i);
            char le[32];
            std::snprintf(le, sizeof(le), "le=\"%" PRIu64 "\"",
                          Histogram::BucketUpperBound(i));
            Append(out, "%s %" PRIu64 "\n",
                   SeriesName(name + "_bucket", labels, le).c_str(),
                   cumulative);
          }
          Append(out, "%s %" PRIu64 "\n",
                 SeriesName(name + "_bucket", labels, "le=\"+Inf\"").c_str(),
                 h.Count());
          Append(out, "%s %" PRIu64 "\n",
                 SeriesName(name + "_sum", labels).c_str(), h.Sum());
          Append(out, "%s %" PRIu64 "\n",
                 SeriesName(name + "_count", labels).c_str(), h.Count());
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace ldapbound
