#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ldapbound {

namespace {

void Append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
}

/// `name{labels}` or bare `name`; `extra` (e.g. an `le` pair) is appended
/// after the caller's labels.
std::string SeriesName(const std::string& name, const std::string& labels,
                       const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

}  // namespace

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) total += BucketCount(i);
  return total;
}

size_t Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  size_t width = static_cast<size_t>(std::bit_width(value));
  return width < kNumBuckets ? width : kNumBuckets - 1;
}

MetricRegistry& MetricRegistry::Default() {
  // Leaked: metric references handed to call sites (and pool workers that
  // outlive static destructors) must stay valid forever.
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

MetricRegistry::Family& MetricRegistry::FamilyFor(std::string_view name,
                                                  std::string_view help,
                                                  Kind kind) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{}).first;
    it->second.kind = kind;
    it->second.help = std::string(help);
  } else if (it->second.kind != kind) {
    std::fprintf(stderr,
                 "metric family '%.*s' registered with conflicting kinds\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return it->second;
}

Counter& MetricRegistry::GetCounter(std::string_view name,
                                    std::string_view help,
                                    std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = FamilyFor(name, help, Kind::kCounter)
                  .series[std::string(labels)];
  if (s.counter == nullptr) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricRegistry::GetGauge(std::string_view name, std::string_view help,
                                std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = FamilyFor(name, help, Kind::kGauge).series[std::string(labels)];
  if (s.gauge == nullptr) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricRegistry::GetHistogram(std::string_view name,
                                        std::string_view help,
                                        std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = FamilyFor(name, help, Kind::kHistogram)
                  .series[std::string(labels)];
  if (s.histogram == nullptr) s.histogram = std::make_unique<Histogram>();
  return *s.histogram;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string MakeLabel(std::string_view name, std::string_view value) {
  std::string out(name);
  out += "=\"";
  out += EscapeLabelValue(value);
  out += '"';
  return out;
}

std::string MetricRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter:
        out += "counter\n";
        break;
      case Kind::kGauge:
        out += "gauge\n";
        break;
      case Kind::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [labels, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          Append(out, "%s %" PRIu64 "\n",
                 SeriesName(name, labels).c_str(), series.counter->Value());
          break;
        case Kind::kGauge:
          Append(out, "%s %" PRId64 "\n",
                 SeriesName(name, labels).c_str(), series.gauge->Value());
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          // Cumulative `le` buckets; empty high bins beyond the last
          // occupied one are folded into +Inf to keep the exposition
          // compact.
          size_t last = 0;
          for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            if (h.BucketCount(i) > 0) last = i;
          }
          uint64_t cumulative = 0;
          for (size_t i = 0; i <= last; ++i) {
            cumulative += h.BucketCount(i);
            char le[32];
            std::snprintf(le, sizeof(le), "le=\"%" PRIu64 "\"",
                          Histogram::BucketUpperBound(i));
            Append(out, "%s %" PRIu64 "\n",
                   SeriesName(name + "_bucket", labels, le).c_str(),
                   cumulative);
          }
          Append(out, "%s %" PRIu64 "\n",
                 SeriesName(name + "_bucket", labels, "le=\"+Inf\"").c_str(),
                 h.Count());
          Append(out, "%s %" PRIu64 "\n",
                 SeriesName(name + "_sum", labels).c_str(), h.Sum());
          Append(out, "%s %" PRIu64 "\n",
                 SeriesName(name + "_count", labels).c_str(), h.Count());
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace ldapbound
