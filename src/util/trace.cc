#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "util/metrics.h"

namespace ldapbound {

namespace {

thread_local uint64_t g_current_op_id = 0;
thread_local SpanCollector* g_span_collector = nullptr;

/// Process-wide mirror of the ring's eviction count, so silent span loss
/// is visible on /metrics even when nobody reads Tracer::dropped().
Counter& DroppedSpansCounter() {
  static Counter* counter = &MetricRegistry::Default().GetCounter(
      "ldapbound_trace_dropped_spans_total",
      "Trace spans evicted from the ring before export (ring overflow)");
  return *counter;
}

/// Ring capacity (events) and the per-thread buffer size that triggers a
/// drain. Small buffers keep exports complete without making the owner
/// visit the ring mutex often.
constexpr size_t kRingCapacity = 1 << 16;
constexpr size_t kFlushThreshold = 128;

struct Ring {
  std::mutex mu;
  std::deque<Tracer::Event> events;
};

Ring& GlobalRing() {
  static Ring* ring = new Ring();
  return *ring;
}

/// One thread's pending events. Owned jointly by the thread (thread_local
/// shared_ptr) and the registry, so an exporter can drain buffers of live
/// threads and a dying thread can flush without racing an export.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<Tracer::Event> events;
  uint32_t tid = 0;
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
};

BufferRegistry& GlobalRegistry() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

void PushToRing(std::vector<Tracer::Event>&& events,
                std::atomic<uint64_t>& dropped) {
  if (events.empty()) return;
  Ring& ring = GlobalRing();
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(ring.mu);
    for (Tracer::Event& e : events) {
      if (ring.events.size() >= kRingCapacity) {
        ring.events.pop_front();
        ++evicted;
      }
      ring.events.push_back(e);
    }
  }
  if (evicted > 0) {
    dropped.fetch_add(evicted, std::memory_order_relaxed);
    DroppedSpansCounter().Increment(evicted);
  }
  events.clear();
}

/// Unregisters and flushes when the thread exits; the registry drops its
/// reference so long-lived processes do not accumulate dead buffers.
struct ThreadBufferHolder {
  std::shared_ptr<ThreadBuffer> buffer;

  ThreadBufferHolder() : buffer(std::make_shared<ThreadBuffer>()) {
    BufferRegistry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    buffer->tid = registry.next_tid++;
    registry.buffers.push_back(buffer);
  }
  ~ThreadBufferHolder() {
    std::vector<Tracer::Event> pending;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      pending.swap(buffer->events);
    }
    PushToRing(std::move(pending), Tracer::Default().MutableDropped());
    BufferRegistry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto& buffers = registry.buffers;
    buffers.erase(std::remove(buffers.begin(), buffers.end(), buffer),
                  buffers.end());
  }
};

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBufferHolder holder;
  return *holder.buffer;
}

void AppendJsonEvent(std::string& out, const Tracer::Event& e, bool first) {
  char buf[256];
  if (e.op_id != 0) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"op_id\":%llu}}",
                  first ? "" : ",\n", e.name, e.tid,
                  static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0,
                  static_cast<unsigned long long>(e.op_id));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  first ? "" : ",\n", e.name, e.tid,
                  static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0);
  }
  out += buf;
}

}  // namespace

uint64_t Tracer::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Record(const char* name, uint64_t start_ns, uint64_t dur_ns) {
  Event e{name, 0, start_ns, dur_ns, g_current_op_id};
  if (g_span_collector != nullptr) g_span_collector->Add(e);
  if (!enabled()) return;
  ThreadBuffer& buffer = LocalBuffer();
  std::vector<Event> overflow;
  {
    std::lock_guard<std::mutex> lock(buffer.mu);
    e.tid = buffer.tid;
    buffer.events.push_back(e);
    if (buffer.events.size() >= kFlushThreshold) {
      overflow.swap(buffer.events);
    }
  }
  PushToRing(std::move(overflow), dropped_);
}

TraceOpScope::TraceOpScope(uint64_t op_id) : saved_(g_current_op_id) {
  g_current_op_id = op_id;
}

TraceOpScope::~TraceOpScope() { g_current_op_id = saved_; }

uint64_t TraceOpScope::current() { return g_current_op_id; }

SpanCollector::SpanCollector() : prev_(g_span_collector) {
  g_span_collector = this;
}

SpanCollector::~SpanCollector() { g_span_collector = prev_; }

SpanCollector* SpanCollector::current() { return g_span_collector; }

void Tracer::DrainAllLocked() {
  BufferRegistry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const std::shared_ptr<ThreadBuffer>& buffer : registry.buffers) {
    std::vector<Event> pending;
    {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      pending.swap(buffer->events);
    }
    PushToRing(std::move(pending), dropped_);
  }
}

std::string Tracer::ExportChromeTraceJson() {
  DrainAllLocked();
  std::deque<Event> events;
  {
    Ring& ring = GlobalRing();
    std::lock_guard<std::mutex> lock(ring.mu);
    events.swap(ring.events);
  }
  dropped_.store(0, std::memory_order_relaxed);
  // Deterministic order for tests and stable diffs.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.tid < b.tid;
  });
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const Event& e : events) {
    AppendJsonEvent(out, e, first);
    first = false;
  }
  out += "\n]}\n";
  return out;
}

void Tracer::Discard() {
  DrainAllLocked();
  Ring& ring = GlobalRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.events.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::InstallExportFromEnv() {
  static bool installed = false;
  if (installed) return;
  const char* path = std::getenv("LDAPBOUND_TRACE_OUT");
  if (path == nullptr || path[0] == '\0') return;
  installed = true;
  static std::string out_path;
  out_path = path;
  Default().Enable();
  std::atexit([]() {
    std::string json = Default().ExportChromeTraceJson();
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) return;
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  });
}

}  // namespace ldapbound
