#ifndef LDAPBOUND_UTIL_STRING_UTIL_H_
#define LDAPBOUND_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace ldapbound {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits `s` on `sep`. Consecutive separators produce empty pieces.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Splits `s` on `sep`, honoring backslash escapes: a separator preceded by
/// an unescaped backslash does not split. Escapes are preserved verbatim in
/// the output pieces. Used by the DN parser.
std::vector<std::string_view> SplitEscaped(std::string_view s, char sep);

/// ASCII case-insensitive equality; LDAP attribute and class names compare
/// case-insensitively.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Lowercases ASCII characters.
std::string ToLower(std::string_view s);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Strict unsigned-decimal parsing for numeric flags and wire fields.
/// Unlike std::atoi — which silently turns garbage into 0 and lets a
/// negative slip through a size_t cast as a huge bound — this rejects
/// anything that is not a plain decimal number in [0, max]: empty input,
/// a sign, non-digit characters, and overflow are all kInvalidArgument
/// with a message naming the offending text.
Result<uint64_t> ParseUint(std::string_view text,
                           uint64_t max = UINT64_MAX);

/// ParseUint bounded to a TCP port (0..65535; 0 conventionally means
/// "ephemeral, kernel picks").
Result<uint16_t> ParsePort(std::string_view text);

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_STRING_UTIL_H_
