#ifndef LDAPBOUND_UTIL_METRICS_H_
#define LDAPBOUND_UTIL_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace ldapbound {

/// Process-wide observability primitives for the legality pipeline.
///
/// The north-star workload ("heavy traffic, as fast as the hardware
/// allows") needs to show *where* time and failures go before further
/// scaling work; ShEx/SHACL validators report per-constraint validation
/// cost as a first-class output and this layer does the same for the
/// Theorem 3.1 checks. Design constraints:
///
///  - update paths are lock-free: counters, gauges and histogram buckets
///    are relaxed atomics, safe from any thread, never blocking;
///  - registration is rare and amortized: call sites hold a reference
///    obtained once (function-local static) from the registry, so the
///    steady state pays one atomic add per event;
///  - hot loops do not pay per-item: per-entry work is accumulated in
///    plain locals and flushed once per shard/query (see
///    core/legality_checker.cc), keeping instrumentation overhead on
///    bench_structure_legality under 2%;
///  - metrics are process-wide and monotonic (Prometheus semantics), and
///    are never destroyed: references stay valid for the process
///    lifetime.
///
/// Exposition is the Prometheus text format (RenderPrometheus), served by
/// `ldapbound stats --metrics`.

/// Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depths, active workers).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed log-linear histogram: each power of two is split into
/// kSubBuckets linear sub-buckets (values below kSubBuckets are exact),
/// so any uint64 value — nanoseconds, bytes, scan lengths — lands in one
/// of 496 bins with one relaxed fetch_add and no allocation. Bucket
/// width is at most 12.5% of the bucket's lower bound, so a quantile
/// read from the exposition is off by < 2^(1/8) instead of the 2x a
/// pure log2 grid allows. Concurrent Observe/snapshot is racy only
/// across bins (a scrape may see a count the sum does not yet include),
/// which Prometheus scrapes tolerate by design.
class Histogram {
 public:
  /// 8 linear sub-buckets per power of two (3 mantissa bits), the same
  /// grid tools/load_driver.cc uses client-side.
  static constexpr size_t kSubBucketBits = 3;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;
  /// Values 0..7 exact, then 61 powers of two (2^3 .. 2^63) x 8 subs.
  static constexpr size_t kNumBuckets =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

  void Observe(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const;
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i (the Prometheus `le` value);
  /// the last bucket's bound is UINT64_MAX (rendered before +Inf).
  static uint64_t BucketUpperBound(size_t i);
  /// Inclusive lower bound of bucket i (for in-bucket interpolation).
  static uint64_t BucketLowerBound(size_t i) {
    return i == 0 ? 0 : BucketUpperBound(i - 1) + 1;
  }
  static size_t BucketFor(uint64_t value);

  /// Approximate value at quantile q in [0,1], linearly interpolated
  /// inside the winning bucket (error bounded by the 12.5% bucket
  /// width). Snapshot semantics match the scrape contract above.
  uint64_t ValueAtQuantile(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// Escapes a label VALUE per the Prometheus text exposition format:
/// backslash, double-quote and newline become \\ , \" and \n. Label names
/// and metric names need no escaping (they are identifier-restricted).
std::string EscapeLabelValue(std::string_view value);

/// Renders one `name="value"` label pair with the value escaped. Join
/// multiple pairs with "," to build the `labels` argument of the registry
/// getters when values are not compile-time literals.
std::string MakeLabel(std::string_view name, std::string_view value);

/// Observes the lifetime of a scope, in nanoseconds, into a histogram.
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~LatencyTimer() { histogram_.Observe(ElapsedNs()); }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

  uint64_t ElapsedNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Families of labeled metrics, keyed by name. A family is one exposition
/// unit (one # HELP / # TYPE block); its series are distinguished by a
/// pre-rendered label string (`op="add",outcome="ok"`). Lookups take a
/// mutex; call sites cache the returned reference, which stays valid
/// forever (series are never removed).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry (never destroyed).
  static MetricRegistry& Default();

  /// Finds or creates the series `name{labels}`. `help` is recorded on
  /// first sight of the family. Asking for an existing name with a
  /// different metric kind is a programming error and aborts.
  Counter& GetCounter(std::string_view name, std::string_view help,
                      std::string_view labels = "");
  Gauge& GetGauge(std::string_view name, std::string_view help,
                  std::string_view labels = "");
  Histogram& GetHistogram(std::string_view name, std::string_view help,
                          std::string_view labels = "");

  /// Prometheus text exposition format, families and series in
  /// lexicographic order (deterministic for tests and diffing).
  std::string RenderPrometheus() const;

  /// Visits every series as flat numeric samples, in the same
  /// lexicographic order as RenderPrometheus: counters and gauges as
  /// `name{labels}` with their current value, histograms as two samples
  /// `name_count{labels}` and `name_sum{labels}` (bucket vectors are too
  /// wide to timeline; rates and interval means are derivable from
  /// count/sum deltas). Holds the registry mutex for the duration, so
  /// `fn` must not call back into the registry.
  void ForEachSample(
      const std::function<void(const std::string& series, double value)>& fn)
      const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::map<std::string, Series> series;  // key: rendered label string
  };

  Family& FamilyFor(std::string_view name, std::string_view help, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Family, std::less<>> families_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_METRICS_H_
