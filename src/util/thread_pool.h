#ifndef LDAPBOUND_UTIL_THREAD_POOL_H_
#define LDAPBOUND_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/metrics.h"

namespace ldapbound {

/// Process-wide pool observability (ldapbound_pool_* families). Counters
/// are updated per task / per ParallelFor lane — never per item — so the
/// cost is invisible next to the work they meter. chunks_per_lane is the
/// shard-balance signal: with perfect stealing every lane of a call
/// observes ~num_chunks/lanes; a heavy-tailed histogram means chunk
/// grains are too coarse for the workload.
struct PoolMetrics {
  Counter& tasks_submitted;
  Counter& tasks_executed;
  Counter& busy_ns;        ///< summed wall time workers spent inside tasks
  Gauge& queue_depth;      ///< tasks enqueued but not yet claimed
  Counter& parallel_for_calls;
  Counter& chunks_claimed;
  Histogram& chunks_per_lane;
};
PoolMetrics& GetPoolMetrics();

/// A fixed-size pool of worker threads with a shared FIFO queue. Tasks are
/// submitted as callables and joined through the returned futures; the pool
/// itself never blocks a submitter.
///
/// The legality engine fans its per-shard and per-constraint work out
/// through a pool (see core/legality_checker.h); the process-wide instance
/// returned by Default() is shared so that concurrent checks do not
/// oversubscribe the machine.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues `fn` for execution on some worker and returns a future for
  /// its result (or exception).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    PoolMetrics& metrics = GetPoolMetrics();
    metrics.tasks_submitted.Increment();
    metrics.queue_depth.Add(1);
    cv_.notify_one();
    return future;
  }

  /// The process-wide pool, lazily created with hardware_concurrency()
  /// workers. Never destroyed (workers may outlive static destructors).
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Resolves a requested worker count: 0 means "hardware concurrency"
/// (itself clamped to >= 1 when the runtime cannot tell).
unsigned ResolveThreads(unsigned requested);

/// Splits [begin, end) into fixed chunks of at most `grain` items and runs
/// `body(lane, chunk, lo, hi)` over every chunk, using the calling thread
/// plus up to `num_threads - 1` workers borrowed from `pool`.
///
/// Chunk boundaries are deterministic — chunk k always covers
/// [begin + k*grain, min(end, begin + (k+1)*grain)) — so callers can write
/// per-chunk result slots and obtain an order identical to a serial run.
/// Chunks are *claimed* dynamically (work stealing via a shared counter),
/// so slow chunks do not stall fast lanes. `lane` < number of participating
/// workers identifies the executing lane for per-worker scratch state.
///
/// With num_threads <= 1 (or a single chunk) everything runs inline on the
/// calling thread: no pool, no atomics — byte-identical to a plain loop.
/// Blocks until every lane has finished (even on error: workers reference
/// the caller's frame, so unwinding early would dangle); if any `body`
/// threw, remaining chunks are abandoned and the first exception rethrows
/// on the caller.
template <typename Body>
void ParallelFor(ThreadPool& pool, size_t begin, size_t end, size_t grain,
                 unsigned num_threads, Body&& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t range = end - begin;
  const size_t num_chunks = (range + grain - 1) / grain;
  unsigned workers = static_cast<unsigned>(
      std::min<size_t>(std::max(1u, num_threads), num_chunks));
  PoolMetrics& metrics = GetPoolMetrics();
  metrics.parallel_for_calls.Increment();
  if (workers <= 1) {
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const size_t lo = begin + chunk * grain;
      const size_t hi = std::min(end, lo + grain);
      body(0u, chunk, lo, hi);
    }
    metrics.chunks_claimed.Increment(num_chunks);
    metrics.chunks_per_lane.Observe(num_chunks);
    return;
  }
  std::atomic<size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  auto run_lane = [&](unsigned lane) {
    size_t claimed = 0;
    try {
      for (size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
           chunk < num_chunks;
           chunk = next.fetch_add(1, std::memory_order_relaxed)) {
        const size_t lo = begin + chunk * grain;
        const size_t hi = std::min(end, lo + grain);
        ++claimed;
        body(lane, chunk, lo, hi);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error == nullptr) first_error = std::current_exception();
      next.store(num_chunks, std::memory_order_relaxed);  // stop other lanes
    }
    metrics.chunks_claimed.Increment(claimed);
    metrics.chunks_per_lane.Observe(claimed);
  };
  std::vector<std::future<void>> futures;
  futures.reserve(workers - 1);
  for (unsigned lane = 1; lane < workers; ++lane) {
    futures.push_back(pool.Submit([&run_lane, lane]() { run_lane(lane); }));
  }
  run_lane(0);
  for (std::future<void>& f : futures) f.get();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_THREAD_POOL_H_
