#ifndef LDAPBOUND_UTIL_COW_H_
#define LDAPBOUND_UTIL_COW_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ldapbound {

/// Copy-on-write containers backing O(Δ) snapshot publication.
///
/// The MVCC read path (DESIGN.md §10) publishes an immutable view of the
/// directory's hot arrays and maps after every commit. Copying them
/// outright would make publication O(directory); these containers make
/// it O(Δ·chunk): the writer mutates privately, and Freeze() produces an
/// immutable view that shares every untouched chunk/overlay with the
/// previous view.
///
/// Concurrency contract (both containers): exactly one writer thread
/// mutates; frozen View objects are immutable and safe to read from any
/// thread. The writer/reader handoff happens through the snapshot
/// publication pointer (seq_cst), not inside these classes — a View must
/// reach readers only via such a publication.

/// Chunked copy-on-write vector. Elements live in fixed-size chunks held
/// by shared_ptr; Set() clones a chunk only if a frozen View still
/// shares it (use_count > 1), so a commit touching Δ elements costs at
/// most Δ chunk copies and Freeze() costs one pointer-table copy.
template <typename T>
class CowVec {
 public:
  static constexpr size_t kChunkBits = 10;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;  // 8KB @ u64

  struct Chunk {
    T data[kChunkSize];
  };

  /// Immutable point-in-time view. Cheap to copy (shares chunks).
  class View {
   public:
    View() = default;

    size_t size() const { return size_; }
    const T& operator[](size_t i) const {
      return chunks_[i >> kChunkBits]->data[i & (kChunkSize - 1)];
    }
    /// operator[] with a default for out-of-range indexes, so views
    /// taken at different capacities compare painlessly.
    T Get(size_t i, T fallback) const {
      return i < size_ ? (*this)[i] : fallback;
    }

   private:
    friend class CowVec;
    std::vector<std::shared_ptr<const Chunk>> chunks_;
    size_t size_ = 0;
  };

  CowVec() = default;

  size_t size() const { return size_; }

  const T& operator[](size_t i) const {
    return chunks_[i >> kChunkBits]->data[i & (kChunkSize - 1)];
  }

  void Set(size_t i, const T& value) {
    MutableChunk(i >> kChunkBits)->data[i & (kChunkSize - 1)] = value;
  }

  /// Grows to `n` elements, filling new space with `fill`. Never
  /// shrinks (EntryIds are append-only).
  void Resize(size_t n, const T& fill) {
    if (n <= size_) return;
    size_t need = (n + kChunkSize - 1) >> kChunkBits;
    while (chunks_.size() < need) {
      auto chunk = std::make_shared<Chunk>();
      std::fill(std::begin(chunk->data), std::end(chunk->data), fill);
      chunks_.push_back(std::move(chunk));
    }
    // Fill the tail of the previously-last chunk.
    for (size_t i = size_; i < n && (i >> kChunkBits) < chunks_.size(); ++i) {
      if ((*this)[i] == fill) continue;  // freshly-made chunks already filled
      Set(i, fill);
    }
    size_ = n;
  }

  /// Immutable view of the current contents: one pointer-table copy,
  /// after which every chunk is shared and the writer reverts to
  /// clone-before-write for each.
  View Freeze() const {
    View v;
    v.chunks_.assign(chunks_.begin(), chunks_.end());
    v.size_ = size_;
    return v;
  }

 private:
  Chunk* MutableChunk(size_t ci) {
    std::shared_ptr<const Chunk>& slot = chunks_[ci];
    if (slot.use_count() > 1) {
      slot = std::make_shared<Chunk>(*slot);  // a frozen View shares it
    }
    return const_cast<Chunk*>(slot.get());
  }

  std::vector<std::shared_ptr<const Chunk>> chunks_;
  size_t size_ = 0;
};

/// Copy-on-write hash map: a shared immutable base plus a chain of
/// overlay deltas. The writer mutates only the newest (mutable) overlay;
/// Freeze() seals it into the chain and starts a fresh one, so a commit
/// group of Δ keys publishes in O(Δ). Overlay entries are optional
/// values; nullopt is a tombstone shadowing a base entry. Lookup walks
/// overlays newest→oldest, then the base. Two mechanisms bound the
/// chain without ever paying O(base) for an O(Δ) commit: adjacent
/// overlays of similar size are merged binary-counter style (chain
/// depth and per-entry recopying both O(log)), and the whole chain is
/// folded into a fresh base only once the overlay volume is a constant
/// fraction of the base — so the O(base) fold is amortized over O(base)
/// delta entries.
template <typename K, typename V, typename Hash = std::hash<K>>
class CowMap {
 public:
  using OverlayMap = std::unordered_map<K, std::optional<V>, Hash>;
  using BaseMap = std::unordered_map<K, V, Hash>;

  /// Immutable point-in-time view (shares base + sealed overlays).
  class View {
   public:
    View() = default;

    const V* Find(const K& key) const {
      for (auto it = overlays_.rbegin(); it != overlays_.rend(); ++it) {
        auto found = (*it)->find(key);
        if (found != (*it)->end()) {
          return found->second.has_value() ? &*found->second : nullptr;
        }
      }
      if (base_ != nullptr) {
        auto found = base_->find(key);
        if (found != base_->end()) return &found->second;
      }
      return nullptr;
    }

    /// Visits every live (non-tombstoned) entry, in no particular
    /// order. Intended for tests and audits, not hot paths.
    template <typename Fn>
    void ForEach(Fn&& fn) const {
      auto shadowed = [&](const K& key, size_t newer_than) {
        for (size_t i = overlays_.size(); i-- > newer_than;) {
          if (overlays_[i]->count(key) != 0) return true;
        }
        return false;
      };
      for (size_t i = overlays_.size(); i-- > 0;) {
        for (const auto& [key, value] : *overlays_[i]) {
          if (value.has_value() && !shadowed(key, i + 1)) fn(key, *value);
        }
      }
      if (base_ != nullptr) {
        for (const auto& [key, value] : *base_) {
          if (!shadowed(key, 0)) fn(key, value);
        }
      }
    }

   private:
    friend class CowMap;
    std::shared_ptr<const BaseMap> base_;
    std::vector<std::shared_ptr<const OverlayMap>> overlays_;  // old→new
  };

  CowMap() : base_(std::make_shared<BaseMap>()) {}

  void Set(const K& key, V value) { mutable_overlay_[key] = std::move(value); }
  void Erase(const K& key) { mutable_overlay_[key] = std::nullopt; }

  /// The value for `key` IF it sits in the not-yet-frozen delta; nullptr
  /// otherwise (absent, tombstoned, or only in frozen state). Values in
  /// the pending delta were placed there after the last Freeze, so for
  /// pointer-like V the writer may mutate the pointee in place: no
  /// frozen View can reference it. This is the clone-once-per-delta
  /// discipline payload maps (class/value postings) rely on.
  V* FindMutableInPending(const K& key) {
    auto it = mutable_overlay_.find(key);
    if (it != mutable_overlay_.end() && it->second.has_value()) {
      return &*it->second;
    }
    return nullptr;
  }

  const V* Find(const K& key) const {
    auto in_mutable = mutable_overlay_.find(key);
    if (in_mutable != mutable_overlay_.end()) {
      return in_mutable->second.has_value() ? &*in_mutable->second : nullptr;
    }
    for (auto it = sealed_.rbegin(); it != sealed_.rend(); ++it) {
      auto found = (*it)->find(key);
      if (found != (*it)->end()) {
        return found->second.has_value() ? &*found->second : nullptr;
      }
    }
    auto found = base_->find(key);
    if (found != base_->end()) return &found->second;
    return nullptr;
  }

  /// Seals the pending delta and returns an immutable view of the
  /// whole map. A per-commit Δ of k keys costs O(k) amortized: small
  /// overlays are merged pairwise while similar in size (each entry is
  /// recopied O(log) times), and the O(base) fold runs only after
  /// O(base) worth of delta entries accumulated.
  View Freeze() {
    if (!mutable_overlay_.empty()) {
      sealed_.push_back(std::make_shared<const OverlayMap>(
          std::move(mutable_overlay_)));
      mutable_overlay_.clear();  // moved-from: restore known-empty state
      sealed_entries_ += sealed_.back()->size();
    }
    if (sealed_entries_ > base_->size() / 4 + 64) {
      Fold();
    } else {
      // Binary-counter compaction: merge the newest overlay into its
      // predecessor while it has grown at least as large, keeping the
      // chain O(log sealed_entries_) deep. Frozen Views hold their own
      // copies of the chain, so replacing overlays here is safe.
      while (sealed_.size() >= 2 &&
             sealed_.back()->size() >= sealed_[sealed_.size() - 2]->size()) {
        auto merged =
            std::make_shared<OverlayMap>(*sealed_[sealed_.size() - 2]);
        for (const auto& [key, value] : *sealed_.back()) {
          (*merged)[key] = value;  // newer wins; tombstones shadow base
        }
        const size_t before =
            sealed_[sealed_.size() - 2]->size() + sealed_.back()->size();
        sealed_.pop_back();
        sealed_.pop_back();
        sealed_entries_ -= before - merged->size();
        sealed_.push_back(std::move(merged));
      }
    }
    View v;
    v.base_ = base_;
    v.overlays_.assign(sealed_.begin(), sealed_.end());
    return v;
  }

  /// Live entries as seen by the writer (base + deltas). O(chain).
  size_t SizeSlow() const {
    size_t n = 0;
    View v;
    v.base_ = base_;
    v.overlays_.assign(sealed_.begin(), sealed_.end());
    // Count the mutable overlay too.
    v.ForEach([&](const K&, const V&) { ++n; });
    for (const auto& [key, value] : mutable_overlay_) {
      const V* under = v.Find(key);
      if (value.has_value() && under == nullptr) ++n;
      if (!value.has_value() && under != nullptr) --n;
    }
    return n;
  }

 private:
  void Fold() {
    auto folded = std::make_shared<BaseMap>(*base_);
    for (const auto& overlay : sealed_) {
      for (const auto& [key, value] : *overlay) {
        if (value.has_value()) {
          (*folded)[key] = *value;
        } else {
          folded->erase(key);
        }
      }
    }
    base_ = std::move(folded);
    sealed_.clear();
    sealed_entries_ = 0;
  }

  std::shared_ptr<const BaseMap> base_;
  std::vector<std::shared_ptr<const OverlayMap>> sealed_;  // old→new
  size_t sealed_entries_ = 0;
  OverlayMap mutable_overlay_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_COW_H_
