#ifndef LDAPBOUND_UTIL_STATUS_H_
#define LDAPBOUND_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ldapbound {

/// Error categories used across the library. Mirrors the coarse-grained
/// code sets of Status types in RocksDB / Arrow: a small fixed enum plus a
/// free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (bad DN, bad LDIF, bad schema text)
  kNotFound,          ///< referenced entity does not exist
  kAlreadyExists,     ///< duplicate entry / class / attribute definition
  kFailedPrecondition,///< operation not valid in the current state
  kOutOfRange,        ///< index or id out of range
  kIllegal,           ///< directory instance violates the bounding-schema
  kInconsistent,      ///< bounding-schema admits no legal instance
  kInternal,          ///< invariant breakage inside the library (a bug)
  // Serving-path resilience codes (DESIGN.md §11). The first three are
  // *retryable*: the request was refused without side effects and a later
  // retry (with backoff) may succeed.
  kUnavailable,       ///< server is degraded (e.g. read-only after a WAL
                      ///< fault); retry after it reports healthy again
  kOverloaded,        ///< admission control shed the request (queue full);
                      ///< retry with backoff
  kDeadlineExceeded,  ///< the per-op deadline expired before the op ran;
                      ///< the op was cancelled without side effects
  kDiskFull,          ///< durable storage is out of space (ENOSPC)
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus a message. `Status` is cheap
/// to copy in the OK case (no allocation) and is the only error-reporting
/// channel of the public API — the library never throws.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Illegal(std::string msg) {
    return Status(StatusCode::kIllegal, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DiskFull(std::string msg) {
    return Status(StatusCode::kDiskFull, std::move(msg));
  }

  /// True for the codes a client may retry (with backoff) without risking
  /// a duplicate side effect: the request was refused or cancelled before
  /// any state changed.
  static bool IsRetryable(StatusCode code) {
    return code == StatusCode::kUnavailable ||
           code == StatusCode::kOverloaded ||
           code == StatusCode::kDeadlineExceeded;
  }
  bool retryable() const { return IsRetryable(code_); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller. Usable only in functions that
/// return `Status`.
#define LDAPBOUND_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::ldapbound::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_STATUS_H_
