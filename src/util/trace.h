#ifndef LDAPBOUND_UTIL_TRACE_H_
#define LDAPBOUND_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ldapbound {

/// Lightweight span tracing for the legality pipeline.
///
/// A span is an RAII scope (LDAPBOUND_TRACE_SPAN) naming a unit of work —
/// a checker pass, one constraint query, a WAL fsync. Spans record into a
/// per-thread buffer; buffers drain into a bounded global ring (oldest
/// events dropped first) either when full or when an export runs. The
/// ring exports as Chrome `trace_event` JSON (chrome://tracing,
/// Perfetto): `ldapbound check --trace-out file.json`.
///
/// Cost model: tracing is off by default and every span site is one
/// relaxed atomic load plus one thread-local read (the SpanCollector
/// probe) in that state. Enabled, a span is two steady_clock
/// reads plus an uncontended per-thread mutex (the owner takes it per
/// event; an exporter takes it only while draining), so sites on
/// per-pass/per-query granularity are safe — do not put spans in
/// per-entry loops.
///
/// Span names must be string literals (or otherwise outlive the tracer):
/// events store the pointer, not a copy.
class Tracer {
 public:
  struct Event {
    const char* name;   ///< literal; not owned
    uint32_t tid;       ///< small per-thread id (not the OS tid)
    uint64_t start_ns;  ///< steady_clock, ns
    uint64_t dur_ns;
    uint64_t op_id = 0; ///< server operation id (TraceOpScope); 0 = none
  };

  /// The process-wide tracer (never destroyed).
  static Tracer& Default();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one completed span (called by TraceSpan; safe from any
  /// thread). No-op while disabled.
  void Record(const char* name, uint64_t start_ns, uint64_t dur_ns);

  /// Drains every thread's buffer into the ring and renders the ring as
  /// Chrome trace JSON. The ring is left empty (consecutive exports see
  /// disjoint events).
  std::string ExportChromeTraceJson();

  /// Drains and discards everything (tests; isolates scenarios).
  void Discard();

  /// Events evicted from the ring since the last export (an export
  /// resets it); nonzero means the ring capacity was too small for the
  /// traced window.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Reads LDAPBOUND_TRACE_OUT; when set, enables the tracer and
  /// registers an atexit hook writing the trace JSON there. Idempotent.
  /// Lets the google-benchmark binaries (which own main()) produce traces
  /// without flag plumbing.
  static void InstallExportFromEnv();

  static uint64_t NowNs();

  /// Internal (used by the thread-buffer machinery in trace.cc).
  std::atomic<uint64_t>& MutableDropped() { return dropped_; }

 private:
  Tracer() = default;
  void DrainAllLocked();  // requires ring_mu_ not held by caller's buffer

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
};

/// Tags spans recorded by this thread while the scope is alive with a
/// server operation id, so a trace export (and the slow-op diagnostics) can
/// attribute checker/evaluator/WAL spans to the operation that ran them.
/// Scopes nest; the enclosing id is restored on destruction.
class TraceOpScope {
 public:
  explicit TraceOpScope(uint64_t op_id);
  ~TraceOpScope();
  TraceOpScope(const TraceOpScope&) = delete;
  TraceOpScope& operator=(const TraceOpScope&) = delete;

  /// The calling thread's current operation id (0 when none).
  static uint64_t current();

 private:
  uint64_t saved_;
};

/// Captures every span recorded by THIS thread while alive, independently
/// of whether the global tracer is enabled — the slow-op diagnostics use
/// one per tracked operation to retain its span tree. Collectors nest; an
/// inner collector shadows the outer one (spans go to the innermost).
class SpanCollector {
 public:
  SpanCollector();
  ~SpanCollector();
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  const std::vector<Tracer::Event>& events() const { return events_; }
  std::vector<Tracer::Event> TakeEvents() { return std::move(events_); }

  /// The calling thread's innermost live collector, or nullptr.
  static SpanCollector* current();

  /// Internal (called by Tracer::Record on the owning thread).
  void Add(const Tracer::Event& event) { events_.push_back(event); }

 private:
  std::vector<Tracer::Event> events_;
  SpanCollector* prev_;
};

/// RAII span: captures the start time at construction if tracing is
/// enabled (or a SpanCollector is active on this thread), records on
/// destruction. Name must be a string literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Tracer::Default().enabled() || SpanCollector::current() != nullptr) {
      name_ = name;
      start_ns_ = Tracer::NowNs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      Tracer::Default().Record(name_, start_ns_, Tracer::NowNs() - start_ns_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
};

#define LDAPBOUND_TRACE_CONCAT2(a, b) a##b
#define LDAPBOUND_TRACE_CONCAT(a, b) LDAPBOUND_TRACE_CONCAT2(a, b)
/// `LDAPBOUND_TRACE_SPAN("checker.content");` — one span per scope.
#define LDAPBOUND_TRACE_SPAN(name)                 \
  ::ldapbound::TraceSpan LDAPBOUND_TRACE_CONCAT(   \
      ldapbound_trace_span_, __COUNTER__)(name)

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_TRACE_H_
