#include "util/status.h"

namespace ldapbound {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIllegal:
      return "Illegal";
    case StatusCode::kInconsistent:
      return "Inconsistent";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDiskFull:
      return "DiskFull";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace ldapbound
