#include "util/string_util.h"

#include <cctype>

namespace ldapbound {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitEscaped(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  bool escaped = false;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size()) {
      out.push_back(s.substr(start, i - start));
      break;
    }
    if (escaped) {
      escaped = false;
      continue;
    }
    if (s[i] == '\\') {
      escaped = true;
      continue;
    }
    if (s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<uint64_t> ParseUint(std::string_view text, uint64_t max) {
  if (text.empty()) {
    return Status::InvalidArgument("expected a number, got empty text");
  }
  if (text[0] == '+' || text[0] == '-') {
    return Status::InvalidArgument("expected an unsigned number, got '" +
                                   std::string(text) + "'");
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("expected a number, got '" +
                                     std::string(text) + "'");
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument("number out of range: '" +
                                     std::string(text) + "'");
    }
    value = value * 10 + digit;
  }
  if (value > max) {
    return Status::InvalidArgument("number out of range: '" +
                                   std::string(text) + "' (max " +
                                   std::to_string(max) + ")");
  }
  return value;
}

Result<uint16_t> ParsePort(std::string_view text) {
  LDAPBOUND_ASSIGN_OR_RETURN(uint64_t value, ParseUint(text, 65535));
  return static_cast<uint16_t>(value);
}

}  // namespace ldapbound
