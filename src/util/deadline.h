#ifndef LDAPBOUND_UTIL_DEADLINE_H_
#define LDAPBOUND_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace ldapbound {

/// An absolute point in steady time by which an operation must have
/// started its irreversible work, or be cancelled with a retryable
/// kDeadlineExceeded instead (DESIGN.md §11).
///
/// Semantics: a deadline is a *cancellation budget*, not an execution
/// bound. It is checked at points where the operation has had no side
/// effects yet (admission, after queueing for the write mutex); once an
/// op's in-memory commit is applied — and snapshot readers may observe
/// it — it is always carried through to durability, because a half-
/// cancelled commit would tear the WAL away from the visible state.
///
/// The default-constructed deadline is infinite (never expires), so every
/// pre-deadline call site keeps its behavior.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  constexpr Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now. AfterMs(0) is already expired —
  /// useful for "fail unless immediately serviceable" probes.
  static Deadline AfterMs(uint64_t ms) {
    Deadline d;
    d.infinite_ = false;
    d.time_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  static Deadline At(Clock::time_point t) {
    Deadline d;
    d.infinite_ = false;
    d.time_ = t;
    return d;
  }

  bool infinite() const { return infinite_; }
  bool expired() const { return !infinite_ && Clock::now() >= time_; }

  /// The absolute expiry (meaningless when infinite()).
  Clock::time_point time() const { return time_; }

  /// Milliseconds left; 0 when expired, and for an infinite deadline a
  /// large sentinel callers should treat as "unbounded".
  uint64_t remaining_ms() const {
    if (infinite_) return UINT64_MAX;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        time_ - Clock::now());
    return left.count() <= 0 ? 0 : static_cast<uint64_t>(left.count());
  }

  /// The earlier of the two (infinite is later than everything).
  static Deadline Earlier(const Deadline& a, const Deadline& b) {
    if (a.infinite_) return b;
    if (b.infinite_) return a;
    return a.time_ <= b.time_ ? a : b;
  }

 private:
  bool infinite_ = true;
  Clock::time_point time_{};
};

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_DEADLINE_H_
