#include "util/base64.h"

#include <array>

namespace ldapbound {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<int8_t, 256> MakeDecodeTable() {
  std::array<int8_t, 256> table{};
  for (size_t i = 0; i < table.size(); ++i) table[i] = -1;
  for (int8_t i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = i;
  }
  return table;
}

constexpr std::array<int8_t, 256> kDecode = MakeDecodeTable();

}  // namespace

std::string Base64Encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    uint32_t v = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8) |
                 static_cast<unsigned char>(data[i + 2]);
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += kAlphabet[(v >> 6) & 63];
    out += kAlphabet[v & 63];
    i += 3;
  }
  size_t rest = data.size() - i;
  if (rest == 1) {
    uint32_t v = static_cast<unsigned char>(data[i]) << 16;
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += "==";
  } else if (rest == 2) {
    uint32_t v = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8);
    out += kAlphabet[(v >> 18) & 63];
    out += kAlphabet[(v >> 12) & 63];
    out += kAlphabet[(v >> 6) & 63];
    out += '=';
  }
  return out;
}

Result<std::string> Base64Decode(std::string_view text) {
  if (text.size() % 4 != 0) {
    return Status::InvalidArgument("base64 length not a multiple of 4");
  }
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    int8_t a = kDecode[static_cast<unsigned char>(text[i])];
    int8_t b = kDecode[static_cast<unsigned char>(text[i + 1])];
    if (a < 0 || b < 0) {
      return Status::InvalidArgument("invalid base64 character");
    }
    bool pad3 = text[i + 2] == '=';
    bool pad4 = text[i + 3] == '=';
    if ((pad3 || pad4) && i + 4 != text.size()) {
      return Status::InvalidArgument("base64 padding not at the end");
    }
    if (pad3 && !pad4) {
      return Status::InvalidArgument("invalid base64 padding");
    }
    int8_t c = pad3 ? 0 : kDecode[static_cast<unsigned char>(text[i + 2])];
    int8_t d = pad4 ? 0 : kDecode[static_cast<unsigned char>(text[i + 3])];
    if (c < 0 || d < 0) {
      return Status::InvalidArgument("invalid base64 character");
    }
    uint32_t v = (static_cast<uint32_t>(a) << 18) |
                 (static_cast<uint32_t>(b) << 12) |
                 (static_cast<uint32_t>(c) << 6) | static_cast<uint32_t>(d);
    out += static_cast<char>((v >> 16) & 0xFF);
    if (!pad3) out += static_cast<char>((v >> 8) & 0xFF);
    if (!pad4) out += static_cast<char>(v & 0xFF);
  }
  return out;
}

bool IsLdifSafe(std::string_view value) {
  if (value.empty()) return true;  // "attr: " with empty value is fine
  unsigned char first = value.front();
  if (first == ' ' || first == ':' || first == '<') return false;
  if (value.back() == ' ') return false;
  for (unsigned char c : value) {
    if (c < 0x20 || c >= 0x7F) return false;  // control or non-ASCII
  }
  return true;
}

}  // namespace ldapbound
