#include "util/thread_pool.h"

namespace ldapbound {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Default() {
  // Leaked intentionally: checker calls may still be joining pool work
  // while static destructors run in other translation units.
  static ThreadPool* pool = new ThreadPool(ResolveThreads(0));
  return *pool;
}

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

}  // namespace ldapbound
