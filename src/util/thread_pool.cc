#include "util/thread_pool.h"

#include <chrono>

namespace ldapbound {

PoolMetrics& GetPoolMetrics() {
  // One registration, then lock-free updates forever (leaked with the
  // registry; workers may touch it during static destruction).
  static PoolMetrics* metrics = new PoolMetrics{
      MetricRegistry::Default().GetCounter(
          "ldapbound_pool_tasks_submitted_total",
          "Tasks enqueued on a ThreadPool"),
      MetricRegistry::Default().GetCounter(
          "ldapbound_pool_tasks_executed_total",
          "Tasks completed by pool workers"),
      MetricRegistry::Default().GetCounter(
          "ldapbound_pool_busy_ns_total",
          "Wall nanoseconds pool workers spent executing tasks"),
      MetricRegistry::Default().GetGauge(
          "ldapbound_pool_queue_depth",
          "Tasks enqueued but not yet claimed by a worker"),
      MetricRegistry::Default().GetCounter(
          "ldapbound_pool_parallel_for_total", "ParallelFor invocations"),
      MetricRegistry::Default().GetCounter(
          "ldapbound_pool_chunks_claimed_total",
          "Work chunks claimed by ParallelFor lanes"),
      MetricRegistry::Default().GetHistogram(
          "ldapbound_pool_chunks_per_lane",
          "Chunks one lane claimed during one ParallelFor "
          "(spread = shard imbalance)"),
  };
  return *metrics;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    PoolMetrics& metrics = GetPoolMetrics();
    metrics.queue_depth.Add(-1);
    auto start = std::chrono::steady_clock::now();
    task();
    metrics.busy_ns.Increment(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    metrics.tasks_executed.Increment();
  }
}

ThreadPool& ThreadPool::Default() {
  // Leaked intentionally: checker calls may still be joining pool work
  // while static destructors run in other translation units.
  static ThreadPool* pool = new ThreadPool(ResolveThreads(0));
  return *pool;
}

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

}  // namespace ldapbound
