#ifndef LDAPBOUND_UTIL_RESULT_H_
#define LDAPBOUND_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace ldapbound {

/// Either a value of type `T` or an error `Status`. Analogous to
/// `arrow::Result<T>` / `absl::StatusOr<T>`; the value accessors must only
/// be used after checking `ok()`.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` in Result functions.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status: allows `return Status::...;`.
  /// A non-OK status is required; constructing from an OK status is a bug.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Propagates the error of a `Result` expression, otherwise binds the value.
/// Usable in functions returning `Status` or `Result<U>`.
#define LDAPBOUND_ASSIGN_OR_RETURN(lhs, expr)       \
  LDAPBOUND_ASSIGN_OR_RETURN_IMPL(                  \
      LDAPBOUND_CONCAT_NAME(_result_, __LINE__), lhs, expr)

#define LDAPBOUND_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define LDAPBOUND_CONCAT_NAME(a, b) LDAPBOUND_CONCAT_NAME_INNER(a, b)
#define LDAPBOUND_CONCAT_NAME_INNER(a, b) a##b

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_RESULT_H_
