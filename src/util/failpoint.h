#ifndef LDAPBOUND_UTIL_FAILPOINT_H_
#define LDAPBOUND_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ldapbound {

/// Deterministic fault injection for crash-recovery testing.
///
/// A *failpoint* is a named site in production code (e.g. "wal.fsync")
/// that tests can arm with an action and a 1-based trigger count: the Nth
/// time execution reaches the site, the action fires. Actions:
///
///  - kError: the site returns an injected Status::Internal and the
///    failpoint disarms (single-shot, so a retry path can make progress);
///  - kCrash: the process terminates immediately via _exit(kCrashExitCode)
///    — no destructors, no buffer flushing — simulating power loss for the
///    crash-recovery harness;
///  - kSleep: the site stalls for the armed delay — simulating a slow disk
///    or a scheduling hiccup for the overload/chaos harness. Unlike
///    kError it stays armed and fires on *every* hit from the trigger
///    onward (a stalling disk stalls every I/O), until Disarm/Reset. The
///    sleep happens outside the registry lock, so concurrent failpoint
///    sites do not serialize behind a stall.
///
/// Sites are declared with LDAPBOUND_FAILPOINT(name), which compiles to
/// nothing when the build disables failpoints (-DLDAPBOUND_FAILPOINTS=OFF),
/// so release binaries pay no cost. The registry is mutex-guarded; hit
/// counting is exact under concurrency.
class Failpoints {
 public:
  enum class Action : uint8_t { kError, kCrash, kSleep };

  /// The exit code kCrash terminates with; harnesses assert on it to tell
  /// an injected crash from an ordinary failure.
  static constexpr int kCrashExitCode = 42;

  /// True when the build compiles failpoint sites in. Tests that depend on
  /// injection should GTEST_SKIP() when this is false.
  static bool enabled();

  /// Arms `name`: the `trigger_on_hit`-th subsequent Hit (1-based) fires
  /// `action`. Re-arming replaces the previous configuration and resets the
  /// hit count. `sleep_ms` is the stall duration for kSleep (ignored by the
  /// other actions).
  static void Arm(std::string_view name, Action action,
                  uint64_t trigger_on_hit = 1, uint64_t sleep_ms = 0);

  static void Disarm(std::string_view name);

  /// Disarms everything and clears all hit counts.
  static void Reset();

  /// Times Hit() has been reached for `name` since it was (re)armed or
  /// first hit.
  static uint64_t HitCount(std::string_view name);

  /// Arms failpoints from a spec string — the format of the
  /// LDAPBOUND_FAILPOINTS environment variable used by child processes of
  /// the crash harness: comma-separated `name=action@n` terms, e.g.
  ///   "wal.fsync=crash@3,wal.write=error@1,wal.fsync=sleep:50@2"
  /// (`@n` optional, default 1; kSleep takes its stall in milliseconds
  /// after a colon, default 10). Returns InvalidArgument on malformed
  /// specs.
  static Status ArmFromSpec(std::string_view spec);

  /// Reads the LDAPBOUND_FAILPOINTS environment variable (if set) and arms
  /// from it. Called explicitly by harness child processes, never
  /// automatically.
  static Status ArmFromEnv();

  /// Production-code entry point — use the LDAPBOUND_FAILPOINT macro
  /// instead of calling this directly. Returns OK unless `site` is armed
  /// and this hit triggers.
  static Status Hit(std::string_view site);
};

#ifdef LDAPBOUND_FAILPOINTS_ENABLED
/// Declares a failpoint site. Must appear in a function returning Status
/// (or Result<T>): an injected error propagates as the function's result.
#define LDAPBOUND_FAILPOINT(site)                             \
  do {                                                        \
    ::ldapbound::Status _fp = ::ldapbound::Failpoints::Hit(site); \
    if (!_fp.ok()) return _fp;                                \
  } while (false)

/// Like LDAPBOUND_FAILPOINT, but an injected kError returns `status_expr`
/// instead of the generic injected status — lets a site simulate a
/// *specific* failure (e.g. "wal.fsync.enospc" returning the disk-full
/// status the real ENOSPC path would produce), so the error-classification
/// logic downstream is exercised by the same injection machinery.
#define LDAPBOUND_FAILPOINT_AS(site, status_expr)             \
  do {                                                        \
    ::ldapbound::Status _fp = ::ldapbound::Failpoints::Hit(site); \
    if (!_fp.ok()) return (status_expr);                      \
  } while (false)
#else
#define LDAPBOUND_FAILPOINT(site) \
  do {                            \
  } while (false)
#define LDAPBOUND_FAILPOINT_AS(site, status_expr) \
  do {                                            \
  } while (false)
#endif

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_FAILPOINT_H_
