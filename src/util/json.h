#ifndef LDAPBOUND_UTIL_JSON_H_
#define LDAPBOUND_UTIL_JSON_H_

#include <string>
#include <string_view>

namespace ldapbound {

/// Minimal JSON emission helpers shared by every hand-rolled JSON renderer
/// in the tree (EXPLAIN plans, the structured log, the monitor endpoint,
/// slow-op dumps). Emission only — parsing JSON is out of scope.

/// Appends `value` to `out` with JSON string escaping applied (quote,
/// backslash, and control characters; the latter as \uXXXX or the short
/// forms \n \r \t \b \f).
void AppendJsonEscaped(std::string& out, std::string_view value);

/// `value` as a quoted, escaped JSON string literal.
std::string JsonQuote(std::string_view value);

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_JSON_H_
