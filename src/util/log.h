#ifndef LDAPBOUND_UTIL_LOG_H_
#define LDAPBOUND_UTIL_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace ldapbound {

/// One structured log event, built field-by-field and emitted as a single
/// JSON object on one line. Keys are written in insertion order; values are
/// escaped (util/json.h). The event name always comes first:
///
///   LogEvent("op").Str("op", "add").Num("dur_ns", 1234).Bool("ok", true)
///   -> {"event":"op","op":"add","dur_ns":1234,"ok":true}
class LogEvent {
 public:
  explicit LogEvent(std::string_view event);

  LogEvent& Str(std::string_view key, std::string_view value);
  LogEvent& Num(std::string_view key, uint64_t value);
  LogEvent& SignedNum(std::string_view key, int64_t value);
  LogEvent& Bool(std::string_view key, bool value);

  /// The finished JSON object (no trailing newline).
  std::string json() const;

 private:
  std::string buf_;
};

/// Process-wide structured JSON log sink: JSON-lines, one event per line,
/// flushed per write. Disabled by default (enabled() is false and Write is
/// a no-op) so instrumented code can log unconditionally; `ldapbound serve
/// --log-json` points it at a file or stderr. Writes are serialized by a
/// mutex — callers are expected to log at operation granularity, never
/// per entry.
class JsonLog {
 public:
  /// The process-wide sink used by the server's op diagnostics.
  static JsonLog& Default();

  JsonLog() = default;

  /// Directs events to `sink` (not owned; nullptr disables). A "ts_ms"
  /// wall-clock field is prepended to every event written.
  void SetSink(std::FILE* sink);

  bool enabled() const;

  /// Emits `event` as one line; no-op when disabled.
  void Write(const LogEvent& event);

 private:
  mutable std::mutex mu_;                    // serializes writes
  std::atomic<std::FILE*> sink_{nullptr};    // lock-free enabled() probe
};

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_LOG_H_
