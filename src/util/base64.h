#ifndef LDAPBOUND_UTIL_BASE64_H_
#define LDAPBOUND_UTIL_BASE64_H_

#include <string>
#include <string_view>

#include "util/result.h"

namespace ldapbound {

/// Standard base64 (RFC 4648, with padding). Used by the LDIF reader and
/// writer for values that cannot be written verbatim (`attr:: <base64>`).
std::string Base64Encode(std::string_view data);

/// Strict decode: rejects bad characters, bad lengths and bad padding.
Result<std::string> Base64Decode(std::string_view text);

/// True if an LDIF value can be written directly after "attr: " — it must
/// be non-empty ASCII without control characters and must not start with a
/// space, colon or '<' (RFC 2849 SAFE-INIT-CHAR / SAFE-CHAR rules),
/// nor end with a space.
bool IsLdifSafe(std::string_view value);

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_BASE64_H_
