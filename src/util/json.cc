#include "util/json.h"

#include <cstdio>

namespace ldapbound {

void AppendJsonEscaped(std::string& out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string JsonQuote(std::string_view value) {
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  AppendJsonEscaped(out, value);
  out += '"';
  return out;
}

}  // namespace ldapbound
