#ifndef LDAPBOUND_UTIL_CRC32C_H_
#define LDAPBOUND_UTIL_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace ldapbound {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected): the checksum
/// used to frame write-ahead-log records, chosen for its error-detection
/// properties on short messages (the same choice RocksDB and LevelDB make
/// for their log formats). Software slice-by-one implementation; fast
/// enough for commit-sized payloads.
uint32_t Crc32c(std::string_view data);

/// Incremental form: extends `crc` (a previous Crc32c result) with `data`.
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

/// A CRC stored next to the data it protects should be masked so that
/// computing the CRC of a blob that embeds its own checksum does not
/// produce degenerate values (LevelDB's masking trick).
uint32_t Crc32cMask(uint32_t crc);
uint32_t Crc32cUnmask(uint32_t masked);

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_CRC32C_H_
