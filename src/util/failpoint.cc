#include "util/failpoint.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "util/string_util.h"

namespace ldapbound {

namespace {

struct FailpointState {
  bool armed = false;
  Failpoints::Action action = Failpoints::Action::kError;
  uint64_t trigger_on_hit = 1;
  uint64_t sleep_ms = 0;
  uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, FailpointState, std::less<>> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: usable at exit
  return *registry;
}

}  // namespace

bool Failpoints::enabled() {
#ifdef LDAPBOUND_FAILPOINTS_ENABLED
  return true;
#else
  return false;
#endif
}

void Failpoints::Arm(std::string_view name, Action action,
                     uint64_t trigger_on_hit, uint64_t sleep_ms) {
  if (trigger_on_hit == 0) trigger_on_hit = 1;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  FailpointState& state = registry.points[std::string(name)];
  state.armed = true;
  state.action = action;
  state.trigger_on_hit = trigger_on_hit;
  state.sleep_ms = sleep_ms;
  state.hits = 0;
}

void Failpoints::Disarm(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it != registry.points.end()) it->second.armed = false;
}

void Failpoints::Reset() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.clear();
}

uint64_t Failpoints::HitCount(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

Status Failpoints::Hit(std::string_view site) {
  uint64_t sleep_ms = 0;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.points.find(site);
    if (it == registry.points.end()) {
      // Count hits even for unarmed sites so tests can assert coverage.
      registry.points[std::string(site)].hits = 1;
      return Status::OK();
    }
    FailpointState& state = it->second;
    ++state.hits;
    if (!state.armed) return Status::OK();
    if (state.action == Action::kSleep) {
      // A stalling disk stalls every I/O: fire on every hit from the
      // trigger onward, staying armed; sleep outside the lock below so
      // concurrent sites do not serialize behind the stall.
      if (state.hits >= state.trigger_on_hit) sleep_ms = state.sleep_ms;
    } else if (state.hits == state.trigger_on_hit) {
      if (state.action == Action::kCrash) {
        // Simulated power loss: no destructors, no stream flushing.
        _exit(kCrashExitCode);
      }
      state.armed = false;  // kError is single-shot
      return Status::Internal("injected failure at failpoint '" +
                              std::string(site) + "' (hit " +
                              std::to_string(state.hits) + ")");
    }
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return Status::OK();
}

Status Failpoints::ArmFromSpec(std::string_view spec) {
  for (std::string_view term : Split(spec, ',')) {
    term = StripWhitespace(term);
    if (term.empty()) continue;
    size_t eq = term.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("failpoint spec '" + std::string(term) +
                                     "': expected name=action[@n]");
    }
    std::string_view name = StripWhitespace(term.substr(0, eq));
    std::string_view rest = StripWhitespace(term.substr(eq + 1));
    uint64_t n = 1;
    size_t at = rest.find('@');
    if (at != std::string_view::npos) {
      std::string_view digits = rest.substr(at + 1);
      if (digits.empty()) {
        return Status::InvalidArgument("failpoint spec '" + std::string(term) +
                                       "': empty trigger count");
      }
      n = 0;
      for (char c : digits) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument("failpoint spec '" +
                                         std::string(term) +
                                         "': bad trigger count");
        }
        n = n * 10 + static_cast<uint64_t>(c - '0');
      }
      rest = StripWhitespace(rest.substr(0, at));
    }
    // kSleep takes its stall duration after a colon: "sleep:50".
    uint64_t sleep_ms = 10;
    size_t colon = rest.find(':');
    std::string_view action_word = rest;
    if (colon != std::string_view::npos) {
      std::string_view digits = StripWhitespace(rest.substr(colon + 1));
      if (digits.empty()) {
        return Status::InvalidArgument("failpoint spec '" + std::string(term) +
                                       "': empty sleep duration");
      }
      sleep_ms = 0;
      for (char c : digits) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument("failpoint spec '" +
                                         std::string(term) +
                                         "': bad sleep duration");
        }
        sleep_ms = sleep_ms * 10 + static_cast<uint64_t>(c - '0');
      }
      action_word = StripWhitespace(rest.substr(0, colon));
    }
    Action action;
    if (EqualsIgnoreCase(action_word, "error")) {
      action = Action::kError;
    } else if (EqualsIgnoreCase(action_word, "crash")) {
      action = Action::kCrash;
    } else if (EqualsIgnoreCase(action_word, "sleep")) {
      action = Action::kSleep;
    } else {
      return Status::InvalidArgument("failpoint spec '" + std::string(term) +
                                     "': unknown action '" +
                                     std::string(rest) + "'");
    }
    if (name.empty()) {
      return Status::InvalidArgument("failpoint spec '" + std::string(term) +
                                     "': empty name");
    }
    Arm(name, action, n, sleep_ms);
  }
  return Status::OK();
}

Status Failpoints::ArmFromEnv() {
  const char* env = std::getenv("LDAPBOUND_FAILPOINTS");
  if (env == nullptr || *env == '\0') return Status::OK();
  return ArmFromSpec(env);
}

}  // namespace ldapbound
