#include "util/epoch.h"

#include <algorithm>
#include <limits>

#include "util/metrics.h"

namespace ldapbound {

namespace {

struct EpochMetrics {
  Gauge& live_readers;
  Gauge& retired_pending;

  static EpochMetrics& Get() {
    static EpochMetrics* m = [] {
      MetricRegistry& r = MetricRegistry::Default();
      return new EpochMetrics{
          r.GetGauge("ldapbound_epoch_live_readers",
                     "Reader threads currently pinned inside an epoch "
                     "read region."),
          r.GetGauge("ldapbound_epoch_retired_pending",
                     "Retired objects awaiting their grace period."),
      };
    }();
    return *m;
  }
};

std::atomic<uint64_t> g_next_manager_id{1};

}  // namespace

/// Per-thread slot cache. One thread can hold slots in several managers
/// (the process Default() plus test-local ones); entries co-own the
/// arena so releasing at thread exit is safe even if the manager died
/// first. Managers are identified by process-unique id, never by
/// pointer, so a recycled allocation cannot alias a stale cache entry.
struct EpochTls {
  struct Entry {
    uint64_t manager_id = 0;
    std::shared_ptr<EpochManager::SlotArena> arena;
    EpochManager::Slot* slot = nullptr;
    int depth = 0;  // nested-pin count; outermost pin owns slot->epoch
  };
  std::vector<Entry> entries;

  ~EpochTls() {
    for (Entry& e : entries) {
      if (e.slot != nullptr) {
        e.slot->epoch.store(0, std::memory_order_seq_cst);
        e.slot->in_use.store(false, std::memory_order_seq_cst);
      }
    }
  }

  Entry& EntryFor(const EpochManager& mgr) {
    for (Entry& e : entries) {
      if (e.manager_id == mgr.id_) return e;
    }
    entries.push_back(Entry{mgr.id_, mgr.arena_, nullptr, 0});
    return entries.back();
  }

  static EpochTls& Get() {
    thread_local EpochTls tls;
    return tls;
  }
};

EpochManager::EpochManager()
    : id_(g_next_manager_id.fetch_add(1, std::memory_order_relaxed)),
      arena_(std::make_shared<SlotArena>()) {}

EpochManager::~EpochManager() {
  // Any still-queued deleters have no readers left that this manager
  // knows about; run them. (Live pins outliving the manager are a
  // caller bug — Pins hold a raw manager pointer.)
  std::vector<Retired> pending;
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    pending.swap(retired_);
  }
  for (Retired& r : pending) r.deleter();
  EpochMetrics::Get().retired_pending.Add(
      -static_cast<int64_t>(pending.size()));
}

EpochManager& EpochManager::Default() {
  static EpochManager* mgr = new EpochManager();  // never destroyed
  return *mgr;
}

EpochManager::Slot* EpochManager::ThreadSlot() {
  EpochTls::Entry& entry = EpochTls::Get().EntryFor(*this);
  if (entry.slot == nullptr) {
    std::lock_guard<std::mutex> lock(arena_->mu);
    for (Slot& s : arena_->slots) {
      if (!s.in_use.load(std::memory_order_seq_cst)) {
        s.in_use.store(true, std::memory_order_seq_cst);
        entry.slot = &s;
        break;
      }
    }
    if (entry.slot == nullptr) {
      arena_->slots.emplace_back();  // deque: addresses stay stable
      arena_->slots.back().in_use.store(true, std::memory_order_seq_cst);
      entry.slot = &arena_->slots.back();
    }
  }
  return entry.slot;
}

EpochManager::Pin EpochManager::Enter() {
  EpochTls::Entry& entry = EpochTls::Get().EntryFor(*this);
  if (entry.depth++ > 0) return Pin(this);  // nested: slot already pinned

  Slot* slot = ThreadSlot();
  // Publish the epoch we are entering, then re-check: if the global
  // epoch advanced between our load and our store, a concurrent Retire
  // may have scanned past this slot before our pin became visible, so
  // re-pin at the newer epoch until stable. exchange (an RMW) rather
  // than a fence keeps the seq_cst ordering argument explicit and
  // TSan-visible.
  uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot->epoch.exchange(e, std::memory_order_seq_cst);
    uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
  live_readers_.fetch_add(1, std::memory_order_relaxed);
  EpochMetrics::Get().live_readers.Add(1);
  return Pin(this);
}

void EpochManager::Leave() {
  EpochTls::Entry& entry = EpochTls::Get().EntryFor(*this);
  if (--entry.depth > 0) return;
  entry.slot->epoch.store(0, std::memory_order_seq_cst);
  live_readers_.fetch_add(-1, std::memory_order_relaxed);
  EpochMetrics::Get().live_readers.Add(-1);
}

void EpochManager::Retire(std::function<void()> deleter) {
  // Advance first, then record: everything pinned before the advance
  // is at an epoch <= the retire epoch and thus blocks reclamation.
  uint64_t retire_epoch =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    retired_.push_back(Retired{retire_epoch, std::move(deleter)});
  }
  EpochMetrics::Get().retired_pending.Add(1);
  ReclaimSome();
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min_epoch = std::numeric_limits<uint64_t>::max();
  std::lock_guard<std::mutex> lock(arena_->mu);
  for (const Slot& s : arena_->slots) {
    uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min_epoch) min_epoch = e;
  }
  return min_epoch;
}

size_t EpochManager::ReclaimSome() {
  // A slot pinned at epoch e may hold pointers retired at epoch >= e
  // (the reader loaded the head before those retirements swapped it
  // out), so only items with retire_epoch < min active epoch are safe.
  uint64_t min_epoch = MinActiveEpoch();
  std::vector<Retired> ready;
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->epoch < min_epoch) {
        ready.push_back(std::move(*it));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    retired_.erase(keep, retired_.end());
  }
  // Deleters run outside both locks: they may be arbitrarily heavy
  // (freeing a whole snapshot) and must not block readers registering.
  for (Retired& r : ready) r.deleter();
  EpochMetrics::Get().retired_pending.Add(-static_cast<int64_t>(ready.size()));
  return ready.size();
}

size_t EpochManager::retired_pending() const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  return retired_.size();
}

size_t EpochManager::live_readers() const {
  int64_t n = live_readers_.load(std::memory_order_relaxed);
  return n < 0 ? 0 : static_cast<size_t>(n);
}

}  // namespace ldapbound
