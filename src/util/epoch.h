#ifndef LDAPBOUND_UTIL_EPOCH_H_
#define LDAPBOUND_UTIL_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace ldapbound {

/// Epoch-based reclamation: the grace-period primitive under the MVCC read
/// path. A publisher that replaces a shared immutable object (a
/// DirectorySnapshot, a grown ConcurrentCountTable) cannot free the old
/// version while a reader may still hold a raw pointer to it; reference
/// counting the pointer itself would put an atomic RMW on a shared cache
/// line into every read. Instead readers *pin an epoch*:
///
///  - each reader thread owns a cache-line-padded slot; entering a read
///    region stores the current global epoch into the slot (one RMW on a
///    line nobody else writes), leaving stores 0;
///  - retiring an object advances the global epoch and queues the object
///    with the epoch it was retired at;
///  - a retired object is freed once every active slot has observed a
///    LATER epoch (min active epoch > retire epoch): any reader still
///    inside an earlier epoch may hold the old pointer, any reader that
///    pinned after the advance can only have loaded the replacement,
///    because publishers swap the pointer *before* advancing.
///
/// Readers therefore never block, never touch a shared line, and never
/// observe a torn or freed object; writers pay one fetch_add plus an
/// O(#reader-threads) scan per retirement (amortizable via ReclaimSome).
///
/// All operations use seq_cst atomics — the protocol's "swap, advance,
/// scan" vs "pin, re-check, load" interleaving argument needs the single
/// total order, and RMWs (rather than fences) keep the reasoning visible
/// to ThreadSanitizer.
///
/// Slots are owned by a SlotArena that is shared between the manager and
/// the registering threads, so a thread exiting after its manager was
/// destroyed (or vice versa) releases its slot without touching freed
/// memory. Deleters queued at process exit may leak; the process-wide
/// Default() manager is never destroyed (like MetricRegistry).
class EpochManager {
 public:
  EpochManager();
  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// The process-wide manager (never destroyed).
  static EpochManager& Default();

  struct Slot {
    /// Epoch this reader is pinned at; 0 = not in a read region.
    std::atomic<uint64_t> epoch{0};
    /// Claimed by a live thread (slots are recycled on thread exit).
    std::atomic<bool> in_use{false};
    char padding[64 - sizeof(std::atomic<uint64_t>) -
                 sizeof(std::atomic<bool>)];
  };

  /// RAII read-region pin. Movable; the moved-from pin is empty. Nested
  /// pins on the same thread are cheap (a depth counter — the outermost
  /// pin owns the slot epoch).
  class Pin {
   public:
    Pin() = default;
    ~Pin() { Release(); }
    Pin(Pin&& other) noexcept : mgr_(other.mgr_) { other.mgr_ = nullptr; }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        mgr_ = other.mgr_;
        other.mgr_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    bool pinned() const { return mgr_ != nullptr; }
    /// Leave the read region early (idempotent).
    void Release() {
      if (mgr_ != nullptr) {
        mgr_->Leave();
        mgr_ = nullptr;
      }
    }

   private:
    friend class EpochManager;
    explicit Pin(EpochManager* mgr) : mgr_(mgr) {}
    EpochManager* mgr_ = nullptr;
  };

  /// Enters a read region: pins this thread at the current epoch. Any
  /// epoch-protected pointer loaded while the Pin lives stays valid until
  /// the Pin is released.
  Pin Enter();

  /// Queues `deleter` to run once every reader active *now* has drained.
  /// The object it frees must already be unreachable to new readers (the
  /// publisher swapped it out before calling Retire). Thread-safe; the
  /// caller is typically the single publisher.
  void Retire(std::function<void()> deleter);

  /// Frees every retired object whose grace period has elapsed; returns
  /// how many were freed. Called by Retire; callers with long publish
  /// gaps can call it directly so reclamation is not deferred forever.
  size_t ReclaimSome();

  /// The current global epoch (starts at 1; 0 is the idle sentinel).
  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }
  /// Retired-but-not-yet-freed deleters.
  size_t retired_pending() const;
  /// Reader slots currently inside a read region (approximate: sampled).
  size_t live_readers() const;

 private:
  struct SlotArena {
    std::mutex mu;
    std::deque<Slot> slots;  // deque: stable addresses under growth
  };
  struct Retired {
    uint64_t epoch;
    std::function<void()> deleter;
  };

  void Leave();
  Slot* ThreadSlot();
  /// Smallest epoch pinned by any active reader; UINT64_MAX if none.
  uint64_t MinActiveEpoch() const;

  const uint64_t id_;  // process-unique, guards thread-local caching
  std::shared_ptr<SlotArena> arena_;
  std::atomic<uint64_t> global_epoch_{1};
  mutable std::mutex retired_mu_;
  std::vector<Retired> retired_;
  std::atomic<int64_t> live_readers_{0};

  friend struct EpochTls;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_EPOCH_H_
