#ifndef LDAPBOUND_UTIL_CONCURRENT_TABLE_H_
#define LDAPBOUND_UTIL_CONCURRENT_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/epoch.h"

namespace ldapbound {

/// Single-writer / many-reader open-addressed count table, in the style
/// of concurrent growing hash tables (growt): fixed-size cell arrays of
/// atomic (key, value) pairs, lock-free reads, and growth by migrating
/// into a double-size table published with one atomic pointer swap. The
/// retired table is reclaimed through the EpochManager once every reader
/// that could still be probing it has drained.
///
/// This backs `Directory::CountWithClass`: the commit path (single
/// writer, serialized on the server write mutex) bumps class populations
/// with `Update`, while legality checks and monitor endpoints read them
/// from any thread with `Get` — no lock, no reader/writer exclusion.
///
/// Cell protocol: a cell starts with key == kEmptyKey. The writer claims
/// it by storing the value first, then the key with release; readers
/// probe keys with acquire, so a visible key implies a visible value.
/// Values are updated with fetch_add (relaxed — counts are independent
/// of other memory). Keys are never removed; a count may reach zero but
/// the cell stays.
class ConcurrentCountTable {
 public:
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};

  explicit ConcurrentCountTable(EpochManager& epochs,
                                size_t initial_capacity = 64)
      : epochs_(&epochs) {
    size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    head_.store(new Table(cap), std::memory_order_seq_cst);
  }

  ~ConcurrentCountTable() {
    // The owner must guarantee no readers remain (the Directory is
    // being destroyed); retired tables were already handed to the
    // EpochManager, only the head is ours.
    delete head_.load(std::memory_order_seq_cst);
  }

  ConcurrentCountTable(const ConcurrentCountTable&) = delete;
  ConcurrentCountTable& operator=(const ConcurrentCountTable&) = delete;

  /// Adds `delta` to the count for `key`. Single writer only.
  void Update(uint64_t key, int64_t delta) {
    Table* t = head_.load(std::memory_order_seq_cst);
    if ((used_ + 1) * 4 >= t->capacity * 3) t = Grow(t);
    Cell& cell = t->FindOrClaim(key, &used_);
    cell.value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Current count for `key` (0 if absent). Lock-free; callable from
  /// any thread concurrently with Update/growth.
  int64_t Get(uint64_t key) const {
    EpochManager::Pin pin = epochs_->Enter();
    const Table* t = head_.load(std::memory_order_seq_cst);
    return t->Find(key);
  }

  /// Writer-side read (no epoch entry). Only valid on the writer
  /// thread or with writers externally excluded.
  int64_t GetUnsynchronized(uint64_t key) const {
    return head_.load(std::memory_order_seq_cst)->Find(key);
  }

  size_t capacity() const {
    return head_.load(std::memory_order_seq_cst)->capacity;
  }
  uint64_t growths() const { return growths_; }

 private:
  struct Cell {
    std::atomic<uint64_t> key{kEmptyKey};
    std::atomic<int64_t> value{0};
  };

  struct Table {
    explicit Table(size_t cap) : capacity(cap), cells(cap) {}

    int64_t Find(uint64_t key) const {
      size_t mask = capacity - 1;
      for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
        uint64_t k = cells[i].key.load(std::memory_order_acquire);
        if (k == key) {
          return cells[i].value.load(std::memory_order_relaxed);
        }
        if (k == kEmptyKey) return 0;
      }
    }

    /// Writer-only: finds the cell for `key`, claiming an empty one
    /// if absent (value first, then key with release).
    Cell& FindOrClaim(uint64_t key, size_t* used) {
      size_t mask = capacity - 1;
      for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
        uint64_t k = cells[i].key.load(std::memory_order_acquire);
        if (k == key) return cells[i];
        if (k == kEmptyKey) {
          cells[i].value.store(0, std::memory_order_relaxed);
          cells[i].key.store(key, std::memory_order_release);
          ++*used;
          return cells[i];
        }
      }
    }

    static uint64_t Hash(uint64_t key) {
      // Fibonacci / splitmix-style mix: claimed keys are small dense
      // ids, so identity hashing would cluster.
      uint64_t x = key + 0x9e3779b97f4a7c15ull;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return x ^ (x >> 31);
    }

    const size_t capacity;
    std::vector<Cell> cells;  // vector<atomic>: sized once, never resized
  };

  Table* Grow(Table* old) {
    Table* bigger = new Table(old->capacity * 2);
    size_t migrated = 0;
    for (const Cell& cell : old->cells) {
      uint64_t k = cell.key.load(std::memory_order_acquire);
      if (k == kEmptyKey) continue;
      Cell& fresh = bigger->FindOrClaim(k, &migrated);
      fresh.value.store(cell.value.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    used_ = migrated;
    ++growths_;
    head_.store(bigger, std::memory_order_seq_cst);
    epochs_->Retire([old] { delete old; });
    return bigger;
  }

  EpochManager* epochs_;
  std::atomic<Table*> head_{nullptr};
  size_t used_ = 0;        // writer-only
  uint64_t growths_ = 0;   // writer-only
};

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_CONCURRENT_TABLE_H_
