#ifndef LDAPBOUND_UTIL_BACKOFF_H_
#define LDAPBOUND_UTIL_BACKOFF_H_

#include <cstdint>

namespace ldapbound {

/// Capped exponential backoff schedule: initial, initial*m, initial*m²,
/// ... up to a ceiling. Deterministic (no jitter) so recovery-time tests
/// can assert an exact budget; the single-process recovery probe has no
/// thundering-herd peer to de-correlate from.
///
/// Not thread-safe: owned and advanced by one supervisor (the
/// HealthManager probe thread); observers read current_ms() through the
/// owner's synchronization.
class ExponentialBackoff {
 public:
  struct Options {
    uint64_t initial_ms = 100;
    uint64_t max_ms = 5000;
    double multiplier = 2.0;
  };

  ExponentialBackoff() : ExponentialBackoff(Options{}) {}
  explicit ExponentialBackoff(const Options& options) : options_(options) {
    if (options_.initial_ms == 0) options_.initial_ms = 1;
    if (options_.max_ms < options_.initial_ms) {
      options_.max_ms = options_.initial_ms;
    }
    if (options_.multiplier < 1.0) options_.multiplier = 1.0;
    Reset();
  }

  /// The delay to wait now; advances the schedule for the next failure.
  uint64_t NextDelayMs() {
    uint64_t delay = current_ms_;
    double next = static_cast<double>(current_ms_) * options_.multiplier;
    current_ms_ = next >= static_cast<double>(options_.max_ms)
                      ? options_.max_ms
                      : static_cast<uint64_t>(next);
    return delay;
  }

  /// Back to the initial delay (call after a success).
  void Reset() { current_ms_ = options_.initial_ms; }

  /// The delay the next NextDelayMs() will return.
  uint64_t current_ms() const { return current_ms_; }

  const Options& options() const { return options_; }

 private:
  Options options_;
  uint64_t current_ms_ = 0;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_UTIL_BACKOFF_H_
