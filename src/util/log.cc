#include "util/log.h"

#include <chrono>

#include "util/json.h"

namespace ldapbound {

LogEvent::LogEvent(std::string_view event) {
  buf_ = "{\"event\":";
  buf_ += JsonQuote(event);
}

LogEvent& LogEvent::Str(std::string_view key, std::string_view value) {
  buf_ += ',';
  buf_ += JsonQuote(key);
  buf_ += ':';
  buf_ += JsonQuote(value);
  return *this;
}

LogEvent& LogEvent::Num(std::string_view key, uint64_t value) {
  buf_ += ',';
  buf_ += JsonQuote(key);
  buf_ += ':';
  buf_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::SignedNum(std::string_view key, int64_t value) {
  buf_ += ',';
  buf_ += JsonQuote(key);
  buf_ += ':';
  buf_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::Bool(std::string_view key, bool value) {
  buf_ += ',';
  buf_ += JsonQuote(key);
  buf_ += ':';
  buf_ += value ? "true" : "false";
  return *this;
}

std::string LogEvent::json() const { return buf_ + '}'; }

JsonLog& JsonLog::Default() {
  static JsonLog* log = new JsonLog();  // leaked: outlives static dtors
  return *log;
}

void JsonLog::SetSink(std::FILE* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_.store(sink, std::memory_order_release);
}

bool JsonLog::enabled() const {
  return sink_.load(std::memory_order_acquire) != nullptr;
}

void JsonLog::Write(const LogEvent& event) {
  const uint64_t ts_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* sink = sink_.load(std::memory_order_relaxed);
  if (sink == nullptr) return;
  std::string line = event.json();
  // Splice ts_ms right after '{' so it leads every event without the
  // builder having to know about it.
  std::string stamped = "{\"ts_ms\":" + std::to_string(ts_ms) + ',';
  stamped.append(line, 1, std::string::npos);
  stamped += '\n';
  std::fwrite(stamped.data(), 1, stamped.size(), sink);
  std::fflush(sink);
}

}  // namespace ldapbound
