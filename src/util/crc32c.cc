#include "util/crc32c.h"

#include <array>

namespace ldapbound {

namespace {

// Table for the reflected Castagnoli polynomial 0x82F63B78, generated once
// at first use.
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  const std::array<uint32_t, 256>& table = Crc32cTable();
  crc = ~crc;
  for (unsigned char byte : data) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF];
  }
  return ~crc;
}

uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}

uint32_t Crc32cUnmask(uint32_t masked) {
  uint32_t rot = masked - 0xA282EAD8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace ldapbound
