#include "model/forest_index.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "model/directory.h"
#include "model/entry.h"
#include "util/metrics.h"

namespace ldapbound {

namespace {

struct IndexMetrics {
  Counter& relabels;
  Counter& full_rebuilds;
  static IndexMetrics& Get() {
    static IndexMetrics m{
        MetricRegistry::Default().GetCounter(
            "ldapbound_index_relabels_total",
            "Local label redistributions performed by incremental "
            "ForestIndex maintenance"),
        MetricRegistry::Default().GetCounter(
            "ldapbound_index_full_rebuilds_total",
            "Whole-label-space ForestIndex rebuilds (the fallback when no "
            "ancestor can absorb a local relabel)")};
    return m;
  }
};

using SizeMap = std::unordered_map<EntryId, uint64_t>;

/// Fills `sizes` with the subtree size (alive entries, root included) of
/// every entry in the subtree at `root`; returns sizes[root].
uint64_t ComputeSizes(const Directory& d, EntryId root, SizeMap& sizes) {
  struct Frame {
    EntryId id;
    bool exit;
  };
  std::vector<Frame> stack{{root, false}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Entry& e = d.entry(f.id);
    if (f.exit) {
      uint64_t s = 1;
      for (EntryId c : e.children()) s += sizes[c];
      sizes[f.id] = s;
      continue;
    }
    stack.push_back({f.id, true});
    for (EntryId c : e.children()) stack.push_back({c, false});
  }
  return sizes[root];
}

/// share * num / den without overflow (share can be near 2^62).
uint64_t ProportionalShare(uint64_t share, uint64_t num, uint64_t den) {
  return static_cast<uint64_t>(static_cast<unsigned __int128>(share) * num /
                               den);
}

/// Slice of a parent's free tail that a fresh subtree of `bare` entries
/// claims: aim for kLeafStride of growth room per entry, at least 1/64 of
/// the tail (wide fanouts keep proportional room, so a region absorbs a
/// number of inserts proportional to its span before exhausting), at most
/// 1/4 of it (later siblings do not starve), and always at least the
/// `bare` labels the entries themselves need. Caller guarantees
/// bare <= avail.
uint64_t AllocWidth(uint64_t avail, uint64_t bare) {
  uint64_t want = bare < (uint64_t{1} << 40)
                      ? bare * ForestIndex::kLeafStride
                      : avail;
  uint64_t w = std::max(want, avail / 64);
  w = std::min(w, avail / 4);
  w = std::max(w, bare);
  return std::min(w, avail);
}

}  // namespace

ForestIndex::ForestIndex(ForestIndex&& other) noexcept
    : labels_(std::move(other.labels_)),
      end_labels_(std::move(other.end_labels_)),
      depth_(std::move(other.depth_)),
      parents_(std::move(other.parents_)),
      num_alive_(other.num_alive_),
      relabels_(other.relabels_),
      full_rebuilds_(other.full_rebuilds_),
      pre_(std::move(other.pre_)),
      sub_end_(std::move(other.sub_end_)),
      preorder_(std::move(other.preorder_)) {
  dense_valid_.store(other.dense_valid_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

ForestIndex& ForestIndex::operator=(ForestIndex&& other) noexcept {
  if (this == &other) return *this;
  labels_ = std::move(other.labels_);
  end_labels_ = std::move(other.end_labels_);
  depth_ = std::move(other.depth_);
  parents_ = std::move(other.parents_);
  num_alive_ = other.num_alive_;
  relabels_ = other.relabels_;
  full_rebuilds_ = other.full_rebuilds_;
  pre_ = std::move(other.pre_);
  sub_end_ = std::move(other.sub_end_);
  preorder_ = std::move(other.preorder_);
  dense_valid_.store(other.dense_valid_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  return *this;
}

void ForestIndex::EnsureCapacity(size_t id_capacity) {
  if (labels_.size() < id_capacity) {
    labels_.Resize(id_capacity, kNoLabel);
    end_labels_.Resize(id_capacity, kNoLabel);
    depth_.Resize(id_capacity, 0);
    parents_.Resize(id_capacity, kInvalidEntryId);
  }
}

void ForestIndex::OnInsert(const Directory& d, EntryId id) {
  EnsureCapacity(d.IdCapacity());
  ++num_alive_;
  PlaceSubtree(d, id);
  InvalidateDense();
}

void ForestIndex::OnErase(EntryId id) {
  if (id >= labels_.size() || labels_[id] == kNoLabel) return;
  labels_.Set(id, kNoLabel);
  end_labels_.Set(id, kNoLabel);
  depth_.Set(id, 0);
  --num_alive_;
  InvalidateDense();
}

void ForestIndex::OnMove(const Directory& d, EntryId id) {
  EnsureCapacity(d.IdCapacity());
  PlaceSubtree(d, id);
  InvalidateDense();
}

void ForestIndex::PlaceSubtree(const Directory& d, EntryId id) {
  const Entry& e = d.entry(id);
  EntryId parent = e.parent();
  const std::vector<EntryId>& siblings =
      (parent == kInvalidEntryId) ? d.roots() : d.entry(parent).children();

  // Work out the free window [next, hi) at the parent's tail, verifying
  // the local invariants as we go; any violation means the incremental
  // state cannot be trusted, and the guarded fallback is a full rebuild.
  uint64_t next = 0;
  uint64_t hi = kLabelSpace;
  bool sane = !siblings.empty() && siblings.back() == id;
  if (sane && parent != kInvalidEntryId) {
    sane = labels_[parent] != kNoLabel;
    if (sane) {
      next = labels_[parent] + 1;
      hi = end_labels_[parent];
    }
  }
  if (sane && siblings.size() >= 2) {
    EntryId prev = siblings[siblings.size() - 2];
    sane = prev < labels_.size() && labels_[prev] != kNoLabel &&
           end_labels_[prev] >= next && end_labels_[prev] <= hi;
    if (sane) next = end_labels_[prev];
  }
  if (!sane) {
    RebuildFromScratch(d);
    return;
  }

  SizeMap sizes;
  uint64_t bare = ComputeSizes(d, id, sizes);
  uint64_t avail = hi - next;
  if (avail < bare) {
    Relabel(d, parent);
    return;
  }
  AssignInterval(d, id, next, AllocWidth(avail, bare));
}

void ForestIndex::Relabel(const Directory& d, EntryId parent) {
  // One SizeMap shared across the ancestor walk: stepping up a level
  // reuses the child subtree's size and only counts the newly-exposed
  // sibling subtrees, so the whole walk costs O(size of the region
  // finally relabeled), not O(depth * size).
  SizeMap sizes;
  EntryId prev = kInvalidEntryId;
  for (EntryId a = parent; a != kInvalidEntryId; a = d.entry(a).parent()) {
    if (a >= labels_.size() || labels_[a] == kNoLabel) break;  // not sane
    uint64_t size = 1;
    for (EntryId c : d.entry(a).children()) {
      size += (c == prev) ? sizes.at(c) : ComputeSizes(d, c, sizes);
    }
    sizes[a] = size;
    prev = a;
    uint64_t span = end_labels_[a] - labels_[a];
    if (span / kMinSpread >= size) {
      ++relabels_;
      IndexMetrics::Get().relabels.Increment();
      AssignInterval(d, a, labels_[a], span);
      return;
    }
  }
  RebuildFromScratch(d);
}

void ForestIndex::RebuildFromScratch(const Directory& d) {
  ++full_rebuilds_;
  IndexMetrics::Get().full_rebuilds.Increment();
  EnsureCapacity(d.IdCapacity());
  for (size_t i = 0; i < labels_.size(); ++i) {
    labels_.Set(i, kNoLabel);
    end_labels_.Set(i, kNoLabel);
    depth_.Set(i, 0);
  }
  num_alive_ = d.NumEntries();
  InvalidateDense();

  SizeMap sizes;
  uint64_t total = 0;
  for (EntryId r : d.roots()) total += ComputeSizes(d, r, sizes);
  if (total == 0) return;

  // Redistribute the whole space over the roots: proportional shares of
  // the first half, the second half left as the forest's growth tail.
  uint64_t cur = 0;
  uint64_t remaining_bare = total;
  for (EntryId r : d.roots()) {
    uint64_t s = sizes[r];
    remaining_bare -= s;
    uint64_t w = std::max(ProportionalShare(kLabelSpace / 2, s, total), s);
    uint64_t cap = (kLabelSpace - cur) - remaining_bare;
    w = std::min(w, cap);
    AssignInterval(d, r, cur, w);
    cur += w;
  }
}

void ForestIndex::AssignInterval(const Directory& d, EntryId root,
                                 uint64_t lo, uint64_t width) {
  SizeMap sizes;
  ComputeSizes(d, root, sizes);
  struct Frame {
    EntryId id;
    uint64_t lo;
    uint64_t width;
  };
  std::vector<Frame> stack{{root, lo, width}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Entry& e = d.entry(f.id);
    labels_.Set(f.id, f.lo);
    end_labels_.Set(f.id, f.lo + f.width);
    EntryId parent = e.parent();
    depth_.Set(f.id, (parent == kInvalidEntryId) ? 0 : depth_[parent] + 1);
    parents_.Set(f.id, parent);
    if (e.children().empty()) continue;

    // Children get proportional shares of the usable interior minus this
    // entry's growth tail, clamped so every later sibling still fits its
    // bare size. The tail is kLeafStride of room per existing descendant,
    // never more than half the interior — a *bounded* reservation, so a
    // deep chain consumes label space additively per level; a flat half
    // would shrink spans exponentially with depth and exhaust the 62-bit
    // space after ~60 levels.
    uint64_t usable = f.width - 1;
    uint64_t st = sizes.at(f.id) - 1;
    uint64_t want_tail =
        st < (uint64_t{1} << 40) ? st * kLeafStride : usable;
    uint64_t budget = usable - std::min(usable / 2, want_tail);
    uint64_t cur = f.lo + 1;
    uint64_t end = f.lo + f.width;
    uint64_t remaining_bare = st;
    for (EntryId c : e.children()) {
      uint64_t s = sizes.at(c);
      remaining_bare -= s;
      uint64_t w = std::max(ProportionalShare(budget, s, st), s);
      uint64_t cap = (end - cur) - remaining_bare;
      w = std::min(w, cap);
      stack.push_back({c, cur, w});
      cur += w;
    }
  }
}

void ForestIndex::MaterializeDense() const {
  // Single-writer by contract (see the class comment): callers that fan
  // reads out to worker threads must call MaterializeDenseNow() first.
  preorder_.clear();
  preorder_.reserve(num_alive_);
  for (size_t id = 0; id < labels_.size(); ++id) {
    if (labels_[id] != kNoLabel) {
      preorder_.push_back(static_cast<EntryId>(id));
    }
  }
  std::sort(preorder_.begin(), preorder_.end(), [this](EntryId a, EntryId b) {
    return labels_[a] < labels_[b];
  });
  pre_.assign(labels_.size(), kNotIndexed);
  sub_end_.assign(labels_.size(), kNotIndexed);
  // One pass with a stack of open intervals: an entry's subtree ends at
  // the first position whose label leaves its interval.
  std::vector<EntryId> open;
  for (size_t pos = 0; pos < preorder_.size(); ++pos) {
    EntryId id = preorder_[pos];
    while (!open.empty() && end_labels_[open.back()] <= labels_[id]) {
      sub_end_[open.back()] = pos;
      open.pop_back();
    }
    pre_[id] = pos;
    open.push_back(id);
  }
  while (!open.empty()) {
    sub_end_[open.back()] = preorder_.size();
    open.pop_back();
  }
  dense_valid_.store(true, std::memory_order_release);
}

bool ForestIndex::EquivalentToFresh(const Directory& d) const {
  // A fresh DFS straight off the tree structure: the reference preorder,
  // intervals and depths the incremental state must reproduce.
  std::vector<EntryId> expected;
  expected.reserve(d.NumEntries());
  std::vector<size_t> expected_pre(d.IdCapacity(), kNotIndexed);
  std::vector<size_t> expected_end(d.IdCapacity(), kNotIndexed);
  std::vector<uint32_t> expected_depth(d.IdCapacity(), 0);
  struct Frame {
    EntryId id;
    bool exit;
  };
  std::vector<Frame> stack;
  const std::vector<EntryId>& roots = d.roots();
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, false});
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.exit) {
      expected_end[f.id] = expected.size();
      continue;
    }
    const Entry& e = d.entry(f.id);
    expected_pre[f.id] = expected.size();
    expected_depth[f.id] = (e.parent() == kInvalidEntryId)
                               ? 0
                               : expected_depth[e.parent()] + 1;
    expected.push_back(f.id);
    stack.push_back({f.id, true});
    const std::vector<EntryId>& children = e.children();
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({*it, false});
    }
  }

  if (num_alive_ != expected.size()) return false;
  if (preorder() != expected) return false;
  for (EntryId id : expected) {
    if (pre(id) != expected_pre[id]) return false;
    if (sub_end(id) != expected_end[id]) return false;
    if (depth(id) != expected_depth[id]) return false;
    if (labels_[id] >= end_labels_[id]) return false;
    EntryId parent = d.entry(id).parent();
    if (parent != kInvalidEntryId &&
        !(labels_[parent] < labels_[id] &&
          end_labels_[id] <= end_labels_[parent])) {
      return false;
    }
  }
  return true;
}

}  // namespace ldapbound
