#include "model/value.h"

#include <charconv>

#include "util/string_util.h"

namespace ldapbound {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kString:
      return "string";
    case ValueType::kInteger:
      return "integer";
    case ValueType::kBoolean:
      return "boolean";
  }
  return "unknown";
}

Result<ValueType> ValueTypeFromString(std::string_view name) {
  if (EqualsIgnoreCase(name, "string")) return ValueType::kString;
  if (EqualsIgnoreCase(name, "integer")) return ValueType::kInteger;
  if (EqualsIgnoreCase(name, "boolean")) return ValueType::kBoolean;
  return Status::InvalidArgument("unknown value type: " + std::string(name));
}

Result<Value> Value::Parse(ValueType type, std::string_view text) {
  switch (type) {
    case ValueType::kString:
      return Value(std::string(text));
    case ValueType::kInteger: {
      int64_t v = 0;
      const char* begin = text.data();
      const char* end = begin + text.size();
      auto [ptr, ec] = std::from_chars(begin, end, v);
      if (ec != std::errc() || ptr != end) {
        return Status::InvalidArgument("not an integer: " + std::string(text));
      }
      return Value(v);
    }
    case ValueType::kBoolean: {
      if (EqualsIgnoreCase(text, "true")) return Value(true);
      if (EqualsIgnoreCase(text, "false")) return Value(false);
      return Status::InvalidArgument("not a boolean: " + std::string(text));
    }
  }
  return Status::InvalidArgument("unknown value type");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kString:
      return AsString();
    case ValueType::kInteger:
      return std::to_string(AsInteger());
    case ValueType::kBoolean:
      return AsBoolean() ? "true" : "false";
  }
  return "";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
    case ValueType::kInteger:
      return std::hash<int64_t>()(AsInteger()) * 3;
    case ValueType::kBoolean:
      return std::hash<bool>()(AsBoolean()) * 7;
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace ldapbound
