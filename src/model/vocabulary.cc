#include "model/vocabulary.h"

#include "util/string_util.h"

namespace ldapbound {

Vocabulary::Vocabulary() {
  objectclass_attr_ =
      DefineAttribute("objectClass", ValueType::kString).value();
  top_class_ = InternClass("top");
}

Result<AttributeId> Vocabulary::DefineAttribute(std::string_view name,
                                                ValueType type,
                                                bool single_valued) {
  std::string key = ToLower(name);
  auto it = attribute_index_.find(key);
  if (it != attribute_index_.end()) {
    if (attribute_types_[it->second] != type) {
      return Status::AlreadyExists(
          "attribute '" + std::string(name) + "' already defined with type " +
          std::string(ValueTypeToString(attribute_types_[it->second])));
    }
    if ((attribute_single_[it->second] != 0) != single_valued) {
      return Status::AlreadyExists(
          "attribute '" + std::string(name) +
          "' already defined with a different single-valued declaration");
    }
    return it->second;
  }
  AttributeId id = static_cast<AttributeId>(attribute_names_.size());
  attribute_names_.emplace_back(name);
  attribute_types_.push_back(type);
  attribute_single_.push_back(single_valued ? 1 : 0);
  attribute_index_.emplace(std::move(key), id);
  return id;
}

AttributeId Vocabulary::InternAttribute(std::string_view name) {
  std::string key = ToLower(name);
  auto it = attribute_index_.find(key);
  if (it != attribute_index_.end()) return it->second;
  AttributeId id = static_cast<AttributeId>(attribute_names_.size());
  attribute_names_.emplace_back(name);
  attribute_types_.push_back(ValueType::kString);
  attribute_single_.push_back(0);
  attribute_index_.emplace(std::move(key), id);
  return id;
}

Result<AttributeId> Vocabulary::FindAttribute(std::string_view name) const {
  auto it = attribute_index_.find(ToLower(name));
  if (it == attribute_index_.end()) {
    return Status::NotFound("attribute not defined: " + std::string(name));
  }
  return it->second;
}

ClassId Vocabulary::InternClass(std::string_view name) {
  std::string key = ToLower(name);
  auto it = class_index_.find(key);
  if (it != class_index_.end()) return it->second;
  ClassId id = static_cast<ClassId>(class_names_.size());
  class_names_.emplace_back(name);
  class_index_.emplace(std::move(key), id);
  return id;
}

Result<ClassId> Vocabulary::FindClass(std::string_view name) const {
  auto it = class_index_.find(ToLower(name));
  if (it == class_index_.end()) {
    return Status::NotFound("object class not defined: " + std::string(name));
  }
  return it->second;
}

}  // namespace ldapbound
