#ifndef LDAPBOUND_MODEL_FOREST_INDEX_H_
#define LDAPBOUND_MODEL_FOREST_INDEX_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/entry_set.h"
#include "util/cow.h"

namespace ldapbound {

class Directory;

/// Positional index of a directory forest, maintained *incrementally*
/// across mutations.
///
/// The paper's Section 3.2 evaluates structural operators over the
/// interval encoding of Jagadish et al. (SIGMOD'99): every entry owns a
/// preorder interval that strictly contains the intervals of its
/// descendants. The seed implementation stored dense preorder positions
/// and rebuilt them in O(|D|) after every mutation — exactly the
/// full-directory cost that Section 4 makes avoidable for updates. This
/// index instead keeps *gap-based (order-maintenance) labels*:
///
///  - every alive entry owns a half-open label interval
///    [label(id), end_label(id)) nested strictly inside its parent's
///    interval, siblings in insertion order; the forest as a whole lives
///    in [0, kLabelSpace);
///  - inserting a leaf claims a slice of its parent's free tail in O(1);
///    deleting a leaf clears its labels in O(1) (the tail slice is reused
///    when the freed entry was the youngest sibling); moving a subtree
///    relabels only the k moved entries;
///  - when a parent's interval is exhausted, the nearest ancestor whose
///    span still affords kMinSpread labels per entry is relabeled locally
///    (amortized: a redistributed region must absorb a number of inserts
///    proportional to its size before it can exhaust again);
///  - if no ancestor qualifies, or an invariant check on the local state
///    fails, the index falls back to a full rebuild (a redistribution over
///    the whole label space), counted separately.
///
/// The label/depth/parent arrays are chunked copy-on-write vectors
/// (CowVec): FreezeViews() hands an immutable point-in-time view to the
/// MVCC snapshot publisher in O(Δ·chunk), and SnapshotEvaluator answers
/// all four hierarchy axes straight off those views (no dense arrays in
/// snapshots — see query/snapshot_evaluator.h).
///
/// Concurrency contract: mutation AND dense materialization are
/// single-writer. The dense views the legacy query evaluator consumes —
/// preorder(), pre(), sub_end() — are a derived cache materialized
/// lazily from the labels and invalidated by structural mutations; an
/// accessor that finds the cache stale rebuilds it, so concurrent *const*
/// readers must either (a) know the cache is fresh (materialized before
/// fan-out, as core/legality_checker.cc does) or (b) stay off the dense
/// accessors entirely (as ldap/search.cc and ldap/ldif.cc do). The old
/// double-checked internal mutex is gone: it protected the
/// materialization race but still let a reader observe a preorder torn
/// against labels updated after the snapshot bump — the MVCC snapshot
/// path is the supported way to read concurrently with writers.
class ForestIndex {
 public:
  static constexpr size_t kNotIndexed = ~size_t{0};
  /// Label of a dead (or never-inserted) entry.
  static constexpr uint64_t kNoLabel = ~uint64_t{0};
  /// The forest owns labels in [0, kLabelSpace).
  static constexpr uint64_t kLabelSpace = uint64_t{1} << 62;
  /// Growth room a fresh leaf aims to reserve for its future subtree.
  static constexpr uint64_t kLeafStride = uint64_t{1} << 16;
  /// Minimum per-entry span an ancestor must afford to absorb a local
  /// relabel (>= 4x kLeafStride so a redistributed region absorbs O(size)
  /// further inserts before exhausting again).
  static constexpr uint64_t kMinSpread = uint64_t{1} << 18;

  /// Immutable point-in-time view of the label state, shared with
  /// published DirectorySnapshots. parents[id] is only meaningful for
  /// ids whose label != kNoLabel (dead entries keep a stale parent).
  struct LabelViews {
    CowVec<uint64_t>::View labels;
    CowVec<uint64_t>::View end_labels;
    CowVec<uint32_t>::View depth;
    CowVec<EntryId>::View parents;
    size_t num_alive = 0;
  };

  ForestIndex() = default;
  ForestIndex(const ForestIndex&) = delete;
  ForestIndex& operator=(const ForestIndex&) = delete;
  ForestIndex(ForestIndex&& other) noexcept;
  ForestIndex& operator=(ForestIndex&& other) noexcept;

  /// Preorder position of entry `id`; kNotIndexed for dead or out-of-range
  /// ids. Materializes the dense cache if stale (single-writer only; see
  /// class comment).
  size_t pre(EntryId id) const {
    EnsureDense();
    return id < pre_.size() ? pre_[id] : kNotIndexed;
  }

  /// One past the last preorder position of `id`'s subtree. The subtree of
  /// `id` occupies preorder positions [pre(id), sub_end(id)).
  size_t sub_end(EntryId id) const {
    EnsureDense();
    return id < sub_end_.size() ? sub_end_[id] : kNotIndexed;
  }

  /// Root depth 0. Maintained incrementally (never stale).
  uint32_t depth(EntryId id) const {
    return id < depth_.size() ? depth_[id] : 0;
  }

  /// Alive entries in preorder (roots in insertion order, children in
  /// sibling order). Materializes the dense cache if stale (single-writer
  /// only; see class comment).
  const std::vector<EntryId>& preorder() const {
    EnsureDense();
    return preorder_;
  }

  /// True if `anc` is a proper ancestor of `desc`. O(1) on the labels, no
  /// dense cache needed; out-of-range and dead ids are never ancestors
  /// (ids beyond the labeled range are ignored, like EntrySet does).
  bool IsAncestor(EntryId anc, EntryId desc) const {
    if (anc >= labels_.size() || desc >= labels_.size()) return false;
    uint64_t la = labels_[anc];
    uint64_t ld = labels_[desc];
    if (la == kNoLabel || ld == kNoLabel) return false;
    return la < ld && ld < end_labels_[anc];
  }

  /// The order-maintenance label interval of `id`; kNoLabel when dead or
  /// out of range. Exposed for tests and diagnostics.
  uint64_t label(EntryId id) const {
    return id < labels_.size() ? labels_[id] : kNoLabel;
  }
  uint64_t end_label(EntryId id) const {
    return id < end_labels_.size() ? end_labels_[id] : kNoLabel;
  }

  /// Number of alive entries.
  size_t num_entries() const { return num_alive_; }

  /// O(Δ·chunk) immutable view of the current labels for snapshot
  /// publication. Single-writer (called under the commit lock).
  LabelViews FreezeViews() const {
    return LabelViews{labels_.Freeze(), end_labels_.Freeze(), depth_.Freeze(),
                      parents_.Freeze(), num_alive_};
  }

  /// Makes the dense cache fresh now, so subsequent pre()/sub_end()/
  /// preorder() calls are pure reads safe from concurrent threads.
  /// Single-writer, like any accessor that could materialize.
  void MaterializeDenseNow() const { EnsureDense(); }

  /// Local relabels (redistributions below the forest root) performed so
  /// far by this instance, and full rebuilds (whole-space
  /// redistributions).
  uint64_t relabels() const { return relabels_; }
  uint64_t full_rebuilds() const { return full_rebuilds_; }

  /// Equivalence check against a fresh build: the label order must induce
  /// exactly the DFS preorder of `d`, with matching subtree intervals and
  /// depths. O(|D| log |D|). The property tests run this after every
  /// mutation; the maintenance code uses the same invariants to decide
  /// when to fall back to a full rebuild.
  bool EquivalentToFresh(const Directory& d) const;

 private:
  friend class Directory;

  // -- Incremental maintenance (called by Directory; single-writer) --

  /// `id` was just linked as the youngest child of its parent (or youngest
  /// root). Claims a label slice, relabeling locally when exhausted.
  void OnInsert(const Directory& d, EntryId id);
  /// `id` was just unlinked (leaf deletion). O(1).
  void OnErase(EntryId id);
  /// The subtree rooted at `id` was just re-linked under a new parent
  /// (youngest child). Relabels the k moved entries.
  void OnMove(const Directory& d, EntryId id);

  /// Shared insert/move placement: claims a slice of the parent's free
  /// tail for the (already linked, youngest-sibling) subtree at `id`,
  /// relabeling locally on exhaustion.
  void PlaceSubtree(const Directory& d, EntryId id);

  /// Full fallback: redistribute every alive entry over [0, kLabelSpace).
  void RebuildFromScratch(const Directory& d);

  /// Finds the nearest ancestor of `parent` (inclusive; kInvalidEntryId =
  /// the whole forest) whose span affords kMinSpread per entry, and
  /// redistributes its region. Labels any linked-but-unlabeled entries in
  /// the region as a side effect.
  void Relabel(const Directory& d, EntryId parent);

  /// Redistributes the interval [lo, lo+width) over the subtree rooted at
  /// `id` (labels, end labels, depths, parents), children packed into the
  /// first half of the usable space so every entry keeps a growth tail.
  void AssignInterval(const Directory& d, EntryId id, uint64_t lo,
                      uint64_t width);

  void EnsureCapacity(size_t id_capacity);
  void InvalidateDense() {
    dense_valid_.store(false, std::memory_order_relaxed);
  }
  void EnsureDense() const {
    if (!dense_valid_.load(std::memory_order_acquire)) MaterializeDense();
  }
  void MaterializeDense() const;

  // Label state: always fresh, maintained incrementally. By entry id.
  // CowVec so FreezeViews() shares untouched chunks with prior
  // snapshots instead of copying O(directory) per publish.
  CowVec<uint64_t> labels_;
  CowVec<uint64_t> end_labels_;
  CowVec<uint32_t> depth_;
  CowVec<EntryId> parents_;  // parent at last placement; stale when dead
  size_t num_alive_ = 0;
  uint64_t relabels_ = 0;
  uint64_t full_rebuilds_ = 0;

  // Dense cache, derived lazily from the labels. Writer-local: stale
  // materialization is NOT thread-safe (see class comment); the atomic
  // flag only makes fresh/stale observable without tearing.
  mutable std::atomic<bool> dense_valid_{true};  // empty index is valid
  mutable std::vector<size_t> pre_;      // by entry id
  mutable std::vector<size_t> sub_end_;  // by entry id
  mutable std::vector<EntryId> preorder_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_MODEL_FOREST_INDEX_H_
