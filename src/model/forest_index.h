#ifndef LDAPBOUND_MODEL_FOREST_INDEX_H_
#define LDAPBOUND_MODEL_FOREST_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/entry_set.h"

namespace ldapbound {

/// Positional index of a directory forest: the preorder ("sorted") sequence
/// of alive entries plus, per entry, its preorder position, the end of its
/// subtree interval and its depth.
///
/// This is the "directory entries are sorted" prerequisite of the
/// hierarchical query evaluation of Jagadish et al. (SIGMOD'99) that the
/// paper's Section 3.2 relies on: with the interval encoding, every
/// structural operator is evaluable in one linear pass over the preorder.
///
/// An index is a snapshot: it is (re)built by Directory after mutations.
class ForestIndex {
 public:
  static constexpr size_t kNotIndexed = ~size_t{0};

  ForestIndex() = default;

  /// Preorder positions of entry `id`; kNotIndexed for dead ids.
  size_t pre(EntryId id) const { return pre_[id]; }

  /// One past the last preorder position of `id`'s subtree. The subtree of
  /// `id` occupies preorder positions [pre(id), sub_end(id)).
  size_t sub_end(EntryId id) const { return sub_end_[id]; }

  /// Root depth 0.
  uint32_t depth(EntryId id) const { return depth_[id]; }

  /// Alive entries in preorder (roots in insertion order, children in
  /// sibling order).
  const std::vector<EntryId>& preorder() const { return preorder_; }

  /// True if `anc` is a proper ancestor of `desc`.
  bool IsAncestor(EntryId anc, EntryId desc) const {
    size_t pa = pre_[anc];
    size_t pd = pre_[desc];
    if (pa == kNotIndexed || pd == kNotIndexed) return false;
    return pa < pd && pd < sub_end_[anc];
  }

  size_t num_entries() const { return preorder_.size(); }

 private:
  friend class Directory;

  std::vector<size_t> pre_;      // by entry id
  std::vector<size_t> sub_end_;  // by entry id
  std::vector<uint32_t> depth_;  // by entry id
  std::vector<EntryId> preorder_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_MODEL_FOREST_INDEX_H_
