#ifndef LDAPBOUND_MODEL_ENTRY_SET_H_
#define LDAPBOUND_MODEL_ENTRY_SET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ldapbound {

/// Identifier of a directory entry: a dense index into its Directory's
/// entry table. Ids are stable across deletions (tombstoned, never reused).
using EntryId = uint32_t;

inline constexpr EntryId kInvalidEntryId = ~EntryId{0};

/// A set of entry ids, stored as a bitmap sized to the Directory's id
/// capacity. Query evaluation represents intermediate and final results as
/// EntrySets so that set algebra (union, difference) is O(|D|/64).
class EntrySet {
 public:
  EntrySet() = default;
  /// Creates an empty set able to hold ids in [0, capacity).
  explicit EntrySet(size_t capacity)
      : capacity_(capacity), words_((capacity + 63) / 64, 0) {}

  size_t capacity() const { return capacity_; }

  /// Out-of-range ids are ignored: Contains could never report them, and
  /// without the guard an id past the capacity scribbles over the heap
  /// (Contains bounds-checks, Insert/Erase historically did not).
  void Insert(EntryId id) {
    if (id >= capacity_) return;
    words_[id >> 6] |= uint64_t{1} << (id & 63);
  }
  void Erase(EntryId id) {
    if (id >= capacity_) return;
    words_[id >> 6] &= ~(uint64_t{1} << (id & 63));
  }
  bool Contains(EntryId id) const {
    return id < capacity_ && (words_[id >> 6] >> (id & 63)) & 1;
  }

  /// Number of ids in the set.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// min(Count(), k): stops counting as soon as `k` members are seen, so
  /// threshold tests ("is this set bigger than |D|/8?") cost O(k/64 + 1)
  /// words on dense sets instead of a full popcount pass.
  size_t CountUpTo(size_t k) const {
    size_t n = 0;
    for (uint64_t w : words_) {
      n += static_cast<size_t>(__builtin_popcountll(w));
      if (n >= k) return k;
    }
    return n;
  }

  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  void Clear() {
    for (uint64_t& w : words_) w = 0;
  }

  /// Changes the capacity, keeping members below the new bound. Growth
  /// zero-fills; shrinking drops out-of-range members and clears any
  /// stray bits in the (now) last word so word-wise algebra against
  /// other sets of the new capacity stays exact. Needed when combining
  /// sets built at different id capacities (e.g. an MVCC snapshot's
  /// postings vs a freshly sized scratch set).
  void Resize(size_t capacity) {
    words_.resize((capacity + 63) / 64, 0);
    capacity_ = capacity;
    if (capacity & 63) {
      if (!words_.empty()) {
        words_.back() &= ~uint64_t{0} >> (64 - (capacity & 63));
      }
    }
  }

  /// In-place union with `other` (capacities must match).
  void UnionWith(const EntrySet& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// In-place intersection with `other`.
  void IntersectWith(const EntrySet& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// In-place set difference: removes the ids present in `other`.
  void SubtractFrom(const EntrySet& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  }

  /// True iff the sets share at least one id; exits at the first
  /// overlapping word, so disproving emptiness of an intersection needs no
  /// materialized result bitmap.
  bool Intersects(const EntrySet& other) const {
    size_t n = std::min(words_.size(), other.words_.size());
    for (size_t i = 0; i < n; ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }

  /// True iff every id of this set is also in `other`; exits at the first
  /// word with a surviving id. `A.IsSubsetOf(B)` is the lazy emptiness test
  /// for the difference query `(? A B)`.
  bool IsSubsetOf(const EntrySet& other) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      uint64_t w = words_[i];
      if (w == 0) continue;
      uint64_t o = i < other.words_.size() ? other.words_[i] : 0;
      if (w & ~o) return false;
    }
    return true;
  }

  /// True iff some member lies in [lo, hi). Masks the boundary words and
  /// exits at the first non-zero word; preorder-interval emptiness tests
  /// use this against subtree ranges.
  bool AnyInRange(size_t lo, size_t hi) const {
    if (hi > capacity_) hi = capacity_;
    if (lo >= hi) return false;
    const size_t first = lo >> 6;
    const size_t last = (hi - 1) >> 6;
    const uint64_t first_mask = ~uint64_t{0} << (lo & 63);
    const uint64_t last_mask =
        ~uint64_t{0} >> (63 - ((hi - 1) & 63));
    if (first == last) return (words_[first] & first_mask & last_mask) != 0;
    if (words_[first] & first_mask) return true;
    for (size_t i = first + 1; i < last; ++i) {
      if (words_[i] != 0) return true;
    }
    return (words_[last] & last_mask) != 0;
  }

  /// Calls `fn(id)` for every id in the set in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      uint64_t w = words_[i];
      while (w != 0) {
        int bit = __builtin_ctzll(w);
        fn(static_cast<EntryId>(i * 64 + bit));
        w &= w - 1;
      }
    }
  }

  /// ForEach that stops early: `fn(id)` returns false to stop iterating.
  /// Returns true iff iteration ran to completion (fn never said stop).
  template <typename Fn>
  bool ForEachWhile(Fn&& fn) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      uint64_t w = words_[i];
      while (w != 0) {
        int bit = __builtin_ctzll(w);
        if (!fn(static_cast<EntryId>(i * 64 + bit))) return false;
        w &= w - 1;
      }
    }
    return true;
  }

  /// All ids in the set, in increasing order.
  std::vector<EntryId> ToVector() const {
    std::vector<EntryId> out;
    out.reserve(Count());
    ForEach([&out](EntryId id) { out.push_back(id); });
    return out;
  }

  friend bool operator==(const EntrySet& a, const EntrySet& b) {
    return a.capacity_ == b.capacity_ && a.words_ == b.words_;
  }

 private:
  size_t capacity_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_MODEL_ENTRY_SET_H_
