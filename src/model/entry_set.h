#ifndef LDAPBOUND_MODEL_ENTRY_SET_H_
#define LDAPBOUND_MODEL_ENTRY_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ldapbound {

/// Identifier of a directory entry: a dense index into its Directory's
/// entry table. Ids are stable across deletions (tombstoned, never reused).
using EntryId = uint32_t;

inline constexpr EntryId kInvalidEntryId = ~EntryId{0};

/// A set of entry ids, stored as a bitmap sized to the Directory's id
/// capacity. Query evaluation represents intermediate and final results as
/// EntrySets so that set algebra (union, difference) is O(|D|/64).
class EntrySet {
 public:
  EntrySet() = default;
  /// Creates an empty set able to hold ids in [0, capacity).
  explicit EntrySet(size_t capacity)
      : capacity_(capacity), words_((capacity + 63) / 64, 0) {}

  size_t capacity() const { return capacity_; }

  void Insert(EntryId id) { words_[id >> 6] |= uint64_t{1} << (id & 63); }
  void Erase(EntryId id) { words_[id >> 6] &= ~(uint64_t{1} << (id & 63)); }
  bool Contains(EntryId id) const {
    return id < capacity_ && (words_[id >> 6] >> (id & 63)) & 1;
  }

  /// Number of ids in the set.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  void Clear() {
    for (uint64_t& w : words_) w = 0;
  }

  /// In-place union with `other` (capacities must match).
  void UnionWith(const EntrySet& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// In-place intersection with `other`.
  void IntersectWith(const EntrySet& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// In-place set difference: removes the ids present in `other`.
  void SubtractFrom(const EntrySet& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  }

  /// Calls `fn(id)` for every id in the set in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      uint64_t w = words_[i];
      while (w != 0) {
        int bit = __builtin_ctzll(w);
        fn(static_cast<EntryId>(i * 64 + bit));
        w &= w - 1;
      }
    }
  }

  /// All ids in the set, in increasing order.
  std::vector<EntryId> ToVector() const {
    std::vector<EntryId> out;
    out.reserve(Count());
    ForEach([&out](EntryId id) { out.push_back(id); });
    return out;
  }

  friend bool operator==(const EntrySet& a, const EntrySet& b) {
    return a.capacity_ == b.capacity_ && a.words_ == b.words_;
  }

 private:
  size_t capacity_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_MODEL_ENTRY_SET_H_
