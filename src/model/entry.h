#ifndef LDAPBOUND_MODEL_ENTRY_H_
#define LDAPBOUND_MODEL_ENTRY_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "model/entry_set.h"
#include "model/value.h"
#include "model/vocabulary.h"

namespace ldapbound {

/// One (attribute, value) pair of an entry's `val(r)` set.
struct AttributeValue {
  AttributeId attribute;
  Value value;

  friend bool operator==(const AttributeValue& a, const AttributeValue& b) {
    return a.attribute == b.attribute && a.value == b.value;
  }
  friend bool operator<(const AttributeValue& a, const AttributeValue& b) {
    if (a.attribute != b.attribute) return a.attribute < b.attribute;
    return a.value < b.value;
  }
};

/// A directory entry (Definition 2.1): a node of the directory forest that
/// belongs to a finite non-empty set of object classes and holds a finite
/// set of (attribute, value) pairs.
///
/// Invariant 3(b) of the paper — `(objectClass, c) in val(r)` iff
/// `c in class(r)` — is maintained structurally: class membership is stored
/// once in `classes` and the entry's objectClass attribute values are those
/// class names; `Directory` keeps the two views in sync.
///
/// Entries are owned by their Directory; this type is read-only outside the
/// `model` target (mutation goes through Directory so indexes stay valid).
class Entry {
 public:
  EntryId id() const { return id_; }
  /// Parent entry, or kInvalidEntryId for roots.
  EntryId parent() const { return parent_; }
  /// Child ids in insertion order. May contain deleted entries' ids never:
  /// Directory removes a child link when the child is deleted.
  const std::vector<EntryId>& children() const { return children_; }

  /// Relative distinguished name, e.g. "uid=laks". Purely a naming handle;
  /// the paper abstracts DNs away but a usable directory needs them.
  const std::string& rdn() const { return rdn_; }

  /// The set `class(r)`: sorted, unique.
  const std::vector<ClassId>& classes() const { return classes_; }

  bool HasClass(ClassId c) const {
    return std::binary_search(classes_.begin(), classes_.end(), c);
  }

  /// The set `val(r)` minus the implicit objectClass pairs; sorted by
  /// (attribute, value), unique.
  const std::vector<AttributeValue>& values() const { return values_; }

  bool HasAttribute(AttributeId a) const {
    auto it = std::lower_bound(
        values_.begin(), values_.end(), a,
        [](const AttributeValue& av, AttributeId x) { return av.attribute < x; });
    return it != values_.end() && it->attribute == a;
  }

  /// All values of attribute `a`, in sorted order.
  std::vector<Value> GetValues(AttributeId a) const {
    std::vector<Value> out;
    auto it = std::lower_bound(
        values_.begin(), values_.end(), a,
        [](const AttributeValue& av, AttributeId x) { return av.attribute < x; });
    for (; it != values_.end() && it->attribute == a; ++it) {
      out.push_back(it->value);
    }
    return out;
  }

  /// True if some value of attribute `a` equals `v`.
  bool HasValue(AttributeId a, const Value& v) const {
    return std::binary_search(values_.begin(), values_.end(),
                              AttributeValue{a, v});
  }

  /// Number of distinct attributes present (not counting objectClass).
  size_t NumAttributes() const {
    size_t n = 0;
    AttributeId last = kInvalidAttributeId;
    for (const AttributeValue& av : values_) {
      if (av.attribute != last) {
        ++n;
        last = av.attribute;
      }
    }
    return n;
  }

 private:
  friend class Directory;

  EntryId id_ = kInvalidEntryId;
  EntryId parent_ = kInvalidEntryId;
  std::vector<EntryId> children_;
  std::string rdn_;
  std::vector<ClassId> classes_;        // sorted, unique
  std::vector<AttributeValue> values_;  // sorted, unique
};

}  // namespace ldapbound

#endif  // LDAPBOUND_MODEL_ENTRY_H_
