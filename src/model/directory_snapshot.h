#ifndef LDAPBOUND_MODEL_DIRECTORY_SNAPSHOT_H_
#define LDAPBOUND_MODEL_DIRECTORY_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "model/entry_set.h"
#include "model/forest_index.h"
#include "model/value.h"
#include "model/vocabulary.h"
#include "util/cow.h"
#include "util/epoch.h"

namespace ldapbound {

/// (attribute, value) key of the snapshot value-posting map — the same
/// shape as the query layer's ValueIndex pairs, defined here because the
/// model layer cannot depend on src/query.
struct SnapshotValueKey {
  AttributeId attribute = 0;
  Value value;

  friend bool operator==(const SnapshotValueKey& a, const SnapshotValueKey& b) {
    return a.attribute == b.attribute && a.value == b.value;
  }
};

struct SnapshotValueKeyHash {
  size_t operator()(const SnapshotValueKey& k) const {
    return k.value.Hash() * 1000003 + k.attribute;
  }
};

/// Key of the sibling-RDN uniqueness index: "<parent>/<lowercased rdn>".
/// Shared between Directory (writer side) and DirectorySnapshot lookups.
std::string SnapshotRdnKey(EntryId parent, std::string_view rdn);

/// An immutable, point-in-time view of one committed directory version —
/// the unit the MVCC read path publishes and readers pin.
///
/// Everything a structural legality check or a value lookup needs is
/// reachable from here without touching the live Directory: the
/// order-maintenance label views (hierarchy axes), the alive bitmap,
/// per-class and per-(attribute,value) postings, and the sibling-RDN
/// index. All members are either plain values or shared COW state;
/// copying costs a handful of refcounts, and holding a snapshot keeps
/// exactly the chunks/overlays of its version alive — untouched parts
/// are shared with neighboring versions.
///
/// NOTE: live Entry objects mutate in place, so snapshot readers must
/// never dereference into Directory::entry(). Entry *content* is instead
/// carried as immutable pre-serialized payload blobs (`by_entry`),
/// re-serialized by the writer whenever an entry's rdn/classes/values
/// change — readers get stable bytes, and the serving path concatenates
/// them onto the wire without touching the Vocabulary (which is not
/// read-safe against writer interning).
struct DirectorySnapshot {
  // Payload pointers are non-const shared_ptrs so the single writer can
  // mutate a payload it cloned within the current (unfrozen) delta;
  // once a payload reaches a frozen View it is never written again
  // (clone-once-per-delta discipline, see CowMap::FindMutableInPending).
  using ClassPostingMap = CowMap<ClassId, std::shared_ptr<EntrySet>>;
  using ValuePostingMap =
      CowMap<SnapshotValueKey, std::shared_ptr<std::vector<EntryId>>,
             SnapshotValueKeyHash>;
  using RdnMap = CowMap<std::string, EntryId>;
  /// Per-entry payload blobs in the wire's little-endian encoding
  /// (server/wire.h primitives — strings are u32 length + bytes):
  ///
  ///   str rdn | u16 nclasses | nclasses × str class-name |
  ///   u16 nvalues | nvalues × (str attr-name, str value-text)
  ///
  /// Payloads are write-once: every mutation stores a freshly serialized
  /// blob, so a shared_ptr handed out by a frozen View never changes.
  using PayloadMap = CowMap<EntryId, std::shared_ptr<const std::string>>;

  uint64_t version = 0;
  size_t id_capacity = 0;
  size_t num_alive = 0;

  /// Labels / end labels / depth / parents by entry id.
  ForestIndex::LabelViews index;

  /// Alive entries at this version.
  std::shared_ptr<const EntrySet> alive;

  ClassPostingMap::View by_class;
  ValuePostingMap::View by_value;
  RdnMap::View rdn;
  PayloadMap::View by_entry;

  /// Members of class `cls`, or nullptr when no alive entry has it. The
  /// returned set may have capacity != id_capacity (postings grow in
  /// doubling steps); ids past id_capacity are never set.
  const EntrySet* ClassSet(ClassId cls) const {
    const std::shared_ptr<EntrySet>* p = by_class.Find(cls);
    return p == nullptr ? nullptr : p->get();
  }

  /// Alive entries carrying (attr, value), ascending; nullptr when none.
  const std::vector<EntryId>* ValuePosting(AttributeId attr,
                                           const Value& value) const {
    const std::shared_ptr<std::vector<EntryId>>* p =
        by_value.Find(SnapshotValueKey{attr, value});
    return p == nullptr ? nullptr : p->get();
  }

  /// Population of class `cls` at this version. O(id_capacity/64).
  size_t CountWithClass(ClassId cls) const {
    const EntrySet* s = ClassSet(cls);
    return s == nullptr ? 0 : s->Count();
  }

  /// The child of `parent` with (case-insensitive) RDN `rdn`, or
  /// kInvalidEntryId. Mirrors Directory::FindChildByRdn.
  EntryId FindChildByRdn(EntryId parent, std::string_view rdn) const;

  /// The serialized payload of entry `id` at this version, or nullptr for
  /// ids this snapshot does not know (dead, or never had a payload).
  const std::string* EntryPayload(EntryId id) const {
    const std::shared_ptr<const std::string>* p = by_entry.Find(id);
    return p == nullptr ? nullptr : p->get();
  }

  bool IsAlive(EntryId id) const { return alive != nullptr && alive->Contains(id); }
  EntryId parent(EntryId id) const {
    return index.parents.Get(id, kInvalidEntryId);
  }
};

/// A snapshot pointer held open by an epoch pin: the snapshot (and every
/// older structure it shares) cannot be reclaimed while this object
/// lives. Short-lived by design — hold for one query/check, not across
/// blocking waits; an empty PinnedSnapshot (get() == nullptr) means
/// snapshots were not enabled. Must not outlive the SnapshotStore.
class PinnedSnapshot {
 public:
  PinnedSnapshot() = default;
  PinnedSnapshot(EpochManager::Pin pin, const DirectorySnapshot* snap)
      : pin_(std::move(pin)), snap_(snap) {}
  PinnedSnapshot(PinnedSnapshot&&) = default;
  PinnedSnapshot& operator=(PinnedSnapshot&&) = default;

  const DirectorySnapshot* get() const { return snap_; }
  const DirectorySnapshot& operator*() const { return *snap_; }
  const DirectorySnapshot* operator->() const { return snap_; }
  explicit operator bool() const { return snap_ != nullptr; }

  /// Drop the pin early (idempotent).
  void Release() {
    snap_ = nullptr;
    pin_.Release();
  }

 private:
  EpochManager::Pin pin_;
  const DirectorySnapshot* snap_ = nullptr;
};

/// Publication point of the MVCC read path: one atomic head pointer.
/// The single writer (under the server commit lock) calls Publish; any
/// thread calls Pin to get a consistent snapshot with no lock and no
/// copy. Old heads are retired through the EpochManager and freed once
/// the last reader pinned at or before their version drains.
class SnapshotStore {
 public:
  explicit SnapshotStore(EpochManager& epochs) : epochs_(&epochs) {}
  ~SnapshotStore() {
    // Retired heads were handed to the EpochManager; the current head
    // is ours. The owner guarantees no pins remain.
    delete head_.load(std::memory_order_seq_cst);
  }
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Takes ownership of `snap` and makes it the head. Single writer.
  void Publish(const DirectorySnapshot* snap);

  /// The current head, held open by an epoch pin. Lock-free.
  PinnedSnapshot Pin() const {
    EpochManager::Pin pin = epochs_->Enter();
    const DirectorySnapshot* snap = head_.load(std::memory_order_seq_cst);
    return PinnedSnapshot(std::move(pin), snap);
  }

  uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }
  /// Snapshots retired but not yet reclaimed (grace period pending).
  size_t reclaim_lag() const { return epochs_->retired_pending(); }
  EpochManager& epochs() const { return *epochs_; }

 private:
  EpochManager* epochs_;
  std::atomic<const DirectorySnapshot*> head_{nullptr};
  std::atomic<uint64_t> publishes_{0};
};

}  // namespace ldapbound

#endif  // LDAPBOUND_MODEL_DIRECTORY_SNAPSHOT_H_
