#ifndef LDAPBOUND_MODEL_DIRECTORY_H_
#define LDAPBOUND_MODEL_DIRECTORY_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "model/directory_snapshot.h"
#include "model/entry.h"
#include "model/entry_set.h"
#include "model/forest_index.h"
#include "model/value.h"
#include "model/vocabulary.h"
#include "util/concurrent_table.h"
#include "util/cow.h"
#include "util/result.h"

namespace ldapbound {

/// Name-based description of an entry to create; the convenience layer over
/// the id-based Directory API. Attribute values are given as text and parsed
/// according to the attribute's declared type.
struct EntrySpec {
  std::string rdn;
  std::vector<std::string> classes;
  std::vector<std::pair<std::string, std::string>> values;
};

/// Shape summary of a directory instance (see Directory::ComputeStats).
struct DirectoryStats {
  size_t num_entries = 0;
  size_t num_roots = 0;
  size_t num_leaves = 0;
  size_t max_depth = 0;      ///< root depth 0
  double avg_depth = 0.0;
  size_t max_fanout = 0;
  size_t total_values = 0;   ///< (attribute, value) pairs, objectClass aside
  size_t total_classes = 0;  ///< class memberships
  std::vector<size_t> depth_histogram;  ///< index = depth, value = entries
};

/// A directory instance `D = (R, class, val, N)` (Definition 2.1): a finite
/// forest of entries, each belonging to a non-empty set of object classes
/// and holding typed (attribute, value) pairs.
///
/// Model-level invariants enforced here (independent of any schema):
///  - the graph is a forest: new entries are roots or children of existing
///    entries; only leaves can be deleted (the LDAP update rules of §4.1);
///  - `class(r)` is non-empty;
///  - values have the type declared for their attribute (Def. 2.1 3(a));
///  - the objectClass attribute mirrors `class(r)` exactly (Def. 2.1 3(b)):
///    objectClass values passed in are converted to class memberships;
///  - sibling RDNs are unique (distinguished names identify entries).
///
/// Entry ids are stable: deletion tombstones the slot and never reuses it,
/// so EntrySets and incremental-update bookkeeping stay valid across a
/// transaction. `version()` increments on every mutation; the preorder
/// index is kept *live* across mutations (gap-label maintenance in
/// ForestIndex, O(|Δ|) amortized per structural change), so GetIndex()
/// is O(1) and never rebuilds the whole directory.
class Directory {
 public:
  explicit Directory(std::shared_ptr<Vocabulary> vocab);

  Directory(const Directory&) = delete;
  Directory& operator=(const Directory&) = delete;
  Directory(Directory&&) = default;
  Directory& operator=(Directory&&) = default;

  const Vocabulary& vocab() const { return *vocab_; }
  Vocabulary& mutable_vocab() { return *vocab_; }
  const std::shared_ptr<Vocabulary>& vocab_ptr() const { return vocab_; }

  /// Creates an entry. `parent` must be alive, or kInvalidEntryId for a
  /// root. `classes` must be non-empty after folding in any objectClass
  /// values found in `values`.
  Result<EntryId> AddEntry(EntryId parent, std::string rdn,
                           std::vector<ClassId> classes,
                           std::vector<AttributeValue> values);

  /// Name-based convenience over AddEntry; parses values by attribute type
  /// (interning unknown attributes as string-typed).
  Result<EntryId> AddEntryFromSpec(EntryId parent, const EntrySpec& spec);

  /// Adds one value; no-op OK if the identical pair is already present.
  /// Adding an objectClass value is redirected to AddClass.
  Status AddValue(EntryId id, AttributeId attr, Value value);

  /// Removes one (attribute, value) pair; NotFound if absent.
  Status RemoveValue(EntryId id, AttributeId attr, const Value& value);

  /// Adds a class membership (and its implicit objectClass value).
  Status AddClass(EntryId id, ClassId cls);

  /// Removes a class membership; the entry must retain >= 1 class.
  Status RemoveClass(EntryId id, ClassId cls);

  /// Moves the subtree rooted at `id` under `new_parent` (kInvalidEntryId
  /// re-roots it). The LDAP ModDN operation. Fails if `new_parent` lies
  /// inside the moved subtree (would create a cycle) or a sibling RDN
  /// collides. Entry ids are preserved.
  Status MoveSubtree(EntryId id, EntryId new_parent);

  /// Renames an entry (changes its RDN); sibling RDNs must stay unique.
  Status Rename(EntryId id, std::string new_rdn);

  /// Deletes a leaf entry (LDAP permits deleting only leaves).
  Status DeleteLeaf(EntryId id);

  /// Deletes an entire subtree, leaves first.
  Status DeleteSubtree(EntryId id);

  bool IsAlive(EntryId id) const {
    return id < entries_.size() && alive_[id];
  }

  /// Read access; `id` must be alive or tombstoned (but allocated).
  const Entry& entry(EntryId id) const { return entries_[id]; }

  /// Alive roots in insertion order.
  const std::vector<EntryId>& roots() const { return roots_; }

  /// Number of alive entries.
  size_t NumEntries() const { return num_alive_; }

  /// One past the largest allocated id; EntrySets over this directory use
  /// this as their capacity.
  size_t IdCapacity() const { return entries_.size(); }

  /// Number of alive entries that belong to class `c` (maintained
  /// incrementally; this is the count index that, per §4, makes required
  /// classes incrementally testable under deletion). Lock-free: backed
  /// by a concurrent count table, safe to call from any thread even
  /// while the (single) writer mutates.
  size_t CountWithClass(ClassId c) const {
    int64_t n = class_counts_->Get(c);
    return n < 0 ? 0 : static_cast<size_t>(n);
  }

  /// Monotonically increasing mutation counter.
  uint64_t version() const { return version_; }

  /// The preorder/interval index, maintained incrementally by the
  /// mutators. Always fresh; O(1).
  const ForestIndex& GetIndex() const { return index_; }

  /// Calls `fn(const Entry&)` for each alive entry in id order.
  template <typename Fn>
  void ForEachAlive(Fn&& fn) const {
    for (size_t id = 0; id < entries_.size(); ++id) {
      if (alive_[id]) fn(entries_[id]);
    }
  }

  /// The set of all alive entries.
  EntrySet AliveSet() const;

  /// Finds the child of `parent` whose RDN equals `rdn` (case-insensitive);
  /// with parent == kInvalidEntryId, searches the roots. Returns
  /// kInvalidEntryId if absent.
  EntryId FindChildByRdn(EntryId parent, std::string_view rdn) const;

  /// All alive entries of the subtree rooted at `id`, preorder.
  std::vector<EntryId> SubtreeEntries(EntryId id) const;

  /// Shape summary of the instance; O(|D|).
  DirectoryStats ComputeStats() const;

  // -- MVCC snapshots (DESIGN.md §10) --

  /// Turns on snapshot maintenance: builds the posting maps (O(|D|),
  /// once) and publishes the first snapshot. Before this, mutators skip
  /// posting upkeep entirely. Idempotent; single-writer.
  void EnableSnapshots();
  bool snapshots_enabled() const { return snapshots_enabled_; }

  /// Publishes an immutable snapshot of the current version (O(Δ) since
  /// the previous publish). No-op when snapshots are disabled.
  /// Single-writer: call under the same exclusion as the mutators.
  void PublishSnapshot();

  /// Pins the latest published snapshot; empty when disabled. Lock-free,
  /// callable from any thread concurrently with the writer.
  PinnedSnapshot PinSnapshot() const {
    return store_ == nullptr ? PinnedSnapshot() : store_->Pin();
  }

  /// The publication point, for metrics; nullptr when disabled.
  const SnapshotStore* snapshot_store() const { return store_.get(); }

 private:
  Status CheckAlive(EntryId id) const;
  void BumpClassCount(ClassId c, int delta);
  // Key of the sibling-RDN uniqueness index: "<parent>/<lowercased rdn>".
  static std::string RdnKey(EntryId parent, std::string_view rdn);

  // Snapshot-posting upkeep (no-ops until EnableSnapshots):
  /// Capacity snapshot EntrySets are built at: IdCapacity rounded up to
  /// a power of two, so growth reallocates postings O(log n) times.
  size_t PostingCapacity() const;
  EntrySet* MutableAlive();
  void TrackAlive(EntryId id, bool on);
  void TrackClass(EntryId id, ClassId cls, bool add);
  void TrackValue(EntryId id, AttributeId attr, const Value& value, bool add);
  /// Re-serializes entry `id`'s payload blob (DirectorySnapshot::
  /// PayloadMap format) into the pending delta; with alive == false the
  /// payload is dropped instead. Names resolve through the Vocabulary
  /// here, on the writer thread, so snapshot readers never touch it.
  void TrackEntryPayload(EntryId id, bool alive = true);

  std::shared_ptr<Vocabulary> vocab_;
  std::vector<Entry> entries_;
  std::vector<bool> alive_;
  std::vector<EntryId> roots_;
  /// Class populations; a lock-free concurrent table so readers (e.g.
  /// required-class checks, monitor) never exclude the writer.
  std::unique_ptr<ConcurrentCountTable> class_counts_;
  /// Sibling-RDN uniqueness index; COW so each snapshot publish shares
  /// the map with prior versions.
  CowMap<std::string, EntryId> rdn_index_;
  size_t num_alive_ = 0;
  uint64_t version_ = 0;

  ForestIndex index_;  // live: maintained by the mutators

  // MVCC snapshot state (inert until EnableSnapshots).
  bool snapshots_enabled_ = false;
  std::shared_ptr<EntrySet> alive_shared_;
  /// True while alive_shared_ has not been captured by a publish (the
  /// writer may mutate it in place; else it clones first).
  bool alive_private_ = false;
  DirectorySnapshot::ClassPostingMap by_class_;
  DirectorySnapshot::ValuePostingMap by_value_;
  DirectorySnapshot::PayloadMap by_entry_;
  std::unique_ptr<SnapshotStore> store_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_MODEL_DIRECTORY_H_
