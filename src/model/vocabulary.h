#ifndef LDAPBOUND_MODEL_VOCABULARY_H_
#define LDAPBOUND_MODEL_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/value.h"
#include "util/result.h"

namespace ldapbound {

/// Dense identifier for an interned attribute name.
using AttributeId = uint32_t;
/// Dense identifier for an interned object-class name.
using ClassId = uint32_t;

inline constexpr AttributeId kInvalidAttributeId = ~AttributeId{0};
inline constexpr ClassId kInvalidClassId = ~ClassId{0};

/// The shared namespace of attribute and object-class names (the paper's
/// infinite sets `A` and `C`, plus the typing function `tau : A -> T`).
///
/// LDAP names are case-insensitive; the vocabulary canonicalizes lookups but
/// preserves the first-seen spelling for display. A `Vocabulary` is shared
/// (via shared_ptr) between a `Directory` and the `DirectorySchema` that
/// governs it, so AttributeId / ClassId values are directly comparable.
///
/// Two names are pre-interned:
///  - attribute "objectClass" (string-typed) as `objectclass_attr()`;
///  - class "top", the root of every core-class hierarchy, as `top_class()`.
class Vocabulary {
 public:
  Vocabulary();

  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;

  /// Interns `name` as an attribute of type `type`. `single_valued`
  /// attributes admit at most one value per entry (the LDAP "single-valued"
  /// declaration §6.1 mentions). Re-interning with the same definition
  /// returns the existing id; a conflicting one is an error.
  Result<AttributeId> DefineAttribute(std::string_view name, ValueType type,
                                      bool single_valued = false);

  /// Interns `name` with string type if new; returns the existing id
  /// (whatever its type) if already present.
  AttributeId InternAttribute(std::string_view name);

  /// Looks up an attribute without interning.
  Result<AttributeId> FindAttribute(std::string_view name) const;

  /// Interns an object-class name (classes are untyped labels here; their
  /// core/auxiliary nature is part of the class schema, not the vocabulary).
  ClassId InternClass(std::string_view name);

  /// Looks up a class without interning.
  Result<ClassId> FindClass(std::string_view name) const;

  const std::string& AttributeName(AttributeId id) const {
    return attribute_names_[id];
  }
  ValueType AttributeType(AttributeId id) const {
    return attribute_types_[id];
  }
  bool IsSingleValued(AttributeId id) const {
    return attribute_single_[id] != 0;
  }
  const std::string& ClassName(ClassId id) const { return class_names_[id]; }

  size_t num_attributes() const { return attribute_names_.size(); }
  size_t num_classes() const { return class_names_.size(); }

  AttributeId objectclass_attr() const { return objectclass_attr_; }
  ClassId top_class() const { return top_class_; }

 private:
  std::vector<std::string> attribute_names_;
  std::vector<ValueType> attribute_types_;
  std::vector<uint8_t> attribute_single_;
  std::unordered_map<std::string, AttributeId> attribute_index_;  // lowercase

  std::vector<std::string> class_names_;
  std::unordered_map<std::string, ClassId> class_index_;  // lowercase

  AttributeId objectclass_attr_;
  ClassId top_class_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_MODEL_VOCABULARY_H_
