#ifndef LDAPBOUND_MODEL_AXIS_H_
#define LDAPBOUND_MODEL_AXIS_H_

#include <cstdint>
#include <string_view>

namespace ldapbound {

/// The four structural axes shared by the structure schema's relationships
/// (Definition 2.4) and the hierarchical query language's operators.
enum class Axis : uint8_t {
  kChild = 0,
  kParent = 1,
  kDescendant = 2,
  kAncestor = 3,
};

/// Paper-style one-letter operator name: c / p / d / a.
constexpr std::string_view AxisToString(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "c";
    case Axis::kParent:
      return "p";
    case Axis::kDescendant:
      return "d";
    case Axis::kAncestor:
      return "a";
  }
  return "?";
}

/// Long name: child / parent / descendant / ancestor.
constexpr std::string_view AxisToWord(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kParent:
      return "parent";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kAncestor:
      return "ancestor";
  }
  return "?";
}

/// The four axes in enum order, for sweep loops.
inline constexpr Axis kAllAxes[] = {Axis::kChild, Axis::kParent,
                                    Axis::kDescendant, Axis::kAncestor};

/// The downward axes permitted in forbidden relationships (Ef).
inline constexpr Axis kForbiddenAxes[] = {Axis::kChild, Axis::kDescendant};

}  // namespace ldapbound

#endif  // LDAPBOUND_MODEL_AXIS_H_
