#include "model/directory_snapshot.h"

#include "util/metrics.h"
#include "util/string_util.h"

namespace ldapbound {

namespace {

struct SnapshotMetrics {
  Counter& publishes;
  Gauge& reclaim_lag;
  static SnapshotMetrics& Get() {
    static SnapshotMetrics* m = [] {
      MetricRegistry& r = MetricRegistry::Default();
      return new SnapshotMetrics{
          r.GetCounter("ldapbound_snapshot_publishes_total",
                       "Directory snapshots published by the MVCC read "
                       "path (one per committed write batch)"),
          r.GetGauge("ldapbound_snapshot_reclaim_lag",
                     "Retired snapshots whose grace period has not yet "
                     "elapsed (readers may still hold them)"),
      };
    }();
    return *m;
  }
};

}  // namespace

std::string SnapshotRdnKey(EntryId parent, std::string_view rdn) {
  std::string key = std::to_string(parent);
  key += '/';
  key += ToLower(rdn);
  return key;
}

EntryId DirectorySnapshot::FindChildByRdn(EntryId parent,
                                          std::string_view rdn) const {
  const EntryId* found = this->rdn.Find(SnapshotRdnKey(parent, rdn));
  return found == nullptr ? kInvalidEntryId : *found;
}

void SnapshotStore::Publish(const DirectorySnapshot* snap) {
  const DirectorySnapshot* old = head_.exchange(snap, std::memory_order_seq_cst);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  SnapshotMetrics& metrics = SnapshotMetrics::Get();
  metrics.publishes.Increment();
  if (old != nullptr) {
    epochs_->Retire([old] { delete old; });
  }
  metrics.reclaim_lag.Set(static_cast<int64_t>(epochs_->retired_pending()));
}

}  // namespace ldapbound
