#ifndef LDAPBOUND_MODEL_VALUE_H_
#define LDAPBOUND_MODEL_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

#include "util/result.h"

namespace ldapbound {

/// The type set `T` of the paper (Definition 2.1 assumes a set of types with
/// domains and a typing function `tau : A -> T`). We support the basic LDAP
/// attribute syntaxes needed by directories: strings, integers and booleans.
enum class ValueType : uint8_t {
  kString = 0,
  kInteger = 1,
  kBoolean = 2,
};

/// Stable name of a value type ("string", "integer", "boolean").
std::string_view ValueTypeToString(ValueType type);

/// Parses a type name; accepts the names produced by ValueTypeToString.
Result<ValueType> ValueTypeFromString(std::string_view name);

/// A single attribute value: an element of `dom(T)`. Values are immutable
/// and totally ordered (first by type, then by content) so they can be kept
/// in sorted containers.
class Value {
 public:
  /// Defaults to the empty string.
  Value() : data_(std::string()) {}
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(const char* s) : data_(std::string(s)) {}
  explicit Value(int64_t i) : data_(i) {}
  explicit Value(bool b) : data_(b) {}

  /// Parses `text` as a value of the given type. Integers must be fully
  /// numeric; booleans accept "true"/"false" (case-insensitive).
  static Result<Value> Parse(ValueType type, std::string_view text);

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }

  bool is_string() const { return type() == ValueType::kString; }
  bool is_integer() const { return type() == ValueType::kInteger; }
  bool is_boolean() const { return type() == ValueType::kBoolean; }

  const std::string& AsString() const { return std::get<std::string>(data_); }
  int64_t AsInteger() const { return std::get<int64_t>(data_); }
  bool AsBoolean() const { return std::get<bool>(data_); }

  /// Renders the value as text; inverse of Parse for all three types.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.data_ < b.data_;
  }

  /// Hash suitable for unordered containers.
  size_t Hash() const;

 private:
  std::variant<std::string, int64_t, bool> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace ldapbound

#endif  // LDAPBOUND_MODEL_VALUE_H_
