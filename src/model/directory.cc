#include "model/directory.h"

#include <algorithm>

#include "util/string_util.h"

namespace ldapbound {

Directory::Directory(std::shared_ptr<Vocabulary> vocab)
    : vocab_(std::move(vocab)),
      class_counts_(
          std::make_unique<ConcurrentCountTable>(EpochManager::Default())) {}

Status Directory::CheckAlive(EntryId id) const {
  if (!IsAlive(id)) {
    return Status::NotFound("no such entry: id " + std::to_string(id));
  }
  return Status::OK();
}

std::string Directory::RdnKey(EntryId parent, std::string_view rdn) {
  return SnapshotRdnKey(parent, rdn);
}

void Directory::BumpClassCount(ClassId c, int delta) {
  class_counts_->Update(c, delta);
}

Result<EntryId> Directory::AddEntry(EntryId parent, std::string rdn,
                                    std::vector<ClassId> classes,
                                    std::vector<AttributeValue> values) {
  if (parent != kInvalidEntryId) {
    LDAPBOUND_RETURN_IF_ERROR(CheckAlive(parent));
  }
  if (FindChildByRdn(parent, rdn) != kInvalidEntryId) {
    return Status::AlreadyExists("sibling with RDN '" + rdn +
                                 "' already exists");
  }

  // Fold explicit objectClass values into class memberships (Def. 2.1 3(b));
  // type-check everything else.
  const AttributeId oc = vocab_->objectclass_attr();
  std::vector<AttributeValue> kept;
  kept.reserve(values.size());
  for (AttributeValue& av : values) {
    if (av.attribute == oc) {
      if (!av.value.is_string()) {
        return Status::InvalidArgument("objectClass value must be a string");
      }
      classes.push_back(vocab_->InternClass(av.value.AsString()));
      continue;
    }
    if (av.attribute >= vocab_->num_attributes()) {
      return Status::OutOfRange("attribute id out of range");
    }
    if (av.value.type() != vocab_->AttributeType(av.attribute)) {
      return Status::InvalidArgument(
          "value '" + av.value.ToString() + "' has wrong type for attribute " +
          vocab_->AttributeName(av.attribute));
    }
    kept.push_back(std::move(av));
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  if (classes.empty()) {
    return Status::InvalidArgument(
        "an entry must belong to at least one object class");
  }
  for (ClassId c : classes) {
    if (c >= vocab_->num_classes()) {
      return Status::OutOfRange("class id out of range");
    }
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  for (size_t i = 1; i < kept.size(); ++i) {
    if (kept[i].attribute == kept[i - 1].attribute &&
        vocab_->IsSingleValued(kept[i].attribute)) {
      return Status::InvalidArgument(
          "attribute " + vocab_->AttributeName(kept[i].attribute) +
          " is single-valued");
    }
  }

  EntryId id = static_cast<EntryId>(entries_.size());
  entries_.emplace_back();
  Entry& e = entries_.back();
  e.id_ = id;
  e.parent_ = parent;
  e.rdn_ = std::move(rdn);
  e.classes_ = std::move(classes);
  e.values_ = std::move(kept);
  alive_.push_back(true);
  ++num_alive_;
  if (parent == kInvalidEntryId) {
    roots_.push_back(id);
  } else {
    entries_[parent].children_.push_back(id);
  }
  rdn_index_.Set(RdnKey(parent, e.rdn_), id);
  for (ClassId c : e.classes_) BumpClassCount(c, +1);
  index_.OnInsert(*this, id);
  TrackAlive(id, true);
  for (ClassId c : e.classes_) TrackClass(id, c, true);
  for (const AttributeValue& av : e.values_) {
    TrackValue(id, av.attribute, av.value, true);
  }
  TrackEntryPayload(id);
  ++version_;
  return id;
}

Result<EntryId> Directory::AddEntryFromSpec(EntryId parent,
                                            const EntrySpec& spec) {
  std::vector<ClassId> classes;
  classes.reserve(spec.classes.size());
  for (const std::string& name : spec.classes) {
    classes.push_back(vocab_->InternClass(name));
  }
  std::vector<AttributeValue> values;
  values.reserve(spec.values.size());
  for (const auto& [attr_name, text] : spec.values) {
    AttributeId attr = vocab_->InternAttribute(attr_name);
    LDAPBOUND_ASSIGN_OR_RETURN(
        Value v, Value::Parse(vocab_->AttributeType(attr), text));
    values.push_back(AttributeValue{attr, std::move(v)});
  }
  return AddEntry(parent, spec.rdn, std::move(classes), std::move(values));
}

Status Directory::AddValue(EntryId id, AttributeId attr, Value value) {
  LDAPBOUND_RETURN_IF_ERROR(CheckAlive(id));
  if (attr == vocab_->objectclass_attr()) {
    if (!value.is_string()) {
      return Status::InvalidArgument("objectClass value must be a string");
    }
    return AddClass(id, vocab_->InternClass(value.AsString()));
  }
  if (attr >= vocab_->num_attributes()) {
    return Status::OutOfRange("attribute id out of range");
  }
  if (value.type() != vocab_->AttributeType(attr)) {
    return Status::InvalidArgument("value '" + value.ToString() +
                                   "' has wrong type for attribute " +
                                   vocab_->AttributeName(attr));
  }
  Entry& e = entries_[id];
  AttributeValue av{attr, std::move(value)};
  auto it = std::lower_bound(e.values_.begin(), e.values_.end(), av);
  if (it != e.values_.end() && *it == av) return Status::OK();
  if (vocab_->IsSingleValued(attr) && e.HasAttribute(attr)) {
    return Status::FailedPrecondition("attribute " +
                                      vocab_->AttributeName(attr) +
                                      " is single-valued");
  }
  it = e.values_.insert(it, std::move(av));
  TrackValue(id, attr, it->value, true);
  TrackEntryPayload(id);
  ++version_;
  return Status::OK();
}

Status Directory::RemoveValue(EntryId id, AttributeId attr,
                              const Value& value) {
  LDAPBOUND_RETURN_IF_ERROR(CheckAlive(id));
  if (attr == vocab_->objectclass_attr()) {
    if (!value.is_string()) {
      return Status::InvalidArgument("objectClass value must be a string");
    }
    LDAPBOUND_ASSIGN_OR_RETURN(ClassId c, vocab_->FindClass(value.AsString()));
    return RemoveClass(id, c);
  }
  Entry& e = entries_[id];
  AttributeValue av{attr, value};
  auto it = std::lower_bound(e.values_.begin(), e.values_.end(), av);
  if (it == e.values_.end() || !(*it == av)) {
    return Status::NotFound("no such (attribute, value) pair");
  }
  e.values_.erase(it);
  TrackValue(id, attr, value, false);
  TrackEntryPayload(id);
  ++version_;
  return Status::OK();
}

Status Directory::AddClass(EntryId id, ClassId cls) {
  LDAPBOUND_RETURN_IF_ERROR(CheckAlive(id));
  if (cls >= vocab_->num_classes()) {
    return Status::OutOfRange("class id out of range");
  }
  Entry& e = entries_[id];
  auto it = std::lower_bound(e.classes_.begin(), e.classes_.end(), cls);
  if (it != e.classes_.end() && *it == cls) return Status::OK();
  e.classes_.insert(it, cls);
  BumpClassCount(cls, +1);
  TrackClass(id, cls, true);
  TrackEntryPayload(id);
  ++version_;
  return Status::OK();
}

Status Directory::RemoveClass(EntryId id, ClassId cls) {
  LDAPBOUND_RETURN_IF_ERROR(CheckAlive(id));
  Entry& e = entries_[id];
  auto it = std::lower_bound(e.classes_.begin(), e.classes_.end(), cls);
  if (it == e.classes_.end() || *it != cls) {
    return Status::NotFound("entry does not belong to class");
  }
  if (e.classes_.size() == 1) {
    return Status::FailedPrecondition(
        "an entry must belong to at least one object class");
  }
  e.classes_.erase(it);
  BumpClassCount(cls, -1);
  TrackClass(id, cls, false);
  TrackEntryPayload(id);
  ++version_;
  return Status::OK();
}

Status Directory::MoveSubtree(EntryId id, EntryId new_parent) {
  LDAPBOUND_RETURN_IF_ERROR(CheckAlive(id));
  if (new_parent != kInvalidEntryId) {
    LDAPBOUND_RETURN_IF_ERROR(CheckAlive(new_parent));
    // The new parent must not be inside the moved subtree.
    for (EntryId a = new_parent; a != kInvalidEntryId;
         a = entries_[a].parent_) {
      if (a == id) {
        return Status::InvalidArgument(
            "cannot move an entry under its own subtree");
      }
    }
  }
  Entry& e = entries_[id];
  if (e.parent_ == new_parent) return Status::OK();
  if (FindChildByRdn(new_parent, e.rdn_) != kInvalidEntryId) {
    return Status::AlreadyExists("sibling with RDN '" + e.rdn_ +
                                 "' already exists at the destination");
  }
  // Detach.
  if (e.parent_ == kInvalidEntryId) {
    roots_.erase(std::find(roots_.begin(), roots_.end(), id));
  } else {
    auto& siblings = entries_[e.parent_].children_;
    siblings.erase(std::find(siblings.begin(), siblings.end(), id));
  }
  rdn_index_.Erase(RdnKey(e.parent_, e.rdn_));
  rdn_index_.Set(RdnKey(new_parent, e.rdn_), id);
  // Attach.
  e.parent_ = new_parent;
  if (new_parent == kInvalidEntryId) {
    roots_.push_back(id);
  } else {
    entries_[new_parent].children_.push_back(id);
  }
  index_.OnMove(*this, id);
  ++version_;
  return Status::OK();
}

Status Directory::Rename(EntryId id, std::string new_rdn) {
  LDAPBOUND_RETURN_IF_ERROR(CheckAlive(id));
  Entry& e = entries_[id];
  if (EqualsIgnoreCase(e.rdn_, new_rdn)) {
    e.rdn_ = std::move(new_rdn);  // case-only change: same index key
    TrackEntryPayload(id);        // ...but the payload carries the bytes
    ++version_;
    return Status::OK();
  }
  if (FindChildByRdn(e.parent_, new_rdn) != kInvalidEntryId) {
    return Status::AlreadyExists("sibling with RDN '" + new_rdn +
                                 "' already exists");
  }
  rdn_index_.Erase(RdnKey(e.parent_, e.rdn_));
  rdn_index_.Set(RdnKey(e.parent_, new_rdn), id);
  e.rdn_ = std::move(new_rdn);
  TrackEntryPayload(id);
  ++version_;
  return Status::OK();
}

Status Directory::DeleteLeaf(EntryId id) {
  LDAPBOUND_RETURN_IF_ERROR(CheckAlive(id));
  Entry& e = entries_[id];
  if (!e.children_.empty()) {
    return Status::FailedPrecondition(
        "only leaf entries can be deleted (entry has " +
        std::to_string(e.children_.size()) + " children)");
  }
  alive_[id] = false;
  --num_alive_;
  for (ClassId c : e.classes_) BumpClassCount(c, -1);
  TrackAlive(id, false);
  for (ClassId c : e.classes_) TrackClass(id, c, false);
  for (const AttributeValue& av : e.values_) {
    TrackValue(id, av.attribute, av.value, false);
  }
  TrackEntryPayload(id, /*alive=*/false);
  if (e.parent_ == kInvalidEntryId) {
    roots_.erase(std::find(roots_.begin(), roots_.end(), id));
  } else {
    auto& siblings = entries_[e.parent_].children_;
    siblings.erase(std::find(siblings.begin(), siblings.end(), id));
  }
  rdn_index_.Erase(RdnKey(e.parent_, e.rdn_));
  index_.OnErase(id);
  ++version_;
  return Status::OK();
}

Status Directory::DeleteSubtree(EntryId id) {
  LDAPBOUND_RETURN_IF_ERROR(CheckAlive(id));
  std::vector<EntryId> order = SubtreeEntries(id);
  // Delete leaves first: reverse preorder is a valid bottom-up order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    LDAPBOUND_RETURN_IF_ERROR(DeleteLeaf(*it));
  }
  return Status::OK();
}

EntrySet Directory::AliveSet() const {
  EntrySet set(IdCapacity());
  for (size_t id = 0; id < entries_.size(); ++id) {
    if (alive_[id]) set.Insert(static_cast<EntryId>(id));
  }
  return set;
}

EntryId Directory::FindChildByRdn(EntryId parent,
                                  std::string_view rdn) const {
  const EntryId* found = rdn_index_.Find(RdnKey(parent, rdn));
  return found == nullptr ? kInvalidEntryId : *found;
}

std::vector<EntryId> Directory::SubtreeEntries(EntryId id) const {
  std::vector<EntryId> out;
  if (!IsAlive(id)) return out;
  std::vector<EntryId> stack{id};
  while (!stack.empty()) {
    EntryId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& children = entries_[cur].children_;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

size_t Directory::PostingCapacity() const {
  size_t cap = 64;
  while (cap < entries_.size()) cap <<= 1;
  return cap;
}

EntrySet* Directory::MutableAlive() {
  const size_t want = PostingCapacity();
  if (!alive_private_) {
    // A published snapshot holds the current set: clone before writing.
    auto clone = std::make_shared<EntrySet>(*alive_shared_);
    alive_shared_ = std::move(clone);
    alive_private_ = true;
  }
  if (alive_shared_->capacity() < want) alive_shared_->Resize(want);
  return alive_shared_.get();
}

void Directory::TrackAlive(EntryId id, bool on) {
  if (!snapshots_enabled_) return;
  EntrySet* alive = MutableAlive();
  if (on) {
    alive->Insert(id);
  } else {
    alive->Erase(id);
  }
}

void Directory::TrackClass(EntryId id, ClassId cls, bool add) {
  if (!snapshots_enabled_) return;
  std::shared_ptr<EntrySet>* pending = by_class_.FindMutableInPending(cls);
  std::shared_ptr<EntrySet> set;
  if (pending != nullptr) {
    set = *pending;  // cloned earlier in this delta: private to the writer
  } else {
    const std::shared_ptr<EntrySet>* frozen = by_class_.Find(cls);
    set = frozen != nullptr ? std::make_shared<EntrySet>(**frozen)
                            : std::make_shared<EntrySet>(PostingCapacity());
    by_class_.Set(cls, set);
  }
  if (set->capacity() <= id) set->Resize(PostingCapacity());
  if (add) {
    set->Insert(id);
  } else {
    set->Erase(id);
  }
}

void Directory::TrackValue(EntryId id, AttributeId attr, const Value& value,
                           bool add) {
  if (!snapshots_enabled_) return;
  SnapshotValueKey key{attr, value};
  std::shared_ptr<std::vector<EntryId>>* pending =
      by_value_.FindMutableInPending(key);
  std::shared_ptr<std::vector<EntryId>> posting;
  if (pending != nullptr) {
    posting = *pending;  // private to the writer (cloned this delta)
  } else {
    const std::shared_ptr<std::vector<EntryId>>* frozen = by_value_.Find(key);
    posting = frozen != nullptr
                  ? std::make_shared<std::vector<EntryId>>(**frozen)
                  : std::make_shared<std::vector<EntryId>>();
    by_value_.Set(key, posting);
  }
  auto it = std::lower_bound(posting->begin(), posting->end(), id);
  if (add) {
    if (it == posting->end() || *it != id) posting->insert(it, id);
  } else if (it != posting->end() && *it == id) {
    posting->erase(it);
    // Drop drained postings from the mirror entirely. Transient values
    // (unique uids, renamed RDN values, ...) would otherwise pin a dead
    // key in the map forever, growing the fold base — and fold cost —
    // without bound under add/delete churn.
    if (posting->empty()) by_value_.Erase(key);
  }
}

namespace {

// Mirrors of the server/wire.h little-endian appenders, duplicated here
// because the model layer cannot depend on src/server. The blob format is
// documented on DirectorySnapshot::PayloadMap.
void PayloadPutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v));
  out.push_back(static_cast<char>(v >> 8));
}

void PayloadPutU32(std::string& out, uint32_t v) {
  PayloadPutU16(out, static_cast<uint16_t>(v));
  PayloadPutU16(out, static_cast<uint16_t>(v >> 16));
}

void PayloadPutString(std::string& out, std::string_view s) {
  PayloadPutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

}  // namespace

void Directory::TrackEntryPayload(EntryId id, bool alive) {
  if (!snapshots_enabled_) return;
  if (!alive) {
    by_entry_.Erase(id);
    return;
  }
  const Entry& e = entries_[id];
  std::string blob;
  PayloadPutString(blob, e.rdn());
  PayloadPutU16(blob, static_cast<uint16_t>(e.classes().size()));
  for (ClassId c : e.classes()) PayloadPutString(blob, vocab_->ClassName(c));
  PayloadPutU16(blob, static_cast<uint16_t>(e.values().size()));
  for (const AttributeValue& av : e.values()) {
    PayloadPutString(blob, vocab_->AttributeName(av.attribute));
    PayloadPutString(blob, av.value.ToString());
  }
  by_entry_.Set(id, std::make_shared<const std::string>(std::move(blob)));
}

void Directory::EnableSnapshots() {
  if (snapshots_enabled_) return;
  snapshots_enabled_ = true;
  store_ = std::make_unique<SnapshotStore>(EpochManager::Default());
  alive_shared_ = std::make_shared<EntrySet>(PostingCapacity());
  alive_private_ = true;
  ForEachAlive([&](const Entry& e) {
    alive_shared_->Insert(e.id());
    for (ClassId c : e.classes()) TrackClass(e.id(), c, true);
    for (const AttributeValue& av : e.values()) {
      TrackValue(e.id(), av.attribute, av.value, true);
    }
    TrackEntryPayload(e.id());
  });
  PublishSnapshot();
}

void Directory::PublishSnapshot() {
  if (!snapshots_enabled_) return;
  auto* snap = new DirectorySnapshot();
  snap->version = version_;
  snap->id_capacity = entries_.size();
  snap->num_alive = num_alive_;
  snap->index = index_.FreezeViews();
  snap->alive = alive_shared_;
  alive_private_ = false;  // the snapshot holds it: next write clones
  snap->by_class = by_class_.Freeze();
  snap->by_value = by_value_.Freeze();
  snap->rdn = rdn_index_.Freeze();
  snap->by_entry = by_entry_.Freeze();
  store_->Publish(snap);
}

DirectoryStats Directory::ComputeStats() const {
  DirectoryStats stats;
  stats.num_entries = num_alive_;
  stats.num_roots = roots_.size();
  const ForestIndex& index = GetIndex();
  size_t depth_sum = 0;
  ForEachAlive([&](const Entry& e) {
    uint32_t depth = index.depth(e.id());
    if (depth >= stats.depth_histogram.size()) {
      stats.depth_histogram.resize(depth + 1, 0);
    }
    ++stats.depth_histogram[depth];
    depth_sum += depth;
    stats.max_depth = std::max<size_t>(stats.max_depth, depth);
    stats.max_fanout = std::max(stats.max_fanout, e.children().size());
    if (e.children().empty()) ++stats.num_leaves;
    stats.total_values += e.values().size();
    stats.total_classes += e.classes().size();
  });
  stats.avg_depth = num_alive_ == 0
                        ? 0.0
                        : static_cast<double>(depth_sum) /
                              static_cast<double>(num_alive_);
  return stats;
}

}  // namespace ldapbound
