#include "semistructured/graph_constraints.h"

#include "util/string_util.h"

namespace ldapbound {

std::string GraphConstraint::ToString() const {
  std::string arrow;
  switch (axis) {
    case Axis::kChild:
      arrow = "->";
      break;
    case Axis::kDescendant:
      arrow = "->>";
      break;
    case Axis::kParent:
      arrow = "<-";
      break;
    case Axis::kAncestor:
      arrow = "<<-";
      break;
  }
  return source + " " + arrow + " " + target +
         (forbidden ? " (forbidden)" : " (required)");
}

namespace {

// Marks every node from which a `target`-labeled node is reachable by a
// non-empty path along `forward ? successors : predecessors`.
std::vector<uint8_t> RelatedSet(const DataGraph& graph,
                                std::string_view target, bool forward) {
  std::vector<uint8_t> related(graph.NumNodes(), 0);
  std::vector<GraphNodeId> queue;
  // Seed with the immediate neighbors "one step before" target nodes.
  for (GraphNodeId t : graph.NodesLabeled(target)) {
    const std::vector<GraphNodeId>& step =
        forward ? graph.Predecessors(t) : graph.Successors(t);
    for (GraphNodeId n : step) {
      if (!related[n]) {
        related[n] = 1;
        queue.push_back(n);
      }
    }
  }
  while (!queue.empty()) {
    GraphNodeId cur = queue.back();
    queue.pop_back();
    const std::vector<GraphNodeId>& step =
        forward ? graph.Predecessors(cur) : graph.Successors(cur);
    for (GraphNodeId n : step) {
      if (!related[n]) {
        related[n] = 1;
        queue.push_back(n);
      }
    }
  }
  return related;
}

// Does `node` have a direct neighbor labeled `label` along the axis?
bool HasNeighborLabeled(const DataGraph& graph, GraphNodeId node,
                        std::string_view label, bool forward) {
  const std::vector<GraphNodeId>& step =
      forward ? graph.Successors(node) : graph.Predecessors(node);
  for (GraphNodeId n : step) {
    if (EqualsIgnoreCase(graph.Label(n), label)) return true;
  }
  return false;
}

}  // namespace

bool CheckGraphConstraints(const DataGraph& graph,
                           const std::vector<GraphConstraint>& constraints,
                           std::vector<GraphViolation>* out) {
  bool ok = true;
  for (const GraphConstraint& constraint : constraints) {
    std::vector<GraphNodeId> sources = graph.NodesLabeled(constraint.source);
    if (sources.empty()) continue;

    const bool forward = constraint.axis == Axis::kChild ||
                         constraint.axis == Axis::kDescendant;
    const bool direct = constraint.axis == Axis::kChild ||
                        constraint.axis == Axis::kParent;

    std::vector<uint8_t> related;
    if (!direct) {
      related = RelatedSet(graph, constraint.target, forward);
    }
    for (GraphNodeId s : sources) {
      bool has = direct ? HasNeighborLabeled(graph, s, constraint.target,
                                             forward)
                        : related[s] != 0;
      if (has == constraint.forbidden) {
        ok = false;
        if (out == nullptr) return false;
        out->push_back(GraphViolation{constraint, s});
      }
    }
  }
  return ok;
}

}  // namespace ldapbound
