#ifndef LDAPBOUND_SEMISTRUCTURED_DATA_GRAPH_H_
#define LDAPBOUND_SEMISTRUCTURED_DATA_GRAPH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace ldapbound {

/// Node identifier in a DataGraph.
using GraphNodeId = uint32_t;

/// A labeled directed graph: the semi-structured (OEM-style) data model of
/// Section 6. Unlike the directory forest, a data graph may share subtrees
/// and contain cycles; "descendant" means reachability by a non-empty path.
class DataGraph {
 public:
  DataGraph() = default;

  /// Adds a node with the given label (labels need not be unique).
  GraphNodeId AddNode(std::string label);

  /// Adds a directed edge; self-loops and parallel edges are permitted
  /// (parallel edges are de-duplicated).
  Status AddEdge(GraphNodeId from, GraphNodeId to);

  size_t NumNodes() const { return labels_.size(); }
  size_t NumEdges() const { return num_edges_; }

  const std::string& Label(GraphNodeId node) const { return labels_[node]; }
  const std::vector<GraphNodeId>& Successors(GraphNodeId node) const {
    return successors_[node];
  }
  const std::vector<GraphNodeId>& Predecessors(GraphNodeId node) const {
    return predecessors_[node];
  }

  /// All nodes with the given label, ascending.
  std::vector<GraphNodeId> NodesLabeled(std::string_view label) const;

 private:
  std::vector<std::string> labels_;
  std::vector<std::vector<GraphNodeId>> successors_;
  std::vector<std::vector<GraphNodeId>> predecessors_;
  std::unordered_map<std::string, std::vector<GraphNodeId>> by_label_;
  size_t num_edges_ = 0;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SEMISTRUCTURED_DATA_GRAPH_H_
