#include "semistructured/data_graph.h"

#include <algorithm>

#include "util/string_util.h"

namespace ldapbound {

GraphNodeId DataGraph::AddNode(std::string label) {
  GraphNodeId id = static_cast<GraphNodeId>(labels_.size());
  by_label_[ToLower(label)].push_back(id);
  labels_.push_back(std::move(label));
  successors_.emplace_back();
  predecessors_.emplace_back();
  return id;
}

Status DataGraph::AddEdge(GraphNodeId from, GraphNodeId to) {
  if (from >= labels_.size() || to >= labels_.size()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  std::vector<GraphNodeId>& succ = successors_[from];
  if (std::find(succ.begin(), succ.end(), to) != succ.end()) {
    return Status::OK();  // parallel edge: no-op
  }
  succ.push_back(to);
  predecessors_[to].push_back(from);
  ++num_edges_;
  return Status::OK();
}

std::vector<GraphNodeId> DataGraph::NodesLabeled(
    std::string_view label) const {
  auto it = by_label_.find(ToLower(label));
  if (it == by_label_.end()) return {};
  return it->second;
}

}  // namespace ldapbound
