#ifndef LDAPBOUND_SEMISTRUCTURED_GRAPH_CONSTRAINTS_H_
#define LDAPBOUND_SEMISTRUCTURED_GRAPH_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "model/axis.h"
#include "semistructured/data_graph.h"

namespace ldapbound {

/// A bounding constraint over a data graph — the Section 6 transfer of the
/// structure schema to semi-structured databases. Unlike the path
/// constraints of Buneman et al. / Abiteboul-Vianu that the paper contrasts
/// with, the descendant/ancestor forms place no bound on path length:
///
///  - required:  every node labeled `source` has an axis-related node
///    labeled `target` (e.g. person —>> name: every person reaches a name);
///  - forbidden (child/descendant only): no node labeled `source` has an
///    axis-related node labeled `target` (e.g. country —>>∤ country).
struct GraphConstraint {
  std::string source;
  Axis axis = Axis::kChild;
  std::string target;
  bool forbidden = false;

  std::string ToString() const;
};

/// A violation: the node that lacks a required relative or possesses a
/// forbidden one.
struct GraphViolation {
  GraphConstraint constraint;
  GraphNodeId node = 0;
};

/// Checks `graph` against `constraints`. Each constraint is evaluated in
/// O(V + E) by label-set BFS (reachability handles shared subtrees and
/// cycles, which the tree-shaped directory evaluator never sees). Appends
/// violations to `out` if non-null. Returns true iff all constraints hold.
bool CheckGraphConstraints(const DataGraph& graph,
                           const std::vector<GraphConstraint>& constraints,
                           std::vector<GraphViolation>* out = nullptr);

}  // namespace ldapbound

#endif  // LDAPBOUND_SEMISTRUCTURED_GRAPH_CONSTRAINTS_H_
