#include "core/legality_checker.h"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/translation.h"
#include "query/evaluator.h"
#include "query/snapshot_evaluator.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ldapbound {

namespace {

// Process-wide checker observability (ldapbound_checker_* families).
// Per-entry work never touches these directly: shards accumulate in plain
// locals (ContentCounters) and flush once per shard, constraints observe
// once per query. See util/metrics.h for the cost model.
struct CheckerMetrics {
  Histogram& content_pass_ns;
  Histogram& structure_pass_ns;
  Histogram& keys_pass_ns;
  Histogram& constraint_ns;    ///< one violation query, phase 2
  Counter& content_legal;
  Counter& content_illegal;
  Counter& structure_legal;
  Counter& structure_illegal;
  Counter& keys_legal;
  Counter& keys_illegal;
  Counter& entries_checked;    ///< entries through a content pass
  Counter& memo_screened;      ///< entries certified by the class-set memo
  Counter& memo_fallback;      ///< entries re-run through the exact check
  Histogram& shard_imbalance_pct;  ///< 100*(max-min)/max chunks per lane
};

CheckerMetrics& GetCheckerMetrics() {
  // One registration, then lock-free updates; leaked with the registry.
  MetricRegistry& r = MetricRegistry::Default();
  static CheckerMetrics* metrics = new CheckerMetrics{
      r.GetHistogram("ldapbound_checker_pass_ns",
                     "Wall nanoseconds of one checker pass",
                     "pass=\"content\""),
      r.GetHistogram("ldapbound_checker_pass_ns",
                     "Wall nanoseconds of one checker pass",
                     "pass=\"structure\""),
      r.GetHistogram("ldapbound_checker_pass_ns",
                     "Wall nanoseconds of one checker pass",
                     "pass=\"keys\""),
      r.GetHistogram("ldapbound_checker_constraint_ns",
                     "Wall nanoseconds of one structural-constraint "
                     "violation query"),
      r.GetCounter("ldapbound_checker_checks_total",
                   "Checker pass runs by verdict",
                   "pass=\"content\",verdict=\"legal\""),
      r.GetCounter("ldapbound_checker_checks_total",
                   "Checker pass runs by verdict",
                   "pass=\"content\",verdict=\"illegal\""),
      r.GetCounter("ldapbound_checker_checks_total",
                   "Checker pass runs by verdict",
                   "pass=\"structure\",verdict=\"legal\""),
      r.GetCounter("ldapbound_checker_checks_total",
                   "Checker pass runs by verdict",
                   "pass=\"structure\",verdict=\"illegal\""),
      r.GetCounter("ldapbound_checker_checks_total",
                   "Checker pass runs by verdict",
                   "pass=\"keys\",verdict=\"legal\""),
      r.GetCounter("ldapbound_checker_checks_total",
                   "Checker pass runs by verdict",
                   "pass=\"keys\",verdict=\"illegal\""),
      r.GetCounter("ldapbound_checker_entries_checked_total",
                   "Alive entries examined by content passes"),
      r.GetCounter("ldapbound_checker_memo_screened_total",
                   "Entries certified clean by the class-set memo screen"),
      r.GetCounter("ldapbound_checker_memo_fallback_total",
                   "Entries that fell back to the exact per-entry check"),
      r.GetHistogram("ldapbound_checker_shard_imbalance_pct",
                     "Per-pass lane imbalance, 100*(max-min)/max chunks"),
  };
  return *metrics;
}

// Records `v` if collecting; returns false ("stop now") when not collecting.
bool Report(std::vector<Violation>* out, Violation v, bool* ok) {
  *ok = false;
  if (out == nullptr) return false;
  out->push_back(std::move(v));
  return true;
}

// Calls `fn(value)` for every value of `attr` in `entry`, in sorted order,
// without materializing a vector (Entry::GetValues allocates).
template <typename Fn>
void ForEachValueOf(const Entry& entry, AttributeId attr, Fn&& fn) {
  const std::vector<AttributeValue>& vals = entry.values();
  auto it = std::lower_bound(
      vals.begin(), vals.end(), attr,
      [](const AttributeValue& av, AttributeId x) { return av.attribute < x; });
  for (; it != vals.end() && it->attribute == attr; ++it) fn(it->value);
}

}  // namespace

/// Per-worker memo for full-directory content passes. Keyed by the entry's
/// (sorted, unique) class list; the cached verdict and attribute sets are
/// entry-independent, so each distinct class combination pays the
/// class-schema analysis once per worker instead of once per entry.
struct LegalityChecker::ContentCache {
  struct ClassSetInfo {
    bool clean = false;  ///< the class list passes the class schema
    /// Union of the member classes' required attributes (sans objectClass),
    /// sorted and unique.
    std::vector<AttributeId> required;
    /// Bitmap over attribute ids: allowed by at least one member class.
    std::vector<uint64_t> allowed;

    bool IsAllowed(AttributeId a) const {
      return (a >> 6) < allowed.size() && (allowed[a >> 6] >> (a & 63)) & 1;
    }
  };

  std::map<std::vector<ClassId>, ClassSetInfo> infos;
  AttributeId objectclass = kInvalidAttributeId;
};

struct LegalityChecker::ContentCounters {
  uint64_t entries = 0;   ///< alive entries examined
  uint64_t screened = 0;  ///< certified by the memo screen
  uint64_t fallback = 0;  ///< re-ran the exact serial check

  void Flush() const {
    CheckerMetrics& metrics = GetCheckerMetrics();
    metrics.entries_checked.Increment(entries);
    metrics.memo_screened.Increment(screened);
    metrics.memo_fallback.Increment(fallback);
  }
};

namespace {

// Observes lane imbalance for one sharded pass: 0% when every lane ran the
// same number of chunks, approaching 100% when one lane did (nearly) all
// the work while another sat idle.
void ObserveShardImbalance(const std::vector<uint64_t>& lane_chunks) {
  if (lane_chunks.size() < 2) return;
  uint64_t lo = lane_chunks[0], hi = lane_chunks[0];
  for (uint64_t c : lane_chunks) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  if (hi == 0) return;
  GetCheckerMetrics().shard_imbalance_pct.Observe((hi - lo) * 100 / hi);
}

}  // namespace

ThreadPool& LegalityChecker::Pool() const {
  return options_.pool != nullptr ? *options_.pool : ThreadPool::Default();
}

unsigned LegalityChecker::EffectiveThreads(size_t work_items) const {
  unsigned t = ResolveThreads(options_.num_threads);
  if (work_items < t) t = static_cast<unsigned>(work_items);
  return t == 0 ? 1 : t;
}

bool LegalityChecker::CheckEntryClassSchema(const Directory&,
                                            const Entry& entry,
                                            std::vector<Violation>* out) const {
  const ClassSchema& classes = schema_.classes();
  bool ok = true;

  // Only schema classes may be present; split into core and auxiliary.
  ClassId deepest = kInvalidClassId;
  uint32_t deepest_depth = 0;
  size_t num_core = 0;
  for (ClassId c : entry.classes()) {
    if (!classes.Contains(c)) {
      Violation v;
      v.kind = ViolationKind::kUnknownClass;
      v.entry = entry.id();
      v.cls = c;
      if (!Report(out, v, &ok)) return false;
      continue;
    }
    if (classes.IsCore(c)) {
      ++num_core;
      uint32_t d = classes.DepthOf(c);
      if (deepest == kInvalidClassId || d > deepest_depth) {
        deepest = c;
        deepest_depth = d;
      }
    }
  }

  // At least one core class.
  if (num_core == 0) {
    Violation v;
    v.kind = ViolationKind::kNoCoreClass;
    v.entry = entry.id();
    if (!Report(out, v, &ok)) return false;
    return ok;  // inheritance/auxiliary checks need a core chain
  }

  // Single inheritance: the core classes must be exactly the ancestors of
  // the deepest one — any other configuration is either a missing
  // superclass or a pair of incomparable core classes.
  std::vector<ClassId> chain = classes.AncestorsOf(deepest);
  std::sort(chain.begin(), chain.end());
  for (ClassId c : entry.classes()) {
    if (!classes.IsCore(c)) continue;
    if (!std::binary_search(chain.begin(), chain.end(), c)) {
      Violation v;
      v.kind = ViolationKind::kExclusiveClasses;
      v.entry = entry.id();
      v.cls = deepest;
      v.cls2 = c;
      if (!Report(out, v, &ok)) return false;
    }
  }
  for (ClassId c : chain) {
    if (!entry.HasClass(c)) {
      Violation v;
      v.kind = ViolationKind::kMissingSuperclass;
      v.entry = entry.id();
      v.cls = deepest;
      v.cls2 = c;
      if (!Report(out, v, &ok)) return false;
    }
  }

  // Auxiliary classes must be allowed by some core class of the entry.
  for (ClassId c : entry.classes()) {
    if (!classes.IsAuxiliary(c)) continue;
    bool allowed = false;
    for (ClassId core : entry.classes()) {
      if (!classes.IsCore(core)) continue;
      const std::vector<ClassId>& aux = classes.AuxAllowed(core);
      if (std::binary_search(aux.begin(), aux.end(), c)) {
        allowed = true;
        break;
      }
    }
    if (!allowed) {
      Violation v;
      v.kind = ViolationKind::kDisallowedAuxiliary;
      v.entry = entry.id();
      v.cls = c;
      if (!Report(out, v, &ok)) return false;
    }
  }
  return ok;
}

bool LegalityChecker::ClassListClean(
    const std::vector<ClassId>& classes) const {
  const ClassSchema& cs = schema_.classes();
  ClassId deepest = kInvalidClassId;
  uint32_t deepest_depth = 0;
  size_t num_core = 0;
  for (ClassId c : classes) {
    if (!cs.Contains(c)) return false;
    if (cs.IsCore(c)) {
      ++num_core;
      uint32_t d = cs.DepthOf(c);
      if (deepest == kInvalidClassId || d > deepest_depth) {
        deepest = c;
        deepest_depth = d;
      }
    }
  }
  if (num_core == 0) return false;
  std::vector<ClassId> chain = cs.AncestorsOf(deepest);
  std::sort(chain.begin(), chain.end());
  for (ClassId c : classes) {
    if (cs.IsCore(c) &&
        !std::binary_search(chain.begin(), chain.end(), c)) {
      return false;
    }
  }
  for (ClassId c : chain) {
    if (!std::binary_search(classes.begin(), classes.end(), c)) return false;
  }
  for (ClassId c : classes) {
    if (!cs.IsAuxiliary(c)) continue;
    bool allowed = false;
    for (ClassId core : classes) {
      if (!cs.IsCore(core)) continue;
      const std::vector<ClassId>& aux = cs.AuxAllowed(core);
      if (std::binary_search(aux.begin(), aux.end(), c)) {
        allowed = true;
        break;
      }
    }
    if (!allowed) return false;
  }
  return true;
}

bool LegalityChecker::CheckEntryAttributeSchema(
    const Directory& directory, const Entry& entry,
    std::vector<Violation>* out) const {
  const AttributeSchema& attrs = schema_.attributes();
  const AttributeId oc = directory.vocab().objectclass_attr();
  bool ok = true;

  // Required attributes of every member class must be present. The
  // objectClass attribute mirrors class(e), which is non-empty, so it is
  // always present.
  for (ClassId c : entry.classes()) {
    for (AttributeId a : attrs.Required(c)) {
      if (a == oc) continue;
      if (!entry.HasAttribute(a)) {
        Violation v;
        v.kind = ViolationKind::kMissingRequiredAttribute;
        v.entry = entry.id();
        v.cls = c;
        v.attr = a;
        if (!Report(out, v, &ok)) return false;
      }
    }
  }

  // Every present attribute must be allowed by some member class.
  AttributeId last = kInvalidAttributeId;
  for (const AttributeValue& av : entry.values()) {
    if (av.attribute == last) continue;  // values are sorted by attribute
    last = av.attribute;
    bool allowed = false;
    for (ClassId c : entry.classes()) {
      if (attrs.IsAllowed(c, av.attribute)) {
        allowed = true;
        break;
      }
    }
    if (!allowed) {
      Violation v;
      v.kind = ViolationKind::kDisallowedAttribute;
      v.entry = entry.id();
      v.attr = av.attribute;
      if (!Report(out, v, &ok)) return false;
    }
  }
  return ok;
}

bool LegalityChecker::CheckEntryContent(const Directory& directory,
                                        EntryId id,
                                        std::vector<Violation>* out) const {
  const Entry& entry = directory.entry(id);
  bool class_ok = CheckEntryClassSchema(directory, entry, out);
  if (!class_ok && out == nullptr) return false;
  bool attr_ok = CheckEntryAttributeSchema(directory, entry, out);
  return class_ok && attr_ok;
}

bool LegalityChecker::CheckEntryContentCached(
    const Directory& directory, EntryId id, ContentCache& cache,
    ContentCounters& counters, std::vector<Violation>* out) const {
  ++counters.entries;
  const Entry& entry = directory.entry(id);
  auto it = cache.infos.find(entry.classes());
  if (it == cache.infos.end()) {
    ContentCache::ClassSetInfo info;
    info.clean = ClassListClean(entry.classes());
    if (info.clean) {
      const AttributeSchema& attrs = schema_.attributes();
      AttributeId max_allowed = 0;
      for (ClassId c : entry.classes()) {
        for (AttributeId a : attrs.Required(c)) {
          if (a != cache.objectclass) info.required.push_back(a);
        }
        for (AttributeId a : attrs.Allowed(c)) {
          if (a > max_allowed) max_allowed = a;
        }
      }
      std::sort(info.required.begin(), info.required.end());
      info.required.erase(
          std::unique(info.required.begin(), info.required.end()),
          info.required.end());
      info.allowed.assign((static_cast<size_t>(max_allowed) >> 6) + 1, 0);
      for (ClassId c : entry.classes()) {
        for (AttributeId a : attrs.Allowed(c)) {
          info.allowed[a >> 6] |= uint64_t{1} << (a & 63);
        }
      }
    }
    it = cache.infos.emplace(entry.classes(), std::move(info)).first;
  }
  const ContentCache::ClassSetInfo& info = it->second;
  if (info.clean) {
    // Fast screen: required ⊆ present and present ⊆ allowed, via one merge
    // sweep over the entry's sorted values against the sorted required
    // list. Any miss drops to the exact serial check below.
    bool screened = true;
    size_t req = 0;
    AttributeId last = kInvalidAttributeId;
    for (const AttributeValue& av : entry.values()) {
      if (av.attribute == last) continue;
      last = av.attribute;
      if (req < info.required.size() && info.required[req] < av.attribute) {
        screened = false;  // a required attribute was skipped: missing
        break;
      }
      if (req < info.required.size() && info.required[req] == av.attribute) {
        ++req;
      }
      if (!info.IsAllowed(av.attribute)) {
        screened = false;
        break;
      }
    }
    if (screened && req == info.required.size()) {
      ++counters.screened;
      return true;
    }
  }
  // Slow path: the exact serial per-entry check, so violation content and
  // order are identical to the unmemoized checker.
  ++counters.fallback;
  return CheckEntryContent(directory, id, out);
}

bool LegalityChecker::CheckContent(const Directory& directory,
                                   std::vector<Violation>* out) const {
  CheckerMetrics& metrics = GetCheckerMetrics();
  LDAPBOUND_TRACE_SPAN("checker.content");
  LatencyTimer pass_timer(metrics.content_pass_ns);
  const size_t cap = directory.IdCapacity();
  const size_t grain = options_.grain != 0 ? options_.grain : 1;
  const size_t num_chunks = (cap + grain - 1) / grain;
  const unsigned threads = EffectiveThreads(num_chunks);

  if (threads <= 1) {
    ContentCache cache;
    cache.objectclass = directory.vocab().objectclass_attr();
    ContentCounters counters;
    bool ok = true;
    for (size_t id = 0; id < cap; ++id) {
      EntryId eid = static_cast<EntryId>(id);
      if (!directory.IsAlive(eid)) continue;
      if (!CheckEntryContentCached(directory, eid, cache, counters, out)) {
        ok = false;
        if (out == nullptr) break;
      }
    }
    counters.Flush();
    (ok ? metrics.content_legal : metrics.content_illegal).Increment();
    return ok;
  }

  // Sharded pass: chunk k covers ids [k*grain, (k+1)*grain); per-chunk
  // buffers concatenated in chunk order reproduce the serial ascending-id
  // violation order exactly. Each lane keeps its own class-set memo and
  // tallies (flushed to the global metrics once, after the join).
  std::vector<std::vector<Violation>> buffers(out != nullptr ? num_chunks : 0);
  std::vector<ContentCache> caches(threads);
  for (ContentCache& c : caches) {
    c.objectclass = directory.vocab().objectclass_attr();
  }
  std::vector<ContentCounters> counters(threads);
  std::vector<uint64_t> lane_chunks(threads, 0);
  std::atomic<bool> bad{false};
  ParallelFor(Pool(), 0, cap, grain, threads,
              [&](unsigned lane, size_t chunk, size_t lo, size_t hi) {
                ContentCache& cache = caches[lane];
                ++lane_chunks[lane];
                std::vector<Violation>* buf =
                    out != nullptr ? &buffers[chunk] : nullptr;
                for (size_t id = lo; id < hi; ++id) {
                  if (out == nullptr &&
                      bad.load(std::memory_order_relaxed)) {
                    return;  // all-or-nothing mode: a violation was found
                  }
                  EntryId eid = static_cast<EntryId>(id);
                  if (!directory.IsAlive(eid)) continue;
                  if (!CheckEntryContentCached(directory, eid, cache,
                                               counters[lane], buf)) {
                    bad.store(true, std::memory_order_relaxed);
                    if (out == nullptr) return;
                  }
                }
              });
  for (const ContentCounters& c : counters) c.Flush();
  ObserveShardImbalance(lane_chunks);
  if (out != nullptr) {
    for (std::vector<Violation>& buf : buffers) {
      out->insert(out->end(), std::make_move_iterator(buf.begin()),
                  std::make_move_iterator(buf.end()));
    }
  }
  const bool ok = !bad.load(std::memory_order_relaxed);
  (ok ? metrics.content_legal : metrics.content_illegal).Increment();
  return ok;
}

bool LegalityChecker::CheckStructure(const Directory& directory,
                                     std::vector<Violation>* out,
                                     const ValueIndex* index,
                                     EvaluatorStats* stats_out) const {
  const StructureSchema& structure = schema_.structure();
  CheckerMetrics& metrics = GetCheckerMetrics();
  LDAPBOUND_TRACE_SPAN("checker.structure");
  LatencyTimer pass_timer(metrics.structure_pass_ns);
  bool ok = true;
  EvaluatorStats stats;
  // Called exactly once, on every return path: hands the aggregate to the
  // caller, publishes it to the process-wide query metrics, and records
  // the pass verdict.
  auto flush_stats = [&]() {
    if (stats_out != nullptr) *stats_out = stats;
    AddEvaluatorStatsToMetrics(stats);
    (ok ? metrics.structure_legal : metrics.structure_illegal).Increment();
  };

  // Required classes Cr: the atomic witness query must be non-empty.
  // Answered by the directory's class counters, so kept serial.
  for (ClassId cls : structure.required_classes()) {
    if (directory.CountWithClass(cls) > 0) continue;
    Violation v;
    v.kind = ViolationKind::kMissingRequiredClass;
    v.cls = cls;
    if (!Report(out, v, &ok)) {
      flush_stats();
      return false;
    }
  }

  // Er and Ef: the Figure 4 violation query of each relationship must be
  // empty; its members are the offending entries. The queries are
  // independent, so they fan out across the pool — one QueryEvaluator per
  // task (the evaluator holds mutable stats) over a shared read-only cache
  // of the per-class atomic selections.
  std::vector<const StructuralRelationship*> rels;
  rels.reserve(structure.required().size() + structure.forbidden().size());
  for (const StructuralRelationship& rel : structure.required()) {
    rels.push_back(&rel);
  }
  for (const StructuralRelationship& rel : structure.forbidden()) {
    rels.push_back(&rel);
  }
  if (rels.empty()) {
    flush_stats();
    return ok;
  }

  std::vector<ClassId> classes;
  classes.reserve(rels.size() * 2);
  for (const StructuralRelationship* rel : rels) {
    classes.push_back(rel->source);
    classes.push_back(rel->target);
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());

  const unsigned threads = EffectiveThreads(rels.size());
  std::mutex stats_mu;

  // The worker-thread evaluators read the dense preorder views, whose
  // materialization is single-writer: make the cache fresh before the
  // fan-out so every worker sees pure reads.
  directory.GetIndex().MaterializeDenseNow();

  // Phase 1: the (objectClass=c) selection of every distinct class.
  std::unordered_map<ClassId, EntrySet> class_cache;
  class_cache.reserve(classes.size());
  {
  LDAPBOUND_TRACE_SPAN("checker.class_cache");
  if (index != nullptr) {
    // A fresh index answers each selection in O(|result|): keep the
    // per-class path (pre-populated map, so workers assign into distinct,
    // already-allocated slots).
    for (ClassId c : classes) class_cache.emplace(c, EntrySet());
    ParallelFor(Pool(), 0, classes.size(), 1, threads,
                [&](unsigned, size_t, size_t lo, size_t hi) {
                  for (size_t i = lo; i < hi; ++i) {
                    QueryEvaluator evaluator(directory, /*delta=*/nullptr,
                                             index);
                    class_cache.find(classes[i])->second = evaluator.Evaluate(
                        RequiredClassWitnessQuery(classes[i]));
                    std::lock_guard<std::mutex> lock(stats_mu);
                    stats += evaluator.stats();
                  }
                });
  } else {
    // Unindexed: ONE pass over the entries fills every selection at once
    // (each alive entry marks itself in the sets of its wanted classes),
    // instead of |classes| full scans. Shards are aligned to whole bitmap
    // words, so concurrent lanes never touch the same word of a set.
    const size_t cap = directory.IdCapacity();
    std::vector<EntrySet*> sets(classes.size());
    for (size_t i = 0; i < classes.size(); ++i) {
      sets[i] = &class_cache.emplace(classes[i], EntrySet(cap)).first->second;
    }
    const size_t grain =
        (std::max<size_t>(options_.grain, 64) + 63) / 64 * 64;
    ParallelFor(Pool(), 0, cap, grain, EffectiveThreads(cap),
                [&](unsigned, size_t, size_t lo, size_t hi) {
                  for (size_t eid = lo; eid < hi; ++eid) {
                    const EntryId id = static_cast<EntryId>(eid);
                    if (!directory.IsAlive(id)) continue;
                    for (ClassId c : directory.entry(id).classes()) {
                      auto it = std::lower_bound(classes.begin(),
                                                 classes.end(), c);
                      if (it != classes.end() && *it == c) {
                        sets[it - classes.begin()]->Insert(id);
                      }
                    }
                  }
                });
    // Account the pass as one scan answering |classes| selection nodes.
    stats.nodes_evaluated += classes.size();
    stats.entries_scanned += directory.NumEntries();
  }
  }  // checker.class_cache span

  // Phase 2: the violation queries, one task per relationship. With a
  // null `out` only emptiness matters: the evaluator's lazy IsEmpty stops
  // at the first surviving id and remaining tasks are skipped once any
  // relationship has failed.
  std::vector<EntrySet> offenders(out != nullptr ? rels.size() : 0);
  std::vector<uint8_t> rel_bad(rels.size(), 0);
  std::atomic<bool> bad{false};
  ParallelFor(
      Pool(), 0, rels.size(), 1, threads,
      [&](unsigned, size_t, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          if (out == nullptr && bad.load(std::memory_order_relaxed)) return;
          QueryEvaluator evaluator(directory, /*delta=*/nullptr, index);
          evaluator.set_class_cache(&class_cache);
          {
            LDAPBOUND_TRACE_SPAN("checker.constraint");
            LatencyTimer constraint_timer(metrics.constraint_ns);
            if (out == nullptr) {
              if (!evaluator.IsEmpty(ViolationQuery(*rels[i]))) {
                rel_bad[i] = 1;
                bad.store(true, std::memory_order_relaxed);
              }
            } else {
              EntrySet offs = evaluator.Evaluate(ViolationQuery(*rels[i]));
              if (!offs.Empty()) {
                rel_bad[i] = 1;
                bad.store(true, std::memory_order_relaxed);
                offenders[i] = std::move(offs);
              }
            }
          }
          std::lock_guard<std::mutex> lock(stats_mu);
          stats += evaluator.stats();
        }
      });

  // Deterministic emission: schema order (Er then Ef), offenders ascending.
  for (size_t i = 0; i < rels.size(); ++i) {
    if (!rel_bad[i]) continue;
    ok = false;
    if (out == nullptr) {
      flush_stats();
      return false;
    }
    const StructuralRelationship& rel = *rels[i];
    offenders[i].ForEach([&](EntryId id) {
      Violation v;
      v.kind = rel.forbidden ? ViolationKind::kForbiddenRelationship
                             : ViolationKind::kRequiredRelationship;
      v.entry = id;
      v.relationship = rel;
      out->push_back(v);
    });
  }
  flush_stats();
  return ok;
}

Result<bool> LegalityChecker::CheckStructureSnapshot(
    const DirectorySnapshot& snapshot, std::vector<Violation>* out,
    EvaluatorStats* stats_out) const {
  const StructureSchema& structure = schema_.structure();
  CheckerMetrics& metrics = GetCheckerMetrics();
  LDAPBOUND_TRACE_SPAN("checker.structure_snapshot");
  LatencyTimer pass_timer(metrics.structure_pass_ns);
  bool ok = true;
  EvaluatorStats stats;
  auto flush_stats = [&]() {
    if (stats_out != nullptr) *stats_out = stats;
    AddEvaluatorStatsToMetrics(stats);
    (ok ? metrics.structure_legal : metrics.structure_illegal).Increment();
  };

  // Cr: answered by the snapshot's class postings.
  for (ClassId cls : structure.required_classes()) {
    if (snapshot.CountWithClass(cls) > 0) continue;
    Violation v;
    v.kind = ViolationKind::kMissingRequiredClass;
    v.cls = cls;
    if (!Report(out, v, &ok)) {
      flush_stats();
      return false;
    }
  }

  // Er then Ef, serial: each violation query runs on one SnapshotEvaluator
  // over the pinned state. No class cache — the snapshot's postings ARE
  // the per-class selections, shared structurally rather than recomputed.
  std::vector<const StructuralRelationship*> rels;
  rels.reserve(structure.required().size() + structure.forbidden().size());
  for (const StructuralRelationship& rel : structure.required()) {
    rels.push_back(&rel);
  }
  for (const StructuralRelationship& rel : structure.forbidden()) {
    rels.push_back(&rel);
  }
  for (const StructuralRelationship* relp : rels) {
    SnapshotEvaluator evaluator(snapshot);
    LDAPBOUND_TRACE_SPAN("checker.constraint");
    LatencyTimer constraint_timer(metrics.constraint_ns);
    if (out == nullptr) {
      Result<bool> empty = evaluator.IsEmpty(ViolationQuery(*relp));
      stats += evaluator.stats();
      if (!empty.ok()) {
        flush_stats();
        return empty.status();
      }
      if (!empty.value()) {
        ok = false;
        flush_stats();
        return false;
      }
      continue;
    }
    Result<EntrySet> offs = evaluator.Evaluate(ViolationQuery(*relp));
    stats += evaluator.stats();
    if (!offs.ok()) {
      flush_stats();
      return offs.status();
    }
    if (offs.value().Empty()) continue;
    ok = false;
    const StructuralRelationship& rel = *relp;
    offs.value().ForEach([&](EntryId id) {
      Violation v;
      v.kind = rel.forbidden ? ViolationKind::kForbiddenRelationship
                             : ViolationKind::kRequiredRelationship;
      v.entry = id;
      v.relationship = rel;
      out->push_back(v);
    });
  }
  flush_stats();
  return ok;
}

std::string ConstraintExplain::RenderText() const {
  std::string out = constraint;
  out += " — ";
  out += satisfied ? "SATISFIED" : "VIOLATED";
  out += " (";
  out += require_nonempty ? "witnesses=" : "offenders=";
  out += std::to_string(cardinality);
  out += ", ";
  out += FormatDurationNs(profile.total_ns);
  out += ")\n  query: ";
  out += query;
  out += '\n';
  out += profile.root.RenderText(1);
  return out;
}

std::string ConstraintExplain::RenderJson() const {
  std::string out = "{\"constraint\":" + JsonQuote(constraint);
  out += ",\"query\":" + JsonQuote(query);
  out += ",\"require_nonempty\":";
  out += require_nonempty ? "true" : "false";
  out += ",\"satisfied\":";
  out += satisfied ? "true" : "false";
  out += ",\"cardinality\":" + std::to_string(cardinality);
  out += ",\"profile\":" + profile.RenderJson();
  out += '}';
  return out;
}

std::vector<ConstraintExplain> LegalityChecker::ExplainStructure(
    const Directory& directory, const ValueIndex* index) const {
  const StructureSchema& structure = schema_.structure();
  const Vocabulary& vocab = directory.vocab();
  std::vector<ConstraintExplain> out;
  out.reserve(structure.Size());

  for (ClassId cls : structure.required_classes()) {
    ConstraintExplain ce;
    ce.constraint = "require-class " + vocab.ClassName(cls);
    Query query = RequiredClassWitnessQuery(cls);
    ce.query = query.ToString(vocab);
    ce.require_nonempty = true;
    QueryEvaluator evaluator(directory, /*delta=*/nullptr, index);
    evaluator.set_profile(&ce.profile);
    EntrySet witnesses = evaluator.Evaluate(query);
    ce.cardinality = witnesses.Count();
    ce.satisfied = ce.cardinality > 0;
    AddEvaluatorStatsToMetrics(evaluator.stats());
    out.push_back(std::move(ce));
  }

  auto explain_rel = [&](const StructuralRelationship& rel) {
    ConstraintExplain ce;
    ce.constraint = rel.ToString(vocab);
    Query query = ViolationQuery(rel);
    ce.query = query.ToString(vocab);
    QueryEvaluator evaluator(directory, /*delta=*/nullptr, index);
    evaluator.set_profile(&ce.profile);
    EntrySet offenders = evaluator.Evaluate(query);
    ce.cardinality = offenders.Count();
    ce.satisfied = ce.cardinality == 0;
    AddEvaluatorStatsToMetrics(evaluator.stats());
    out.push_back(std::move(ce));
  };
  for (const StructuralRelationship& rel : structure.required()) {
    explain_rel(rel);
  }
  for (const StructuralRelationship& rel : structure.forbidden()) {
    explain_rel(rel);
  }
  return out;
}

bool LegalityChecker::CheckKeys(const Directory& directory,
                                std::vector<Violation>* out) const {
  const std::vector<AttributeId>& keys = schema_.key_attributes();
  if (keys.empty()) return true;
  CheckerMetrics& metrics = GetCheckerMetrics();
  LDAPBOUND_TRACE_SPAN("checker.keys");
  LatencyTimer pass_timer(metrics.keys_pass_ns);
  // Every return goes through here so the verdict counter stays exact.
  auto record = [&metrics](bool verdict) {
    (verdict ? metrics.keys_legal : metrics.keys_illegal).Increment();
    return verdict;
  };
  const size_t cap = directory.IdCapacity();
  const size_t grain = options_.grain != 0 ? options_.grain : 1;
  const size_t num_chunks = (cap + grain - 1) / grain;
  const unsigned threads = EffectiveThreads(num_chunks);

  if (threads <= 1) {
    bool ok = true;
    std::unordered_set<Value, ValueHash> seen;
    for (AttributeId attr : keys) {
      seen.clear();
      bool stop = false;
      directory.ForEachAlive([&](const Entry& e) {
        if (stop) return;
        ForEachValueOf(e, attr, [&](const Value& v) {
          if (stop) return;
          if (!seen.insert(v).second) {
            Violation violation;
            violation.kind = ViolationKind::kDuplicateKeyValue;
            violation.entry = e.id();
            violation.attr = attr;
            if (!Report(out, violation, &ok)) stop = true;
          }
        });
      });
      if (stop) return record(false);
    }
    return record(ok);
  }

  // Sharded pass, per key attribute: each shard hashes its id range into a
  // local occurrence map (first occurrence + later ones, in scan order);
  // the serial merge walks shards in ascending order, so the globally
  // first occurrence of each value — the one a serial scan would not
  // report — is identified deterministically. A violation only records
  // (entry, attr), so sorting the offender ids reproduces the serial
  // ascending-id emission exactly.
  bool ok = true;
  struct ShardOcc {
    EntryId first = kInvalidEntryId;
    std::vector<EntryId> rest;  // later occurrences in this shard, in order
  };
  using ShardMap = std::unordered_map<Value, ShardOcc, ValueHash>;
  for (AttributeId attr : keys) {
    std::vector<ShardMap> shards(num_chunks);
    std::atomic<bool> bad{false};
    ParallelFor(Pool(), 0, cap, grain, threads,
                [&](unsigned, size_t chunk, size_t lo, size_t hi) {
                  if (out == nullptr && bad.load(std::memory_order_relaxed)) {
                    return;
                  }
                  ShardMap& local = shards[chunk];
                  for (size_t id = lo; id < hi; ++id) {
                    EntryId eid = static_cast<EntryId>(id);
                    if (!directory.IsAlive(eid)) continue;
                    const Entry& e = directory.entry(eid);
                    ForEachValueOf(e, attr, [&](const Value& v) {
                      auto [it, inserted] = local.try_emplace(v);
                      if (inserted) {
                        it->second.first = eid;
                      } else {
                        it->second.rest.push_back(eid);
                        bad.store(true, std::memory_order_relaxed);
                      }
                    });
                  }
                });
    if (out == nullptr && bad.load(std::memory_order_relaxed)) {
      return record(false);
    }

    std::unordered_set<Value, ValueHash> seen;
    std::vector<EntryId> offenders;
    for (ShardMap& shard : shards) {
      for (auto& [value, occ] : shard) {
        if (seen.insert(value).second) {
          // Globally first occurrence lives in this shard; only the later
          // ones are duplicates.
          offenders.insert(offenders.end(), occ.rest.begin(), occ.rest.end());
        } else {
          offenders.push_back(occ.first);
          offenders.insert(offenders.end(), occ.rest.begin(), occ.rest.end());
        }
      }
    }
    if (offenders.empty()) continue;
    ok = false;
    if (out == nullptr) return record(false);
    std::sort(offenders.begin(), offenders.end());
    for (EntryId id : offenders) {
      Violation violation;
      violation.kind = ViolationKind::kDuplicateKeyValue;
      violation.entry = id;
      violation.attr = attr;
      out->push_back(violation);
    }
  }
  return record(ok);
}

bool LegalityChecker::CheckLegal(const Directory& directory,
                                 std::vector<Violation>* out) const {
  bool content_ok = CheckContent(directory, out);
  if (!content_ok && out == nullptr) return false;
  bool structure_ok = CheckStructure(directory, out);
  if (!structure_ok && out == nullptr) return false;
  bool keys_ok = CheckKeys(directory, out);
  return content_ok && structure_ok && keys_ok;
}

Status LegalityChecker::EnsureLegal(const Directory& directory) const {
  std::vector<Violation> violations;
  if (CheckLegal(directory, &violations)) return Status::OK();
  return Status::Illegal(DescribeViolations(violations, schema_.vocab()));
}

}  // namespace ldapbound
