#include "core/legality_checker.h"

#include <algorithm>
#include <unordered_set>

#include "core/translation.h"
#include "query/evaluator.h"

namespace ldapbound {

namespace {

// Records `v` if collecting; returns false ("stop now") when not collecting.
bool Report(std::vector<Violation>* out, Violation v, bool* ok) {
  *ok = false;
  if (out == nullptr) return false;
  out->push_back(std::move(v));
  return true;
}

}  // namespace

bool LegalityChecker::CheckEntryClassSchema(const Directory&,
                                            const Entry& entry,
                                            std::vector<Violation>* out) const {
  const ClassSchema& classes = schema_.classes();
  bool ok = true;

  // Only schema classes may be present; split into core and auxiliary.
  ClassId deepest = kInvalidClassId;
  uint32_t deepest_depth = 0;
  size_t num_core = 0;
  for (ClassId c : entry.classes()) {
    if (!classes.Contains(c)) {
      Violation v;
      v.kind = ViolationKind::kUnknownClass;
      v.entry = entry.id();
      v.cls = c;
      if (!Report(out, v, &ok)) return false;
      continue;
    }
    if (classes.IsCore(c)) {
      ++num_core;
      uint32_t d = classes.DepthOf(c);
      if (deepest == kInvalidClassId || d > deepest_depth) {
        deepest = c;
        deepest_depth = d;
      }
    }
  }

  // At least one core class.
  if (num_core == 0) {
    Violation v;
      v.kind = ViolationKind::kNoCoreClass;
      v.entry = entry.id();
    if (!Report(out, v, &ok)) return false;
    return ok;  // inheritance/auxiliary checks need a core chain
  }

  // Single inheritance: the core classes must be exactly the ancestors of
  // the deepest one — any other configuration is either a missing
  // superclass or a pair of incomparable core classes.
  std::vector<ClassId> chain = classes.AncestorsOf(deepest);
  std::sort(chain.begin(), chain.end());
  for (ClassId c : entry.classes()) {
    if (!classes.IsCore(c)) continue;
    if (!std::binary_search(chain.begin(), chain.end(), c)) {
      Violation v;
      v.kind = ViolationKind::kExclusiveClasses;
      v.entry = entry.id();
      v.cls = deepest;
      v.cls2 = c;
      if (!Report(out, v, &ok)) return false;
    }
  }
  for (ClassId c : chain) {
    if (!entry.HasClass(c)) {
      Violation v;
      v.kind = ViolationKind::kMissingSuperclass;
      v.entry = entry.id();
      v.cls = deepest;
      v.cls2 = c;
      if (!Report(out, v, &ok)) return false;
    }
  }

  // Auxiliary classes must be allowed by some core class of the entry.
  for (ClassId c : entry.classes()) {
    if (!classes.IsAuxiliary(c)) continue;
    bool allowed = false;
    for (ClassId core : entry.classes()) {
      if (!classes.IsCore(core)) continue;
      const std::vector<ClassId>& aux = classes.AuxAllowed(core);
      if (std::binary_search(aux.begin(), aux.end(), c)) {
        allowed = true;
        break;
      }
    }
    if (!allowed) {
      Violation v;
      v.kind = ViolationKind::kDisallowedAuxiliary;
      v.entry = entry.id();
      v.cls = c;
      if (!Report(out, v, &ok)) return false;
    }
  }
  return ok;
}

bool LegalityChecker::CheckEntryAttributeSchema(
    const Directory& directory, const Entry& entry,
    std::vector<Violation>* out) const {
  const AttributeSchema& attrs = schema_.attributes();
  const AttributeId oc = directory.vocab().objectclass_attr();
  bool ok = true;

  // Required attributes of every member class must be present. The
  // objectClass attribute mirrors class(e), which is non-empty, so it is
  // always present.
  for (ClassId c : entry.classes()) {
    for (AttributeId a : attrs.Required(c)) {
      if (a == oc) continue;
      if (!entry.HasAttribute(a)) {
        Violation v;
      v.kind = ViolationKind::kMissingRequiredAttribute;
      v.entry = entry.id();
        v.cls = c;
        v.attr = a;
        if (!Report(out, v, &ok)) return false;
      }
    }
  }

  // Every present attribute must be allowed by some member class.
  AttributeId last = kInvalidAttributeId;
  for (const AttributeValue& av : entry.values()) {
    if (av.attribute == last) continue;  // values are sorted by attribute
    last = av.attribute;
    bool allowed = false;
    for (ClassId c : entry.classes()) {
      if (attrs.IsAllowed(c, av.attribute)) {
        allowed = true;
        break;
      }
    }
    if (!allowed) {
      Violation v;
      v.kind = ViolationKind::kDisallowedAttribute;
      v.entry = entry.id();
      v.attr = av.attribute;
      if (!Report(out, v, &ok)) return false;
    }
  }
  return ok;
}

bool LegalityChecker::CheckEntryContent(const Directory& directory,
                                        EntryId id,
                                        std::vector<Violation>* out) const {
  const Entry& entry = directory.entry(id);
  bool class_ok = CheckEntryClassSchema(directory, entry, out);
  if (!class_ok && out == nullptr) return false;
  bool attr_ok = CheckEntryAttributeSchema(directory, entry, out);
  return class_ok && attr_ok;
}

bool LegalityChecker::CheckContent(const Directory& directory,
                                   std::vector<Violation>* out) const {
  bool ok = true;
  for (size_t id = 0; id < directory.IdCapacity(); ++id) {
    EntryId eid = static_cast<EntryId>(id);
    if (!directory.IsAlive(eid)) continue;
    if (!CheckEntryContent(directory, eid, out)) {
      ok = false;
      if (out == nullptr) return false;
    }
  }
  return ok;
}

bool LegalityChecker::CheckStructure(const Directory& directory,
                                     std::vector<Violation>* out,
                                     const ValueIndex* index) const {
  const StructureSchema& structure = schema_.structure();
  QueryEvaluator evaluator(directory, /*delta=*/nullptr, index);
  bool ok = true;

  // Required classes Cr: the atomic witness query must be non-empty.
  for (ClassId cls : structure.required_classes()) {
    if (directory.CountWithClass(cls) > 0) continue;
    Violation v;
    v.kind = ViolationKind::kMissingRequiredClass;
    v.cls = cls;
    if (!Report(out, v, &ok)) return false;
  }

  // Er and Ef: the Figure 4 violation query must be empty; its members are
  // the offending entries.
  auto run = [&](const StructuralRelationship& rel) -> bool {
    EntrySet offenders = evaluator.Evaluate(ViolationQuery(rel));
    if (offenders.Empty()) return true;
    if (out == nullptr) return false;
    offenders.ForEach([&](EntryId id) {
      Violation v;
      v.kind = rel.forbidden ? ViolationKind::kForbiddenRelationship
                             : ViolationKind::kRequiredRelationship;
      v.entry = id;
      v.relationship = rel;
      out->push_back(v);
    });
    return false;
  };
  for (const StructuralRelationship& rel : structure.required()) {
    if (!run(rel)) {
      ok = false;
      if (out == nullptr) return false;
    }
  }
  for (const StructuralRelationship& rel : structure.forbidden()) {
    if (!run(rel)) {
      ok = false;
      if (out == nullptr) return false;
    }
  }
  return ok;
}

bool LegalityChecker::CheckKeys(const Directory& directory,
                                std::vector<Violation>* out) const {
  const std::vector<AttributeId>& keys = schema_.key_attributes();
  if (keys.empty()) return true;
  bool ok = true;
  std::unordered_set<Value, ValueHash> seen;
  for (AttributeId attr : keys) {
    seen.clear();
    bool stop = false;
    directory.ForEachAlive([&](const Entry& e) {
      if (stop) return;
      for (const Value& v : e.GetValues(attr)) {
        if (!seen.insert(v).second) {
          Violation violation;
          violation.kind = ViolationKind::kDuplicateKeyValue;
          violation.entry = e.id();
          violation.attr = attr;
          if (!Report(out, violation, &ok)) stop = true;
        }
      }
    });
    if (stop) return false;
  }
  return ok;
}

bool LegalityChecker::CheckLegal(const Directory& directory,
                                 std::vector<Violation>* out) const {
  bool content_ok = CheckContent(directory, out);
  if (!content_ok && out == nullptr) return false;
  bool structure_ok = CheckStructure(directory, out);
  if (!structure_ok && out == nullptr) return false;
  bool keys_ok = CheckKeys(directory, out);
  return content_ok && structure_ok && keys_ok;
}

Status LegalityChecker::EnsureLegal(const Directory& directory) const {
  std::vector<Violation> violations;
  if (CheckLegal(directory, &violations)) return Status::OK();
  return Status::Illegal(DescribeViolations(violations, schema_.vocab()));
}

}  // namespace ldapbound
