#ifndef LDAPBOUND_CORE_VIOLATION_H_
#define LDAPBOUND_CORE_VIOLATION_H_

#include <string>
#include <vector>

#include "model/directory.h"
#include "schema/structure_schema.h"

namespace ldapbound {

/// The ways a directory instance can fail the legality conditions of
/// Definition 2.7.
enum class ViolationKind {
  // Attribute schema (§2.2, Def. 2.7 "Attribute Schema").
  kMissingRequiredAttribute,  ///< a required attribute has no value
  kDisallowedAttribute,       ///< an attribute allowed by no member class

  // Class schema (Def. 2.7 "Class Schema").
  kUnknownClass,        ///< class not mentioned in the schema
  kNoCoreClass,         ///< entry belongs to no core class
  kMissingSuperclass,   ///< single inheritance: superclass membership missing
  kExclusiveClasses,    ///< two incomparable core classes co-occur
  kDisallowedAuxiliary, ///< auxiliary class not in Aux(c) of any member core

  // Structure schema (Def. 2.7 "Structure Schema").
  kMissingRequiredClass,    ///< `c⇓` with no entry of class c
  kRequiredRelationship,    ///< entry lacking a required related entry
  kForbiddenRelationship,   ///< entry having a forbidden related entry

  // Keys (§6.1 extension).
  kDuplicateKeyValue,       ///< a key attribute's value occurs twice
};

std::string_view ViolationKindToString(ViolationKind kind);

/// One legality violation, localized to an entry when applicable.
struct Violation {
  ViolationKind kind;
  EntryId entry = kInvalidEntryId;       ///< offender; invalid for kMissingRequiredClass
  ClassId cls = kInvalidClassId;         ///< class involved
  ClassId cls2 = kInvalidClassId;        ///< second class (exclusive pairs)
  AttributeId attr = kInvalidAttributeId;///< attribute involved
  StructuralRelationship relationship;   ///< for structure violations

  friend bool operator==(const Violation& a, const Violation& b) = default;

  /// Human-readable description, e.g.
  /// "entry 4 (uid=suciu): missing required attribute 'uid' of class person".
  std::string Describe(const Vocabulary& vocab) const;

  /// Names the checker pass and schema constraint whose check detected this
  /// violation — for structure violations, including the translated
  /// Figure 4 query whose (non-)emptiness test fired. Used by the EXPLAIN
  /// surface ("detected by" annotations); Describe stays unchanged.
  std::string DetectedBy(const Vocabulary& vocab) const;
};

/// Renders all violations, one per line.
std::string DescribeViolations(const std::vector<Violation>& violations,
                               const Vocabulary& vocab);

}  // namespace ldapbound

#endif  // LDAPBOUND_CORE_VIOLATION_H_
