#include "core/naive_checker.h"

namespace ldapbound {

namespace {

// Is `e2` axis-related to `e1` (e.g. axis kChild: is e2 a child of e1)?
// Deliberately index-free: ancestor tests walk the parent chain.
bool Related(const Directory& directory, EntryId e1, EntryId e2, Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return directory.entry(e2).parent() == e1;
    case Axis::kParent:
      return directory.entry(e1).parent() == e2;
    case Axis::kDescendant: {
      EntryId cur = directory.entry(e2).parent();
      while (cur != kInvalidEntryId) {
        if (cur == e1) return true;
        cur = directory.entry(cur).parent();
      }
      return false;
    }
    case Axis::kAncestor: {
      EntryId cur = directory.entry(e1).parent();
      while (cur != kInvalidEntryId) {
        if (cur == e2) return true;
        cur = directory.entry(cur).parent();
      }
      return false;
    }
  }
  return false;
}

}  // namespace

bool NaiveStructureChecker::CheckStructure(const Directory& directory,
                                           std::vector<Violation>* out) const {
  const StructureSchema& structure = schema_.structure();
  bool ok = true;

  std::vector<EntryId> alive;
  alive.reserve(directory.NumEntries());
  directory.ForEachAlive([&](const Entry& e) { alive.push_back(e.id()); });

  auto report = [&](Violation v) -> bool {
    ok = false;
    if (out == nullptr) return false;
    out->push_back(v);
    return true;
  };

  for (ClassId cls : structure.required_classes()) {
    bool found = false;
    for (EntryId id : alive) {
      if (directory.entry(id).HasClass(cls)) {
        found = true;
        break;
      }
    }
    if (!found) {
      Violation v;
    v.kind = ViolationKind::kMissingRequiredClass;
      v.cls = cls;
      if (!report(v)) return false;
    }
  }

  for (const StructuralRelationship& rel : structure.required()) {
    for (EntryId e1 : alive) {
      if (!directory.entry(e1).HasClass(rel.source)) continue;
      bool satisfied = false;
      for (EntryId e2 : alive) {
        if (e1 == e2) continue;
        if (directory.entry(e2).HasClass(rel.target) &&
            Related(directory, e1, e2, rel.axis)) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        Violation v;
        v.kind = ViolationKind::kRequiredRelationship;
        v.entry = e1;
        v.relationship = rel;
        if (!report(v)) return false;
      }
    }
  }

  for (const StructuralRelationship& rel : structure.forbidden()) {
    for (EntryId e1 : alive) {
      if (!directory.entry(e1).HasClass(rel.source)) continue;
      for (EntryId e2 : alive) {
        if (e1 == e2) continue;
        if (directory.entry(e2).HasClass(rel.target) &&
            Related(directory, e1, e2, rel.axis)) {
          Violation v;
          v.kind = ViolationKind::kForbiddenRelationship;
          v.entry = e1;
          v.relationship = rel;
          if (!report(v)) return false;
          break;  // one violation per offending source entry
        }
      }
    }
  }
  return ok;
}

}  // namespace ldapbound
