#include "core/translation.h"

namespace ldapbound {

Query ViolationQuery(const StructuralRelationship& rel, Scope source_scope,
                     Scope target_scope) {
  Query source = Query::Select(MatchClass(rel.source), source_scope);
  Query target = Query::Select(MatchClass(rel.target), target_scope);
  if (rel.forbidden) {
    // Forbidden ci (ax) cj: offenders are ci-entries that do have an
    // ax-related cj-entry; the relationship holds iff none exist.
    return Query::Hier(rel.axis, std::move(source), std::move(target));
  }
  // Required ci (ax) cj: offenders are ci-entries minus those with an
  // ax-related cj-entry, e.g. Q1 of §3.2:
  //   (? (objectClass=ci) ((ax) (objectClass=ci) (objectClass=cj))).
  Query satisfied = Query::Hier(rel.axis, source, std::move(target));
  return Query::Diff(std::move(source), std::move(satisfied));
}

Query RequiredClassWitnessQuery(ClassId cls) {
  return Query::Select(MatchClass(cls));
}

}  // namespace ldapbound
