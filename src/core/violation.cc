#include "core/violation.h"

#include "core/translation.h"

namespace ldapbound {

std::string_view ViolationKindToString(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kMissingRequiredAttribute:
      return "MissingRequiredAttribute";
    case ViolationKind::kDisallowedAttribute:
      return "DisallowedAttribute";
    case ViolationKind::kUnknownClass:
      return "UnknownClass";
    case ViolationKind::kNoCoreClass:
      return "NoCoreClass";
    case ViolationKind::kMissingSuperclass:
      return "MissingSuperclass";
    case ViolationKind::kExclusiveClasses:
      return "ExclusiveClasses";
    case ViolationKind::kDisallowedAuxiliary:
      return "DisallowedAuxiliary";
    case ViolationKind::kMissingRequiredClass:
      return "MissingRequiredClass";
    case ViolationKind::kRequiredRelationship:
      return "RequiredRelationship";
    case ViolationKind::kForbiddenRelationship:
      return "ForbiddenRelationship";
    case ViolationKind::kDuplicateKeyValue:
      return "DuplicateKeyValue";
  }
  return "Unknown";
}

std::string Violation::Describe(const Vocabulary& vocab) const {
  std::string where = (entry == kInvalidEntryId)
                          ? std::string("instance")
                          : "entry " + std::to_string(entry);
  switch (kind) {
    case ViolationKind::kMissingRequiredAttribute:
      return where + ": missing required attribute '" +
             vocab.AttributeName(attr) + "' of class " + vocab.ClassName(cls);
    case ViolationKind::kDisallowedAttribute:
      return where + ": attribute '" + vocab.AttributeName(attr) +
             "' is not allowed by any of the entry's classes";
    case ViolationKind::kUnknownClass:
      return where + ": class '" + vocab.ClassName(cls) +
             "' is not part of the schema";
    case ViolationKind::kNoCoreClass:
      return where + ": entry belongs to no core object class";
    case ViolationKind::kMissingSuperclass:
      return where + ": belongs to " + vocab.ClassName(cls) +
             " but not to its superclass " + vocab.ClassName(cls2);
    case ViolationKind::kExclusiveClasses:
      return where + ": belongs to incomparable core classes " +
             vocab.ClassName(cls) + " and " + vocab.ClassName(cls2);
    case ViolationKind::kDisallowedAuxiliary:
      return where + ": auxiliary class '" + vocab.ClassName(cls) +
             "' is not allowed for any of the entry's core classes";
    case ViolationKind::kMissingRequiredClass:
      return "instance: no entry belongs to required class '" +
             vocab.ClassName(cls) + "'";
    case ViolationKind::kRequiredRelationship:
      return where + ": violates required relationship " +
             relationship.ToString(vocab);
    case ViolationKind::kForbiddenRelationship:
      return where + ": violates forbidden relationship " +
             relationship.ToString(vocab);
    case ViolationKind::kDuplicateKeyValue:
      return where + ": duplicate value for key attribute '" +
             vocab.AttributeName(attr) + "'";
  }
  return "unknown violation";
}

std::string Violation::DetectedBy(const Vocabulary& vocab) const {
  switch (kind) {
    case ViolationKind::kMissingRequiredAttribute:
    case ViolationKind::kDisallowedAttribute:
      return "content pass: attribute schema";
    case ViolationKind::kUnknownClass:
    case ViolationKind::kNoCoreClass:
    case ViolationKind::kMissingSuperclass:
    case ViolationKind::kExclusiveClasses:
    case ViolationKind::kDisallowedAuxiliary:
      return "content pass: class schema";
    case ViolationKind::kMissingRequiredClass:
      return "structure pass: require-class " + vocab.ClassName(cls) +
             ", witness query " +
             RequiredClassWitnessQuery(cls).ToString(vocab) + " is empty";
    case ViolationKind::kRequiredRelationship:
    case ViolationKind::kForbiddenRelationship:
      return "structure pass: " + relationship.ToString(vocab) +
             ", violation query " + ViolationQuery(relationship).ToString(vocab);
    case ViolationKind::kDuplicateKeyValue:
      return "key pass: key attribute '" + vocab.AttributeName(attr) + "'";
  }
  return "unknown";
}

std::string DescribeViolations(const std::vector<Violation>& violations,
                               const Vocabulary& vocab) {
  std::string out;
  for (const Violation& v : violations) {
    out += v.Describe(vocab);
    out += '\n';
  }
  return out;
}

}  // namespace ldapbound
