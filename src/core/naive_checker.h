#ifndef LDAPBOUND_CORE_NAIVE_CHECKER_H_
#define LDAPBOUND_CORE_NAIVE_CHECKER_H_

#include <vector>

#include "core/violation.h"
#include "model/directory.h"
#include "schema/directory_schema.h"

namespace ldapbound {

/// The strawman structure-legality test of §3.2: compare every pair of
/// entries against every structural relationship, deciding
/// ancestor/descendant by walking parent pointers (no preorder index).
/// Cost is O((|Er|+|Ef|)·|D|²) — the baseline the query reduction beats
/// (EXP-T31). Semantics are identical to LegalityChecker::CheckStructure;
/// the test suite uses this as the ground-truth oracle in property tests.
class NaiveStructureChecker {
 public:
  explicit NaiveStructureChecker(const DirectorySchema& schema)
      : schema_(schema) {}

  /// Structure check by exhaustive pairwise comparison.
  bool CheckStructure(const Directory& directory,
                      std::vector<Violation>* out = nullptr) const;

 private:
  const DirectorySchema& schema_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_CORE_NAIVE_CHECKER_H_
