#ifndef LDAPBOUND_CORE_TRANSLATION_H_
#define LDAPBOUND_CORE_TRANSLATION_H_

#include "query/query.h"
#include "schema/structure_schema.h"

namespace ldapbound {

/// The Figure 4 reduction from structure-schema elements to hierarchical
/// selection queries, with the Figure 5 generalization: each side of the
/// relationship may be scoped to a sub-instance (∅ / Δ / D / whole).
///
/// For a relationship `rel`, `ViolationQuery(rel)` is the query `Q_phi`
/// such that a directory D satisfies `rel` if and only if `Q_phi[D]` is
/// empty:
///
///   required ci (ax) cj : (? (oc=ci)[s] ((ax) (oc=ci)[s] (oc=cj)[t]))
///   forbidden ci (ax) cj : ((ax) (oc=ci)[s] (oc=cj)[t])
///
/// where `s` scopes the source-class selections and `t` the target-class
/// selection. With both scopes kAll this is exactly Figure 4; the Δ-queries
/// of Figure 5 instantiate the scopes per axis and update kind (see
/// update/incremental.h).
Query ViolationQuery(const StructuralRelationship& rel,
                     Scope source_scope = Scope::kAll,
                     Scope target_scope = Scope::kAll);

/// The Figure 4 translation for a required class `c⇓`: the atomic query
/// `(objectClass=c)`, which must be NON-empty for the instance to be legal.
Query RequiredClassWitnessQuery(ClassId cls);

}  // namespace ldapbound

#endif  // LDAPBOUND_CORE_TRANSLATION_H_
