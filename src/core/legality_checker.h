#ifndef LDAPBOUND_CORE_LEGALITY_CHECKER_H_
#define LDAPBOUND_CORE_LEGALITY_CHECKER_H_

#include <cstddef>
#include <vector>

#include "core/violation.h"
#include "model/directory.h"
#include "model/directory_snapshot.h"
#include "query/evaluator.h"
#include "query/value_index.h"
#include "schema/directory_schema.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace ldapbound {

/// EXPLAIN record for one structure-schema constraint: the constraint, the
/// Figure 4 query it translates to, the verdict, and the profiled plan tree
/// (per-node cardinalities, strategies, latency). Produced by
/// LegalityChecker::ExplainStructure; rendered by `ldapbound explain` and
/// retained (summarized) by the server's slow-op diagnostics.
struct ConstraintExplain {
  std::string constraint;  ///< e.g. "require-class orgUnit",
                           ///< "orgGroup ->> person (required)"
  std::string query;       ///< the translated query, paper rendering
  bool require_nonempty = false;  ///< required class: the witness query must
                                  ///< be NON-empty (all others must be empty)
  bool satisfied = false;
  uint64_t cardinality = 0;  ///< |Q[D]|: witnesses for a required class,
                             ///< offending entries for a relationship
  QueryProfile profile;

  /// Header line (constraint, verdict, cardinality, total latency), the
  /// query, then the indented plan tree.
  std::string RenderText() const;

  /// The record as a JSON object (plan included).
  std::string RenderJson() const;
};

/// Worker configuration for the parallel legality engine. Per-constraint
/// and per-entry checks are independent (§3), so the checker shards content
/// and key passes over entry-id ranges and fans the structure-schema
/// constraint queries out across a thread pool. Results are merged
/// deterministically: every configuration produces byte-identical violation
/// lists, in the same order as a serial run.
struct CheckOptions {
  /// Total worker lanes (including the calling thread). 0 resolves to the
  /// hardware concurrency; 1 runs everything inline with no pool use.
  unsigned num_threads = 0;
  /// Entries per shard of the content and key passes. Small grains improve
  /// load balance, large grains reduce scheduling overhead.
  size_t grain = 1024;
  /// Pool to borrow workers from; nullptr uses ThreadPool::Default().
  ThreadPool* pool = nullptr;
};

/// Tests legality of directory instances against a bounding-schema
/// (Definition 2.7, Section 3).
///
/// Content legality (§3.1) is a per-entry check costing
/// O(|class(e)| + maxAux·depth(H) + |val(e)| + Σ|alpha(c)|) per entry.
/// Structure legality (§3.2) translates every element of the structure
/// schema into a hierarchical selection query (Figure 4) and tests
/// emptiness / non-emptiness, for O(|S|·|D|) total — the Theorem 3.1 bound.
///
/// Engine structure (beyond the paper's algorithmics):
///  - full-directory content/key passes shard the id space (CheckOptions::
///    grain) with per-shard violation buffers concatenated in shard order,
///    so the output equals the serial ascending-id order;
///  - per-shard content checks run through a memo keyed by the entry's
///    class set: the class-schema verdict and the required/allowed
///    attribute sets depend only on class(e), and directories hold few
///    distinct class combinations, so the common clean entry costs one
///    lookup plus two sorted-vector sweeps (no per-entry allocation). Any
///    entry that fails the memoized screen re-runs the exact serial check
///    to report violations in the identical order;
///  - the structure pass evaluates each constraint query on its own
///    QueryEvaluator (the evaluator holds mutable stats, so instances are
///    not shared) over a shared read-only cache of the per-class atomic
///    selections, and uses the evaluator's lazy IsEmpty when only a
///    verdict is needed (out == nullptr).
///
/// The checker borrows the schema; the schema must outlive it and must
/// share the directory's Vocabulary.
class LegalityChecker {
 public:
  explicit LegalityChecker(const DirectorySchema& schema,
                           CheckOptions options = CheckOptions())
      : schema_(schema), options_(options) {}

  /// Content check for a single entry. Appends violations to `out` if
  /// non-null; with a null `out`, stops at the first violation.
  /// Returns true iff the entry satisfies the attribute and class schemas.
  bool CheckEntryContent(const Directory& directory, EntryId id,
                         std::vector<Violation>* out = nullptr) const;

  /// Content check for every alive entry.
  bool CheckContent(const Directory& directory,
                    std::vector<Violation>* out = nullptr) const;

  /// Structure check via the Figure 4 query reduction. An optional fresh
  /// ValueIndex accelerates the atomic (objectClass=c) selections. When
  /// `stats` is non-null it receives the aggregated per-worker
  /// EvaluatorStats of the constraint queries.
  bool CheckStructure(const Directory& directory,
                      std::vector<Violation>* out = nullptr,
                      const ValueIndex* index = nullptr,
                      EvaluatorStats* stats = nullptr) const;

  /// Structure check against a pinned MVCC snapshot (DESIGN.md §10): the
  /// same Figure 4 reduction, answered entirely from snapshot state via
  /// SnapshotEvaluator, so it runs lock-free alongside the writer. Serial
  /// (snapshot reads are already contention-free) and emits violations in
  /// the exact order CheckStructure would: Cr in schema order, then Er,
  /// then Ef, offenders ascending. Returns an error only if a constraint
  /// query needs surface the snapshot cannot answer (never the case for
  /// schema-generated queries).
  Result<bool> CheckStructureSnapshot(const DirectorySnapshot& snapshot,
                                      std::vector<Violation>* out = nullptr,
                                      EvaluatorStats* stats = nullptr) const;

  /// Profiled structure check: evaluates every structure-schema
  /// constraint's Figure 4 query with an attached QueryProfile and returns
  /// one ConstraintExplain per constraint, in schema order (Cr, then Er,
  /// then Ef — the order CheckStructure reports in). Runs serially on the
  /// calling thread so plan attribution is deterministic; required classes
  /// are profiled through their witness query rather than the class-count
  /// shortcut, because showing the query's plan is the point. An optional
  /// fresh ValueIndex is used exactly as in CheckStructure.
  std::vector<ConstraintExplain> ExplainStructure(
      const Directory& directory, const ValueIndex* index = nullptr) const;

  /// Key uniqueness (§6.1 extension): every value of a key attribute is
  /// unique across all entries. O(|D|) with hashing.
  bool CheckKeys(const Directory& directory,
                 std::vector<Violation>* out = nullptr) const;

  /// Full legality: content and structure.
  bool CheckLegal(const Directory& directory,
                  std::vector<Violation>* out = nullptr) const;

  /// Status-typed convenience: OK if legal, kIllegal carrying a rendered
  /// violation list otherwise.
  Status EnsureLegal(const Directory& directory) const;

  const DirectorySchema& schema() const { return schema_; }
  const CheckOptions& options() const { return options_; }

 private:
  struct ContentCache;
  /// Per-shard tallies (entries seen, memo screens vs exact fallbacks),
  /// accumulated in plain locals and flushed to the process-wide metrics
  /// once per shard — never per entry.
  struct ContentCounters;

  bool CheckEntryClassSchema(const Directory& directory, const Entry& entry,
                             std::vector<Violation>* out) const;
  bool CheckEntryAttributeSchema(const Directory& directory,
                                 const Entry& entry,
                                 std::vector<Violation>* out) const;
  /// Memoized per-entry content check: certifies clean entries via the
  /// class-set cache, falls back to the exact serial check otherwise.
  bool CheckEntryContentCached(const Directory& directory, EntryId id,
                               ContentCache& cache,
                               ContentCounters& counters,
                               std::vector<Violation>* out) const;
  /// True iff this class list passes every class-schema condition.
  bool ClassListClean(const std::vector<ClassId>& classes) const;

  ThreadPool& Pool() const;
  /// Lanes to use for `work_items` independent pieces of work.
  unsigned EffectiveThreads(size_t work_items) const;

  const DirectorySchema& schema_;
  CheckOptions options_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_CORE_LEGALITY_CHECKER_H_
