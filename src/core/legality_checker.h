#ifndef LDAPBOUND_CORE_LEGALITY_CHECKER_H_
#define LDAPBOUND_CORE_LEGALITY_CHECKER_H_

#include <vector>

#include "core/violation.h"
#include "model/directory.h"
#include "query/value_index.h"
#include "schema/directory_schema.h"

namespace ldapbound {

/// Tests legality of directory instances against a bounding-schema
/// (Definition 2.7, Section 3).
///
/// Content legality (§3.1) is a per-entry check costing
/// O(|class(e)| + maxAux·depth(H) + |val(e)| + Σ|alpha(c)|) per entry.
/// Structure legality (§3.2) translates every element of the structure
/// schema into a hierarchical selection query (Figure 4) and tests
/// emptiness / non-emptiness, for O(|S|·|D|) total — the Theorem 3.1 bound.
///
/// The checker borrows the schema; the schema must outlive it and must
/// share the directory's Vocabulary.
class LegalityChecker {
 public:
  explicit LegalityChecker(const DirectorySchema& schema) : schema_(schema) {}

  /// Content check for a single entry. Appends violations to `out` if
  /// non-null; with a null `out`, stops at the first violation.
  /// Returns true iff the entry satisfies the attribute and class schemas.
  bool CheckEntryContent(const Directory& directory, EntryId id,
                         std::vector<Violation>* out = nullptr) const;

  /// Content check for every alive entry.
  bool CheckContent(const Directory& directory,
                    std::vector<Violation>* out = nullptr) const;

  /// Structure check via the Figure 4 query reduction. An optional fresh
  /// ValueIndex accelerates the atomic (objectClass=c) selections.
  bool CheckStructure(const Directory& directory,
                      std::vector<Violation>* out = nullptr,
                      const ValueIndex* index = nullptr) const;

  /// Key uniqueness (§6.1 extension): every value of a key attribute is
  /// unique across all entries. O(|D|) with hashing.
  bool CheckKeys(const Directory& directory,
                 std::vector<Violation>* out = nullptr) const;

  /// Full legality: content and structure.
  bool CheckLegal(const Directory& directory,
                  std::vector<Violation>* out = nullptr) const;

  /// Status-typed convenience: OK if legal, kIllegal carrying a rendered
  /// violation list otherwise.
  Status EnsureLegal(const Directory& directory) const;

  const DirectorySchema& schema() const { return schema_; }

 private:
  bool CheckEntryClassSchema(const Directory& directory, const Entry& entry,
                             std::vector<Violation>* out) const;
  bool CheckEntryAttributeSchema(const Directory& directory,
                                 const Entry& entry,
                                 std::vector<Violation>* out) const;

  const DirectorySchema& schema_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_CORE_LEGALITY_CHECKER_H_
