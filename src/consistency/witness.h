#ifndef LDAPBOUND_CONSISTENCY_WITNESS_H_
#define LDAPBOUND_CONSISTENCY_WITNESS_H_

#include "model/directory.h"
#include "schema/directory_schema.h"

namespace ldapbound {

/// Constructs a small legal instance of a consistent bounding-schema — a
/// "witness" realizing the consistency verdict of Section 5. This is a
/// chase-style procedure the paper does not spell out; the test suite uses
/// it to cross-validate the inference system: whenever the
/// ConsistencyChecker answers *consistent*, the witness must exist and pass
/// the LegalityChecker.
///
/// Construction sketch: seed one node per required class; repeatedly
/// discharge obligations — required child/descendant edges create child
/// nodes of exactly the target class (reusing an existing satisfying child),
/// required parent/ancestor edges create or specialize ancestors — while
/// checking forbidden relationships on every new edge. Nodes carry a single
/// most-specific core class; on materialization each entry receives the
/// class's ancestor chain and synthesized values for all required
/// attributes.
class WitnessBuilder {
 public:
  explicit WitnessBuilder(const DirectorySchema& schema) : schema_(schema) {}

  /// Attempts construction. Errors:
  ///  - kInconsistent if the inference system derives ⊥;
  ///  - kInternal if the chase gets stuck or diverges (with the paper's
  ///    Theorem 5.2 and our rule set, this indicates either an
  ///    inconsistency the rules missed or a chase limitation — the caller
  ///    should treat it as "no witness found", not as a consistency proof).
  Result<Directory> Build() const;

 private:
  const DirectorySchema& schema_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_CONSISTENCY_WITNESS_H_
