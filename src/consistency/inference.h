#ifndef LDAPBOUND_CONSISTENCY_INFERENCE_H_
#define LDAPBOUND_CONSISTENCY_INFERENCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "consistency/element.h"
#include "schema/directory_schema.h"

namespace ldapbound {

/// How a fact was derived: a rule name plus its premises (empty premises =
/// axiom seeded from the schema). Recorded for every first derivation so
/// inconsistencies can be explained.
struct Derivation {
  std::string rule;
  std::vector<SchemaElement> premises;
};

/// The Section 5 inference system (our reconstruction of Figures 6 and 7;
/// rule-by-rule soundness arguments are inline in inference.cc and in
/// DESIGN.md). Runs the rules to fixpoint over the schema's core classes;
/// the schema is inconsistent exactly when ⊥ (the paper's `⇓∅`) is derived
/// — Theorem 5.2. The fixpoint is polynomial in the schema size.
class InferenceEngine {
 public:
  /// `schema` must be well-formed (DirectorySchema::Validate) and outlive
  /// the engine.
  explicit InferenceEngine(const DirectorySchema& schema);

  /// Runs to fixpoint; idempotent.
  void Run();

  /// True if the fact has been derived (call after Run()).
  bool Has(const SchemaElement& element) const;

  /// True if ⊥ was derived: the schema admits no legal instance.
  bool FoundInconsistency() const { return bottom_; }

  /// Classes c with Imp(c): no entry of c can occur in a finite legal
  /// instance. Such classes are not themselves inconsistencies (Imp-only
  /// classes simply stay unpopulated) unless some Imp class is required.
  std::vector<ClassId> ImpossibleClasses() const;

  /// All derived (non-axiom, non-Sub/Disj) facts, for inspection.
  std::vector<SchemaElement> DerivedFacts() const;

  /// Renders the derivation tree of `element` (recursively, axioms as
  /// leaves). Returns "" if the element was not derived.
  std::string Explain(const SchemaElement& element) const;

  /// Total number of stored facts (for the complexity benchmark).
  size_t NumFacts() const { return derivations_.size(); }

 private:
  int Index(ClassId cls) const { return index_.at(cls); }

  bool AddFact(const SchemaElement& element, const char* rule,
               std::vector<SchemaElement> premises);
  void Seed();
  bool Pass();

  // Dense views over the fact tables (N = classes_.size()).
  bool R(int s) const { return required_[s]; }
  bool E(int ax, int s, int t) const { return edge_[ax][s * n_ + t]; }
  bool F(int ax, int s, int t) const { return forb_[ax][s * n_ + t]; }
  bool Sub(int s, int t) const { return sub_[s * n_ + t]; }
  bool Disj(int s, int t) const { return disj_[s * n_ + t]; }
  bool Imp(int s) const { return impossible_[s]; }

  const DirectorySchema& schema_;
  std::vector<ClassId> classes_;  // dense index -> ClassId (core classes)
  std::unordered_map<ClassId, int> index_;
  int n_ = 0;
  int top_ = 0;  // dense index of `top`

  std::vector<uint8_t> required_;
  std::vector<uint8_t> edge_[4];  // by Axis
  std::vector<uint8_t> forb_[4];  // only kChild/kDescendant populated
  std::vector<uint8_t> sub_;
  std::vector<uint8_t> disj_;
  std::vector<uint8_t> impossible_;
  bool bottom_ = false;

  bool ran_ = false;
  std::unordered_map<SchemaElement, Derivation, SchemaElementHash>
      derivations_;
};

/// Convenience wrapper answering the Section 5 question directly.
class ConsistencyChecker {
 public:
  explicit ConsistencyChecker(const DirectorySchema& schema)
      : engine_(schema) {}

  /// True iff the schema admits at least one legal instance according to
  /// the inference system.
  bool IsConsistent() {
    engine_.Run();
    return !engine_.FoundInconsistency();
  }

  /// OK if consistent; kInconsistent carrying the ⊥ derivation otherwise.
  Status EnsureConsistent();

  const InferenceEngine& engine() const { return engine_; }

 private:
  InferenceEngine engine_;
};

/// Structure-schema elements (members of Cr, Er or Ef) that are *redundant*:
/// derivable from the remaining elements by the (sound) inference rules, so
/// removing them changes neither the set of legal instances the rules can
/// certify nor the consistency verdict. A conservative analysis — an
/// element the rules cannot derive may still be semantically implied.
/// Useful to schema authors as a lint. O(|S|) fixpoint runs.
std::vector<SchemaElement> FindRedundantElements(
    const DirectorySchema& schema);

}  // namespace ldapbound

#endif  // LDAPBOUND_CONSISTENCY_INFERENCE_H_
