#ifndef LDAPBOUND_CONSISTENCY_ELEMENT_H_
#define LDAPBOUND_CONSISTENCY_ELEMENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "model/axis.h"
#include "model/vocabulary.h"

namespace ldapbound {

/// The fact language of the Section 5 inference system. Facts are either
/// schema elements of the bounding-schema itself or derived judgments:
///
///  - kRequiredClass  R(c)        — `c⇓`: some entry of class c must exist;
///  - kRequiredEdge   E(a,ax,b)   — every a-entry has an ax-related b-entry;
///  - kForbiddenEdge  F(a,ax,b)   — no a-entry has an ax-related b-entry
///                                  (ax ∈ {child, descendant});
///  - kSubclass       Sub(a,b)    — `a ⊑ b` from the core tree (reflexive);
///  - kExclusive      Disj(a,b)   — incomparable core classes: no entry can
///                                  belong to both (`a ∤ b`);
///  - kImpossible     Imp(c)      — no entry of class c can occur in any
///                                  finite legal instance. This encodes the
///                                  paper's edges to/from the pseudo-class ∅
///                                  (e.g. `c —>> ∅`);
///  - kBottom         ⊥           — the paper's `⇓∅`: the schema admits no
///                                  legal instance.
struct SchemaElement {
  enum class Kind : uint8_t {
    kRequiredClass,
    kRequiredEdge,
    kForbiddenEdge,
    kSubclass,
    kExclusive,
    kImpossible,
    kBottom,
  };

  Kind kind = Kind::kBottom;
  ClassId a = kInvalidClassId;
  ClassId b = kInvalidClassId;
  Axis axis = Axis::kChild;

  static SchemaElement RequiredClass(ClassId c) {
    return {Kind::kRequiredClass, c, kInvalidClassId, Axis::kChild};
  }
  static SchemaElement RequiredEdge(ClassId a, Axis ax, ClassId b) {
    return {Kind::kRequiredEdge, a, b, ax};
  }
  static SchemaElement ForbiddenEdge(ClassId a, Axis ax, ClassId b) {
    return {Kind::kForbiddenEdge, a, b, ax};
  }
  static SchemaElement Subclass(ClassId a, ClassId b) {
    return {Kind::kSubclass, a, b, Axis::kChild};
  }
  static SchemaElement Exclusive(ClassId a, ClassId b) {
    return {Kind::kExclusive, a, b, Axis::kChild};
  }
  static SchemaElement Impossible(ClassId c) {
    return {Kind::kImpossible, c, kInvalidClassId, Axis::kChild};
  }
  static SchemaElement Bottom() {
    return {Kind::kBottom, kInvalidClassId, kInvalidClassId, Axis::kChild};
  }

  friend bool operator==(const SchemaElement& x,
                         const SchemaElement& y) = default;

  /// Paper-style rendering, e.g. "person ->> name (required)", "Imp(c1)".
  std::string ToString(const Vocabulary& vocab) const;
};

struct SchemaElementHash {
  size_t operator()(const SchemaElement& e) const {
    size_t h = static_cast<size_t>(e.kind);
    h = h * 1000003 + e.a;
    h = h * 1000003 + e.b;
    h = h * 1000003 + static_cast<size_t>(e.axis);
    return h;
  }
};

}  // namespace ldapbound

#endif  // LDAPBOUND_CONSISTENCY_ELEMENT_H_
