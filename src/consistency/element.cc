#include "consistency/element.h"

namespace ldapbound {

namespace {

std::string EdgeArrow(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "->";
    case Axis::kDescendant:
      return "->>";
    case Axis::kParent:
      return "<-";
    case Axis::kAncestor:
      return "<<-";
  }
  return "?";
}

}  // namespace

std::string SchemaElement::ToString(const Vocabulary& vocab) const {
  switch (kind) {
    case Kind::kRequiredClass:
      return vocab.ClassName(a) + " (required class)";
    case Kind::kRequiredEdge:
      return vocab.ClassName(a) + " " + EdgeArrow(axis) + " " +
             vocab.ClassName(b) + " (required)";
    case Kind::kForbiddenEdge:
      return vocab.ClassName(a) + " " + EdgeArrow(axis) + " " +
             vocab.ClassName(b) + " (forbidden)";
    case Kind::kSubclass:
      return vocab.ClassName(a) + " isa " + vocab.ClassName(b);
    case Kind::kExclusive:
      return vocab.ClassName(a) + " excludes " + vocab.ClassName(b);
    case Kind::kImpossible:
      return "Impossible(" + vocab.ClassName(a) + ")";
    case Kind::kBottom:
      return "BOTTOM (no legal instance)";
  }
  return "?";
}

}  // namespace ldapbound
