#include "consistency/inference.h"

#include <algorithm>

namespace ldapbound {

namespace {

constexpr int kAxisCount = 4;
constexpr int Ax(Axis axis) { return static_cast<int>(axis); }

}  // namespace

InferenceEngine::InferenceEngine(const DirectorySchema& schema)
    : schema_(schema) {
  // Dense-index the core classes (the structure schema only mentions core
  // classes in well-formed schemas).
  classes_ = schema.classes().CoreClasses();
  std::sort(classes_.begin(), classes_.end());
  n_ = static_cast<int>(classes_.size());
  for (int i = 0; i < n_; ++i) index_.emplace(classes_[i], i);
  top_ = Index(schema.classes().top_class());

  required_.assign(n_, 0);
  for (int ax = 0; ax < kAxisCount; ++ax) {
    edge_[ax].assign(static_cast<size_t>(n_) * n_, 0);
    forb_[ax].assign(static_cast<size_t>(n_) * n_, 0);
  }
  sub_.assign(static_cast<size_t>(n_) * n_, 0);
  disj_.assign(static_cast<size_t>(n_) * n_, 0);
  impossible_.assign(n_, 0);
}

bool InferenceEngine::AddFact(const SchemaElement& element, const char* rule,
                              std::vector<SchemaElement> premises) {
  // Update the dense tables; return false if the fact is already known.
  switch (element.kind) {
    case SchemaElement::Kind::kRequiredClass: {
      uint8_t& cell = required_[Index(element.a)];
      if (cell) return false;
      cell = 1;
      break;
    }
    case SchemaElement::Kind::kRequiredEdge: {
      uint8_t& cell =
          edge_[Ax(element.axis)][Index(element.a) * n_ + Index(element.b)];
      if (cell) return false;
      cell = 1;
      break;
    }
    case SchemaElement::Kind::kForbiddenEdge: {
      uint8_t& cell =
          forb_[Ax(element.axis)][Index(element.a) * n_ + Index(element.b)];
      if (cell) return false;
      cell = 1;
      break;
    }
    case SchemaElement::Kind::kSubclass: {
      uint8_t& cell = sub_[Index(element.a) * n_ + Index(element.b)];
      if (cell) return false;
      cell = 1;
      break;
    }
    case SchemaElement::Kind::kExclusive: {
      uint8_t& cell = disj_[Index(element.a) * n_ + Index(element.b)];
      if (cell) return false;
      cell = 1;
      break;
    }
    case SchemaElement::Kind::kImpossible: {
      uint8_t& cell = impossible_[Index(element.a)];
      if (cell) return false;
      cell = 1;
      break;
    }
    case SchemaElement::Kind::kBottom: {
      if (bottom_) return false;
      bottom_ = true;
      break;
    }
  }
  derivations_.emplace(element, Derivation{rule, std::move(premises)});
  return true;
}

void InferenceEngine::Seed() {
  const ClassSchema& classes = schema_.classes();
  const StructureSchema& structure = schema_.structure();

  // Class-schema judgments: reflexivity and transitivity of `isa` come for
  // free from the tree walk; exclusivity from single inheritance (§2.2).
  for (ClassId a : classes_) {
    for (ClassId b : classes_) {
      if (classes.IsSubclassOf(a, b)) {
        AddFact(SchemaElement::Subclass(a, b), "class-schema", {});
      } else if (!classes.IsSubclassOf(b, a)) {
        AddFact(SchemaElement::Exclusive(a, b), "class-schema", {});
      }
    }
  }

  for (ClassId c : structure.required_classes()) {
    AddFact(SchemaElement::RequiredClass(c), "axiom", {});
  }
  for (const StructuralRelationship& rel : structure.required()) {
    AddFact(SchemaElement::RequiredEdge(rel.source, rel.axis, rel.target),
            "axiom", {});
  }
  for (const StructuralRelationship& rel : structure.forbidden()) {
    AddFact(SchemaElement::ForbiddenEdge(rel.source, rel.axis, rel.target),
            "axiom", {});
  }
}

// One pass over all rules; returns true if any new fact was derived.
// Every rule carries a one-line semantic soundness argument.
bool InferenceEngine::Pass() {
  bool changed = false;
  auto add = [&](SchemaElement e, const char* rule,
                 std::vector<SchemaElement> premises) {
    if (AddFact(e, rule, std::move(premises))) changed = true;
  };
  auto cls = [&](int i) { return classes_[i]; };

  const Axis kDown[] = {Axis::kChild, Axis::kDescendant};

  for (int s = 0; s < n_; ++s) {
    // loops: a required descendant (ancestor) of one's own class forces an
    // infinite chain, so no finite instance can hold an s-entry.
    if (E(Ax(Axis::kDescendant), s, s) && !Imp(s)) {
      add(SchemaElement::Impossible(cls(s)), "loop",
          {SchemaElement::RequiredEdge(cls(s), Axis::kDescendant, cls(s))});
    }
    if (E(Ax(Axis::kAncestor), s, s) && !Imp(s)) {
      add(SchemaElement::Impossible(cls(s)), "loop",
          {SchemaElement::RequiredEdge(cls(s), Axis::kAncestor, cls(s))});
    }

    for (int t = 0; t < n_; ++t) {
      // paths: a required child is a required descendant; a required parent
      // is a required ancestor.
      if (E(Ax(Axis::kChild), s, t) && !E(Ax(Axis::kDescendant), s, t)) {
        add(SchemaElement::RequiredEdge(cls(s), Axis::kDescendant, cls(t)),
            "paths",
            {SchemaElement::RequiredEdge(cls(s), Axis::kChild, cls(t))});
      }
      if (E(Ax(Axis::kParent), s, t) && !E(Ax(Axis::kAncestor), s, t)) {
        add(SchemaElement::RequiredEdge(cls(s), Axis::kAncestor, cls(t)),
            "paths",
            {SchemaElement::RequiredEdge(cls(s), Axis::kParent, cls(t))});
      }

      for (int ax = 0; ax < kAxisCount; ++ax) {
        if (!E(ax, s, t)) continue;
        Axis axis = static_cast<Axis>(ax);
        // nodes-and-edges: if an s-entry must exist and every s-entry needs
        // an axis-related t-entry, a t-entry must exist.
        if (R(s) && !R(t)) {
          add(SchemaElement::RequiredClass(cls(t)), "nodes-and-edges",
              {SchemaElement::RequiredClass(cls(s)),
               SchemaElement::RequiredEdge(cls(s), axis, cls(t))});
        }
        // impossible-propagation: an s-entry would need a t-relative, but
        // t-entries cannot exist.
        if (Imp(t) && !Imp(s)) {
          add(SchemaElement::Impossible(cls(s)), "impossible-propagation",
              {SchemaElement::RequiredEdge(cls(s), axis, cls(t)),
               SchemaElement::Impossible(cls(t))});
        }
        for (int u = 0; u < n_; ++u) {
          // source-strengthening: every u ⊑ s entry is an s-entry, so it
          // inherits s's requirement.
          if (Sub(u, s) && !E(ax, u, t)) {
            add(SchemaElement::RequiredEdge(cls(u), axis, cls(t)),
                "source-strengthening",
                {SchemaElement::RequiredEdge(cls(s), axis, cls(t)),
                 SchemaElement::Subclass(cls(u), cls(s))});
          }
          // target-weakening: the required t-relative is also a u-entry for
          // any u ⊒ t.
          if (Sub(t, u) && !E(ax, s, u)) {
            add(SchemaElement::RequiredEdge(cls(s), axis, cls(u)),
                "target-weakening",
                {SchemaElement::RequiredEdge(cls(s), axis, cls(t)),
                 SchemaElement::Subclass(cls(t), cls(u))});
          }
        }
      }

      // transitivity of required descendant/ancestor chains.
      for (Axis axis : {Axis::kDescendant, Axis::kAncestor}) {
        int ax = Ax(axis);
        if (!E(ax, s, t)) continue;
        for (int u = 0; u < n_; ++u) {
          if (E(ax, t, u) && !E(ax, s, u)) {
            add(SchemaElement::RequiredEdge(cls(s), axis, cls(u)),
                "transitivity",
                {SchemaElement::RequiredEdge(cls(s), axis, cls(t)),
                 SchemaElement::RequiredEdge(cls(t), axis, cls(u))});
          }
        }
      }

      // forbidden-specialization: members of subclasses are members of the
      // superclasses, so a forbidden pair propagates to subclass pairs.
      for (Axis axis : kDown) {
        int ax = Ax(axis);
        if (!F(ax, s, t)) continue;
        for (int s2 = 0; s2 < n_; ++s2) {
          if (!Sub(s2, s)) continue;
          for (int t2 = 0; t2 < n_; ++t2) {
            if (Sub(t2, t) && !F(ax, s2, t2)) {
              add(SchemaElement::ForbiddenEdge(cls(s2), axis, cls(t2)),
                  "forbidden-specialization",
                  {SchemaElement::ForbiddenEdge(cls(s), axis, cls(t)),
                   SchemaElement::Subclass(cls(s2), cls(s)),
                   SchemaElement::Subclass(cls(t2), cls(t))});
            }
          }
        }
      }
    }

    // required-superclass: an s-entry is itself a t-entry for every t ⊒ s.
    for (int t = 0; t < n_; ++t) {
      if (R(s) && Sub(s, t) && !R(t)) {
        add(SchemaElement::RequiredClass(cls(t)), "required-superclass",
            {SchemaElement::RequiredClass(cls(s)),
             SchemaElement::Subclass(cls(s), cls(t))});
      }
      // impossible-subclass: if no t-entry can exist, no s ⊑ t entry can.
      if (Imp(t) && Sub(s, t) && !Imp(s)) {
        add(SchemaElement::Impossible(cls(s)), "impossible-subclass",
            {SchemaElement::Impossible(cls(t)),
             SchemaElement::Subclass(cls(s), cls(t))});
      }
    }

    // required-paths-top: any descendant's walk starts with a child, and
    // every entry is a top-entry; likewise any ancestor implies a parent.
    if (E(Ax(Axis::kDescendant), s, top_) && !E(Ax(Axis::kChild), s, top_)) {
      add(SchemaElement::RequiredEdge(cls(s), Axis::kChild, cls(top_)),
          "required-paths-top",
          {SchemaElement::RequiredEdge(cls(s), Axis::kDescendant,
                                       cls(top_))});
    }
    if (E(Ax(Axis::kAncestor), s, top_) && !E(Ax(Axis::kParent), s, top_)) {
      add(SchemaElement::RequiredEdge(cls(s), Axis::kParent, cls(top_)),
          "required-paths-top",
          {SchemaElement::RequiredEdge(cls(s), Axis::kAncestor, cls(top_))});
    }
    // forbidden-paths-top: with no child at all there is no descendant;
    // a t-descendant of anything implies a t-child of something (its
    // parent, which is a top-entry).
    if (F(Ax(Axis::kChild), s, top_) && !F(Ax(Axis::kDescendant), s, top_)) {
      add(SchemaElement::ForbiddenEdge(cls(s), Axis::kDescendant, cls(top_)),
          "forbidden-paths-top",
          {SchemaElement::ForbiddenEdge(cls(s), Axis::kChild, cls(top_))});
    }
    if (F(Ax(Axis::kChild), top_, s) && !F(Ax(Axis::kDescendant), top_, s)) {
      add(SchemaElement::ForbiddenEdge(cls(top_), Axis::kDescendant, cls(s)),
          "forbidden-paths-top",
          {SchemaElement::ForbiddenEdge(cls(top_), Axis::kChild, cls(s))});
    }

    for (int t = 0; t < n_; ++t) {
      // direct-conflict: the same pair cannot be both required and
      // forbidden — any s-entry would violate one of them.
      for (Axis axis : kDown) {
        if (E(Ax(axis), s, t) && F(Ax(axis), s, t) && !Imp(s)) {
          add(SchemaElement::Impossible(cls(s)), "direct-conflict",
              {SchemaElement::RequiredEdge(cls(s), axis, cls(t)),
               SchemaElement::ForbiddenEdge(cls(s), axis, cls(t))});
        }
      }
      // parent-conflict: s's required t-parent would have an s-child,
      // which is forbidden for t-entries.
      if (E(Ax(Axis::kParent), s, t) && F(Ax(Axis::kChild), t, s) &&
          !Imp(s)) {
        add(SchemaElement::Impossible(cls(s)), "parent-conflict",
            {SchemaElement::RequiredEdge(cls(s), Axis::kParent, cls(t)),
             SchemaElement::ForbiddenEdge(cls(t), Axis::kChild, cls(s))});
      }
      // ancestor-conflict: s's required t-ancestor would have an
      // s-descendant, which is forbidden for t-entries.
      if (E(Ax(Axis::kAncestor), s, t) && F(Ax(Axis::kDescendant), t, s) &&
          !Imp(s)) {
        add(SchemaElement::Impossible(cls(s)), "ancestor-conflict",
            {SchemaElement::RequiredEdge(cls(s), Axis::kAncestor, cls(t)),
             SchemaElement::ForbiddenEdge(cls(t), Axis::kDescendant,
                                          cls(s))});
      }

      for (int u = 0; u < n_; ++u) {
        // parenthood: an entry has a single parent; requiring parents of
        // two mutually exclusive classes is unsatisfiable.
        if (E(Ax(Axis::kParent), s, t) && E(Ax(Axis::kParent), s, u) &&
            Disj(t, u) && !Imp(s)) {
          add(SchemaElement::Impossible(cls(s)), "parenthood",
              {SchemaElement::RequiredEdge(cls(s), Axis::kParent, cls(t)),
               SchemaElement::RequiredEdge(cls(s), Axis::kParent, cls(u)),
               SchemaElement::Exclusive(cls(t), cls(u))});
        }
        // parenthood-via-child: every s-entry must have a t-child whose
        // parent (the s-entry itself) must be a u-entry; if s and u are
        // exclusive, no s-entry can exist.
        if (E(Ax(Axis::kChild), s, t) && E(Ax(Axis::kParent), t, u) &&
            Disj(s, u) && !Imp(s)) {
          add(SchemaElement::Impossible(cls(s)), "parenthood-via-child",
              {SchemaElement::RequiredEdge(cls(s), Axis::kChild, cls(t)),
               SchemaElement::RequiredEdge(cls(t), Axis::kParent, cls(u)),
               SchemaElement::Exclusive(cls(s), cls(u))});
        }
        // ancestorhood (pa/an): the required u-ancestor is distinct from
        // the t-parent (exclusive classes) hence strictly above it, making
        // the t-parent a forbidden descendant of the u-entry.
        if (E(Ax(Axis::kParent), s, t) && E(Ax(Axis::kAncestor), s, u) &&
            Disj(t, u) && F(Ax(Axis::kDescendant), u, t) && !Imp(s)) {
          add(SchemaElement::Impossible(cls(s)), "ancestorhood-parent",
              {SchemaElement::RequiredEdge(cls(s), Axis::kParent, cls(t)),
               SchemaElement::RequiredEdge(cls(s), Axis::kAncestor, cls(u)),
               SchemaElement::Exclusive(cls(t), cls(u)),
               SchemaElement::ForbiddenEdge(cls(u), Axis::kDescendant,
                                            cls(t))});
        }
        // ancestor-descendant conflict: the required u-descendant of s sits
        // below s, hence below s's required t-ancestor — forbidden.
        if (E(Ax(Axis::kAncestor), s, t) && E(Ax(Axis::kDescendant), s, u) &&
            F(Ax(Axis::kDescendant), t, u) && !Imp(s)) {
          add(SchemaElement::Impossible(cls(s)), "ancestor-descendant",
              {SchemaElement::RequiredEdge(cls(s), Axis::kAncestor, cls(t)),
               SchemaElement::RequiredEdge(cls(s), Axis::kDescendant,
                                           cls(u)),
               SchemaElement::ForbiddenEdge(cls(t), Axis::kDescendant,
                                            cls(u))});
        }
        // ancestorhood: two required ancestors of exclusive classes lie on
        // one root path, so one would be the other's descendant; if both
        // directions are forbidden, no s-entry can exist.
        if (E(Ax(Axis::kAncestor), s, t) && E(Ax(Axis::kAncestor), s, u) &&
            t < u && Disj(t, u) && F(Ax(Axis::kDescendant), t, u) &&
            F(Ax(Axis::kDescendant), u, t) && !Imp(s)) {
          add(SchemaElement::Impossible(cls(s)), "ancestorhood",
              {SchemaElement::RequiredEdge(cls(s), Axis::kAncestor, cls(t)),
               SchemaElement::RequiredEdge(cls(s), Axis::kAncestor, cls(u)),
               SchemaElement::Exclusive(cls(t), cls(u)),
               SchemaElement::ForbiddenEdge(cls(t), Axis::kDescendant,
                                            cls(u)),
               SchemaElement::ForbiddenEdge(cls(u), Axis::kDescendant,
                                            cls(t))});
        }
      }
    }

    // bottom: a required class whose entries cannot exist.
    if (R(s) && Imp(s) && !bottom_) {
      add(SchemaElement::Bottom(), "bottom",
          {SchemaElement::RequiredClass(cls(s)),
           SchemaElement::Impossible(cls(s))});
    }
  }
  return changed;
}

void InferenceEngine::Run() {
  if (ran_) return;
  ran_ = true;
  Seed();
  while (Pass()) {
  }
}

bool InferenceEngine::Has(const SchemaElement& element) const {
  return derivations_.count(element) > 0;
}

std::vector<ClassId> InferenceEngine::ImpossibleClasses() const {
  std::vector<ClassId> out;
  for (int i = 0; i < n_; ++i) {
    if (impossible_[i]) out.push_back(classes_[i]);
  }
  return out;
}

std::vector<SchemaElement> InferenceEngine::DerivedFacts() const {
  std::vector<SchemaElement> out;
  for (const auto& [element, derivation] : derivations_) {
    if (derivation.rule != "axiom" && derivation.rule != "class-schema") {
      out.push_back(element);
    }
  }
  return out;
}

std::string InferenceEngine::Explain(const SchemaElement& element) const {
  auto it = derivations_.find(element);
  if (it == derivations_.end()) return "";
  std::string out;
  // Iterative DFS with indentation; visited guard prevents re-expansion.
  struct Frame {
    SchemaElement element;
    int depth;
  };
  std::vector<Frame> stack{{element, 0}};
  std::unordered_map<SchemaElement, bool, SchemaElementHash> expanded;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    auto d = derivations_.find(f.element);
    out.append(static_cast<size_t>(f.depth) * 2, ' ');
    out += f.element.ToString(schema_.vocab());
    if (d == derivations_.end()) {
      out += "  [unknown]\n";
      continue;
    }
    out += "  [" + d->second.rule + "]\n";
    if (expanded[f.element]) continue;
    expanded[f.element] = true;
    for (auto p = d->second.premises.rbegin(); p != d->second.premises.rend();
         ++p) {
      stack.push_back({*p, f.depth + 1});
    }
  }
  return out;
}

std::vector<SchemaElement> FindRedundantElements(
    const DirectorySchema& schema) {
  const StructureSchema& structure = schema.structure();

  // Enumerate the structure elements with their fact representations.
  struct Candidate {
    SchemaElement fact;
    int kind;  // 0 = Cr, 1 = Er, 2 = Ef
    size_t index;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < structure.required_classes().size(); ++i) {
    candidates.push_back(
        {SchemaElement::RequiredClass(structure.required_classes()[i]), 0,
         i});
  }
  for (size_t i = 0; i < structure.required().size(); ++i) {
    const StructuralRelationship& rel = structure.required()[i];
    candidates.push_back(
        {SchemaElement::RequiredEdge(rel.source, rel.axis, rel.target), 1,
         i});
  }
  for (size_t i = 0; i < structure.forbidden().size(); ++i) {
    const StructuralRelationship& rel = structure.forbidden()[i];
    candidates.push_back(
        {SchemaElement::ForbiddenEdge(rel.source, rel.axis, rel.target), 2,
         i});
  }

  std::vector<SchemaElement> redundant;
  for (const Candidate& candidate : candidates) {
    // Rebuild the schema without this one element.
    DirectorySchema reduced(schema.vocab_ptr());
    reduced.mutable_classes() = schema.classes();
    reduced.mutable_attributes() = schema.attributes();
    StructureSchema& rs = reduced.mutable_structure();
    for (size_t i = 0; i < structure.required_classes().size(); ++i) {
      if (candidate.kind == 0 && candidate.index == i) continue;
      rs.RequireClass(structure.required_classes()[i]);
    }
    for (size_t i = 0; i < structure.required().size(); ++i) {
      if (candidate.kind == 1 && candidate.index == i) continue;
      const StructuralRelationship& rel = structure.required()[i];
      rs.Require(rel.source, rel.axis, rel.target);
    }
    for (size_t i = 0; i < structure.forbidden().size(); ++i) {
      if (candidate.kind == 2 && candidate.index == i) continue;
      const StructuralRelationship& rel = structure.forbidden()[i];
      (void)rs.Forbid(rel.source, rel.axis, rel.target);
    }

    InferenceEngine engine(reduced);
    engine.Run();
    if (engine.Has(candidate.fact)) redundant.push_back(candidate.fact);
  }
  return redundant;
}

Status ConsistencyChecker::EnsureConsistent() {
  engine_.Run();
  if (!engine_.FoundInconsistency()) return Status::OK();
  return Status::Inconsistent("schema admits no legal instance:\n" +
                              engine_.Explain(SchemaElement::Bottom()));
}

}  // namespace ldapbound
