#include "consistency/witness.h"

#include <string>
#include <vector>

#include "consistency/inference.h"
#include "core/legality_checker.h"

namespace ldapbound {

namespace {

// Work-in-progress forest over most-specific core classes.
struct ChaseNode {
  int parent = -1;
  ClassId mclass = kInvalidClassId;
  std::vector<int> children;
};

class Chase {
 public:
  explicit Chase(const DirectorySchema& schema)
      : schema_(schema), classes_(schema.classes()) {}

  Result<Directory> Run() {
    ConsistencyChecker checker(schema_);
    if (!checker.IsConsistent()) {
      return checker.EnsureConsistent();  // kInconsistent with explanation
    }

    // Seed: one node per required class.
    for (ClassId c : schema_.structure().required_classes()) {
      LDAPBOUND_RETURN_IF_ERROR(FindOrCreateOfClass(c));
    }

    // Fixpoint over obligations with a divergence cap. The cap is generous:
    // a consistent schema needs at most one node per (class, class) pair
    // along required chains.
    size_t n = schema_.classes().CoreClasses().size();
    size_t max_rounds = 16 * (n + 1) * (n + 1) + 64;
    for (size_t round = 0; round < max_rounds; ++round) {
      bool changed = false;
      stuck_.clear();
      // Obligations may add nodes while we iterate; index loop is safe.
      for (size_t i = 0; i < nodes_.size(); ++i) {
        changed = Discharge(static_cast<int>(i)) || changed;
      }
      if (!changed && !stuck_.empty()) {
        // No obligation made progress and at least one is blocked.
        return Status::Internal("chase stuck: " + stuck_.front());
      }
      if (!changed) {
        LDAPBOUND_ASSIGN_OR_RETURN(Directory directory, Materialize());
        // Keep the API honest: a returned witness is always verified.
        LegalityChecker checker(schema_);
        std::vector<Violation> violations;
        if (!checker.CheckLegal(directory, &violations)) {
          return Status::Internal(
              "chase produced an illegal instance:\n" +
              DescribeViolations(violations, schema_.vocab()));
        }
        return directory;
      }
      if (nodes_.size() > 4 * max_rounds) break;
    }
    return Status::Internal("witness construction diverged");
  }

 private:
  bool NodeIs(int node, ClassId cls) const {
    return classes_.IsSubclassOf(nodes_[node].mclass, cls);
  }

  int RootOf(int node) const {
    while (nodes_[node].parent >= 0) node = nodes_[node].parent;
    return node;
  }

  bool HasDescendantOfClass(int node, ClassId cls) const {
    std::vector<int> stack(nodes_[node].children.begin(),
                           nodes_[node].children.end());
    while (!stack.empty()) {
      int cur = stack.back();
      stack.pop_back();
      if (NodeIs(cur, cls)) return true;
      stack.insert(stack.end(), nodes_[cur].children.begin(),
                   nodes_[cur].children.end());
    }
    return false;
  }

  bool HasAncestorOfClass(int node, ClassId cls) const {
    for (int a = nodes_[node].parent; a >= 0; a = nodes_[a].parent) {
      if (NodeIs(a, cls)) return true;
    }
    return false;
  }

  // Would making `lower` a child of `upper` violate a forbidden
  // relationship, considering only the (upper-chain, lower) pairs?
  // `lower_class` describes the prospective node when it does not exist yet.
  bool EdgeForbidden(int upper, ClassId lower_class) const {
    for (const StructuralRelationship& rel : schema_.structure().forbidden()) {
      if (!classes_.IsSubclassOf(lower_class, rel.target)) continue;
      if (rel.axis == Axis::kChild) {
        if (NodeIs(upper, rel.source)) return true;
      } else {
        for (int a = upper; a >= 0; a = nodes_[a].parent) {
          if (NodeIs(a, rel.source)) return true;
        }
      }
    }
    return false;
  }

  // Would placing a new node of `upper_class` above root `root` violate a
  // forbidden relationship against anything in root's subtree?
  bool ParentPlacementForbidden(ClassId upper_class, int root) const {
    for (const StructuralRelationship& rel : schema_.structure().forbidden()) {
      if (!classes_.IsSubclassOf(upper_class, rel.source)) continue;
      if (rel.axis == Axis::kChild) {
        if (NodeIs(root, rel.target)) return true;
      } else {
        if (NodeIs(root, rel.target) ||
            HasDescendantOfClass(root, rel.target)) {
          return true;
        }
      }
    }
    return false;
  }

  // The most specific class that a node of most-specific class `t` needs
  // its parent to belong to (from required-parent elements with source
  // ⊒ t). kInvalidClassId when unconstrained; mutually exclusive
  // requirements also yield kInvalidClassId and are left to the inference
  // system's parenthood rule.
  ClassId RequiredParentClassFor(ClassId t) const {
    ClassId need = kInvalidClassId;
    for (const StructuralRelationship& rel : schema_.structure().required()) {
      if (rel.axis != Axis::kParent) continue;
      if (!classes_.IsSubclassOf(t, rel.source)) continue;
      if (need == kInvalidClassId ||
          classes_.IsSubclassOf(rel.target, need)) {
        need = rel.target;
      } else if (!classes_.IsSubclassOf(need, rel.target)) {
        return kInvalidClassId;
      }
    }
    return need;
  }

  // Could `upper_class` sit above `root` with one plain `top` node in
  // between? True when every rule blocking the direct placement is a
  // child-axis rule whose target is not `top` itself.
  bool CanPlaceAboveViaIntermediate(ClassId upper_class, int root) const {
    for (const StructuralRelationship& rel : schema_.structure().forbidden()) {
      if (classes_.IsSubclassOf(upper_class, rel.source)) {
        if (rel.target == classes_.top_class()) return false;
        if (rel.axis == Axis::kDescendant &&
            (NodeIs(root, rel.target) ||
             HasDescendantOfClass(root, rel.target))) {
          return false;
        }
      }
      // Rules constraining the intermediate top node as a source.
      if (rel.source == classes_.top_class()) {
        if (rel.axis == Axis::kChild && NodeIs(root, rel.target)) {
          return false;
        }
        if (rel.axis == Axis::kDescendant &&
            (NodeIs(root, rel.target) ||
             HasDescendantOfClass(root, rel.target))) {
          return false;
        }
      }
    }
    return true;
  }

  // A descendant of `from` able to host a new child of class `target`:
  // it must belong to `need` (when given) and the edge must be allowed.
  int FindDescendantHost(int from, ClassId need, ClassId target) const {
    std::vector<int> stack(nodes_[from].children.begin(),
                           nodes_[from].children.end());
    while (!stack.empty()) {
      int cur = stack.back();
      stack.pop_back();
      if ((need == kInvalidClassId || NodeIs(cur, need)) &&
          !EdgeForbidden(cur, target)) {
        return cur;
      }
      stack.insert(stack.end(), nodes_[cur].children.begin(),
                   nodes_[cur].children.end());
    }
    return -1;
  }

  int NewNode(int parent, ClassId cls) {
    nodes_.push_back(ChaseNode{parent, cls, {}});
    int id = static_cast<int>(nodes_.size()) - 1;
    if (parent >= 0) nodes_[parent].children.push_back(id);
    return id;
  }

  // Ensures some node of class `cls` exists (for Cr seeds).
  Status FindOrCreateOfClass(ClassId cls) {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (NodeIs(static_cast<int>(i), cls)) return Status::OK();
    }
    NewNode(-1, cls);
    return Status::OK();
  }

  // Discharges the obligations of one node; true if the forest changed.
  // Blocked obligations are recorded in stuck_ and retried next round —
  // another node's progress may unblock them.
  bool Discharge(int i) {
    bool changed = false;
    for (const StructuralRelationship& rel : schema_.structure().required()) {
      if (!NodeIs(i, rel.source)) continue;
      switch (rel.axis) {
        case Axis::kChild: {
          bool satisfied = false;
          for (int c : nodes_[i].children) {
            if (NodeIs(c, rel.target)) {
              satisfied = true;
              break;
            }
          }
          if (satisfied) break;
          if (EdgeForbidden(i, rel.target)) {
            stuck_.push_back("required child of class '" +
                             schema_.vocab().ClassName(rel.target) +
                             "' is forbidden here");
            break;
          }
          NewNode(i, rel.target);
          changed = true;
          break;
        }
        case Axis::kDescendant: {
          if (HasDescendantOfClass(i, rel.target)) break;
          // A node of the target class may itself require a parent of some
          // class; placing it directly under `i` only works if `i`
          // satisfies that.
          ClassId need = RequiredParentClassFor(rel.target);
          bool parent_fits = need == kInvalidClassId || NodeIs(i, need);
          if (parent_fits && !EdgeForbidden(i, rel.target)) {
            NewNode(i, rel.target);
            changed = true;
            break;
          }
          // Try an existing descendant as the attachment point (it may
          // satisfy the target's required-parent class, or dodge a
          // child-forbidden rule).
          int host = FindDescendantHost(i, need, rel.target);
          if (host >= 0) {
            NewNode(host, rel.target);
            changed = true;
            break;
          }
          // Otherwise descend through an intermediate node: of the required
          // parent class when there is one, else plain `top` (sidestepping
          // child-forbidden rules; a descendant-forbidden rule would block
          // either way).
          ClassId mid_class = parent_fits ? classes_.top_class() : need;
          if (!EdgeForbidden(i, mid_class)) {
            int mid = NewNode(i, mid_class);
            if (!EdgeForbidden(mid, rel.target)) {
              NewNode(mid, rel.target);
              changed = true;
              break;
            }
          }
          stuck_.push_back("required descendant of class '" +
                           schema_.vocab().ClassName(rel.target) +
                           "' is forbidden here");
          break;
        }
        case Axis::kParent: {
          int p = nodes_[i].parent;
          if (p >= 0) {
            if (NodeIs(p, rel.target)) break;
            // Specialize the parent if its class is comparable with the
            // required target (deepening keeps previously satisfied
            // memberships: subclass entries belong to all superclasses).
            if (classes_.IsSubclassOf(rel.target, nodes_[p].mclass)) {
              nodes_[p].mclass = rel.target;
              changed = true;
              break;
            }
            stuck_.push_back("node needs parent of class '" +
                             schema_.vocab().ClassName(rel.target) +
                             "' but has an incomparable parent");
            break;
          }
          if (ParentPlacementForbidden(rel.target, i)) {
            stuck_.push_back("required parent of class '" +
                             schema_.vocab().ClassName(rel.target) +
                             "' is forbidden");
            break;
          }
          int parent = NewNode(-1, rel.target);
          nodes_[parent].children.push_back(i);
          nodes_[i].parent = parent;
          changed = true;
          break;
        }
        case Axis::kAncestor: {
          if (HasAncestorOfClass(i, rel.target)) break;
          // Deepen a comparable ancestor: its entry then belongs to the
          // target class too (memberships only grow, so previously
          // satisfied requirements stay satisfied).
          bool specialized = false;
          for (int a = nodes_[i].parent; a >= 0; a = nodes_[a].parent) {
            if (classes_.IsSubclassOf(rel.target, nodes_[a].mclass)) {
              nodes_[a].mclass = rel.target;
              specialized = true;
              changed = true;
              break;
            }
          }
          if (specialized) break;
          int root = RootOf(i);
          if (!ParentPlacementForbidden(rel.target, root)) {
            int parent = NewNode(-1, rel.target);
            nodes_[parent].children.push_back(root);
            nodes_[root].parent = parent;
            changed = true;
            break;
          }
          // A child-axis rule may forbid the direct (target, root) edge
          // while the ancestor relation itself is fine: interpose a plain
          // top node.
          if (CanPlaceAboveViaIntermediate(rel.target, root)) {
            ClassId top = classes_.top_class();
            int mid = NewNode(-1, top);
            nodes_[mid].children.push_back(root);
            nodes_[root].parent = mid;
            int parent = NewNode(-1, rel.target);
            nodes_[parent].children.push_back(mid);
            nodes_[mid].parent = parent;
            changed = true;
            break;
          }
          stuck_.push_back("required ancestor of class '" +
                           schema_.vocab().ClassName(rel.target) +
                           "' is forbidden");
          break;
        }
      }
    }
    return changed;
  }

  // Builds the actual Directory: entries get the full superclass chain and
  // synthesized values for every required attribute.
  Result<Directory> Materialize() const {
    Directory directory(schema_.vocab_ptr());
    const AttributeSchema& attrs = schema_.attributes();
    const AttributeId oc = schema_.vocab().objectclass_attr();

    std::vector<EntryId> made(nodes_.size(), kInvalidEntryId);
    // Parents may have larger indices than children (pa/an create late);
    // process via DFS from roots.
    std::vector<int> stack;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].parent < 0) stack.push_back(static_cast<int>(i));
    }
    while (!stack.empty()) {
      int i = stack.back();
      stack.pop_back();
      std::vector<ClassId> chain = classes_.AncestorsOf(nodes_[i].mclass);
      std::vector<AttributeValue> values;
      for (ClassId c : chain) {
        for (AttributeId a : attrs.Required(c)) {
          if (a == oc) continue;
          Value v;
          switch (schema_.vocab().AttributeType(a)) {
            case ValueType::kString:
              v = Value(std::string("w"));
              break;
            case ValueType::kInteger:
              v = Value(int64_t{0});
              break;
            case ValueType::kBoolean:
              v = Value(false);
              break;
          }
          values.push_back(AttributeValue{a, std::move(v)});
        }
      }
      EntryId parent = nodes_[i].parent < 0 ? kInvalidEntryId
                                            : made[nodes_[i].parent];
      LDAPBOUND_ASSIGN_OR_RETURN(
          EntryId id,
          directory.AddEntry(parent, "cn=w" + std::to_string(i),
                             std::move(chain), std::move(values)));
      made[i] = id;
      for (int c : nodes_[i].children) stack.push_back(c);
    }
    return directory;
  }

  const DirectorySchema& schema_;
  const ClassSchema& classes_;
  std::vector<ChaseNode> nodes_;
  std::vector<std::string> stuck_;
};

}  // namespace

Result<Directory> WitnessBuilder::Build() const {
  return Chase(schema_).Run();
}

}  // namespace ldapbound
