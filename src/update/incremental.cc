#include "update/incremental.h"

#include <unordered_map>
#include <unordered_set>

#include "core/translation.h"
#include "query/evaluator.h"

namespace ldapbound {

namespace {

bool ReportRelationship(std::vector<Violation>* out, bool* ok,
                        const StructuralRelationship& rel, EntryId entry) {
  *ok = false;
  if (out == nullptr) return false;
  Violation v;
  v.kind = rel.forbidden ? ViolationKind::kForbiddenRelationship
                         : ViolationKind::kRequiredRelationship;
  v.entry = entry;
  v.relationship = rel;
  out->push_back(v);
  return true;
}

}  // namespace

bool IncrementalValidator::IsIncrementallyTestable(
    const StructuralRelationship& rel, bool insertion) {
  if (insertion) return true;  // every Figure 5 insertion row is "yes"
  if (rel.forbidden) return true;           // deletions cannot create pairs
  return rel.axis == Axis::kParent || rel.axis == Axis::kAncestor;
}

bool IncrementalValidator::CheckAfterInsert(const Directory& directory,
                                            const EntrySet& delta,
                                            std::vector<Violation>* out) const {
  // Content schema: insertion of Δ preserves content legality iff Δ itself
  // is content-legal (§4.2) — old entries are untouched.
  bool ok = true;
  bool content_ok = true;
  delta.ForEach([&](EntryId id) {
    if (!directory.IsAlive(id)) return;
    if (!checker_.CheckEntryContent(directory, id, out)) content_ok = false;
  });
  if (!content_ok) {
    ok = false;
    if (out == nullptr) return false;
  }
  bool structure_ok =
      options_.delta_driven_insert
          ? CheckStructureAfterInsertDeltaDriven(directory, delta, out)
          : CheckStructureAfterInsert(directory, delta, out);
  if (!structure_ok) {
    ok = false;
    if (out == nullptr) return false;
  }
  if (!CheckKeysAfterInsert(directory, delta, out)) {
    ok = false;
    if (out == nullptr) return false;
  }
  return ok;
}

bool IncrementalValidator::CheckKeysAfterInsert(
    const Directory& directory, const EntrySet& delta,
    std::vector<Violation>* out) const {
  const std::vector<AttributeId>& keys = schema_.key_attributes();
  if (keys.empty()) return true;
  bool ok = true;

  // Since D satisfied the keys, every new duplicate involves a Δ value:
  // collect Δ's key values (flagging duplicates within Δ), then one scan
  // of the old entries — O(|Δ| + |D|) per key attribute.
  for (AttributeId attr : keys) {
    std::unordered_map<Value, EntryId, ValueHash> fresh;
    bool stop = false;
    delta.ForEach([&](EntryId id) {
      if (stop || !directory.IsAlive(id)) return;
      for (const Value& v : directory.entry(id).GetValues(attr)) {
        auto [it, inserted] = fresh.emplace(v, id);
        if (!inserted) {
          Violation violation;
          violation.kind = ViolationKind::kDuplicateKeyValue;
          violation.entry = id;
          violation.attr = attr;
          ok = false;
          if (out == nullptr) {
            stop = true;
            return;
          }
          out->push_back(violation);
        }
      }
    });
    if (stop) return false;
    if (fresh.empty()) continue;
    bool done = false;
    directory.ForEachAlive([&](const Entry& e) {
      if (done || delta.Contains(e.id())) return;
      for (const Value& v : e.GetValues(attr)) {
        auto it = fresh.find(v);
        if (it != fresh.end()) {
          Violation violation;
          violation.kind = ViolationKind::kDuplicateKeyValue;
          violation.entry = it->second;
          violation.attr = attr;
          ok = false;
          if (out == nullptr) {
            done = true;
            return;
          }
          out->push_back(violation);
        }
      }
    });
    if (done) return false;
  }
  return ok;
}

namespace {

// Does `source_entry` have an axis-related entry of class `target`?
// Child/parent are O(fanout)/O(1); descendant is an early-exit DFS;
// ancestor walks the root path.
bool SatisfiesRequired(const Directory& directory, EntryId source_entry,
                       const StructuralRelationship& rel) {
  const Entry& e = directory.entry(source_entry);
  switch (rel.axis) {
    case Axis::kChild:
      for (EntryId c : e.children()) {
        if (directory.entry(c).HasClass(rel.target)) return true;
      }
      return false;
    case Axis::kParent:
      return e.parent() != kInvalidEntryId &&
             directory.entry(e.parent()).HasClass(rel.target);
    case Axis::kDescendant: {
      std::vector<EntryId> stack(e.children().begin(), e.children().end());
      while (!stack.empty()) {
        EntryId cur = stack.back();
        stack.pop_back();
        if (directory.entry(cur).HasClass(rel.target)) return true;
        const auto& kids = directory.entry(cur).children();
        stack.insert(stack.end(), kids.begin(), kids.end());
      }
      return false;
    }
    case Axis::kAncestor:
      for (EntryId a = e.parent(); a != kInvalidEntryId;
           a = directory.entry(a).parent()) {
        if (directory.entry(a).HasClass(rel.target)) return true;
      }
      return false;
  }
  return false;
}

}  // namespace

bool IncrementalValidator::CheckAfterReclassify(
    const Directory& directory, EntryId id, const std::vector<ClassId>& added,
    const std::vector<ClassId>& removed, std::vector<Violation>* out) const {
  const StructureSchema& structure = schema_.structure();
  const Entry& entry = directory.entry(id);
  bool ok = true;

  auto in = [](const std::vector<ClassId>& set, ClassId c) {
    return std::find(set.begin(), set.end(), c) != set.end();
  };

  // Content: only this entry's class set changed.
  if (!checker_.CheckEntryContent(directory, id, out)) {
    ok = false;
    if (out == nullptr) return false;
  }

  // Required classes Cr: a removed class may have lost its last member.
  for (ClassId cls : structure.required_classes()) {
    if (!in(removed, cls)) continue;
    if (directory.CountWithClass(cls) == 0) {
      ok = false;
      if (out == nullptr) return false;
      Violation v;
      v.kind = ViolationKind::kMissingRequiredClass;
      v.cls = cls;
      out->push_back(v);
    }
  }

  for (const StructuralRelationship& rel : structure.required()) {
    // The entry itself, for requirements its new classes impose.
    if (in(added, rel.source) && entry.HasClass(rel.source) &&
        !SatisfiesRequired(directory, id, rel)) {
      if (!ReportRelationship(out, &ok, rel, id)) return false;
    }
    // Entries that may have relied on this entry as their target.
    if (!in(removed, rel.target)) continue;
    auto recheck = [&](EntryId candidate) -> bool {
      if (!directory.entry(candidate).HasClass(rel.source)) return true;
      if (SatisfiesRequired(directory, candidate, rel)) return true;
      return ReportRelationship(out, &ok, rel, candidate);
    };
    switch (rel.axis) {
      case Axis::kChild: {
        EntryId p = entry.parent();
        if (p != kInvalidEntryId && !recheck(p)) return false;
        break;
      }
      case Axis::kDescendant:
        for (EntryId a = entry.parent(); a != kInvalidEntryId;
             a = directory.entry(a).parent()) {
          if (!recheck(a)) return false;
        }
        break;
      case Axis::kParent:
        for (EntryId c : entry.children()) {
          if (!recheck(c)) return false;
        }
        break;
      case Axis::kAncestor:
        for (EntryId d : directory.SubtreeEntries(id)) {
          if (d != id && !recheck(d)) return false;
        }
        break;
    }
  }

  for (const StructuralRelationship& rel : structure.forbidden()) {
    // Upper side: the entry's new classes forbid certain relatives below.
    if (in(added, rel.source) && entry.HasClass(rel.source)) {
      if (rel.axis == Axis::kChild) {
        for (EntryId c : entry.children()) {
          if (directory.entry(c).HasClass(rel.target)) {
            if (!ReportRelationship(out, &ok, rel, id)) return false;
            break;
          }
        }
      } else {
        for (EntryId d : directory.SubtreeEntries(id)) {
          if (d != id && directory.entry(d).HasClass(rel.target)) {
            if (!ReportRelationship(out, &ok, rel, id)) return false;
            break;
          }
        }
      }
    }
    // Lower side: the entry's new classes are forbidden below certain
    // ancestors.
    if (in(added, rel.target) && entry.HasClass(rel.target)) {
      if (rel.axis == Axis::kChild) {
        EntryId p = entry.parent();
        if (p != kInvalidEntryId &&
            directory.entry(p).HasClass(rel.source)) {
          if (!ReportRelationship(out, &ok, rel, p)) return false;
        }
      } else {
        for (EntryId a = entry.parent(); a != kInvalidEntryId;
             a = directory.entry(a).parent()) {
          if (directory.entry(a).HasClass(rel.source)) {
            if (!ReportRelationship(out, &ok, rel, a)) return false;
          }
        }
      }
    }
  }
  return ok;
}

bool IncrementalValidator::CheckAfterMove(const Directory& directory,
                                          EntryId root, EntryId old_parent,
                                          std::vector<Violation>* out) const {
  const StructureSchema& structure = schema_.structure();
  bool ok = true;
  std::vector<EntryId> subtree = directory.SubtreeEntries(root);

  for (const StructuralRelationship& rel : structure.required()) {
    switch (rel.axis) {
      case Axis::kChild: {
        // Only the old parent lost a child.
        if (old_parent != kInvalidEntryId &&
            directory.entry(old_parent).HasClass(rel.source) &&
            !SatisfiesRequired(directory, old_parent, rel)) {
          if (!ReportRelationship(out, &ok, rel, old_parent)) return false;
        }
        break;
      }
      case Axis::kDescendant: {
        // The old ancestor chain lost the subtree's entries.
        for (EntryId a = old_parent; a != kInvalidEntryId;
             a = directory.entry(a).parent()) {
          if (directory.entry(a).HasClass(rel.source) &&
              !SatisfiesRequired(directory, a, rel)) {
            if (!ReportRelationship(out, &ok, rel, a)) return false;
          }
        }
        break;
      }
      case Axis::kParent: {
        // Only the subtree root's parent changed.
        if (directory.entry(root).HasClass(rel.source) &&
            !SatisfiesRequired(directory, root, rel)) {
          if (!ReportRelationship(out, &ok, rel, root)) return false;
        }
        break;
      }
      case Axis::kAncestor: {
        // Every subtree entry's ancestor set above `root` changed.
        for (EntryId id : subtree) {
          if (directory.entry(id).HasClass(rel.source) &&
              !SatisfiesRequired(directory, id, rel)) {
            if (!ReportRelationship(out, &ok, rel, id)) return false;
          }
        }
        break;
      }
    }
  }

  // Forbidden: new (upper, lower) pairs pair the new ancestors with the
  // subtree's entries.
  for (const StructuralRelationship& rel : structure.forbidden()) {
    if (rel.axis == Axis::kChild) {
      EntryId p = directory.entry(root).parent();
      if (p != kInvalidEntryId && directory.entry(p).HasClass(rel.source) &&
          directory.entry(root).HasClass(rel.target)) {
        if (!ReportRelationship(out, &ok, rel, p)) return false;
      }
      continue;
    }
    // Descendant axis: does any subtree entry carry the target class, and
    // any new ancestor the source class?
    bool subtree_has_target = false;
    for (EntryId id : subtree) {
      if (directory.entry(id).HasClass(rel.target)) {
        subtree_has_target = true;
        break;
      }
    }
    if (!subtree_has_target) continue;
    for (EntryId a = directory.entry(root).parent(); a != kInvalidEntryId;
         a = directory.entry(a).parent()) {
      if (directory.entry(a).HasClass(rel.source)) {
        // Precise blame: the ancestor must dominate a target-class entry —
        // it does (subtree_has_target and a is above the whole subtree).
        if (!ReportRelationship(out, &ok, rel, a)) return false;
      }
    }
  }
  return ok;
}

bool IncrementalValidator::CheckStructureAfterInsertDeltaDriven(
    const Directory& directory, const EntrySet& delta,
    std::vector<Violation>* out) const {
  const StructureSchema& structure = schema_.structure();
  bool ok = true;

  // Early-exit search for a target-class entry in the subtree below `from`
  // (the subtree of a new entry consists of new entries only, so this is
  // bounded by |Δ|).
  auto has_descendant = [&](EntryId from, ClassId target) {
    std::vector<EntryId> stack(directory.entry(from).children().begin(),
                               directory.entry(from).children().end());
    while (!stack.empty()) {
      EntryId cur = stack.back();
      stack.pop_back();
      if (directory.entry(cur).HasClass(target)) return true;
      const auto& kids = directory.entry(cur).children();
      stack.insert(stack.end(), kids.begin(), kids.end());
    }
    return false;
  };
  auto has_ancestor = [&](EntryId from, ClassId target) {
    for (EntryId a = directory.entry(from).parent(); a != kInvalidEntryId;
         a = directory.entry(a).parent()) {
      if (directory.entry(a).HasClass(target)) return true;
    }
    return false;
  };

  bool stop = false;
  delta.ForEach([&](EntryId id) {
    if (stop || !directory.IsAlive(id)) return;
    const Entry& entry = directory.entry(id);

    // Required relationships: only new sources can violate.
    for (const StructuralRelationship& rel : structure.required()) {
      if (!entry.HasClass(rel.source)) continue;
      bool satisfied = false;
      switch (rel.axis) {
        case Axis::kChild:
          for (EntryId c : entry.children()) {
            if (directory.entry(c).HasClass(rel.target)) {
              satisfied = true;
              break;
            }
          }
          break;
        case Axis::kDescendant:
          satisfied = has_descendant(id, rel.target);
          break;
        case Axis::kParent:
          satisfied = entry.parent() != kInvalidEntryId &&
                      directory.entry(entry.parent()).HasClass(rel.target);
          break;
        case Axis::kAncestor:
          satisfied = has_ancestor(id, rel.target);
          break;
      }
      if (!satisfied) {
        if (!ReportRelationship(out, &ok, rel, id)) {
          stop = true;
          return;
        }
      }
    }

    // Forbidden relationships: every new pair has its lower entry in Δ, so
    // check each new entry's parent (child axis) and ancestors (descendant
    // axis) — they may be old or new.
    for (const StructuralRelationship& rel : structure.forbidden()) {
      if (!entry.HasClass(rel.target)) continue;
      if (rel.axis == Axis::kChild) {
        EntryId p = entry.parent();
        if (p != kInvalidEntryId && directory.entry(p).HasClass(rel.source)) {
          if (!ReportRelationship(out, &ok, rel, p)) {
            stop = true;
            return;
          }
        }
      } else {
        for (EntryId a = entry.parent(); a != kInvalidEntryId;
             a = directory.entry(a).parent()) {
          if (directory.entry(a).HasClass(rel.source)) {
            if (!ReportRelationship(out, &ok, rel, a)) {
              stop = true;
              return;
            }
          }
        }
      }
    }
  });
  return ok;
}

bool IncrementalValidator::CheckStructureAfterInsert(
    const Directory& directory, const EntrySet& delta,
    std::vector<Violation>* out) const {
  const StructureSchema& structure = schema_.structure();
  QueryEvaluator evaluator(directory, &delta);
  bool ok = true;

  // Required classes Cr cannot be violated by insertion (Figure 5 text).

  for (const StructuralRelationship& rel : structure.required()) {
    // Only new sources can violate; their child/descendant relatives are
    // necessarily new, while parent/ancestor relatives may be old.
    Scope target_scope =
        (rel.axis == Axis::kChild || rel.axis == Axis::kDescendant)
            ? Scope::kDeltaOnly
            : Scope::kAll;
    EntrySet offenders =
        evaluator.Evaluate(ViolationQuery(rel, Scope::kDeltaOnly,
                                          target_scope));
    bool stop = false;
    offenders.ForEach([&](EntryId id) {
      if (stop) return;
      if (!ReportRelationship(out, &ok, rel, id)) stop = true;
    });
    if (stop) return false;
  }

  for (const StructuralRelationship& rel : structure.forbidden()) {
    // Every new (upper, lower) pair has a new lower entry; the upper side
    // may be old or new.
    EntrySet offenders = evaluator.Evaluate(
        ViolationQuery(rel, Scope::kAll, Scope::kDeltaOnly));
    bool stop = false;
    offenders.ForEach([&](EntryId id) {
      if (stop) return;
      if (!ReportRelationship(out, &ok, rel, id)) stop = true;
    });
    if (stop) return false;
  }
  return ok;
}

bool IncrementalValidator::CheckBeforeDelete(const Directory& directory,
                                             EntryId delta_root,
                                             const EntrySet& delta,
                                             std::vector<Violation>* out) const {
  return CheckBeforeDeleteBatch(directory, {delta_root}, delta, out);
}

bool IncrementalValidator::CheckBeforeDeleteBatch(
    const Directory& directory, const std::vector<EntryId>& delta_roots,
    const EntrySet& delta, std::vector<Violation>* out) const {
  bool ok = true;

  // Required classes Cr: testable via the maintained class counts — the
  // counting extension the paper sketches. A required class is violated iff
  // all its member entries are inside Δ.
  std::unordered_map<ClassId, size_t> delta_counts;
  delta.ForEach([&](EntryId id) {
    for (ClassId c : directory.entry(id).classes()) ++delta_counts[c];
  });
  for (ClassId cls : schema_.structure().required_classes()) {
    size_t total = directory.CountWithClass(cls);
    auto it = delta_counts.find(cls);
    size_t doomed = it == delta_counts.end() ? 0 : it->second;
    if (total > 0 && doomed >= total) {
      ok = false;
      if (out == nullptr) return false;
      Violation v;
      v.kind = ViolationKind::kMissingRequiredClass;
      v.cls = cls;
      out->push_back(v);
    }
  }

  if (!CheckStructureBeforeDelete(directory, delta_roots, delta, out)) {
    ok = false;
    if (out == nullptr) return false;
  }
  return ok;
}

bool IncrementalValidator::CheckStructureBeforeDelete(
    const Directory& directory, const std::vector<EntryId>& delta_roots,
    const EntrySet& delta, std::vector<Violation>* out) const {
  const StructureSchema& structure = schema_.structure();
  bool ok = true;

  // Forbidden and required-parent/ancestor relationships cannot be violated
  // by deletion (Figure 5's ∅ rows): survivors keep their ancestors, and no
  // new pairs appear. Only required child/descendant remain.

  if (!options_.ancestor_path_optimization) {
    // Paper-faithful: evaluate the Figure 4 query over D−Δ.
    QueryEvaluator evaluator(directory, &delta);
    for (const StructuralRelationship& rel : structure.required()) {
      if (rel.axis != Axis::kChild && rel.axis != Axis::kDescendant) continue;
      EntrySet offenders = evaluator.Evaluate(
          ViolationQuery(rel, Scope::kExcludeDelta, Scope::kExcludeDelta));
      bool stop = false;
      offenders.ForEach([&](EntryId id) {
        if (stop) return;
        if (!ReportRelationship(out, &ok, rel, id)) stop = true;
      });
      if (stop) return false;
    }
    return ok;
  }

  // Extension: since D is legal, the only entries that lose a child are
  // the doomed roots' parents, and the only entries that lose descendants
  // are the roots' surviving proper ancestors. Test just those — collected
  // once across the whole batch, so subtrees sharing ancestors (common
  // under a hot parent) are not re-tested per subtree.
  std::vector<EntryId> parents;
  std::vector<EntryId> ancestors;
  {
    std::unordered_set<EntryId> parent_seen;
    std::unordered_set<EntryId> anc_seen;
    for (EntryId root : delta_roots) {
      EntryId p = directory.entry(root).parent();
      if (p == kInvalidEntryId) continue;
      if (parent_seen.insert(p).second) parents.push_back(p);
      for (EntryId a = p; a != kInvalidEntryId;
           a = directory.entry(a).parent()) {
        // A chain already walked from here up stops the climb.
        if (!anc_seen.insert(a).second) break;
        ancestors.push_back(a);
      }
    }
  }

  // Surviving target-descendant search with early exit, skipping Δ. The
  // class test happens as each child is first seen — not after queueing a
  // whole child list — so a hit under a high-fanout parent returns before
  // scanning the remaining siblings.
  auto has_surviving_descendant = [&](EntryId from, ClassId target) {
    std::vector<EntryId> stack;
    stack.push_back(from);
    while (!stack.empty()) {
      EntryId cur = stack.back();
      stack.pop_back();
      for (EntryId c : directory.entry(cur).children()) {
        if (delta.Contains(c)) continue;
        if (directory.entry(c).HasClass(target)) return true;
        stack.push_back(c);
      }
    }
    return false;
  };

  for (const StructuralRelationship& rel : structure.required()) {
    if (rel.axis == Axis::kChild) {
      for (EntryId parent : parents) {
        if (!directory.entry(parent).HasClass(rel.source)) continue;
        bool satisfied = false;
        for (EntryId c : directory.entry(parent).children()) {
          if (delta.Contains(c)) continue;
          if (directory.entry(c).HasClass(rel.target)) {
            satisfied = true;
            break;
          }
        }
        if (!satisfied) {
          if (!ReportRelationship(out, &ok, rel, parent)) return false;
        }
      }
      continue;
    }
    if (rel.axis == Axis::kDescendant) {
      for (EntryId anc : ancestors) {
        if (!directory.entry(anc).HasClass(rel.source)) continue;
        if (!has_surviving_descendant(anc, rel.target)) {
          if (!ReportRelationship(out, &ok, rel, anc)) return false;
        }
      }
      continue;
    }
  }
  return ok;
}

}  // namespace ldapbound
