#include "update/transaction.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace ldapbound {

UpdateTransaction& UpdateTransaction::Insert(DistinguishedName dn,
                                             EntrySpec spec) {
  UpdateOp op;
  op.kind = UpdateOp::Kind::kInsert;
  op.dn = std::move(dn);
  op.spec = std::move(spec);
  ops_.push_back(std::move(op));
  return *this;
}

UpdateTransaction& UpdateTransaction::Delete(DistinguishedName dn) {
  UpdateOp op;
  op.kind = UpdateOp::Kind::kDelete;
  op.dn = std::move(dn);
  ops_.push_back(std::move(op));
  return *this;
}

namespace {

std::string DnKey(const DistinguishedName& dn) {
  return ToLower(dn.ToString());
}

}  // namespace

Status TransactionExecutor::Normalize(
    const UpdateTransaction& txn, std::vector<InsertGroup>* inserts,
    std::vector<DistinguishedName>* delete_roots) const {
  std::unordered_set<std::string> inserted;
  std::unordered_set<std::string> deleted;
  for (const UpdateOp& op : txn.ops()) {
    std::string key = DnKey(op.dn);
    if (op.dn.IsEmpty()) {
      return Status::InvalidArgument("update op with empty DN");
    }
    auto& set = (op.kind == UpdateOp::Kind::kInsert) ? inserted : deleted;
    if (!set.insert(key).second) {
      return Status::InvalidArgument("duplicate update op for '" +
                                     op.dn.ToString() + "'");
    }
  }
  for (const std::string& key : inserted) {
    if (deleted.count(key) > 0) {
      return Status::InvalidArgument(
          "transaction both inserts and deletes '" + key +
          "' (operations must be distinct; see §4.1)");
    }
  }

  // Group inserts into maximal subtrees: an op roots a group when its
  // parent DN is not itself inserted by this transaction.
  std::unordered_map<std::string, size_t> group_of_root;
  for (const UpdateOp& op : txn.ops()) {
    if (op.kind != UpdateOp::Kind::kInsert) continue;
    DistinguishedName root = op.dn;
    while (!root.Parent().IsEmpty() &&
           inserted.count(DnKey(root.Parent())) > 0) {
      root = root.Parent();
    }
    // Roots whose parent is an inserted DN only via a gap (parent missing
    // from the transaction) will fail at apply time with NotFound.
    std::string root_key = DnKey(root);
    auto [it, fresh] = group_of_root.emplace(root_key, inserts->size());
    if (fresh) inserts->emplace_back();
    (*inserts)[it->second].ops.push_back(&op);
  }
  // Parents before children within each group.
  for (InsertGroup& group : *inserts) {
    std::stable_sort(group.ops.begin(), group.ops.end(),
                     [](const UpdateOp* a, const UpdateOp* b) {
                       return a->dn.Depth() < b->dn.Depth();
                     });
  }

  // Delete roots: deleted entries whose parent is not deleted.
  for (const UpdateOp& op : txn.ops()) {
    if (op.kind != UpdateOp::Kind::kDelete) continue;
    if (op.dn.Parent().IsEmpty() ||
        deleted.count(DnKey(op.dn.Parent())) == 0) {
      delete_roots->push_back(op.dn);
    }
  }
  return Status::OK();
}

Status TransactionExecutor::Commit(const UpdateTransaction& txn,
                                   CommitStats* stats) {
  std::vector<InsertGroup> insert_groups;
  std::vector<DistinguishedName> delete_roots;
  LDAPBOUND_RETURN_IF_ERROR(Normalize(txn, &insert_groups, &delete_roots));

  CommitStats local_stats;
  std::vector<EntryId> inserted_roots;  // for rollback
  struct AppliedDelete {
    EntryId parent;
    SubtreeSnapshot snapshot;
  };
  std::vector<AppliedDelete> applied_deletes;

  auto rollback = [&]() {
    for (const AppliedDelete& d : applied_deletes) {
      // Restores cannot fail: the parent is alive and the RDN slot is free.
      d.snapshot.Restore(directory_, d.parent);
    }
    for (EntryId root : inserted_roots) {
      directory_->DeleteSubtree(root);
    }
  };

  // Phase 1: apply inserted subtrees, checking after each (Theorem 4.1
  // prescribes insertions before deletions).
  for (const InsertGroup& group : insert_groups) {
    std::vector<EntryId> created;
    created.reserve(group.ops.size());
    for (const UpdateOp* op : group.ops) {
      EntryId parent = kInvalidEntryId;
      DistinguishedName parent_dn = op->dn.Parent();
      if (!parent_dn.IsEmpty()) {
        auto resolved = ResolveDn(*directory_, parent_dn);
        if (!resolved.ok()) {
          // Creation of this subtree is impossible; undo and fail.
          for (auto it = created.rbegin(); it != created.rend(); ++it) {
            directory_->DeleteLeaf(*it);
          }
          rollback();
          return Status::NotFound("insert '" + op->dn.ToString() +
                                  "': parent entry does not exist");
        }
        parent = *resolved;
      }
      EntrySpec spec = op->spec;
      spec.rdn = op->dn.Leaf();
      auto id = directory_->AddEntryFromSpec(parent, spec);
      if (!id.ok()) {
        for (auto it = created.rbegin(); it != created.rend(); ++it) {
          directory_->DeleteLeaf(*it);
        }
        rollback();
        return id.status();
      }
      created.push_back(*id);
    }
    EntrySet delta(directory_->IdCapacity());
    for (EntryId id : created) delta.Insert(id);
    std::vector<Violation> violations;
    if (!validator_.CheckAfterInsert(*directory_, delta, &violations)) {
      rollback();
      for (auto it = created.rbegin(); it != created.rend(); ++it) {
        directory_->DeleteLeaf(*it);
      }
      return Status::Illegal(
          "inserting subtree at '" + group.ops.front()->dn.ToString() +
          "' violates the schema:\n" +
          DescribeViolations(violations, schema_.vocab()));
    }
    inserted_roots.push_back(created.front());
    local_stats.inserted_subtrees += 1;
    local_stats.inserted_entries += created.size();
  }

  // Phase 2: deleted subtrees, checking before each.
  for (const DistinguishedName& root_dn : delete_roots) {
    auto root = ResolveDn(*directory_, root_dn);
    if (!root.ok()) {
      rollback();
      return Status::NotFound("delete '" + root_dn.ToString() +
                              "': no such entry");
    }
    // Every entry of the subtree must have been listed for deletion —
    // transactions delete entries, not implicit subtrees.
    std::unordered_set<std::string> deleted_keys;
    for (const UpdateOp& op : txn.ops()) {
      if (op.kind == UpdateOp::Kind::kDelete) {
        deleted_keys.insert(DnKey(op.dn));
      }
    }
    std::vector<EntryId> doomed = directory_->SubtreeEntries(*root);
    for (EntryId id : doomed) {
      auto dn = DnOf(*directory_, id);
      if (!dn.ok() || deleted_keys.count(DnKey(*dn)) == 0) {
        rollback();
        return Status::InvalidArgument(
            "transaction deletes '" + root_dn.ToString() +
            "' but not all of its descendants (LDAP deletes leaves only)");
      }
    }
    EntrySet delta(directory_->IdCapacity());
    for (EntryId id : doomed) delta.Insert(id);
    std::vector<Violation> violations;
    if (!validator_.CheckBeforeDelete(*directory_, *root, delta,
                                      &violations)) {
      rollback();
      return Status::Illegal(
          "deleting subtree at '" + root_dn.ToString() +
          "' violates the schema:\n" +
          DescribeViolations(violations, schema_.vocab()));
    }
    EntryId parent = directory_->entry(*root).parent();
    LDAPBOUND_ASSIGN_OR_RETURN(SubtreeSnapshot snapshot,
                               SubtreeSnapshot::Capture(*directory_, *root));
    LDAPBOUND_RETURN_IF_ERROR(directory_->DeleteSubtree(*root));
    applied_deletes.push_back(AppliedDelete{parent, std::move(snapshot)});
    local_stats.deleted_subtrees += 1;
    local_stats.deleted_entries += doomed.size();
  }

  if (stats != nullptr) *stats = local_stats;
  return Status::OK();
}

}  // namespace ldapbound
