#include "update/transaction.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace ldapbound {

UpdateTransaction& UpdateTransaction::Insert(DistinguishedName dn,
                                             EntrySpec spec) {
  UpdateOp op;
  op.kind = UpdateOp::Kind::kInsert;
  op.dn = std::move(dn);
  op.spec = std::move(spec);
  ops_.push_back(std::move(op));
  return *this;
}

UpdateTransaction& UpdateTransaction::Delete(DistinguishedName dn) {
  UpdateOp op;
  op.kind = UpdateOp::Kind::kDelete;
  op.dn = std::move(dn);
  ops_.push_back(std::move(op));
  return *this;
}

namespace {

std::string DnKey(const DistinguishedName& dn) {
  return ToLower(dn.ToString());
}

}  // namespace

Status TransactionExecutor::Normalize(
    const UpdateTransaction& txn, std::vector<InsertGroup>* inserts,
    std::vector<DistinguishedName>* delete_roots) const {
  std::unordered_set<std::string> inserted;
  std::unordered_set<std::string> deleted;
  for (const UpdateOp& op : txn.ops()) {
    std::string key = DnKey(op.dn);
    if (op.dn.IsEmpty()) {
      return Status::InvalidArgument("update op with empty DN");
    }
    auto& set = (op.kind == UpdateOp::Kind::kInsert) ? inserted : deleted;
    if (!set.insert(key).second) {
      return Status::InvalidArgument("duplicate update op for '" +
                                     op.dn.ToString() + "'");
    }
  }
  for (const std::string& key : inserted) {
    if (deleted.count(key) > 0) {
      return Status::InvalidArgument(
          "transaction both inserts and deletes '" + key +
          "' (operations must be distinct; see §4.1)");
    }
  }

  // Group inserts into maximal subtrees: an op roots a group when its
  // parent DN is not itself inserted by this transaction.
  std::unordered_map<std::string, size_t> group_of_root;
  for (const UpdateOp& op : txn.ops()) {
    if (op.kind != UpdateOp::Kind::kInsert) continue;
    DistinguishedName root = op.dn;
    while (!root.Parent().IsEmpty() &&
           inserted.count(DnKey(root.Parent())) > 0) {
      root = root.Parent();
    }
    // Roots whose parent is an inserted DN only via a gap (parent missing
    // from the transaction) will fail at apply time with NotFound.
    std::string root_key = DnKey(root);
    auto [it, fresh] = group_of_root.emplace(root_key, inserts->size());
    if (fresh) inserts->emplace_back();
    (*inserts)[it->second].ops.push_back(&op);
  }
  // Parents before children within each group.
  for (InsertGroup& group : *inserts) {
    std::stable_sort(group.ops.begin(), group.ops.end(),
                     [](const UpdateOp* a, const UpdateOp* b) {
                       return a->dn.Depth() < b->dn.Depth();
                     });
  }

  // Delete roots: deleted entries whose parent is not deleted.
  for (const UpdateOp& op : txn.ops()) {
    if (op.kind != UpdateOp::Kind::kDelete) continue;
    if (op.dn.Parent().IsEmpty() ||
        deleted.count(DnKey(op.dn.Parent())) == 0) {
      delete_roots->push_back(op.dn);
    }
  }
  return Status::OK();
}

Status TransactionExecutor::Commit(const UpdateTransaction& txn,
                                   CommitStats* stats) {
  std::vector<InsertGroup> insert_groups;
  std::vector<DistinguishedName> delete_roots;
  LDAPBOUND_RETURN_IF_ERROR(Normalize(txn, &insert_groups, &delete_roots));

  CommitStats local_stats;
  std::vector<EntryId> inserted_roots;  // for rollback
  struct AppliedDelete {
    EntryId parent;
    SubtreeSnapshot snapshot;
  };
  std::vector<AppliedDelete> applied_deletes;

  auto rollback = [&]() {
    for (const AppliedDelete& d : applied_deletes) {
      // Restores cannot fail: the parent is alive and the RDN slot is free.
      d.snapshot.Restore(directory_, d.parent);
    }
    for (EntryId root : inserted_roots) {
      directory_->DeleteSubtree(root);
    }
  };

  // Phase 1: apply every inserted subtree, then check the whole inserted
  // delta at once (Theorem 4.1 prescribes insertions before deletions; the
  // per-subtree checks merge into one union-Δ check because maximal insert
  // groups attach to pre-transaction parents — no group can be an ancestor
  // of another — so the union check decomposes into exactly the per-group
  // conjunct it replaces).
  std::vector<EntryId> all_created;
  for (const InsertGroup& group : insert_groups) {
    std::vector<EntryId> created;
    created.reserve(group.ops.size());
    for (const UpdateOp* op : group.ops) {
      EntryId parent = kInvalidEntryId;
      DistinguishedName parent_dn = op->dn.Parent();
      if (!parent_dn.IsEmpty()) {
        auto resolved = ResolveDn(*directory_, parent_dn);
        if (!resolved.ok()) {
          // Creation of this subtree is impossible; undo and fail.
          for (auto it = created.rbegin(); it != created.rend(); ++it) {
            directory_->DeleteLeaf(*it);
          }
          rollback();
          return Status::NotFound("insert '" + op->dn.ToString() +
                                  "': parent entry does not exist");
        }
        parent = *resolved;
      }
      EntrySpec spec = op->spec;
      spec.rdn = op->dn.Leaf();
      auto id = directory_->AddEntryFromSpec(parent, spec);
      if (!id.ok()) {
        for (auto it = created.rbegin(); it != created.rend(); ++it) {
          directory_->DeleteLeaf(*it);
        }
        rollback();
        return id.status();
      }
      created.push_back(*id);
    }
    inserted_roots.push_back(created.front());
    all_created.insert(all_created.end(), created.begin(), created.end());
    local_stats.inserted_subtrees += 1;
    local_stats.inserted_entries += created.size();
  }
  if (!insert_groups.empty()) {
    EntrySet delta(directory_->IdCapacity());
    for (EntryId id : all_created) delta.Insert(id);
    std::vector<Violation> violations;
    if (!validator_.CheckAfterInsert(*directory_, delta, &violations)) {
      Status illegal = Status::Illegal(
          "inserting subtree at '" + insert_groups.front().ops.front()->dn
              .ToString() +
          (insert_groups.size() > 1
               ? "' (and " + std::to_string(insert_groups.size() - 1) +
                     " more) violates the schema:\n"
               : "' violates the schema:\n") +
          DescribeViolations(violations, schema_.vocab()));
      rollback();
      return illegal;
    }
  }

  // Phase 2: deleted subtrees — one union-Δ check before any deletion (see
  // CheckBeforeDeleteBatch for why this equals the interleaved per-subtree
  // checks), then snapshot + delete each.
  if (!delete_roots.empty()) {
    // Every entry of a deleted subtree must have been listed for deletion —
    // transactions delete entries, not implicit subtrees.
    std::unordered_set<std::string> deleted_keys;
    for (const UpdateOp& op : txn.ops()) {
      if (op.kind == UpdateOp::Kind::kDelete) {
        deleted_keys.insert(DnKey(op.dn));
      }
    }
    std::vector<EntryId> roots;
    roots.reserve(delete_roots.size());
    EntrySet delta(directory_->IdCapacity());
    size_t doomed_total = 0;
    for (const DistinguishedName& root_dn : delete_roots) {
      auto root = ResolveDn(*directory_, root_dn);
      if (!root.ok()) {
        rollback();
        return Status::NotFound("delete '" + root_dn.ToString() +
                                "': no such entry");
      }
      std::vector<EntryId> doomed = directory_->SubtreeEntries(*root);
      for (EntryId id : doomed) {
        auto dn = DnOf(*directory_, id);
        if (!dn.ok() || deleted_keys.count(DnKey(*dn)) == 0) {
          rollback();
          return Status::InvalidArgument(
              "transaction deletes '" + root_dn.ToString() +
              "' but not all of its descendants (LDAP deletes leaves only)");
        }
        delta.Insert(id);
      }
      roots.push_back(*root);
      doomed_total += doomed.size();
    }
    std::vector<Violation> violations;
    if (!validator_.CheckBeforeDeleteBatch(*directory_, roots, delta,
                                           &violations)) {
      Status illegal = Status::Illegal(
          "deleting subtree at '" + delete_roots.front().ToString() +
          (delete_roots.size() > 1
               ? "' (and " + std::to_string(delete_roots.size() - 1) +
                     " more) violates the schema:\n"
               : "' violates the schema:\n") +
          DescribeViolations(violations, schema_.vocab()));
      rollback();
      return illegal;
    }
    for (EntryId root : roots) {
      EntryId parent = directory_->entry(root).parent();
      LDAPBOUND_ASSIGN_OR_RETURN(SubtreeSnapshot snapshot,
                                 SubtreeSnapshot::Capture(*directory_, root));
      LDAPBOUND_RETURN_IF_ERROR(directory_->DeleteSubtree(root));
      applied_deletes.push_back(AppliedDelete{parent, std::move(snapshot)});
    }
    local_stats.deleted_subtrees += delete_roots.size();
    local_stats.deleted_entries += doomed_total;
  }

  if (stats != nullptr) *stats = local_stats;
  return Status::OK();
}

}  // namespace ldapbound
