#ifndef LDAPBOUND_UPDATE_TRANSACTION_H_
#define LDAPBOUND_UPDATE_TRANSACTION_H_

#include <string>
#include <vector>

#include "ldap/dn.h"
#include "model/directory.h"
#include "update/incremental.h"
#include "update/subtree_snapshot.h"

namespace ldapbound {

/// One directory update operation, named by DN (Section 4.1's granularity:
/// a transaction is a sequence of distinct entry insertions and deletions).
struct UpdateOp {
  enum class Kind : uint8_t { kInsert, kDelete };

  Kind kind;
  DistinguishedName dn;
  /// For inserts: classes and values of the new entry (spec.rdn is ignored;
  /// the RDN comes from `dn`).
  EntrySpec spec;
};

/// A sequence of entry insertions and deletions, applied atomically with
/// legality checking at subtree granularity.
class UpdateTransaction {
 public:
  UpdateTransaction& Insert(DistinguishedName dn, EntrySpec spec);
  UpdateTransaction& Delete(DistinguishedName dn);

  const std::vector<UpdateOp>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }

 private:
  std::vector<UpdateOp> ops_;
};

/// Statistics of a committed (or rejected) transaction.
struct CommitStats {
  size_t inserted_subtrees = 0;
  size_t deleted_subtrees = 0;
  size_t inserted_entries = 0;
  size_t deleted_entries = 0;
};

/// Applies update transactions with the checking discipline of Theorem 4.1:
/// the entry-level operations are normalized into maximal inserted subtrees
/// and maximal deleted subtrees; the inserted subtrees are applied first,
/// then the deletions, with an incremental legality check after each
/// subtree insertion and before each subtree deletion. The theorem
/// guarantees the verdict is independent of the original operation order.
///
/// On any failed check the transaction is rolled back completely (inserted
/// subtrees removed, deleted subtrees restored from snapshots) and the
/// returned status is kIllegal carrying the violations.
class TransactionExecutor {
 public:
  TransactionExecutor(Directory* directory, const DirectorySchema& schema,
                      IncrementalValidator::Options options = {})
      : directory_(directory), schema_(schema),
        validator_(schema, options) {}

  /// Validates and applies `txn`. The directory must be legal beforehand.
  Status Commit(const UpdateTransaction& txn, CommitStats* stats = nullptr);

 private:
  struct InsertGroup {
    // Ops of one inserted subtree, parents before children; index 0 is the
    // subtree root (its parent exists in the pre-transaction directory).
    std::vector<const UpdateOp*> ops;
  };

  Status Normalize(const UpdateTransaction& txn,
                   std::vector<InsertGroup>* inserts,
                   std::vector<DistinguishedName>* delete_roots) const;

  Directory* directory_;
  const DirectorySchema& schema_;
  IncrementalValidator validator_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_UPDATE_TRANSACTION_H_
