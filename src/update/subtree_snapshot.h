#ifndef LDAPBOUND_UPDATE_SUBTREE_SNAPSHOT_H_
#define LDAPBOUND_UPDATE_SUBTREE_SNAPSHOT_H_

#include <string>
#include <vector>

#include "model/directory.h"

namespace ldapbound {

/// A detached copy of a directory subtree: enough to re-create it under the
/// same parent. Used by TransactionExecutor to roll back subtree deletions
/// when a later step of an update transaction turns out to be illegal.
class SubtreeSnapshot {
 public:
  /// Captures the subtree rooted at `root` (which must be alive).
  static Result<SubtreeSnapshot> Capture(const Directory& directory,
                                         EntryId root);

  /// Re-creates the subtree under `parent` (kInvalidEntryId for a root).
  /// Returns the ids of the created entries in creation (preorder) order.
  /// Note ids are freshly allocated — snapshots do not preserve ids.
  Result<std::vector<EntryId>> Restore(Directory* directory,
                                       EntryId parent) const;

  /// Number of entries captured.
  size_t Size() const { return nodes_.size(); }

  /// The RDN of the captured subtree's root.
  const std::string& RootRdn() const { return nodes_.front().rdn; }

 private:
  struct Node {
    std::string rdn;
    std::vector<ClassId> classes;
    std::vector<AttributeValue> values;
    // Index into nodes_ of the parent; -1 for the subtree root.
    int parent = -1;
  };

  std::vector<Node> nodes_;  // preorder: parents precede children
};

}  // namespace ldapbound

#endif  // LDAPBOUND_UPDATE_SUBTREE_SNAPSHOT_H_
