#include "update/subtree_snapshot.h"

#include <unordered_map>

namespace ldapbound {

Result<SubtreeSnapshot> SubtreeSnapshot::Capture(const Directory& directory,
                                                 EntryId root) {
  if (!directory.IsAlive(root)) {
    return Status::NotFound("subtree root is not alive");
  }
  SubtreeSnapshot snapshot;
  std::vector<EntryId> order = directory.SubtreeEntries(root);
  std::unordered_map<EntryId, int> position;
  position.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    const Entry& e = directory.entry(order[i]);
    Node node;
    node.rdn = e.rdn();
    node.classes = e.classes();
    node.values = e.values();
    node.parent = (i == 0) ? -1 : position.at(e.parent());
    position.emplace(order[i], static_cast<int>(i));
    snapshot.nodes_.push_back(std::move(node));
  }
  return snapshot;
}

Result<std::vector<EntryId>> SubtreeSnapshot::Restore(Directory* directory,
                                                      EntryId parent) const {
  std::vector<EntryId> created;
  created.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    EntryId p = (node.parent < 0) ? parent : created[node.parent];
    LDAPBOUND_ASSIGN_OR_RETURN(
        EntryId id,
        directory->AddEntry(p, node.rdn, node.classes, node.values));
    created.push_back(id);
  }
  return created;
}

}  // namespace ldapbound
