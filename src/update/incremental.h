#ifndef LDAPBOUND_UPDATE_INCREMENTAL_H_
#define LDAPBOUND_UPDATE_INCREMENTAL_H_

#include <vector>

#include "core/legality_checker.h"
#include "core/violation.h"
#include "model/directory.h"
#include "schema/directory_schema.h"

namespace ldapbound {

/// Incremental legality testing for single-subtree updates (Section 4.2,
/// Figure 5, Theorem 4.2). Preconditions throughout: the pre-update
/// instance D was legal, and Δ is one whole subtree.
///
/// For insertion (directory holds D+Δ, `delta` marks the new entries):
///   - content schema: only Δ entries are checked (old entries unchanged);
///   - required relationships: only Δ sources can violate. Child/descendant
///     targets of new entries are themselves new (Δ scope); parent/ancestor
///     targets may be old (full scope) — exactly Figure 5's scoping;
///   - forbidden relationships: every new (upper, lower) pair has its lower
///     entry in Δ, so the target side is Δ-scoped;
///   - required classes Cr: insertion cannot violate (no check).
///
/// For deletion (directory still holds D, `delta` marks the doomed subtree;
/// the check runs BEFORE applying the deletion):
///   - content, forbidden, required-parent/ancestor: deletion cannot
///     violate (no check) — Figure 5's "∅" rows;
///   - required child/descendant: not incrementally testable; the check
///     evaluates the full Figure 4 query over D−Δ (via kExcludeDelta
///     scoping). With `ancestor_path_optimization`, the implementation
///     instead tests only the surviving ancestors of the deleted subtree's
///     root — the only entries that lose children/descendants. This is an
///     extension beyond the paper's query-scoping formalism (which cannot
///     express "ancestors of Δ"); its equivalence is property-tested and
///     its effect measured by the ablation benchmark;
///   - required classes Cr: testable thanks to the directory's maintained
///     class counts (the counting extension §4.2 suggests).
class IncrementalValidator {
 public:
  struct Options {
    /// Use the O(|S|·depth) ancestor-path check for deletions instead of
    /// the paper's full D−Δ re-evaluation.
    bool ancestor_path_optimization = false;
    /// For insertions, walk Δ directly (children/ancestors of the new
    /// entries) instead of evaluating the Figure 5 Δ-queries, whose
    /// unscoped sides still scan D. Cost becomes O(|S|·|Δ|·depth)
    /// independent of |D|. An engineering extension beyond the paper's
    /// query-scoping formalism; equivalence is property-tested and the
    /// effect measured by bench_incremental.
    bool delta_driven_insert = false;
    /// Worker configuration forwarded to the embedded LegalityChecker for
    /// the full-directory passes (entry content sweeps, key rechecks).
    /// The Δ-scoped incremental queries themselves stay single-threaded —
    /// they are O(|Δ|) and below any useful parallel grain.
    CheckOptions check;
  };

  explicit IncrementalValidator(const DirectorySchema& schema)
      : IncrementalValidator(schema, Options()) {}
  IncrementalValidator(const DirectorySchema& schema, Options options)
      : schema_(schema), checker_(schema, options.check), options_(options) {}

  /// Whether D+Δ stays legal; `directory` must already hold D+Δ.
  bool CheckAfterInsert(const Directory& directory, const EntrySet& delta,
                        std::vector<Violation>* out = nullptr) const;

  /// Whether D−Δ would be legal; `directory` must still hold D (with Δ
  /// alive). `delta_root` is the root of the doomed subtree; `delta` its
  /// entry set.
  bool CheckBeforeDelete(const Directory& directory, EntryId delta_root,
                         const EntrySet& delta,
                         std::vector<Violation>* out = nullptr) const;

  /// Batch form of CheckBeforeDelete: Δ is the union of several maximal
  /// doomed subtrees (rooted at `delta_roots`; no root's ancestor may be
  /// in Δ). Merges the Figure 5 Δ-scoped work across the batch — one Cr
  /// class-count pass, one D−Δ query evaluation (or, with the
  /// ancestor-path optimization, one deduplicated sweep over the roots'
  /// surviving parents and ancestors) — instead of one pass per subtree.
  /// Equivalent to checking the subtrees one at a time, interleaved with
  /// their deletions: the checked survivors (the roots' ancestors) outlive
  /// the whole batch, and deletion only shrinks their child/descendant
  /// sets, so a violation of any intermediate state is still a violation
  /// of D−Δ and vice versa.
  bool CheckBeforeDeleteBatch(const Directory& directory,
                              const std::vector<EntryId>& delta_roots,
                              const EntrySet& delta,
                              std::vector<Violation>* out = nullptr) const;

  /// Incremental check for a *reclassification*: entry `id` gained classes
  /// `added` and lost classes `removed` (e.g. an LDAP Modify touching
  /// objectClass). `directory` already holds the post-change state, which
  /// must differ from a legal pre-change state only at `id`.
  ///
  /// Figure-5-style case analysis (an extension — the paper only treats
  /// entry insertion/deletion):
  ///  - content: re-check `id` alone;
  ///  - required relationships: `id` may newly violate ones whose source is
  ///    in `added`; entries that relied on `id` as their target may newly
  ///    violate ones whose target is in `removed` — those entries are
  ///    exactly id's parent (child axis), ancestors (descendant), children
  ///    (parent) and descendants (ancestor);
  ///  - forbidden relationships: new pairs involve `id` with a class from
  ///    `added`, as upper side (check id's children/descendants) or lower
  ///    side (check id's parent/ancestors);
  ///  - required classes Cr: only `removed` classes can empty out — tested
  ///    via the directory's class counts.
  bool CheckAfterReclassify(const Directory& directory, EntryId id,
                            const std::vector<ClassId>& added,
                            const std::vector<ClassId>& removed,
                            std::vector<Violation>* out = nullptr) const;

  /// Incremental check for a subtree *move* (the LDAP ModDN operation):
  /// the subtree rooted at `root` was re-parented from `old_parent` to its
  /// current position. `directory` holds the post-move state, which must
  /// differ from a legal pre-move state only by that one edge.
  ///
  /// Case analysis (an extension; the paper treats only insert/delete):
  ///  - content, keys, Cr: unchanged — no check;
  ///  - required: the moved entries' child/descendant relatives moved with
  ///    them — only `root`'s parent requirement and the subtree's ancestor
  ///    requirements need re-checking; the old ancestors lost descendants
  ///    (re-check like a deletion: old_parent for child, the old chain for
  ///    descendant); new ancestors only gained relatives;
  ///  - forbidden: new pairs are (new ancestors × subtree entries).
  bool CheckAfterMove(const Directory& directory, EntryId root,
                      EntryId old_parent,
                      std::vector<Violation>* out = nullptr) const;

  /// Figure 5's Y/N column: can `rel` be tested by a Δ-query (at least one
  /// sub-expression on ∅ or Δ) for the given update kind?
  static bool IsIncrementallyTestable(const StructuralRelationship& rel,
                                      bool insertion);

  const DirectorySchema& schema() const { return schema_; }

 private:
  bool CheckStructureAfterInsert(const Directory& directory,
                                 const EntrySet& delta,
                                 std::vector<Violation>* out) const;
  bool CheckStructureAfterInsertDeltaDriven(const Directory& directory,
                                            const EntrySet& delta,
                                            std::vector<Violation>* out) const;
  bool CheckKeysAfterInsert(const Directory& directory, const EntrySet& delta,
                            std::vector<Violation>* out) const;
  bool CheckStructureBeforeDelete(const Directory& directory,
                                  const std::vector<EntryId>& delta_roots,
                                  const EntrySet& delta,
                                  std::vector<Violation>* out) const;

  const DirectorySchema& schema_;
  LegalityChecker checker_;
  Options options_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_UPDATE_INCREMENTAL_H_
