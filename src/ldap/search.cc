#include "ldap/search.h"

namespace ldapbound {

Result<std::vector<EntryId>> Search(const Directory& directory,
                                    const SearchRequest& request) {
  EntryId base = kInvalidEntryId;
  if (!request.base.IsEmpty()) {
    LDAPBOUND_ASSIGN_OR_RETURN(base, ResolveDn(directory, request.base));
  }
  return SearchFrom(directory, base, request.scope, request.filter);
}

Result<std::vector<EntryId>> SearchFrom(const Directory& directory,
                                        EntryId base, SearchScope scope,
                                        const MatcherPtr& filter) {
  if (base != kInvalidEntryId && !directory.IsAlive(base)) {
    return Status::NotFound("search base entry is not alive");
  }
  std::vector<EntryId> out;
  auto consider = [&](EntryId id) {
    if (filter == nullptr || filter->Matches(directory.entry(id))) {
      out.push_back(id);
    }
  };

  if (base == kInvalidEntryId) {
    // Whole forest. kBase on the (virtual) root above the forest matches
    // nothing; kOneLevel yields the roots; kSubtree everything.
    switch (scope) {
      case SearchScope::kBase:
        break;
      case SearchScope::kOneLevel:
        for (EntryId root : directory.roots()) consider(root);
        break;
      case SearchScope::kSubtree:
        // Root-by-root tree walk, same order as the dense preorder but
        // with no dense-cache dependency: Search is a const read that
        // must stay safe concurrently with other const reads, and a
        // stale dense cache may only be materialized single-threaded.
        for (EntryId root : directory.roots()) {
          for (EntryId id : directory.SubtreeEntries(root)) consider(id);
        }
        break;
    }
    return out;
  }

  switch (scope) {
    case SearchScope::kBase:
      consider(base);
      break;
    case SearchScope::kOneLevel:
      for (EntryId child : directory.entry(base).children()) consider(child);
      break;
    case SearchScope::kSubtree:
      for (EntryId id : directory.SubtreeEntries(base)) consider(id);
      break;
  }
  return out;
}

}  // namespace ldapbound
