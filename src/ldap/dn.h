#ifndef LDAPBOUND_LDAP_DN_H_
#define LDAPBOUND_LDAP_DN_H_

#include <string>
#include <string_view>
#include <vector>

#include "model/directory.h"
#include "util/result.h"

namespace ldapbound {

/// A distinguished name: the hierarchical name of a directory entry, listed
/// leaf-first as in LDAP, e.g. "uid=laks,ou=databases,ou=attLabs,o=att".
/// The paper abstracts DNs into the forest relation N (footnote 1); this
/// type provides the concrete naming layer a usable directory needs.
///
/// RDN components are kept verbatim (escapes preserved); comparisons are
/// ASCII case-insensitive, per LDAP convention.
class DistinguishedName {
 public:
  /// The empty DN (the conceptual parent of root entries).
  DistinguishedName() = default;

  /// Parses "rdn,rdn,...,rdn". Commas escaped with '\' do not split.
  /// Every RDN must be of the form attr=value.
  static Result<DistinguishedName> Parse(std::string_view text);

  /// RDNs leaf-first: rdns()[0] names the entry, rdns().back() the root.
  const std::vector<std::string>& rdns() const { return rdns_; }

  bool IsEmpty() const { return rdns_.empty(); }
  size_t Depth() const { return rdns_.size(); }

  /// The RDN of the named entry itself ("" for the empty DN).
  const std::string& Leaf() const;

  /// The DN of the parent (empty DN if this names a root).
  DistinguishedName Parent() const;

  /// The DN of a child with the given RDN.
  DistinguishedName Child(std::string rdn) const;

  /// "rdn,rdn,...,rdn"; empty string for the empty DN.
  std::string ToString() const;

  /// Case-insensitive comparison.
  bool Equals(const DistinguishedName& other) const;

 private:
  std::vector<std::string> rdns_;  // leaf-first
};

/// Finds the entry named by `dn` by walking RDNs from the roots.
Result<EntryId> ResolveDn(const Directory& directory,
                          const DistinguishedName& dn);

/// Builds the DN of an alive entry from its path to the root.
Result<DistinguishedName> DnOf(const Directory& directory, EntryId id);

}  // namespace ldapbound

#endif  // LDAPBOUND_LDAP_DN_H_
