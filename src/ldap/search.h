#ifndef LDAPBOUND_LDAP_SEARCH_H_
#define LDAPBOUND_LDAP_SEARCH_H_

#include <vector>

#include "ldap/dn.h"
#include "model/directory.h"
#include "query/matcher.h"

namespace ldapbound {

/// LDAP search scopes: the base entry alone, its direct children, or its
/// whole subtree (including the base) — the "retrieval typically scoped to
/// some subtree" of the paper's introduction.
enum class SearchScope : uint8_t {
  kBase = 0,
  kOneLevel = 1,
  kSubtree = 2,
};

/// A directory search: filter evaluation under a scope rooted at a base
/// entry (named by DN or by id).
struct SearchRequest {
  DistinguishedName base;          ///< empty DN = search the whole forest
  SearchScope scope = SearchScope::kSubtree;
  MatcherPtr filter;               ///< null = match all
};

/// Runs the search, returning matching entry ids in preorder.
/// NotFound if the base DN does not resolve.
Result<std::vector<EntryId>> Search(const Directory& directory,
                                    const SearchRequest& request);

/// Id-based variant: base == kInvalidEntryId searches the whole forest.
Result<std::vector<EntryId>> SearchFrom(const Directory& directory,
                                        EntryId base, SearchScope scope,
                                        const MatcherPtr& filter);

}  // namespace ldapbound

#endif  // LDAPBOUND_LDAP_SEARCH_H_
