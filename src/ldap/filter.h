#ifndef LDAPBOUND_LDAP_FILTER_H_
#define LDAPBOUND_LDAP_FILTER_H_

#include <string_view>

#include "query/matcher.h"

namespace ldapbound {

/// Compiles an RFC 1960-style LDAP search filter into a Matcher over the
/// given vocabulary.
///
/// Supported grammar:
///
///   filter     := '(' filtercomp ')'
///   filtercomp := '&' filter+ | '|' filter+ | '!' filter | item
///   item       := attr '=*'            presence
///              |  attr '=' pattern     equality; '*' wildcards allowed in
///                                      string patterns (substring match)
///              |  attr '>=' value      integer comparison
///              |  attr '<=' value      integer comparison
///
/// `objectClass=<name>` items compile to class-membership tests. Items over
/// attributes or classes absent from the vocabulary compile to
/// match-nothing, mirroring LDAP's "Undefined evaluates to FALSE".
Result<MatcherPtr> ParseFilter(std::string_view text,
                               const Vocabulary& vocab);

/// Matches string-valued attributes against a '*'-wildcard pattern (the
/// LDAP substring filter). Exposed for direct construction in tests.
class SubstringMatcher : public Matcher {
 public:
  /// `pattern` with at least one '*', e.g. "a*t*t".
  SubstringMatcher(AttributeId attr, std::string pattern);

  bool Matches(const Entry& entry) const override;
  std::string ToString(const Vocabulary& vocab) const override;

 private:
  AttributeId attr_;
  std::string pattern_;
  std::vector<std::string> pieces_;  // pattern split on '*'
  bool anchored_front_;
  bool anchored_back_;
};

/// Integer >= / <= comparisons.
class CompareMatcher : public Matcher {
 public:
  enum class Op { kGreaterOrEqual, kLessOrEqual };

  CompareMatcher(AttributeId attr, Op op, int64_t bound)
      : attr_(attr), op_(op), bound_(bound) {}

  bool Matches(const Entry& entry) const override;
  std::string ToString(const Vocabulary& vocab) const override;

 private:
  AttributeId attr_;
  Op op_;
  int64_t bound_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_LDAP_FILTER_H_
