#include "ldap/query_parser.h"

#include <vector>

#include "ldap/filter.h"
#include "util/string_util.h"

namespace ldapbound {

namespace {

class QueryParser {
 public:
  QueryParser(std::string_view text, const Vocabulary& vocab)
      : text_(text), vocab_(vocab) {}

  Result<Query> Run() {
    LDAPBOUND_ASSIGN_OR_RETURN(Query q, ParseOne());
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return q;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("query position " + std::to_string(pos_) +
                                   ": " + msg);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Finds the position just past the ')' matching the '(' at `open`.
  Result<size_t> MatchParen(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < text_.size(); ++i) {
      if (text_[i] == '(') ++depth;
      if (text_[i] == ')') {
        --depth;
        if (depth == 0) return i + 1;
      }
    }
    return Status::InvalidArgument("unbalanced parentheses in query");
  }

  Result<Query> ParseOne() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return Error("expected '('");
    }
    // Look at the first token inside to decide operator vs atomic.
    size_t inner = pos_ + 1;
    while (inner < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[inner]))) {
      ++inner;
    }
    if (inner >= text_.size()) return Error("unterminated query");
    char op = text_[inner];
    bool is_operator = false;
    if (op == '?' || op == 'U' || op == 'N' || op == 'c' || op == 'p' ||
        op == 'd' || op == 'a') {
      // Operators are a single letter followed by whitespace and '('.
      size_t after = inner + 1;
      while (after < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[after]))) {
        ++after;
      }
      is_operator = after < text_.size() && text_[after] == '(' &&
                    after > inner + 1;
    }

    if (!is_operator) return ParseAtomic();

    pos_ = inner + 1;  // past '(' and the operator letter
    std::vector<Query> operands;
    while (true) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ')') {
        ++pos_;
        break;
      }
      LDAPBOUND_ASSIGN_OR_RETURN(Query q, ParseOne());
      operands.push_back(std::move(q));
    }

    switch (op) {
      case '?':
        if (operands.size() != 2) {
          return Error("'?' takes exactly two operands");
        }
        return Query::Diff(std::move(operands[0]), std::move(operands[1]));
      case 'c':
      case 'p':
      case 'd':
      case 'a': {
        if (operands.size() != 2) {
          return Error(std::string("'") + op +
                       "' takes exactly two operands");
        }
        Axis axis = op == 'c'   ? Axis::kChild
                    : op == 'p' ? Axis::kParent
                    : op == 'd' ? Axis::kDescendant
                                : Axis::kAncestor;
        return Query::Hier(axis, std::move(operands[0]),
                           std::move(operands[1]));
      }
      case 'U':
        if (operands.empty()) return Error("'U' needs operands");
        return Query::Union(std::move(operands));
      case 'N':
        if (operands.empty()) return Error("'N' needs operands");
        return Query::Intersect(std::move(operands));
    }
    return Error("unknown operator");
  }

  Result<Query> ParseAtomic() {
    LDAPBOUND_ASSIGN_OR_RETURN(size_t end, MatchParen(pos_));
    std::string_view filter_text = text_.substr(pos_, end - pos_);
    LDAPBOUND_ASSIGN_OR_RETURN(MatcherPtr matcher,
                               ParseFilter(filter_text, vocab_));
    pos_ = end;
    // Optional scope suffix.
    Scope scope = Scope::kAll;
    if (pos_ < text_.size() && text_[pos_] == '[') {
      size_t close = text_.find(']', pos_);
      if (close == std::string_view::npos) {
        return Error("unterminated scope suffix");
      }
      std::string_view name = text_.substr(pos_ + 1, close - pos_ - 1);
      if (name == "delta") {
        scope = Scope::kDeltaOnly;
      } else if (name == "old") {
        scope = Scope::kExcludeDelta;
      } else if (name == "empty") {
        scope = Scope::kEmpty;
      } else {
        return Error("unknown scope '" + std::string(name) + "'");
      }
      pos_ = close + 1;
    }
    return Query::Select(std::move(matcher), scope);
  }

  std::string_view text_;
  const Vocabulary& vocab_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text, const Vocabulary& vocab) {
  return QueryParser(text, vocab).Run();
}

}  // namespace ldapbound
