#ifndef LDAPBOUND_LDAP_QUERY_PARSER_H_
#define LDAPBOUND_LDAP_QUERY_PARSER_H_

#include <string_view>

#include "query/query.h"

namespace ldapbound {

/// Parses the paper's s-expression syntax for hierarchical selection
/// queries (the notation of §3.2 and Figure 4):
///
///   query  := '(' 'c'|'p'|'d'|'a' query query ')'   hierarchical selection
///           | '(' '?' query query ')'               set difference
///           | '(' 'U' query+ ')'                    union
///           | '(' 'N' query+ ')'                    intersection
///           | '(' <filter-item> ')' [scope]         atomic selection
///
/// Atomic selections accept any RFC-1960 filter component (so
/// `(objectClass=person)`, `(mail=*)`, `(&(objectClass=person)(age>=30))`
/// all work); an optional scope suffix `[delta]` / `[old]` / `[empty]`
/// restricts the selection as in the Figure 5 Δ-queries. The grammar is
/// exactly what Query::ToString prints, so queries round-trip.
///
/// Example (the paper's Q1):
///   (? (objectClass=orgGroup)
///      (d (objectClass=orgGroup) (objectClass=person)))
Result<Query> ParseQuery(std::string_view text, const Vocabulary& vocab);

}  // namespace ldapbound

#endif  // LDAPBOUND_LDAP_QUERY_PARSER_H_
