#include "ldap/dn.h"

#include "util/string_util.h"

namespace ldapbound {

Result<DistinguishedName> DistinguishedName::Parse(std::string_view text) {
  DistinguishedName dn;
  text = StripWhitespace(text);
  if (text.empty()) return dn;
  for (std::string_view piece : SplitEscaped(text, ',')) {
    std::string_view rdn = StripWhitespace(piece);
    if (rdn.empty()) {
      return Status::InvalidArgument("empty RDN in DN '" + std::string(text) +
                                     "'");
    }
    size_t eq = rdn.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("RDN '" + std::string(rdn) +
                                     "' is not of the form attr=value");
    }
    dn.rdns_.emplace_back(rdn);
  }
  return dn;
}

const std::string& DistinguishedName::Leaf() const {
  static const std::string* empty = new std::string();
  return rdns_.empty() ? *empty : rdns_.front();
}

DistinguishedName DistinguishedName::Parent() const {
  DistinguishedName parent;
  if (rdns_.size() > 1) {
    parent.rdns_.assign(rdns_.begin() + 1, rdns_.end());
  }
  return parent;
}

DistinguishedName DistinguishedName::Child(std::string rdn) const {
  DistinguishedName child;
  child.rdns_.reserve(rdns_.size() + 1);
  child.rdns_.push_back(std::move(rdn));
  child.rdns_.insert(child.rdns_.end(), rdns_.begin(), rdns_.end());
  return child;
}

std::string DistinguishedName::ToString() const {
  std::vector<std::string> copy = rdns_;
  return Join(copy, ",");
}

bool DistinguishedName::Equals(const DistinguishedName& other) const {
  if (rdns_.size() != other.rdns_.size()) return false;
  for (size_t i = 0; i < rdns_.size(); ++i) {
    if (!EqualsIgnoreCase(rdns_[i], other.rdns_[i])) return false;
  }
  return true;
}

Result<EntryId> ResolveDn(const Directory& directory,
                          const DistinguishedName& dn) {
  if (dn.IsEmpty()) {
    return Status::InvalidArgument("cannot resolve the empty DN");
  }
  EntryId current = kInvalidEntryId;  // start above the roots
  const std::vector<std::string>& rdns = dn.rdns();
  for (auto it = rdns.rbegin(); it != rdns.rend(); ++it) {
    current = directory.FindChildByRdn(current, *it);
    if (current == kInvalidEntryId) {
      return Status::NotFound("no entry named '" + dn.ToString() + "'");
    }
  }
  return current;
}

Result<DistinguishedName> DnOf(const Directory& directory, EntryId id) {
  if (!directory.IsAlive(id)) {
    return Status::NotFound("entry " + std::to_string(id) + " is not alive");
  }
  DistinguishedName dn;
  EntryId current = id;
  std::string text;
  bool first = true;
  while (current != kInvalidEntryId) {
    if (!first) text += ",";
    text += directory.entry(current).rdn();
    first = false;
    current = directory.entry(current).parent();
  }
  return DistinguishedName::Parse(text);
}

}  // namespace ldapbound
