#ifndef LDAPBOUND_LDAP_LDIF_H_
#define LDAPBOUND_LDAP_LDIF_H_

#include <string>
#include <string_view>

#include "model/directory.h"
#include "util/result.h"

namespace ldapbound {

/// Loads LDIF-formatted text into `directory`, returning the number of
/// entries created.
///
/// Supported LDIF subset:
///  - records separated by blank lines, each starting with a `dn:` line;
///  - `attr: value` lines; repeated attributes give multiple values. Only
///    the single RFC 2849 FILL space after the colon is consumed — any
///    further leading or trailing whitespace is part of the value;
///  - continuation lines (leading space) extend the previous value — or
///    the previous comment, when that is what precedes them;
///  - `#` comment lines (foldable like any other line);
///  - `objectClass:` values become class memberships.
///
/// Records may appear in any order: a record whose parent is not loaded
/// yet is deferred and resolved once the parent exists (parents of
/// missing intermediate DNs are an error, reported with the record's
/// line number). Parent-before-child files create entries in exactly the
/// file order. Values are parsed according to each attribute's declared
/// type in the directory's vocabulary; unknown attributes are interned as
/// string-typed.
Result<size_t> LoadLdif(std::string_view text, Directory* directory);

/// Renders the directory as LDIF, entries in preorder (parents first), so
/// the output round-trips through LoadLdif.
std::string WriteLdif(const Directory& directory);

}  // namespace ldapbound

#endif  // LDAPBOUND_LDAP_LDIF_H_
