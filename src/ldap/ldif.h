#ifndef LDAPBOUND_LDAP_LDIF_H_
#define LDAPBOUND_LDAP_LDIF_H_

#include <string>
#include <string_view>

#include "model/directory.h"
#include "util/result.h"

namespace ldapbound {

/// Loads LDIF-formatted text into `directory`, returning the number of
/// entries created.
///
/// Supported LDIF subset:
///  - records separated by blank lines, each starting with a `dn:` line;
///  - `attr: value` lines; repeated attributes give multiple values;
///  - continuation lines (leading space) extend the previous value;
///  - `#` comment lines;
///  - `objectClass:` values become class memberships.
///
/// Records must appear parent-before-child (the conventional LDIF order);
/// a record whose parent DN has no entry yet is an error. Values are parsed
/// according to each attribute's declared type in the directory's
/// vocabulary; unknown attributes are interned as string-typed.
Result<size_t> LoadLdif(std::string_view text, Directory* directory);

/// Renders the directory as LDIF, entries in preorder (parents first), so
/// the output round-trips through LoadLdif.
std::string WriteLdif(const Directory& directory);

}  // namespace ldapbound

#endif  // LDAPBOUND_LDAP_LDIF_H_
