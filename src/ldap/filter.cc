#include "ldap/filter.h"

#include <charconv>

#include "util/string_util.h"

namespace ldapbound {

namespace {

/// Matcher that matches no entry: LDAP's "Undefined evaluates to FALSE"
/// result for items over unknown attributes or classes.
class NothingMatcher : public Matcher {
 public:
  bool Matches(const Entry&) const override { return false; }
  std::string ToString(const Vocabulary&) const override { return "(false)"; }
};

class FilterParser {
 public:
  FilterParser(std::string_view text, const Vocabulary& vocab)
      : text_(text), vocab_(vocab) {}

  Result<MatcherPtr> Run() {
    LDAPBOUND_ASSIGN_OR_RETURN(MatcherPtr m, Filter());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after filter");
    }
    return m;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("filter position " + std::to_string(pos_) +
                                   ": " + msg);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Result<MatcherPtr> Filter() {
    if (!Eat('(')) return Error("expected '('");
    LDAPBOUND_ASSIGN_OR_RETURN(MatcherPtr m, FilterComp());
    if (!Eat(')')) return Error("expected ')'");
    return m;
  }

  Result<MatcherPtr> FilterComp() {
    char c = Peek();
    if (c == '&' || c == '|') {
      ++pos_;
      std::vector<MatcherPtr> operands;
      while (Peek() == '(') {
        LDAPBOUND_ASSIGN_OR_RETURN(MatcherPtr m, Filter());
        operands.push_back(std::move(m));
      }
      if (operands.empty()) return Error("empty filter list");
      return c == '&' ? MatchAnd(std::move(operands))
                      : MatchOr(std::move(operands));
    }
    if (c == '!') {
      ++pos_;
      LDAPBOUND_ASSIGN_OR_RETURN(MatcherPtr m, Filter());
      return MatchNot(std::move(m));
    }
    return Item();
  }

  Result<MatcherPtr> Item() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '=' && text_[pos_] != '>' &&
           text_[pos_] != '<' && text_[pos_] != ')') {
      ++pos_;
    }
    std::string_view attr_name =
        StripWhitespace(text_.substr(start, pos_ - start));
    if (attr_name.empty()) return Error("expected attribute name");

    // Operator: = | >= | <=
    bool ge = false;
    bool le = false;
    if (pos_ < text_.size() && (text_[pos_] == '>' || text_[pos_] == '<')) {
      ge = text_[pos_] == '>';
      le = !ge;
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] != '=') {
      return Error("expected '=' after attribute name");
    }
    ++pos_;

    size_t vstart = pos_;
    while (pos_ < text_.size() && text_[pos_] != ')') ++pos_;
    std::string value(StripWhitespace(text_.substr(vstart, pos_ - vstart)));

    if (ge || le) {
      auto attr = vocab_.FindAttribute(attr_name);
      if (!attr.ok()) return NothingFilter();
      int64_t bound = 0;
      const char* b = value.data();
      auto [p, ec] = std::from_chars(b, b + value.size(), bound);
      if (ec != std::errc() || p != b + value.size()) {
        return Error("'" + value + "' is not an integer");
      }
      return MatcherPtr(std::make_shared<CompareMatcher>(
          *attr,
          ge ? CompareMatcher::Op::kGreaterOrEqual
             : CompareMatcher::Op::kLessOrEqual,
          bound));
    }

    // objectClass equality compiles to a class-membership test.
    if (EqualsIgnoreCase(attr_name, "objectClass") &&
        value.find('*') == std::string::npos) {
      auto cls = vocab_.FindClass(value);
      if (!cls.ok()) return NothingFilter();
      return MatchClass(*cls);
    }

    auto attr = vocab_.FindAttribute(attr_name);
    if (!attr.ok()) return NothingFilter();

    if (value == "*") return MatchAttrPresent(*attr);
    if (value.find('*') != std::string::npos) {
      if (vocab_.AttributeType(*attr) != ValueType::kString) {
        return Error("substring match requires a string attribute");
      }
      return MatcherPtr(std::make_shared<SubstringMatcher>(*attr, value));
    }
    auto parsed = Value::Parse(vocab_.AttributeType(*attr), value);
    if (!parsed.ok()) return parsed.status();
    return MatchAttrEquals(*attr, std::move(*parsed));
  }

  static Result<MatcherPtr> NothingFilter() {
    return MatcherPtr(std::make_shared<NothingMatcher>());
  }

  std::string_view text_;
  const Vocabulary& vocab_;
  size_t pos_ = 0;
};

}  // namespace

SubstringMatcher::SubstringMatcher(AttributeId attr, std::string pattern)
    : attr_(attr), pattern_(std::move(pattern)) {
  anchored_front_ = !pattern_.empty() && pattern_.front() != '*';
  anchored_back_ = !pattern_.empty() && pattern_.back() != '*';
  for (std::string_view piece : Split(pattern_, '*')) {
    if (!piece.empty()) pieces_.emplace_back(piece);
  }
}

namespace {

// True if `s` matches the wildcard pattern decomposed into `pieces`:
// anchored pieces at front/back, remaining pieces greedily in between.
bool WildcardMatch(std::string_view s, const std::vector<std::string>& pieces,
                   bool anchored_front, bool anchored_back) {
  if (pieces.empty()) return true;  // pattern was all '*'
  size_t first_middle = 0;
  size_t last_middle = pieces.size();
  size_t at = 0;
  size_t limit = s.size();
  if (anchored_front) {
    if (!StartsWith(s, pieces.front())) return false;
    at = pieces.front().size();
    first_middle = 1;
  }
  if (anchored_back && last_middle > first_middle) {
    const std::string& last = pieces.back();
    if (limit < at + last.size()) return false;
    if (s.substr(limit - last.size()) != last) return false;
    limit -= last.size();
    --last_middle;
  }
  for (size_t i = first_middle; i < last_middle; ++i) {
    const std::string& piece = pieces[i];
    size_t found = s.substr(0, limit).find(piece, at);
    if (found == std::string_view::npos) return false;
    at = found + piece.size();
  }
  return true;
}

}  // namespace

bool SubstringMatcher::Matches(const Entry& entry) const {
  for (const Value& v : entry.GetValues(attr_)) {
    if (!v.is_string()) continue;
    if (WildcardMatch(v.AsString(), pieces_, anchored_front_,
                      anchored_back_)) {
      return true;
    }
  }
  return false;
}

std::string SubstringMatcher::ToString(const Vocabulary& vocab) const {
  return vocab.AttributeName(attr_) + "=" + pattern_;
}

bool CompareMatcher::Matches(const Entry& entry) const {
  for (const Value& v : entry.GetValues(attr_)) {
    if (!v.is_integer()) continue;
    int64_t x = v.AsInteger();
    if (op_ == Op::kGreaterOrEqual ? x >= bound_ : x <= bound_) return true;
  }
  return false;
}

std::string CompareMatcher::ToString(const Vocabulary& vocab) const {
  return vocab.AttributeName(attr_) +
         (op_ == Op::kGreaterOrEqual ? ">=" : "<=") + std::to_string(bound_);
}

Result<MatcherPtr> ParseFilter(std::string_view text,
                               const Vocabulary& vocab) {
  return FilterParser(text, vocab).Run();
}

}  // namespace ldapbound
