#include "ldap/ldif.h"

#include <algorithm>
#include <vector>

#include "ldap/dn.h"
#include "util/base64.h"
#include "util/string_util.h"

namespace ldapbound {

namespace {

struct Record {
  size_t line = 0;  // 1-based line number of the dn: line
  std::string dn;
  std::vector<std::pair<std::string, std::string>> values;
};

Status LdifError(size_t line, const std::string& msg) {
  return Status::InvalidArgument("LDIF line " + std::to_string(line) + ": " +
                                 msg);
}

// Splits the text into records, handling comments and continuations.
Result<std::vector<Record>> Tokenize(std::string_view text) {
  std::vector<Record> records;
  Record current;
  bool in_record = false;
  // (attribute, value) currently being accumulated (for continuations).
  std::string pending_attr;
  std::string pending_value;
  bool pending_base64 = false;
  size_t pending_line = 0;

  auto flush_pending = [&]() -> Status {
    if (pending_attr.empty()) return Status::OK();
    std::string value = pending_value;
    if (pending_base64) {
      auto decoded = Base64Decode(value);
      if (!decoded.ok()) {
        return LdifError(pending_line, decoded.status().message());
      }
      value = *decoded;
    }
    if (EqualsIgnoreCase(pending_attr, "dn")) {
      current.dn = value;
      current.line = pending_line;
    } else {
      current.values.emplace_back(pending_attr, value);
    }
    pending_attr.clear();
    pending_value.clear();
    pending_base64 = false;
    return Status::OK();
  };
  auto flush_record = [&]() -> Status {
    LDAPBOUND_RETURN_IF_ERROR(flush_pending());
    if (!in_record) return Status::OK();
    if (current.dn.empty()) {
      return LdifError(current.line, "record without dn: line");
    }
    records.push_back(std::move(current));
    current = Record{};
    in_record = false;
    return Status::OK();
  };

  size_t number = 0;
  // Whether the previous line was a comment (or a comment's continuation):
  // RFC 2849 folds a leading-space line into the *previous* line, so a
  // continuation after a comment extends the comment — it must be skipped,
  // not glued onto a pending value.
  bool in_comment = false;
  for (std::string_view raw : Split(text, '\n')) {
    ++number;
    if (!raw.empty() && raw.back() == '\r') raw.remove_suffix(1);
    if (!raw.empty() && raw[0] == '#') {
      in_comment = true;
      continue;
    }
    if (StripWhitespace(raw).empty()) {
      in_comment = false;
      LDAPBOUND_RETURN_IF_ERROR(flush_record());
      continue;
    }
    if (raw[0] == ' ') {
      if (in_comment) continue;  // folded comment line
      // Continuation of the previous value.
      if (pending_attr.empty()) {
        return LdifError(number, "continuation line with nothing to continue");
      }
      pending_value += raw.substr(1);
      continue;
    }
    in_comment = false;
    LDAPBOUND_RETURN_IF_ERROR(flush_pending());
    size_t colon = raw.find(':');
    if (colon == std::string_view::npos) {
      return LdifError(number, "expected 'attr: value'");
    }
    pending_attr = std::string(StripWhitespace(raw.substr(0, colon)));
    std::string_view rest = raw.substr(colon + 1);
    pending_base64 = false;
    if (!rest.empty() && rest[0] == ':') {
      pending_base64 = true;  // "attr:: <base64>"
      rest.remove_prefix(1);
    } else if (!rest.empty() && rest[0] == '<') {
      return LdifError(number, "URL-valued attributes (attr:< ...) are not "
                               "supported");
    }
    if (pending_base64) {
      // Base64 payloads carry no significant whitespace; stay lenient.
      pending_value = std::string(StripWhitespace(rest));
    } else {
      // RFC 2849 value-spec: consume the single FILL space after the
      // colon and nothing else — leading/trailing whitespace beyond it is
      // part of the value (WriteLdif base64-escapes such values, but
      // foreign LDIF may spell them out).
      if (!rest.empty() && rest[0] == ' ') rest.remove_prefix(1);
      pending_value = std::string(rest);
    }
    pending_line = number;
    if (pending_attr.empty()) return LdifError(number, "empty attribute name");
    in_record = true;
    if (current.line == 0) current.line = number;
  }
  LDAPBOUND_RETURN_IF_ERROR(flush_record());
  return records;
}

}  // namespace

Result<size_t> LoadLdif(std::string_view text, Directory* directory) {
  LDAPBOUND_ASSIGN_OR_RETURN(std::vector<Record> records, Tokenize(text));

  // Records may appear in any order (RFC 2849 does not require
  // parent-before-child). First pass: file order — a well-ordered file
  // creates its entries exactly as before (same EntryId assignment);
  // records whose parent is not resolvable yet are deferred. Second pass:
  // the deferred records sorted by DN depth (stable, so siblings keep
  // file order) — each parent has strictly smaller depth, so one sweep
  // reaches the fixed point; anything still unresolved reports its
  // original line.
  struct ParsedRecord {
    Record* record;
    DistinguishedName dn;
  };
  std::vector<ParsedRecord> deferred;
  size_t created = 0;
  auto add_entry = [&](Record& record, const DistinguishedName& dn,
                       EntryId parent) -> Status {
    EntrySpec spec;
    spec.rdn = dn.Leaf();
    spec.values = std::move(record.values);
    auto id = directory->AddEntryFromSpec(parent, spec);
    if (!id.ok()) return LdifError(record.line, id.status().message());
    ++created;
    return Status::OK();
  };

  for (Record& record : records) {
    auto dn = DistinguishedName::Parse(record.dn);
    if (!dn.ok()) return LdifError(record.line, dn.status().message());
    DistinguishedName parent_dn = dn->Parent();
    EntryId parent = kInvalidEntryId;
    if (!parent_dn.IsEmpty()) {
      auto resolved = ResolveDn(*directory, parent_dn);
      if (!resolved.ok()) {
        deferred.push_back({&record, std::move(*dn)});
        continue;
      }
      parent = *resolved;
    }
    LDAPBOUND_RETURN_IF_ERROR(add_entry(record, *dn, parent));
  }

  std::stable_sort(deferred.begin(), deferred.end(),
                   [](const ParsedRecord& a, const ParsedRecord& b) {
                     return a.dn.Depth() < b.dn.Depth();
                   });
  for (ParsedRecord& parsed : deferred) {
    DistinguishedName parent_dn = parsed.dn.Parent();
    auto resolved = ResolveDn(*directory, parent_dn);
    if (!resolved.ok()) {
      return LdifError(parsed.record->line,
                       "parent entry '" + parent_dn.ToString() +
                           "' does not exist");
    }
    LDAPBOUND_RETURN_IF_ERROR(add_entry(*parsed.record, parsed.dn, *resolved));
  }
  return created;
}

std::string WriteLdif(const Directory& directory) {
  std::string out;
  const Vocabulary& vocab = directory.vocab();
  auto emit = [&out](const std::string& attr, const std::string& value) {
    if (IsLdifSafe(value)) {
      out += attr + ": " + value + "\n";
    } else {
      out += attr + ":: " + Base64Encode(value) + "\n";
    }
  };
  // Tree walk in preorder (roots in insertion order, children in sibling
  // order) without touching the dense index cache: export is a const
  // read, and a stale cache may only be materialized single-threaded.
  std::vector<EntryId> order;
  order.reserve(directory.NumEntries());
  for (EntryId root : directory.roots()) {
    for (EntryId id : directory.SubtreeEntries(root)) order.push_back(id);
  }
  for (EntryId id : order) {
    const Entry& e = directory.entry(id);
    auto dn = DnOf(directory, id);
    out += "dn: " + dn->ToString() + "\n";
    for (ClassId c : e.classes()) {
      out += "objectClass: " + vocab.ClassName(c) + "\n";
    }
    for (const AttributeValue& av : e.values()) {
      emit(vocab.AttributeName(av.attribute), av.value.ToString());
    }
    out += "\n";
  }
  return out;
}

}  // namespace ldapbound
