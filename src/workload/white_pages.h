#ifndef LDAPBOUND_WORKLOAD_WHITE_PAGES_H_
#define LDAPBOUND_WORKLOAD_WHITE_PAGES_H_

#include <memory>

#include "model/directory.h"
#include "schema/directory_schema.h"

namespace ldapbound {

/// The corporate white-pages bounding-schema of the paper's running
/// example: the class schema of Figure 2 (core tree top / orgGroup /
/// organization / orgUnit / person / staffMember / researcher with
/// auxiliaries online, manager, secretary, consultant, facultyMember), an
/// attribute schema per §1.2/§2.2 (person requires name and uid, ...), and
/// a structure schema in the spirit of Figure 3, including the elements the
/// text states explicitly: orgGroup —>> person⇓, person —>∤ top, orgUnit⇓.
Result<DirectorySchema> MakeWhitePagesSchema(
    std::shared_ptr<Vocabulary> vocab);

/// The exact directory instance of Figure 1 (att / attLabs / armstrong /
/// databases / laks / suciu), legal w.r.t. MakeWhitePagesSchema.
Result<Directory> MakeFigure1Instance(const DirectorySchema& schema);

/// A scalable legal white-pages instance for benchmarks.
struct WhitePagesOptions {
  size_t org_unit_fanout = 4;   ///< child orgUnits per unit
  size_t org_unit_depth = 2;    ///< levels of orgUnits under the organization
  size_t persons_per_unit = 8;  ///< person entries per orgUnit
  uint64_t seed = 42;           ///< drives class/attribute variety
};

Result<Directory> MakeWhitePagesInstance(const DirectorySchema& schema,
                                         const WhitePagesOptions& options);

}  // namespace ldapbound

#endif  // LDAPBOUND_WORKLOAD_WHITE_PAGES_H_
