#ifndef LDAPBOUND_WORKLOAD_RANDOM_GEN_H_
#define LDAPBOUND_WORKLOAD_RANDOM_GEN_H_

#include <memory>
#include <vector>

#include "model/directory.h"
#include "schema/directory_schema.h"

namespace ldapbound {

/// Random forest of entries over a palette of classes — NOT necessarily
/// legal w.r.t. any schema. Property tests use these to compare the
/// query-based structure checker against the naive pairwise oracle, and to
/// compare incremental verdicts against full rechecks.
struct RandomForestOptions {
  size_t num_entries = 100;
  /// Probability that an entry becomes a new root (otherwise its parent is
  /// picked uniformly among existing entries).
  double root_probability = 0.05;
  /// Maximum classes per entry (at least 1 is always assigned).
  size_t max_classes_per_entry = 3;
  uint64_t seed = 1;
};

Directory MakeRandomForest(std::shared_ptr<Vocabulary> vocab,
                           const std::vector<ClassId>& palette,
                           const RandomForestOptions& options);

/// Random bounding-schema over a random single-inheritance tree — used by
/// consistency property tests (soundness sampling and witness
/// cross-validation) and by the consistency benchmark.
struct RandomSchemaOptions {
  size_t num_classes = 8;            ///< core classes besides top
  size_t num_required_classes = 2;   ///< |Cr|
  size_t num_required_edges = 6;     ///< |Er|
  size_t num_forbidden_edges = 3;    ///< |Ef|
  uint64_t seed = 1;
};

Result<DirectorySchema> MakeRandomSchema(std::shared_ptr<Vocabulary> vocab,
                                         const RandomSchemaOptions& options);

}  // namespace ldapbound

#endif  // LDAPBOUND_WORKLOAD_RANDOM_GEN_H_
