#include "workload/random_gen.h"

#include <algorithm>
#include <random>
#include <string>

namespace ldapbound {

Directory MakeRandomForest(std::shared_ptr<Vocabulary> vocab,
                           const std::vector<ClassId>& palette,
                           const RandomForestOptions& options) {
  Directory directory(std::move(vocab));
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<size_t> pick_class(0, palette.size() - 1);
  std::uniform_int_distribution<size_t> pick_count(
      1, std::max<size_t>(1, options.max_classes_per_entry));

  std::vector<EntryId> created;
  created.reserve(options.num_entries);
  for (size_t i = 0; i < options.num_entries; ++i) {
    EntryId parent = kInvalidEntryId;
    if (!created.empty() && coin(rng) >= options.root_probability) {
      std::uniform_int_distribution<size_t> pick_parent(0,
                                                        created.size() - 1);
      parent = created[pick_parent(rng)];
    }
    std::vector<ClassId> classes;
    size_t count = pick_count(rng);
    for (size_t c = 0; c < count; ++c) classes.push_back(palette[pick_class(rng)]);
    EntryId id = directory
                     .AddEntry(parent, "cn=r" + std::to_string(i),
                               std::move(classes), {})
                     .value();
    created.push_back(id);
  }
  return directory;
}

Result<DirectorySchema> MakeRandomSchema(std::shared_ptr<Vocabulary> vocab,
                                         const RandomSchemaOptions& options) {
  std::mt19937_64 rng(options.seed);
  DirectorySchema schema(std::move(vocab));
  Vocabulary& v = schema.mutable_vocab();
  ClassSchema& classes = schema.mutable_classes();
  StructureSchema& structure = schema.mutable_structure();

  std::vector<ClassId> pool{classes.top_class()};
  for (size_t i = 0; i < options.num_classes; ++i) {
    ClassId cls = v.InternClass("rc" + std::to_string(options.seed) + "_" +
                                std::to_string(i));
    std::uniform_int_distribution<size_t> pick_parent(0, pool.size() - 1);
    LDAPBOUND_RETURN_IF_ERROR(classes.AddCoreClass(cls, pool[pick_parent(rng)]));
    pool.push_back(cls);
  }
  std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
  std::uniform_int_distribution<int> pick_axis(0, 3);
  std::uniform_int_distribution<int> pick_down(0, 1);

  for (size_t i = 0; i < options.num_required_classes; ++i) {
    structure.RequireClass(pool[pick(rng)]);
  }
  for (size_t i = 0; i < options.num_required_edges; ++i) {
    structure.Require(pool[pick(rng)], static_cast<Axis>(pick_axis(rng)),
                      pool[pick(rng)]);
  }
  for (size_t i = 0; i < options.num_forbidden_edges; ++i) {
    Axis axis = pick_down(rng) == 0 ? Axis::kChild : Axis::kDescendant;
    LDAPBOUND_RETURN_IF_ERROR(
        structure.Forbid(pool[pick(rng)], axis, pool[pick(rng)]));
  }
  return schema;
}

}  // namespace ldapbound
