#include "workload/white_pages.h"

#include <random>
#include <string>

#include "schema/schema_format.h"

namespace ldapbound {

namespace {

constexpr char kWhitePagesSchemaText[] = R"(
# Corporate white-pages bounding-schema (Figures 2 and 3).
attribute o string
attribute ou string
attribute uid string
attribute name string
attribute uri string
attribute location string
attribute mail string

class orgGroup : top {
  aux online
}
class organization : orgGroup {
  require o
  allow uri
}
class orgUnit : orgGroup {
  require ou
  allow location
}
class person : top {
  require name, uid
  aux online
}
class staffMember : person {
  aux manager, secretary, consultant
}
class researcher : person {
  aux manager, consultant, facultyMember
}

auxclass online {
  allow mail
}
auxclass manager {
}
auxclass secretary {
}
auxclass consultant {
}
auxclass facultyMember {
}

structure {
  require-class organization
  require-class orgUnit
  require-class person
  require orgGroup descendant person
  require organization child orgUnit
  require orgUnit ancestor organization
  require person ancestor organization
  forbid person child top
  forbid orgUnit descendant organization
}
)";

}  // namespace

Result<DirectorySchema> MakeWhitePagesSchema(
    std::shared_ptr<Vocabulary> vocab) {
  return ParseDirectorySchema(kWhitePagesSchemaText, std::move(vocab));
}

Result<Directory> MakeFigure1Instance(const DirectorySchema& schema) {
  Directory directory(schema.vocab_ptr());

  EntrySpec att;
  att.rdn = "o=att";
  att.classes = {"organization", "orgGroup", "online", "top"};
  att.values = {{"o", "att"}, {"uri", "http://www.att.com/"}};
  LDAPBOUND_ASSIGN_OR_RETURN(EntryId att_id,
                             directory.AddEntryFromSpec(kInvalidEntryId, att));

  EntrySpec att_labs;
  att_labs.rdn = "ou=attLabs";
  att_labs.classes = {"orgUnit", "orgGroup", "top"};
  att_labs.values = {{"ou", "attLabs"}, {"location", "FP"}};
  LDAPBOUND_ASSIGN_OR_RETURN(EntryId att_labs_id,
                             directory.AddEntryFromSpec(att_id, att_labs));

  EntrySpec armstrong;
  armstrong.rdn = "uid=armstrong";
  armstrong.classes = {"staffMember", "person", "top"};
  armstrong.values = {{"uid", "armstrong"}, {"name", "m armstrong"}};
  LDAPBOUND_RETURN_IF_ERROR(
      directory.AddEntryFromSpec(att_labs_id, armstrong).status());

  EntrySpec databases;
  databases.rdn = "ou=databases";
  databases.classes = {"orgUnit", "orgGroup", "top"};
  databases.values = {{"ou", "databases"}};
  LDAPBOUND_ASSIGN_OR_RETURN(EntryId databases_id,
                             directory.AddEntryFromSpec(att_labs_id,
                                                        databases));

  EntrySpec laks;
  laks.rdn = "uid=laks";
  laks.classes = {"researcher", "facultyMember", "person", "online", "top"};
  laks.values = {{"uid", "laks"},
                 {"name", "laks lakshmanan"},
                 {"mail", "laks@cs.concordia.ca"},
                 {"mail", "laks@cse.iitb.ernet.in"}};
  LDAPBOUND_RETURN_IF_ERROR(
      directory.AddEntryFromSpec(databases_id, laks).status());

  EntrySpec suciu;
  suciu.rdn = "uid=suciu";
  suciu.classes = {"researcher", "person", "top"};
  suciu.values = {{"uid", "suciu"}, {"name", "dan suciu"}};
  LDAPBOUND_RETURN_IF_ERROR(
      directory.AddEntryFromSpec(databases_id, suciu).status());

  return directory;
}

Result<Directory> MakeWhitePagesInstance(const DirectorySchema& schema,
                                         const WhitePagesOptions& options) {
  Directory directory(schema.vocab_ptr());
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<int> persona(0, 5);

  EntrySpec org;
  org.rdn = "o=acme";
  org.classes = {"organization", "orgGroup", "top"};
  org.values = {{"o", "acme"}};
  LDAPBOUND_ASSIGN_OR_RETURN(EntryId root,
                             directory.AddEntryFromSpec(kInvalidEntryId, org));

  size_t unit_counter = 0;
  size_t person_counter = 0;

  // Recursive orgUnit tree; every unit gets persons so that the
  // orgGroup —>> person requirement holds at every level.
  struct Frame {
    EntryId parent;
    size_t depth;
  };
  std::vector<Frame> stack{{root, 0}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    if (frame.depth >= options.org_unit_depth) continue;
    for (size_t i = 0; i < options.org_unit_fanout; ++i) {
      std::string name = "unit" + std::to_string(unit_counter++);
      EntrySpec unit;
      unit.rdn = "ou=" + name;
      unit.classes = {"orgUnit", "orgGroup", "top"};
      unit.values = {{"ou", name}};
      LDAPBOUND_ASSIGN_OR_RETURN(EntryId unit_id,
                                 directory.AddEntryFromSpec(frame.parent,
                                                            unit));
      for (size_t p = 0; p < options.persons_per_unit; ++p) {
        std::string uid = "p" + std::to_string(person_counter++);
        EntrySpec person;
        person.rdn = "uid=" + uid;
        person.values = {{"uid", uid}, {"name", "employee " + uid}};
        switch (persona(rng)) {
          case 0:
            person.classes = {"researcher", "person", "top", "online"};
            person.values.emplace_back("mail", uid + "@acme.example");
            break;
          case 1:
            person.classes = {"researcher", "facultyMember", "person", "top"};
            break;
          case 2:
            person.classes = {"staffMember", "manager", "person", "top"};
            break;
          case 3:
            person.classes = {"staffMember", "person", "top", "online"};
            person.values.emplace_back("mail", uid + "@acme.example");
            break;
          default:
            person.classes = {"person", "top"};
            break;
        }
        LDAPBOUND_RETURN_IF_ERROR(
            directory.AddEntryFromSpec(unit_id, person).status());
      }
      stack.push_back({unit_id, frame.depth + 1});
    }
  }

  // The organization itself needs a person descendant even with depth 0.
  if (options.org_unit_depth == 0 || options.org_unit_fanout == 0) {
    EntrySpec unit;
    unit.rdn = "ou=unitLast";
    unit.classes = {"orgUnit", "orgGroup", "top"};
    unit.values = {{"ou", "unitLast"}};
    LDAPBOUND_ASSIGN_OR_RETURN(EntryId unit_id,
                               directory.AddEntryFromSpec(root, unit));
    EntrySpec person;
    person.rdn = "uid=pLast";
    person.classes = {"person", "top"};
    person.values = {{"uid", "pLast"}, {"name", "employee pLast"}};
    LDAPBOUND_RETURN_IF_ERROR(
        directory.AddEntryFromSpec(unit_id, person).status());
  }
  return directory;
}

}  // namespace ldapbound
