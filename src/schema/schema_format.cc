#include "schema/schema_format.h"

#include <algorithm>
#include <vector>

#include "util/string_util.h"

namespace ldapbound {

namespace {

// One logical line with its 1-based source line number (for error messages).
struct Line {
  size_t number;
  std::string_view text;
};

Status ParseError(size_t line, const std::string& msg) {
  return Status::InvalidArgument("schema line " + std::to_string(line) +
                                 ": " + msg);
}

// Strips a trailing comment and whitespace.
std::string_view CleanLine(std::string_view raw) {
  size_t hash = raw.find('#');
  if (hash != std::string_view::npos) raw = raw.substr(0, hash);
  return StripWhitespace(raw);
}

// Splits on whitespace into at most `max_parts` pieces (the last piece
// keeps the remainder).
std::vector<std::string_view> Words(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

// Comma-separated names after a keyword.
std::vector<std::string_view> NameList(std::string_view s) {
  std::vector<std::string_view> out;
  for (std::string_view piece : Split(s, ',')) {
    std::string_view name = StripWhitespace(piece);
    if (!name.empty()) out.push_back(name);
  }
  return out;
}

Result<Axis> ParseAxis(std::string_view word) {
  if (word == "child" || word == "->") return Axis::kChild;
  if (word == "descendant" || word == "->>") return Axis::kDescendant;
  if (word == "parent" || word == "<-") return Axis::kParent;
  if (word == "ancestor" || word == "<<-") return Axis::kAncestor;
  return Status::InvalidArgument("unknown axis '" + std::string(word) + "'");
}

// Parser state machine over the logical lines.
class Parser {
 public:
  Parser(std::string_view text, std::shared_ptr<Vocabulary> vocab)
      : schema_(std::move(vocab)) {
    size_t number = 0;
    for (std::string_view raw : Split(text, '\n')) {
      ++number;
      std::string_view clean = CleanLine(raw);
      if (!clean.empty()) lines_.push_back(Line{number, clean});
    }
  }

  Result<DirectorySchema> Run() && {
    while (pos_ < lines_.size()) {
      LDAPBOUND_RETURN_IF_ERROR(TopLevel());
    }
    LDAPBOUND_RETURN_IF_ERROR(schema_.Validate());
    return std::move(schema_);
  }

 private:
  Vocabulary& vocab() { return schema_.mutable_vocab(); }

  Status TopLevel() {
    const Line& line = lines_[pos_];
    std::vector<std::string_view> words = Words(line.text);
    if (words[0] == "attribute") {
      ++pos_;
      bool single = words.size() == 4 && words[3] == "single";
      if (words.size() != 3 && !single) {
        return ParseError(line.number,
                          "expected: attribute <name> <type> [single]");
      }
      auto type = ValueTypeFromString(words[2]);
      if (!type.ok()) return ParseError(line.number, type.status().message());
      auto id = vocab().DefineAttribute(words[1], *type, single);
      if (!id.ok()) return ParseError(line.number, id.status().message());
      return Status::OK();
    }
    if (words[0] == "key") {
      ++pos_;
      if (words.size() != 2) {
        return ParseError(line.number, "expected: key <attribute>");
      }
      schema_.AddKeyAttribute(vocab().InternAttribute(words[1]));
      return Status::OK();
    }
    if (words[0] == "class") return CoreClassBlock(line, words);
    if (words[0] == "auxclass") return AuxClassBlock(line, words);
    if (words[0] == "structure") return StructureBlock(line, words);
    return ParseError(
        line.number,
        "expected attribute/key/class/auxclass/structure, got '" +
            std::string(words[0]) + "'");
  }

  // "class <name> : <parent> {" ... "}"
  Status CoreClassBlock(const Line& header,
                        const std::vector<std::string_view>& words) {
    // Accepted shapes: class N : P {   |  class N:P {
    std::string name, parent;
    if (words.size() == 5 && words[2] == ":" && words[4] == "{") {
      name = std::string(words[1]);
      parent = std::string(words[3]);
    } else if (words.size() == 3 && words[2] == "{") {
      auto pieces = Split(words[1], ':');
      if (pieces.size() != 2) {
        return ParseError(header.number,
                          "expected: class <name> : <parent> {");
      }
      name = std::string(StripWhitespace(pieces[0]));
      parent = std::string(StripWhitespace(pieces[1]));
    } else {
      return ParseError(header.number, "expected: class <name> : <parent> {");
    }
    ClassId cls = vocab().InternClass(name);
    auto parent_id = vocab().FindClass(parent);
    if (!parent_id.ok() || !schema_.classes().IsCore(*parent_id)) {
      return ParseError(header.number, "parent class '" + parent +
                                           "' is not a previously declared "
                                           "core class");
    }
    Status st = schema_.mutable_classes().AddCoreClass(cls, *parent_id);
    if (!st.ok()) return ParseError(header.number, st.message());
    ++pos_;
    return ClassBody(cls, /*core=*/true);
  }

  // "auxclass <name> {" ... "}"
  Status AuxClassBlock(const Line& header,
                       const std::vector<std::string_view>& words) {
    if (words.size() != 3 || words[2] != "{") {
      return ParseError(header.number, "expected: auxclass <name> {");
    }
    ClassId cls = vocab().InternClass(words[1]);
    Status st = schema_.mutable_classes().AddAuxiliaryClass(cls);
    if (!st.ok()) return ParseError(header.number, st.message());
    ++pos_;
    return ClassBody(cls, /*core=*/false);
  }

  Status ClassBody(ClassId cls, bool core) {
    schema_.mutable_attributes().AddClass(cls);
    while (true) {
      if (pos_ >= lines_.size()) {
        return ParseError(lines_.back().number, "unterminated class block");
      }
      const Line& line = lines_[pos_++];
      if (line.text == "}") return Status::OK();
      std::vector<std::string_view> words = Words(line.text);
      std::string_view rest =
          StripWhitespace(line.text.substr(words[0].size()));
      if (words[0] == "require" || words[0] == "allow") {
        for (std::string_view attr_name : NameList(rest)) {
          AttributeId attr = vocab().InternAttribute(attr_name);
          if (words[0] == "require") {
            schema_.mutable_attributes().AddRequired(cls, attr);
          } else {
            schema_.mutable_attributes().AddAllowed(cls, attr);
          }
        }
        continue;
      }
      if (words[0] == "aux") {
        if (!core) {
          return ParseError(line.number,
                            "'aux' is only valid in core class blocks");
        }
        aux_refs_.push_back({line.number, cls, {}});
        for (std::string_view aux_name : NameList(rest)) {
          aux_refs_.back().names.emplace_back(aux_name);
        }
        continue;
      }
      return ParseError(line.number, "expected require/allow/aux/}");
    }
  }

  Status StructureBlock(const Line& header,
                        const std::vector<std::string_view>& words) {
    if (words.size() != 2 || words[1] != "{") {
      return ParseError(header.number, "expected: structure {");
    }
    // Aux references may point at auxclass blocks declared after the core
    // class; resolve them before structure parsing (conventionally the
    // structure block is last).
    LDAPBOUND_RETURN_IF_ERROR(ResolveAuxRefs());
    ++pos_;
    while (true) {
      if (pos_ >= lines_.size()) {
        return ParseError(lines_.back().number,
                          "unterminated structure block");
      }
      const Line& line = lines_[pos_++];
      if (line.text == "}") return Status::OK();
      std::vector<std::string_view> w = Words(line.text);
      if (w[0] == "require-class") {
        if (w.size() != 2) {
          return ParseError(line.number, "expected: require-class <class>");
        }
        auto cls = vocab().FindClass(w[1]);
        if (!cls.ok()) return ParseError(line.number, cls.status().message());
        schema_.mutable_structure().RequireClass(*cls);
        continue;
      }
      if (w[0] == "require" || w[0] == "forbid") {
        if (w.size() != 4) {
          return ParseError(line.number,
                            "expected: " + std::string(w[0]) +
                                " <class> <axis> <class>");
        }
        auto source = vocab().FindClass(w[1]);
        if (!source.ok()) {
          return ParseError(line.number, source.status().message());
        }
        auto axis = ParseAxis(w[2]);
        if (!axis.ok()) return ParseError(line.number, axis.status().message());
        auto target = vocab().FindClass(w[3]);
        if (!target.ok()) {
          return ParseError(line.number, target.status().message());
        }
        if (w[0] == "require") {
          schema_.mutable_structure().Require(*source, *axis, *target);
        } else {
          Status st = schema_.mutable_structure().Forbid(*source, *axis,
                                                         *target);
          if (!st.ok()) return ParseError(line.number, st.message());
        }
        continue;
      }
      return ParseError(line.number, "expected require-class/require/forbid/}");
    }
  }

  Status ResolveAuxRefs() {
    for (const AuxRef& ref : aux_refs_) {
      for (const std::string& name : ref.names) {
        auto aux = vocab().FindClass(name);
        if (!aux.ok() || !schema_.classes().IsAuxiliary(*aux)) {
          return ParseError(ref.line, "'" + name +
                                          "' is not a declared auxiliary "
                                          "class");
        }
        Status st = schema_.mutable_classes().AllowAuxiliary(ref.core, *aux);
        if (!st.ok()) return ParseError(ref.line, st.message());
      }
    }
    aux_refs_.clear();
    return Status::OK();
  }

  struct AuxRef {
    size_t line;
    ClassId core;
    std::vector<std::string> names;
  };

  DirectorySchema schema_;
  std::vector<Line> lines_;
  size_t pos_ = 0;
  std::vector<AuxRef> aux_refs_;
};

}  // namespace

Result<DirectorySchema> ParseDirectorySchema(
    std::string_view text, std::shared_ptr<Vocabulary> vocab) {
  return Parser(text, std::move(vocab)).Run();
}

std::string FormatDirectorySchema(const DirectorySchema& schema) {
  const Vocabulary& vocab = schema.vocab();
  const ClassSchema& classes = schema.classes();
  const AttributeSchema& attrs = schema.attributes();
  std::string out;

  for (AttributeId attr : attrs.Attributes()) {
    out += "attribute " + vocab.AttributeName(attr) + " " +
           std::string(ValueTypeToString(vocab.AttributeType(attr)));
    if (vocab.IsSingleValued(attr)) out += " single";
    out += "\n";
  }
  for (AttributeId attr : schema.key_attributes()) {
    out += "key " + vocab.AttributeName(attr) + "\n";
  }
  out += "\n";

  auto attr_lines = [&](ClassId cls) {
    const auto& required = attrs.Required(cls);
    if (!required.empty()) {
      std::vector<std::string> names;
      for (AttributeId a : required) names.push_back(vocab.AttributeName(a));
      out += "  require " + Join(names, ", ") + "\n";
    }
    std::vector<std::string> allowed_only;
    for (AttributeId a : attrs.Allowed(cls)) {
      if (!attrs.IsRequired(cls, a)) {
        allowed_only.push_back(vocab.AttributeName(a));
      }
    }
    if (!allowed_only.empty()) {
      out += "  allow " + Join(allowed_only, ", ") + "\n";
    }
  };

  // Emit core classes parent-before-child (preorder over the class tree).
  std::vector<ClassId> stack{classes.top_class()};
  while (!stack.empty()) {
    ClassId cls = stack.back();
    stack.pop_back();
    std::vector<ClassId> children = classes.ChildrenOf(cls);
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
    if (cls == classes.top_class()) continue;  // top is implicit
    out += "class " + vocab.ClassName(cls) + " : " +
           vocab.ClassName(classes.ParentOf(cls)) + " {\n";
    attr_lines(cls);
    const auto& aux = classes.AuxAllowed(cls);
    if (!aux.empty()) {
      std::vector<std::string> names;
      for (ClassId a : aux) names.push_back(vocab.ClassName(a));
      out += "  aux " + Join(names, ", ") + "\n";
    }
    out += "}\n";
  }

  for (ClassId cls : classes.AuxiliaryClasses()) {
    out += "auxclass " + vocab.ClassName(cls) + " {\n";
    attr_lines(cls);
    out += "}\n";
  }

  const StructureSchema& structure = schema.structure();
  out += "structure {\n";
  for (ClassId cls : structure.required_classes()) {
    out += "  require-class " + vocab.ClassName(cls) + "\n";
  }
  auto rel_line = [&](const StructuralRelationship& rel) {
    out += std::string("  ") + (rel.forbidden ? "forbid " : "require ") +
           vocab.ClassName(rel.source) + " " +
           std::string(AxisToWord(rel.axis)) + " " +
           vocab.ClassName(rel.target) + "\n";
  };
  for (const StructuralRelationship& rel : structure.required()) {
    rel_line(rel);
  }
  for (const StructuralRelationship& rel : structure.forbidden()) {
    rel_line(rel);
  }
  out += "}\n";
  return out;
}

}  // namespace ldapbound
