#include "schema/evolution.h"

namespace ldapbound {

std::string SchemaChange::ToString(const Vocabulary& vocab) const {
  auto cls_name = [&](ClassId c) {
    return c == kInvalidClassId ? std::string("?") : vocab.ClassName(c);
  };
  auto attr_name = [&](AttributeId a) {
    return a == kInvalidAttributeId ? std::string("?")
                                    : vocab.AttributeName(a);
  };
  switch (kind) {
    case Kind::kAddAllowedAttribute:
      return "allow attribute " + attr_name(attr) + " on " + cls_name(cls);
    case Kind::kAddAuxiliaryAllowance:
      return "allow auxiliary " + cls_name(other_cls) + " on " +
             cls_name(cls);
    case Kind::kAddCoreClass:
      return "add core class " + cls_name(other_cls) + " under " +
             cls_name(cls);
    case Kind::kAddAuxiliaryClass:
      return "add auxiliary class " + cls_name(other_cls);
    case Kind::kRemoveRequiredClass:
      return "drop required class " + cls_name(cls);
    case Kind::kRemoveRequiredEdge:
      return "drop required " + relationship.ToString(vocab);
    case Kind::kRemoveForbiddenEdge:
      return "drop forbidden " + relationship.ToString(vocab);
    case Kind::kRemoveRequiredAttribute:
      return "make attribute " + attr_name(attr) + " optional on " +
             cls_name(cls);
    case Kind::kAddRequiredAttribute:
      return "require attribute " + attr_name(attr) + " on " + cls_name(cls);
    case Kind::kAddRequiredClass:
      return "require class " + cls_name(cls);
    case Kind::kAddRequiredEdge:
      return "require " + relationship.ToString(vocab);
    case Kind::kAddForbiddenEdge:
      return "forbid " + relationship.ToString(vocab);
    case Kind::kAddKeyAttribute:
      return "declare key attribute " + attr_name(attr);
  }
  return "?";
}

bool IsLegalityPreserving(SchemaChange::Kind kind) {
  switch (kind) {
    case SchemaChange::Kind::kAddAllowedAttribute:
    case SchemaChange::Kind::kAddAuxiliaryAllowance:
    case SchemaChange::Kind::kAddCoreClass:
    case SchemaChange::Kind::kAddAuxiliaryClass:
    case SchemaChange::Kind::kRemoveRequiredClass:
    case SchemaChange::Kind::kRemoveRequiredEdge:
    case SchemaChange::Kind::kRemoveForbiddenEdge:
    case SchemaChange::Kind::kRemoveRequiredAttribute:
      return true;
    case SchemaChange::Kind::kAddRequiredAttribute:
    case SchemaChange::Kind::kAddRequiredClass:
    case SchemaChange::Kind::kAddRequiredEdge:
    case SchemaChange::Kind::kAddForbiddenEdge:
    case SchemaChange::Kind::kAddKeyAttribute:
      return false;
  }
  return false;
}

Status ApplySchemaChange(DirectorySchema* schema,
                         const SchemaChange& change) {
  const Vocabulary& vocab = schema->vocab();
  auto check_class = [&](ClassId cls) -> Status {
    if (cls >= vocab.num_classes() || !schema->classes().Contains(cls)) {
      return Status::NotFound("class is not part of the schema");
    }
    return Status::OK();
  };
  auto check_attr = [&](AttributeId attr) -> Status {
    if (attr >= vocab.num_attributes()) {
      return Status::OutOfRange("attribute id out of range");
    }
    return Status::OK();
  };

  switch (change.kind) {
    case SchemaChange::Kind::kAddAllowedAttribute:
      LDAPBOUND_RETURN_IF_ERROR(check_class(change.cls));
      LDAPBOUND_RETURN_IF_ERROR(check_attr(change.attr));
      schema->mutable_attributes().AddAllowed(change.cls, change.attr);
      return Status::OK();
    case SchemaChange::Kind::kAddAuxiliaryAllowance:
      return schema->mutable_classes().AllowAuxiliary(change.cls,
                                                      change.other_cls);
    case SchemaChange::Kind::kAddCoreClass:
      return schema->mutable_classes().AddCoreClass(change.other_cls,
                                                    change.cls);
    case SchemaChange::Kind::kAddAuxiliaryClass:
      return schema->mutable_classes().AddAuxiliaryClass(change.other_cls);
    case SchemaChange::Kind::kRemoveRequiredClass:
      return schema->mutable_structure().RemoveRequiredClass(change.cls);
    case SchemaChange::Kind::kRemoveRequiredEdge:
      return schema->mutable_structure().RemoveRequired(
          change.relationship.source, change.relationship.axis,
          change.relationship.target);
    case SchemaChange::Kind::kRemoveForbiddenEdge:
      return schema->mutable_structure().RemoveForbidden(
          change.relationship.source, change.relationship.axis,
          change.relationship.target);
    case SchemaChange::Kind::kRemoveRequiredAttribute:
      return schema->mutable_attributes().RemoveRequired(change.cls,
                                                         change.attr);
    case SchemaChange::Kind::kAddRequiredAttribute:
      LDAPBOUND_RETURN_IF_ERROR(check_class(change.cls));
      LDAPBOUND_RETURN_IF_ERROR(check_attr(change.attr));
      schema->mutable_attributes().AddRequired(change.cls, change.attr);
      return Status::OK();
    case SchemaChange::Kind::kAddRequiredClass:
      LDAPBOUND_RETURN_IF_ERROR(check_class(change.cls));
      if (!schema->classes().IsCore(change.cls)) {
        return Status::FailedPrecondition(
            "required classes must be core classes");
      }
      schema->mutable_structure().RequireClass(change.cls);
      return Status::OK();
    case SchemaChange::Kind::kAddRequiredEdge:
      LDAPBOUND_RETURN_IF_ERROR(check_class(change.relationship.source));
      LDAPBOUND_RETURN_IF_ERROR(check_class(change.relationship.target));
      schema->mutable_structure().Require(change.relationship.source,
                                          change.relationship.axis,
                                          change.relationship.target);
      return Status::OK();
    case SchemaChange::Kind::kAddForbiddenEdge:
      LDAPBOUND_RETURN_IF_ERROR(check_class(change.relationship.source));
      LDAPBOUND_RETURN_IF_ERROR(check_class(change.relationship.target));
      return schema->mutable_structure().Forbid(change.relationship.source,
                                                change.relationship.axis,
                                                change.relationship.target);
    case SchemaChange::Kind::kAddKeyAttribute:
      LDAPBOUND_RETURN_IF_ERROR(check_attr(change.attr));
      if (change.attr == vocab.objectclass_attr()) {
        return Status::FailedPrecondition(
            "objectClass cannot be a key attribute");
      }
      schema->AddKeyAttribute(change.attr);
      return Status::OK();
  }
  return Status::InvalidArgument("unknown schema change kind");
}

}  // namespace ldapbound
