#ifndef LDAPBOUND_SCHEMA_DIRECTORY_SCHEMA_H_
#define LDAPBOUND_SCHEMA_DIRECTORY_SCHEMA_H_

#include <memory>

#include "schema/attribute_schema.h"
#include "schema/class_schema.h"
#include "schema/structure_schema.h"

namespace ldapbound {

/// A bounding-schema `S = (A, H, S)` (Definition 2.5): the attribute
/// schema, the class schema and the structure schema, over a shared
/// vocabulary. The vocabulary must be the same object used by directories
/// validated against this schema, so ids are directly comparable.
class DirectorySchema {
 public:
  explicit DirectorySchema(std::shared_ptr<Vocabulary> vocab)
      : vocab_(std::move(vocab)), classes_(vocab_->top_class()) {}

  DirectorySchema(const DirectorySchema&) = delete;
  DirectorySchema& operator=(const DirectorySchema&) = delete;
  DirectorySchema(DirectorySchema&&) = default;
  DirectorySchema& operator=(DirectorySchema&&) = default;

  const Vocabulary& vocab() const { return *vocab_; }
  Vocabulary& mutable_vocab() { return *vocab_; }
  const std::shared_ptr<Vocabulary>& vocab_ptr() const { return vocab_; }

  const AttributeSchema& attributes() const { return attributes_; }
  AttributeSchema& mutable_attributes() { return attributes_; }

  const ClassSchema& classes() const { return classes_; }
  ClassSchema& mutable_classes() { return classes_; }

  const StructureSchema& structure() const { return structure_; }
  StructureSchema& mutable_structure() { return structure_; }

  /// Declares `attr` a key: its values must be unique across ALL entries
  /// of the directory. Per §6.1, directory keys are global — the loose
  /// notion of object class means uniqueness cannot be scoped to a class.
  void AddKeyAttribute(AttributeId attr);

  /// Key attributes, ascending.
  const std::vector<AttributeId>& key_attributes() const { return keys_; }

  /// Well-formedness (not consistency — see ConsistencyChecker for that):
  ///  - classes mentioned by the attribute schema are in the class schema;
  ///  - structure-schema classes are *core* classes (Definition 2.4);
  ///  - all ids are within the vocabulary's ranges.
  Status Validate() const;

 private:
  std::shared_ptr<Vocabulary> vocab_;
  AttributeSchema attributes_;
  ClassSchema classes_;
  StructureSchema structure_;
  std::vector<AttributeId> keys_;  // sorted, unique
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SCHEMA_DIRECTORY_SCHEMA_H_
