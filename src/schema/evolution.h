#ifndef LDAPBOUND_SCHEMA_EVOLUTION_H_
#define LDAPBOUND_SCHEMA_EVOLUTION_H_

#include <string>

#include "schema/directory_schema.h"

namespace ldapbound {

/// One evolution step of a bounding-schema. Section 6.2 observes that many
/// directory schema changes are "extremely lightweight, involving no
/// modifications to existing directory entries" — here that intuition is
/// made precise: a change is *legality-preserving* when every instance
/// legal under the old schema is legal under the evolved schema, so no
/// revalidation is needed.
struct SchemaChange {
  enum class Kind : uint8_t {
    // Legality-preserving (weaken upper bounds / extend the vocabulary):
    kAddAllowedAttribute,    ///< alpha(cls) += attr
    kAddAuxiliaryAllowance,  ///< Aux(cls) += aux_cls
    kAddCoreClass,           ///< new (leaf) core class under `cls`
    kAddAuxiliaryClass,      ///< new auxiliary class
    kRemoveRequiredClass,    ///< Cr -= cls
    kRemoveRequiredEdge,     ///< Er -= relationship
    kRemoveForbiddenEdge,    ///< Ef -= relationship
    kRemoveRequiredAttribute,///< rho(cls) -= attr (stays allowed)

    // Not legality-preserving (tighten bounds; revalidate instances):
    kAddRequiredAttribute,   ///< rho(cls) += attr
    kAddRequiredClass,       ///< Cr += cls
    kAddRequiredEdge,        ///< Er += relationship
    kAddForbiddenEdge,       ///< Ef += relationship
    kAddKeyAttribute,        ///< keys += attr
  };

  Kind kind;
  ClassId cls = kInvalidClassId;        ///< primary class operand
  ClassId other_cls = kInvalidClassId;  ///< aux class / new class / parent
  AttributeId attr = kInvalidAttributeId;
  StructuralRelationship relationship;  ///< for edge changes

  /// Human-readable description.
  std::string ToString(const Vocabulary& vocab) const;
};

/// True if applying `kind` can never turn a legal instance illegal.
/// (Weakening an upper bound or dropping a lower bound only enlarges the
/// set of legal instances; the converse changes may shrink it.)
bool IsLegalityPreserving(SchemaChange::Kind kind);

/// Applies `change` to `schema`. Well-formedness is enforced (e.g. the
/// class operands must exist and have the right kind); removal changes are
/// NotFound if the element is absent.
///
/// Note: applying a non-preserving change leaves existing directories
/// possibly-illegal — callers should revalidate (LegalityChecker) and, for
/// structure additions, re-check schema consistency (ConsistencyChecker),
/// since adding required/forbidden elements can introduce the Section 5
/// cycles and contradictions.
Status ApplySchemaChange(DirectorySchema* schema, const SchemaChange& change);

}  // namespace ldapbound

#endif  // LDAPBOUND_SCHEMA_EVOLUTION_H_
