#ifndef LDAPBOUND_SCHEMA_CLASS_SCHEMA_H_
#define LDAPBOUND_SCHEMA_CLASS_SCHEMA_H_

#include <map>
#include <vector>

#include "model/vocabulary.h"
#include "util/result.h"

namespace ldapbound {

/// The class schema `H = (Cc, E, Aux)` of Definition 2.3: a single
/// inheritance tree of *core* object classes rooted at `top`, a set of
/// *auxiliary* classes, and per core class the auxiliary classes its
/// members may additionally belong to.
///
/// Derived judgments (the paper's §2.2 notation):
///  - `ci ⊑ cj` ("ci isa cj", written ci—cj): IsSubclassOf — an entry of ci
///    must also belong to cj;
///  - `ci ⋈ cj` (ci ∦ cj): AreExclusive — single inheritance forbids any
///    entry from belonging to two incomparable core classes.
class ClassSchema {
 public:
  /// The schema starts containing only the core class `top`.
  explicit ClassSchema(ClassId top_class);

  /// Adds a core class under `parent` (which must be a known core class).
  Status AddCoreClass(ClassId cls, ClassId parent);

  /// Adds an auxiliary class. Auxiliary classes are not in the tree.
  Status AddAuxiliaryClass(ClassId cls);

  /// Permits members of core class `core` to also belong to auxiliary
  /// class `aux` (i.e. `aux ∈ Aux(core)`).
  Status AllowAuxiliary(ClassId core, ClassId aux);

  bool IsCore(ClassId cls) const { return core_.count(cls) > 0; }
  bool IsAuxiliary(ClassId cls) const { return aux_.count(cls) > 0; }
  /// True if `cls` is mentioned in the schema (core or auxiliary).
  bool Contains(ClassId cls) const { return IsCore(cls) || IsAuxiliary(cls); }

  ClassId top_class() const { return top_; }

  /// Parent in the core tree; kInvalidClassId for `top`.
  /// Precondition: IsCore(cls).
  ClassId ParentOf(ClassId cls) const { return core_.at(cls).parent; }

  /// Depth in the core tree; `top` has depth 0.
  uint32_t DepthOf(ClassId cls) const { return core_.at(cls).depth; }

  /// Height of the core tree (max depth); the `depth(H)` of Theorem 3.1.
  uint32_t Height() const { return height_; }

  /// Reflexive subclass test over the core tree: true iff `sub` equals
  /// `super` or lies below it. O(depth difference).
  bool IsSubclassOf(ClassId sub, ClassId super) const;

  /// True iff `a` and `b` are incomparable core classes — single
  /// inheritance then makes co-membership impossible (`a ⋈ b`).
  bool AreExclusive(ClassId a, ClassId b) const;

  /// `cls` and its proper ancestors, self first, ending at `top`.
  /// Precondition: IsCore(cls).
  std::vector<ClassId> AncestorsOf(ClassId cls) const;

  /// `Aux(core)`: sorted; empty if none. Precondition: IsCore(core).
  const std::vector<ClassId>& AuxAllowed(ClassId core) const;

  /// Largest Aux set size: the `max |Aux(c)|` of Theorem 3.1.
  size_t MaxAuxSize() const;

  /// Core classes, ascending by id.
  std::vector<ClassId> CoreClasses() const;
  /// Auxiliary classes, ascending by id.
  std::vector<ClassId> AuxiliaryClasses() const;
  /// Direct children of `cls` in the core tree, ascending.
  std::vector<ClassId> ChildrenOf(ClassId cls) const;

 private:
  struct CoreInfo {
    ClassId parent = kInvalidClassId;
    uint32_t depth = 0;
    std::vector<ClassId> aux_allowed;  // sorted, unique
  };

  ClassId top_;
  std::map<ClassId, CoreInfo> core_;
  std::map<ClassId, char> aux_;
  uint32_t height_ = 0;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SCHEMA_CLASS_SCHEMA_H_
