#ifndef LDAPBOUND_SCHEMA_STRUCTURE_SCHEMA_H_
#define LDAPBOUND_SCHEMA_STRUCTURE_SCHEMA_H_

#include <string>
#include <vector>

#include "model/axis.h"
#include "model/vocabulary.h"
#include "util/result.h"

namespace ldapbound {

/// One element of `Er` or `Ef` (Definition 2.4).
///
/// Required (`forbidden == false`), any axis: every entry belonging to
/// `source` must have an `axis`-related entry belonging to `target` —
/// e.g. {orgGroup, kDescendant, person} is the paper's
/// `orgGroup —>> person⇓` ("every organizational group employs a person").
///
/// Forbidden (`forbidden == true`), axis ∈ {kChild, kDescendant}: no entry
/// belonging to `source` may have an `axis`-related entry belonging to
/// `target` — e.g. {person, kChild, top} forbids person entries from having
/// any children.
struct StructuralRelationship {
  ClassId source = kInvalidClassId;
  Axis axis = Axis::kChild;
  ClassId target = kInvalidClassId;
  bool forbidden = false;

  friend bool operator==(const StructuralRelationship& a,
                         const StructuralRelationship& b) = default;

  /// Paper-style rendering, e.g. "orgGroup ->> person (required)".
  std::string ToString(const Vocabulary& vocab) const;
};

/// The structure schema `S = (Cr, Er, Ef)` of Definition 2.4: required
/// object classes, required structural relationships, forbidden structural
/// relationships. All classes referenced must be core classes of the
/// accompanying class schema (checked by DirectorySchema::Validate).
class StructureSchema {
 public:
  StructureSchema() = default;

  /// Adds `c⇓`: at least one entry of class `cls` must exist.
  void RequireClass(ClassId cls);

  /// Adds a required relationship (any axis).
  void Require(ClassId source, Axis axis, ClassId target);

  /// Adds a forbidden relationship; only child/descendant are expressible
  /// (Definition 2.4 restricts Ef to the downward axes).
  Status Forbid(ClassId source, Axis axis, ClassId target);

  /// Removes `cls` from Cr; NotFound if absent.
  Status RemoveRequiredClass(ClassId cls);

  /// Removes an element of Er; NotFound if absent.
  Status RemoveRequired(ClassId source, Axis axis, ClassId target);

  /// Removes an element of Ef; NotFound if absent.
  Status RemoveForbidden(ClassId source, Axis axis, ClassId target);

  /// `Cr`, ascending and unique.
  const std::vector<ClassId>& required_classes() const {
    return required_classes_;
  }
  /// `Er`, in insertion order, unique.
  const std::vector<StructuralRelationship>& required() const {
    return required_;
  }
  /// `Ef`, in insertion order, unique.
  const std::vector<StructuralRelationship>& forbidden() const {
    return forbidden_;
  }

  /// |Cr| + |Er| + |Ef|: the |S| in Theorem 3.1's bound.
  size_t Size() const {
    return required_classes_.size() + required_.size() + forbidden_.size();
  }

 private:
  std::vector<ClassId> required_classes_;
  std::vector<StructuralRelationship> required_;
  std::vector<StructuralRelationship> forbidden_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SCHEMA_STRUCTURE_SCHEMA_H_
