#ifndef LDAPBOUND_SCHEMA_SCHEMA_FORMAT_H_
#define LDAPBOUND_SCHEMA_SCHEMA_FORMAT_H_

#include <memory>
#include <string>
#include <string_view>

#include "schema/directory_schema.h"

namespace ldapbound {

/// Parses the bounding-schema text format into a DirectorySchema over
/// `vocab` (attributes and classes are interned into it).
///
/// The format, line-oriented with `#` comments:
///
///   attribute <name> <string|integer|boolean>
///
///   class <name> : <parent> {        # core class; parent declared earlier
///     require <attr>[, <attr>...]
///     allow <attr>[, <attr>...]
///     aux <class>[, <class>...]      # allowed auxiliary classes
///   }
///
///   auxclass <name> {                # auxiliary class
///     require <attr>[, ...]
///     allow <attr>[, ...]
///   }
///
///   structure {
///     require-class <class>                       # c-down-arrow
///     require <class> <axis> <class>              # element of Er
///     forbid <class> <child|descendant> <class>   # element of Ef
///   }
///
/// where <axis> is child | descendant | parent | ancestor or the arrow
/// aliases -> | ->> | <- | <<-. Undeclared attributes referenced in
/// require/allow lines are defined as string-typed.
Result<DirectorySchema> ParseDirectorySchema(
    std::string_view text, std::shared_ptr<Vocabulary> vocab);

/// Renders `schema` in the text format; the output reparses to an
/// equivalent schema.
std::string FormatDirectorySchema(const DirectorySchema& schema);

}  // namespace ldapbound

#endif  // LDAPBOUND_SCHEMA_SCHEMA_FORMAT_H_
