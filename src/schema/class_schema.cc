#include "schema/class_schema.h"

#include <algorithm>

namespace ldapbound {

ClassSchema::ClassSchema(ClassId top_class) : top_(top_class) {
  core_[top_] = CoreInfo{};
}

Status ClassSchema::AddCoreClass(ClassId cls, ClassId parent) {
  if (Contains(cls)) {
    return Status::AlreadyExists("class already in schema");
  }
  auto it = core_.find(parent);
  if (it == core_.end()) {
    return Status::NotFound("parent is not a core class of this schema");
  }
  CoreInfo info;
  info.parent = parent;
  info.depth = it->second.depth + 1;
  height_ = std::max(height_, info.depth);
  core_.emplace(cls, std::move(info));
  return Status::OK();
}

Status ClassSchema::AddAuxiliaryClass(ClassId cls) {
  if (Contains(cls)) {
    return Status::AlreadyExists("class already in schema");
  }
  aux_.emplace(cls, 0);
  return Status::OK();
}

Status ClassSchema::AllowAuxiliary(ClassId core, ClassId aux) {
  auto it = core_.find(core);
  if (it == core_.end()) {
    return Status::NotFound("not a core class of this schema");
  }
  if (!IsAuxiliary(aux)) {
    return Status::NotFound("not an auxiliary class of this schema");
  }
  std::vector<ClassId>& v = it->second.aux_allowed;
  auto pos = std::lower_bound(v.begin(), v.end(), aux);
  if (pos == v.end() || *pos != aux) v.insert(pos, aux);
  return Status::OK();
}

bool ClassSchema::IsSubclassOf(ClassId sub, ClassId super) const {
  auto sub_it = core_.find(sub);
  auto super_it = core_.find(super);
  if (sub_it == core_.end() || super_it == core_.end()) return false;
  uint32_t target_depth = super_it->second.depth;
  ClassId cur = sub;
  uint32_t depth = sub_it->second.depth;
  while (depth > target_depth) {
    cur = core_.at(cur).parent;
    --depth;
  }
  return cur == super;
}

bool ClassSchema::AreExclusive(ClassId a, ClassId b) const {
  if (!IsCore(a) || !IsCore(b)) return false;
  return !IsSubclassOf(a, b) && !IsSubclassOf(b, a);
}

std::vector<ClassId> ClassSchema::AncestorsOf(ClassId cls) const {
  std::vector<ClassId> out;
  ClassId cur = cls;
  while (cur != kInvalidClassId) {
    out.push_back(cur);
    cur = core_.at(cur).parent;
  }
  return out;
}

const std::vector<ClassId>& ClassSchema::AuxAllowed(ClassId core) const {
  return core_.at(core).aux_allowed;
}

size_t ClassSchema::MaxAuxSize() const {
  size_t best = 0;
  for (const auto& [_, info] : core_) {
    best = std::max(best, info.aux_allowed.size());
  }
  return best;
}

std::vector<ClassId> ClassSchema::CoreClasses() const {
  std::vector<ClassId> out;
  out.reserve(core_.size());
  for (const auto& [cls, _] : core_) out.push_back(cls);
  return out;
}

std::vector<ClassId> ClassSchema::AuxiliaryClasses() const {
  std::vector<ClassId> out;
  out.reserve(aux_.size());
  for (const auto& [cls, _] : aux_) out.push_back(cls);
  return out;
}

std::vector<ClassId> ClassSchema::ChildrenOf(ClassId cls) const {
  std::vector<ClassId> out;
  for (const auto& [c, info] : core_) {
    if (info.parent == cls) out.push_back(c);
  }
  return out;
}

}  // namespace ldapbound
