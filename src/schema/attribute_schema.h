#ifndef LDAPBOUND_SCHEMA_ATTRIBUTE_SCHEMA_H_
#define LDAPBOUND_SCHEMA_ATTRIBUTE_SCHEMA_H_

#include <map>
#include <vector>

#include "model/vocabulary.h"
#include "util/result.h"

namespace ldapbound {

/// The attribute schema `A = (C, A, r, a)` of Definition 2.2: per object
/// class, the set of *required* attributes (each member entry must have at
/// least one value for each) and of *allowed* attributes (no other
/// attributes may appear). The invariant `r(c) ⊆ a(c)` is maintained
/// structurally: requiring an attribute also allows it.
class AttributeSchema {
 public:
  AttributeSchema() = default;

  /// Declares `attr` required for members of `cls`.
  void AddRequired(ClassId cls, AttributeId attr);

  /// Declares `attr` allowed (but not required) for members of `cls`.
  void AddAllowed(ClassId cls, AttributeId attr);

  /// Demotes a required attribute to allowed-only; NotFound if it was not
  /// required for `cls`.
  Status RemoveRequired(ClassId cls, AttributeId attr);

  /// Ensures `cls` is mentioned in the schema (with possibly empty
  /// required/allowed sets).
  void AddClass(ClassId cls);

  /// True if the schema mentions `cls`.
  bool HasClass(ClassId cls) const { return per_class_.count(cls) > 0; }

  /// `r(c)`: sorted; empty for unmentioned classes.
  const std::vector<AttributeId>& Required(ClassId cls) const;

  /// `a(c)`: sorted, superset of Required; empty for unmentioned classes.
  const std::vector<AttributeId>& Allowed(ClassId cls) const;

  bool IsAllowed(ClassId cls, AttributeId attr) const;
  bool IsRequired(ClassId cls, AttributeId attr) const;

  /// Classes mentioned, ascending.
  std::vector<ClassId> Classes() const;

  /// All attributes mentioned anywhere, ascending and unique.
  std::vector<AttributeId> Attributes() const;

 private:
  struct PerClass {
    std::vector<AttributeId> required;  // sorted, unique
    std::vector<AttributeId> allowed;   // sorted, unique, superset of required
  };

  std::map<ClassId, PerClass> per_class_;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_SCHEMA_ATTRIBUTE_SCHEMA_H_
