#include "schema/attribute_schema.h"

#include <algorithm>

namespace ldapbound {

namespace {

void InsertSorted(std::vector<AttributeId>& v, AttributeId attr) {
  auto it = std::lower_bound(v.begin(), v.end(), attr);
  if (it == v.end() || *it != attr) v.insert(it, attr);
}

const std::vector<AttributeId>& EmptyAttrs() {
  static const std::vector<AttributeId>* empty =
      new std::vector<AttributeId>();
  return *empty;
}

}  // namespace

void AttributeSchema::AddRequired(ClassId cls, AttributeId attr) {
  PerClass& pc = per_class_[cls];
  InsertSorted(pc.required, attr);
  InsertSorted(pc.allowed, attr);
}

void AttributeSchema::AddAllowed(ClassId cls, AttributeId attr) {
  InsertSorted(per_class_[cls].allowed, attr);
}

Status AttributeSchema::RemoveRequired(ClassId cls, AttributeId attr) {
  auto it = per_class_.find(cls);
  if (it == per_class_.end()) {
    return Status::NotFound("class not in attribute schema");
  }
  std::vector<AttributeId>& required = it->second.required;
  auto pos = std::lower_bound(required.begin(), required.end(), attr);
  if (pos == required.end() || *pos != attr) {
    return Status::NotFound("attribute is not required for this class");
  }
  required.erase(pos);  // stays allowed
  return Status::OK();
}

void AttributeSchema::AddClass(ClassId cls) { per_class_[cls]; }

const std::vector<AttributeId>& AttributeSchema::Required(ClassId cls) const {
  auto it = per_class_.find(cls);
  return it == per_class_.end() ? EmptyAttrs() : it->second.required;
}

const std::vector<AttributeId>& AttributeSchema::Allowed(ClassId cls) const {
  auto it = per_class_.find(cls);
  return it == per_class_.end() ? EmptyAttrs() : it->second.allowed;
}

bool AttributeSchema::IsAllowed(ClassId cls, AttributeId attr) const {
  const std::vector<AttributeId>& v = Allowed(cls);
  return std::binary_search(v.begin(), v.end(), attr);
}

bool AttributeSchema::IsRequired(ClassId cls, AttributeId attr) const {
  const std::vector<AttributeId>& v = Required(cls);
  return std::binary_search(v.begin(), v.end(), attr);
}

std::vector<ClassId> AttributeSchema::Classes() const {
  std::vector<ClassId> out;
  out.reserve(per_class_.size());
  for (const auto& [cls, _] : per_class_) out.push_back(cls);
  return out;
}

std::vector<AttributeId> AttributeSchema::Attributes() const {
  std::vector<AttributeId> out;
  for (const auto& [cls, pc] : per_class_) {
    out.insert(out.end(), pc.allowed.begin(), pc.allowed.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ldapbound
