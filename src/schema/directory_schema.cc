#include "schema/directory_schema.h"

#include <algorithm>

namespace ldapbound {

void DirectorySchema::AddKeyAttribute(AttributeId attr) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), attr);
  if (it == keys_.end() || *it != attr) keys_.insert(it, attr);
}

Status DirectorySchema::Validate() const {
  for (ClassId cls : attributes_.Classes()) {
    if (cls >= vocab_->num_classes()) {
      return Status::OutOfRange("attribute schema: class id out of range");
    }
    if (!classes_.Contains(cls)) {
      return Status::FailedPrecondition(
          "attribute schema mentions class '" + vocab_->ClassName(cls) +
          "' that is not in the class schema");
    }
    for (AttributeId attr : attributes_.Allowed(cls)) {
      if (attr >= vocab_->num_attributes()) {
        return Status::OutOfRange(
            "attribute schema: attribute id out of range");
      }
    }
  }

  auto check_core = [&](ClassId cls, const char* where) -> Status {
    if (cls >= vocab_->num_classes()) {
      return Status::OutOfRange(std::string(where) +
                                ": class id out of range");
    }
    if (!classes_.IsCore(cls)) {
      return Status::FailedPrecondition(
          std::string(where) + ": class '" + vocab_->ClassName(cls) +
          "' is not a core class (Definition 2.4 requires core classes)");
    }
    return Status::OK();
  };

  for (ClassId cls : structure_.required_classes()) {
    LDAPBOUND_RETURN_IF_ERROR(check_core(cls, "structure schema (Cr)"));
  }
  for (const StructuralRelationship& rel : structure_.required()) {
    LDAPBOUND_RETURN_IF_ERROR(check_core(rel.source, "structure schema (Er)"));
    LDAPBOUND_RETURN_IF_ERROR(check_core(rel.target, "structure schema (Er)"));
  }
  for (const StructuralRelationship& rel : structure_.forbidden()) {
    LDAPBOUND_RETURN_IF_ERROR(check_core(rel.source, "structure schema (Ef)"));
    LDAPBOUND_RETURN_IF_ERROR(check_core(rel.target, "structure schema (Ef)"));
  }
  for (AttributeId attr : keys_) {
    if (attr >= vocab_->num_attributes()) {
      return Status::OutOfRange("key attribute id out of range");
    }
    if (attr == vocab_->objectclass_attr()) {
      return Status::FailedPrecondition(
          "objectClass cannot be a key attribute");
    }
  }
  return Status::OK();
}

}  // namespace ldapbound
