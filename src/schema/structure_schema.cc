#include "schema/structure_schema.h"

#include <algorithm>

namespace ldapbound {

std::string StructuralRelationship::ToString(const Vocabulary& vocab) const {
  std::string arrow;
  switch (axis) {
    case Axis::kChild:
      arrow = "->";
      break;
    case Axis::kDescendant:
      arrow = "->>";
      break;
    case Axis::kParent:
      arrow = "<-";
      break;
    case Axis::kAncestor:
      arrow = "<<-";
      break;
  }
  return vocab.ClassName(source) + " " + arrow + " " +
         vocab.ClassName(target) + (forbidden ? " (forbidden)" : " (required)");
}

void StructureSchema::RequireClass(ClassId cls) {
  auto it = std::lower_bound(required_classes_.begin(),
                             required_classes_.end(), cls);
  if (it == required_classes_.end() || *it != cls) {
    required_classes_.insert(it, cls);
  }
}

void StructureSchema::Require(ClassId source, Axis axis, ClassId target) {
  StructuralRelationship rel{source, axis, target, /*forbidden=*/false};
  if (std::find(required_.begin(), required_.end(), rel) == required_.end()) {
    required_.push_back(rel);
  }
}

Status StructureSchema::Forbid(ClassId source, Axis axis, ClassId target) {
  if (axis != Axis::kChild && axis != Axis::kDescendant) {
    return Status::InvalidArgument(
        "forbidden relationships use only the child/descendant axes "
        "(Definition 2.4)");
  }
  StructuralRelationship rel{source, axis, target, /*forbidden=*/true};
  if (std::find(forbidden_.begin(), forbidden_.end(), rel) ==
      forbidden_.end()) {
    forbidden_.push_back(rel);
  }
  return Status::OK();
}

Status StructureSchema::RemoveRequiredClass(ClassId cls) {
  auto it = std::lower_bound(required_classes_.begin(),
                             required_classes_.end(), cls);
  if (it == required_classes_.end() || *it != cls) {
    return Status::NotFound("class is not in Cr");
  }
  required_classes_.erase(it);
  return Status::OK();
}

Status StructureSchema::RemoveRequired(ClassId source, Axis axis,
                                       ClassId target) {
  StructuralRelationship rel{source, axis, target, /*forbidden=*/false};
  auto it = std::find(required_.begin(), required_.end(), rel);
  if (it == required_.end()) {
    return Status::NotFound("relationship is not in Er");
  }
  required_.erase(it);
  return Status::OK();
}

Status StructureSchema::RemoveForbidden(ClassId source, Axis axis,
                                        ClassId target) {
  StructuralRelationship rel{source, axis, target, /*forbidden=*/true};
  auto it = std::find(forbidden_.begin(), forbidden_.end(), rel);
  if (it == forbidden_.end()) {
    return Status::NotFound("relationship is not in Ef");
  }
  forbidden_.erase(it);
  return Status::OK();
}

}  // namespace ldapbound
