#ifndef LDAPBOUND_FEDERATION_FEDERATION_H_
#define LDAPBOUND_FEDERATION_FEDERATION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/legality_checker.h"
#include "ldap/dn.h"
#include "ldap/search.h"
#include "model/directory.h"
#include "schema/directory_schema.h"

namespace ldapbound {

/// One naming context of a federation: a subtree of the DIT managed
/// separately (conceptually, by its own server), re-rooted as a standalone
/// directory. `mount_parent` is the DN under which the context hangs in
/// the unified namespace (empty for a context that is a forest root).
struct NamingContext {
  DistinguishedName mount_parent;
  std::unique_ptr<Directory> directory;  // root entry = the context root
};

/// §2.4: "the directory data model defines a hierarchical namespace for
/// entries, which enables distributed management of entries across
/// multiple directory servers, while still permitting a conceptually
/// unified view of the data."
///
/// A Federation realizes that story for bounding-schemas:
///  - `Split` carves chosen subtrees out of a directory into naming
///    contexts, leaving *referral* entries (objectClass `referral`) at the
///    mount points of the remaining "glue" directory — the LDAP idiom;
///  - `Search` routes scoped searches across glue and contexts, chasing
///    referrals, and returns absolute DNs;
///  - `Unify` rebuilds the conceptually unified directory;
///  - legality: the *content* schema is checkable per partition in
///    isolation (Definition 2.7 checks entries independently), but the
///    *structure* schema is not — required descendant/ancestor
///    relationships cross context boundaries — so `CheckLegality`
///    materializes the unified view. The test suite demonstrates that
///    naive per-partition structure checking gives wrong answers in both
///    directions.
class Federation {
 public:
  /// Splits `source`: each DN in `context_roots` (which must name alive
  /// entries, pairwise non-nested) becomes a naming context. The source
  /// directory is not modified; the federation gets copies.
  static Result<Federation> Split(
      const Directory& source,
      const std::vector<DistinguishedName>& context_roots);

  /// The glue directory: everything outside the contexts, with referral
  /// entries at the mount points.
  const Directory& glue() const { return *glue_; }
  const std::vector<NamingContext>& contexts() const { return contexts_; }

  /// The class marking referral entries in the glue.
  ClassId referral_class() const { return referral_class_; }

  /// Rebuilds the unified view (referrals replaced by their contexts).
  Result<Directory> Unify() const;

  /// Subtree search from `base` (empty = whole namespace), chasing
  /// referrals into contexts; absolute DNs of matches, glue first then
  /// contexts in mount order. Referral placeholder entries never match.
  Result<std::vector<std::string>> Search(const DistinguishedName& base,
                                          const MatcherPtr& filter) const;

  /// Federated legality: per-partition content checks (each partition in
  /// isolation — valid per Definition 2.7) plus a structure + keys check
  /// on the unified view.
  bool CheckLegality(const DirectorySchema& schema,
                     std::vector<std::string>* violation_text = nullptr) const;

  /// Per-partition structure verdicts — deliberately exposed so tests and
  /// examples can demonstrate that this naive approach is NOT equivalent
  /// to the unified check.
  std::vector<bool> NaivePerPartitionStructureVerdicts(
      const DirectorySchema& schema) const;

 private:
  Federation() = default;

  std::shared_ptr<Vocabulary> vocab_;
  std::unique_ptr<Directory> glue_;
  std::vector<NamingContext> contexts_;
  ClassId referral_class_ = kInvalidClassId;
};

}  // namespace ldapbound

#endif  // LDAPBOUND_FEDERATION_FEDERATION_H_
