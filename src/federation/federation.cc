#include "federation/federation.h"

#include <unordered_map>
#include <unordered_set>

#include "update/subtree_snapshot.h"
#include "util/string_util.h"

namespace ldapbound {

namespace {

// True if `dn` equals `suffix` or lies beneath it.
bool IsUnder(const DistinguishedName& dn, const DistinguishedName& suffix) {
  if (dn.Depth() < suffix.Depth()) return false;
  size_t offset = dn.Depth() - suffix.Depth();
  for (size_t i = 0; i < suffix.Depth(); ++i) {
    if (!EqualsIgnoreCase(dn.rdns()[offset + i], suffix.rdns()[i])) {
      return false;
    }
  }
  return true;
}

// Drops the trailing `suffix` components: the DN local to a context whose
// absolute root DN is `suffix`'s parent scope.
Result<DistinguishedName> StripSuffix(const DistinguishedName& dn,
                                      const DistinguishedName& suffix) {
  if (!IsUnder(dn, suffix)) {
    return Status::InvalidArgument("DN is not under the given suffix");
  }
  std::vector<std::string> rdns(dn.rdns().begin(),
                                dn.rdns().end() - suffix.Depth());
  return DistinguishedName::Parse(Join(rdns, ","));
}

std::string AbsoluteDn(const DistinguishedName& local,
                       const DistinguishedName& mount_parent) {
  if (mount_parent.IsEmpty()) return local.ToString();
  return local.ToString() + "," + mount_parent.ToString();
}

}  // namespace

Result<Federation> Federation::Split(
    const Directory& source,
    const std::vector<DistinguishedName>& context_roots) {
  Federation federation;
  federation.vocab_ = source.vocab_ptr();
  federation.referral_class_ =
      federation.vocab_->InternClass("referral");

  // Resolve and validate the context roots.
  std::vector<EntryId> roots;
  for (const DistinguishedName& dn : context_roots) {
    LDAPBOUND_ASSIGN_OR_RETURN(EntryId id, ResolveDn(source, dn));
    roots.push_back(id);
  }
  const ForestIndex& index = source.GetIndex();
  for (size_t i = 0; i < roots.size(); ++i) {
    for (size_t j = 0; j < roots.size(); ++j) {
      if (i != j && (roots[i] == roots[j] ||
                     index.IsAncestor(roots[i], roots[j]))) {
        return Status::InvalidArgument(
            "context roots must be distinct and non-nested");
      }
    }
  }

  // Carve out the contexts.
  std::unordered_map<EntryId, size_t> context_of_root;
  for (size_t i = 0; i < roots.size(); ++i) {
    NamingContext context;
    EntryId parent = source.entry(roots[i]).parent();
    if (parent != kInvalidEntryId) {
      LDAPBOUND_ASSIGN_OR_RETURN(context.mount_parent,
                                 DnOf(source, parent));
    }
    context.directory = std::make_unique<Directory>(federation.vocab_);
    LDAPBOUND_ASSIGN_OR_RETURN(SubtreeSnapshot snapshot,
                               SubtreeSnapshot::Capture(source, roots[i]));
    LDAPBOUND_RETURN_IF_ERROR(
        snapshot.Restore(context.directory.get(), kInvalidEntryId).status());
    context_of_root.emplace(roots[i], i);
    federation.contexts_.push_back(std::move(context));
  }

  // Build the glue: a copy of the source with each context subtree
  // replaced by a referral placeholder.
  federation.glue_ = std::make_unique<Directory>(federation.vocab_);
  std::unordered_map<EntryId, EntryId> mapped;  // source id -> glue id
  std::unordered_set<EntryId> skipped_subtrees;
  for (EntryId id : index.preorder()) {
    const Entry& e = source.entry(id);
    EntryId parent = e.parent();
    // Inside a carved-out subtree (but not its root)?
    bool inside = false;
    for (EntryId a = parent; a != kInvalidEntryId;
         a = source.entry(a).parent()) {
      if (skipped_subtrees.count(a) > 0) {
        inside = true;
        break;
      }
    }
    if (inside) continue;
    EntryId glue_parent =
        parent == kInvalidEntryId ? kInvalidEntryId : mapped.at(parent);
    if (context_of_root.count(id) > 0) {
      skipped_subtrees.insert(id);
      LDAPBOUND_ASSIGN_OR_RETURN(
          EntryId referral,
          federation.glue_->AddEntry(glue_parent, e.rdn(),
                                     {federation.referral_class_}, {}));
      mapped.emplace(id, referral);
      continue;
    }
    LDAPBOUND_ASSIGN_OR_RETURN(
        EntryId copy, federation.glue_->AddEntry(glue_parent, e.rdn(),
                                                 e.classes(), e.values()));
    mapped.emplace(id, copy);
  }
  return federation;
}

Result<Directory> Federation::Unify() const {
  Directory unified(vocab_);
  std::unordered_map<EntryId, EntryId> mapped;  // glue id -> unified id
  for (EntryId id : glue_->GetIndex().preorder()) {
    const Entry& e = glue_->entry(id);
    EntryId parent =
        e.parent() == kInvalidEntryId ? kInvalidEntryId : mapped.at(e.parent());
    if (e.HasClass(referral_class_) && e.classes().size() == 1) {
      // Mount the corresponding context here.
      LDAPBOUND_ASSIGN_OR_RETURN(DistinguishedName dn, DnOf(*glue_, id));
      bool mounted = false;
      for (const NamingContext& context : contexts_) {
        const Directory& cd = *context.directory;
        std::string absolute =
            AbsoluteDn(*DnOf(cd, cd.roots()[0]), context.mount_parent);
        if (EqualsIgnoreCase(absolute, dn.ToString())) {
          LDAPBOUND_ASSIGN_OR_RETURN(SubtreeSnapshot snapshot,
                                     SubtreeSnapshot::Capture(
                                         cd, cd.roots()[0]));
          LDAPBOUND_ASSIGN_OR_RETURN(std::vector<EntryId> created,
                                     snapshot.Restore(&unified, parent));
          mapped.emplace(id, created.front());
          mounted = true;
          break;
        }
      }
      if (!mounted) {
        return Status::Internal("referral '" + dn.ToString() +
                                "' has no matching naming context");
      }
      continue;
    }
    LDAPBOUND_ASSIGN_OR_RETURN(
        EntryId copy,
        unified.AddEntry(parent, e.rdn(), e.classes(), e.values()));
    mapped.emplace(id, copy);
  }
  return unified;
}

Result<std::vector<std::string>> Federation::Search(
    const DistinguishedName& base, const MatcherPtr& filter) const {
  std::vector<std::string> out;
  auto matches = [&](const Directory& d, EntryId id) {
    const Entry& e = d.entry(id);
    if (e.HasClass(referral_class_) && e.classes().size() == 1) return false;
    return filter == nullptr || filter->Matches(e);
  };
  auto search_context_fully = [&](const NamingContext& context) {
    const Directory& cd = *context.directory;
    for (EntryId id : cd.GetIndex().preorder()) {
      if (matches(cd, id)) {
        out.push_back(AbsoluteDn(*DnOf(cd, id), context.mount_parent));
      }
    }
  };
  auto search_context_from = [&](const NamingContext& context,
                                 EntryId from) {
    const Directory& cd = *context.directory;
    for (EntryId id : cd.SubtreeEntries(from)) {
      if (matches(cd, id)) {
        out.push_back(AbsoluteDn(*DnOf(cd, id), context.mount_parent));
      }
    }
  };

  if (base.IsEmpty()) {
    for (EntryId id : glue_->GetIndex().preorder()) {
      if (matches(*glue_, id)) out.push_back(DnOf(*glue_, id)->ToString());
    }
    for (const NamingContext& context : contexts_) {
      search_context_fully(context);
    }
    return out;
  }

  auto glue_base = ResolveDn(*glue_, base);
  if (glue_base.ok()) {
    // Search the glue subtree; chase referrals found within it.
    for (EntryId id : glue_->SubtreeEntries(*glue_base)) {
      const Entry& e = glue_->entry(id);
      if (e.HasClass(referral_class_) && e.classes().size() == 1) {
        LDAPBOUND_ASSIGN_OR_RETURN(DistinguishedName dn, DnOf(*glue_, id));
        for (const NamingContext& context : contexts_) {
          const Directory& cd = *context.directory;
          std::string absolute =
              AbsoluteDn(*DnOf(cd, cd.roots()[0]), context.mount_parent);
          if (EqualsIgnoreCase(absolute, dn.ToString())) {
            search_context_fully(context);
            break;
          }
        }
        continue;
      }
      if (matches(*glue_, id)) out.push_back(DnOf(*glue_, id)->ToString());
    }
    return out;
  }

  // The base must live inside one of the contexts.
  for (const NamingContext& context : contexts_) {
    const Directory& cd = *context.directory;
    DistinguishedName root_local = *DnOf(cd, cd.roots()[0]);
    auto root_abs = DistinguishedName::Parse(
        AbsoluteDn(root_local, context.mount_parent));
    if (!IsUnder(base, *root_abs)) continue;
    // Local DN inside the context = base minus the mount parent.
    LDAPBOUND_ASSIGN_OR_RETURN(DistinguishedName local,
                               StripSuffix(base, context.mount_parent));
    auto from = ResolveDn(cd, local);
    if (!from.ok()) return from.status();
    search_context_from(context, *from);
    return out;
  }
  return Status::NotFound("search base '" + base.ToString() +
                          "' not found in any partition");
}

bool Federation::CheckLegality(const DirectorySchema& schema,
                               std::vector<std::string>* violation_text) const {
  LegalityChecker checker(schema);
  bool ok = true;
  auto render = [&](const Directory& d, const std::vector<Violation>& vs,
                    const std::string& where) {
    (void)d;
    if (violation_text == nullptr) return;
    for (const Violation& v : vs) {
      violation_text->push_back(where + ": " + v.Describe(schema.vocab()));
    }
  };

  // Content: per partition, in isolation. Referral placeholders are
  // infrastructure, not data — skipped.
  std::vector<Violation> violations;
  glue_->ForEachAlive([&](const Entry& e) {
    if (e.HasClass(referral_class_) && e.classes().size() == 1) return;
    if (!checker.CheckEntryContent(*glue_, e.id(), &violations)) ok = false;
  });
  render(*glue_, violations, "glue");
  for (size_t i = 0; i < contexts_.size(); ++i) {
    violations.clear();
    if (!checker.CheckContent(*contexts_[i].directory, &violations)) {
      ok = false;
    }
    render(*contexts_[i].directory, violations,
           "context" + std::to_string(i));
  }

  // Structure + keys: only the unified view answers correctly.
  auto unified = Unify();
  if (!unified.ok()) {
    if (violation_text != nullptr) {
      violation_text->push_back(unified.status().ToString());
    }
    return false;
  }
  violations.clear();
  bool structure_ok = checker.CheckStructure(*unified, &violations);
  bool keys_ok = checker.CheckKeys(*unified, &violations);
  render(*unified, violations, "unified");
  return ok && structure_ok && keys_ok;
}

std::vector<bool> Federation::NaivePerPartitionStructureVerdicts(
    const DirectorySchema& schema) const {
  LegalityChecker checker(schema);
  std::vector<bool> verdicts;
  verdicts.push_back(checker.CheckStructure(*glue_));
  for (const NamingContext& context : contexts_) {
    verdicts.push_back(checker.CheckStructure(*context.directory));
  }
  return verdicts;
}

}  // namespace ldapbound
