// Concurrency / hostile-client hammering of the wire front end (run
// under TSan via the `concurrency` ctest label, and under ASan in the
// sanitizer sweep): slow byte-at-a-time clients, half-closed
// connections, a disconnect storm racing in-flight responses, and
// overload sheds at the dispatch bound. The invariants: the process
// never dies (no SIGPIPE, no data race), every shed is retryable, and
// the directory is exactly consistent afterwards.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "server/directory_server.h"
#include "server/net_server.h"
#include "server/wal.h"
#include "server/wire.h"

namespace ldapbound {
namespace {

constexpr char kSchema[] = R"(
attribute ou string
attribute uid string
attribute name string

class orgUnit : top {
  require ou
}
class person : top {
  require uid, name
}
)";

DistinguishedName Dn(const std::string& s) {
  return *DistinguishedName::Parse(s);
}

int Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  timeval timeout{20, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return fd;
}

bool SendAll(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one response frame from `fd` into `buffer`; false on EOF.
bool ReadResponse(int fd, std::string& buffer, WireResponse* out) {
  for (;;) {
    while (buffer.size() >= 4) {
      WireCursor header(std::string_view(buffer).substr(0, 4));
      uint32_t payload_len = *header.GetU32();
      if (buffer.size() < 4 + static_cast<size_t>(payload_len)) break;
      auto response = DecodeResponsePayload(
          std::string_view(buffer).substr(4, payload_len));
      buffer.erase(0, 4 + payload_len);
      if (!response.ok()) return false;
      *out = std::move(*response);
      return true;
    }
    char buf[4096];
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) return false;
    buffer.append(buf, static_cast<size_t>(n));
  }
}

class NetServerConcurrencyTest : public ::testing::Test {
 protected:
  NetServerConcurrencyTest()
      : server_(DirectoryServer::Create(kSchema).value()) {
    EntrySpec ou;
    ou.classes = {"top", "orgUnit"};
    ou.values = {{"ou", "load"}};
    EXPECT_TRUE(server_.Add(Dn("ou=load"), std::move(ou)).ok());
    for (int i = 0; i < 8; ++i) {
      EntrySpec person;
      person.classes = {"top", "person"};
      std::string uid = "u" + std::to_string(i);
      person.values = {{"uid", uid}, {"name", "user " + uid}};
      EXPECT_TRUE(
          server_.Add(Dn("uid=" + uid + ",ou=load"), std::move(person))
              .ok());
    }
  }

  void StartNet(NetServerOptions options = {}) {
    auto net = NetServer::Start(&server_, options);
    ASSERT_TRUE(net.ok()) << net.status().ToString();
    net_ = std::move(*net);
  }

  DirectoryServer server_;
  std::unique_ptr<NetServer> net_;
};

// A byte-at-a-time client must be reassembled by the partial-frame
// buffering, concurrently with fast clients on other connections.
TEST_F(NetServerConcurrencyTest, SlowClientsReassembleWhileOthersRace) {
  StartNet();
  std::atomic<bool> stop{false};
  std::thread fast([&] {
    int fd = Connect(net_->port());
    ASSERT_GE(fd, 0);
    std::string buffer;
    uint64_t id = 1000;
    while (!stop.load()) {
      ASSERT_TRUE(SendAll(
          fd, EncodeSearchRequest(id, "ou=load", 2, "(objectClass=person)")));
      WireResponse response;
      ASSERT_TRUE(ReadResponse(fd, buffer, &response));
      ASSERT_EQ(response.request_id, id);
      ++id;
    }
    ::close(fd);
  });

  int slow = Connect(net_->port());
  ASSERT_GE(slow, 0);
  std::string frame = EncodeSearchRequest(7, "ou=load", 2, "(uid=u3)");
  for (char byte : frame) {
    ASSERT_TRUE(SendAll(slow, std::string_view(&byte, 1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string buffer;
  WireResponse response;
  ASSERT_TRUE(ReadResponse(slow, buffer, &response));
  EXPECT_EQ(response.request_id, 7u);
  EXPECT_TRUE(response.ok()) << response.message;
  EXPECT_EQ(DecodeSearchResponseBody(response.body)->size(), 1u);
  ::close(slow);

  stop.store(true);
  fast.join();
}

// shutdown(SHUT_WR) after the last request is the polite way to end a
// wire conversation: the server must still deliver every owed response
// before closing.
TEST_F(NetServerConcurrencyTest, HalfClosedClientsStillGetTheirResponses) {
  StartNet();
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      int fd = Connect(net_->port());
      if (fd < 0) {
        failures.fetch_add(1);
        return;
      }
      std::string batch;
      for (uint64_t i = 0; i < 4; ++i) {
        batch += EncodeSearchRequest(c * 100 + i, "ou=load", 2, "");
      }
      if (!SendAll(fd, batch)) failures.fetch_add(1);
      ::shutdown(fd, SHUT_WR);  // EOF reaches the server first
      std::string buffer;
      int got = 0;
      WireResponse response;
      while (ReadResponse(fd, buffer, &response)) {
        if (!response.ok()) failures.fetch_add(1);
        ++got;
      }
      if (got != 4) failures.fetch_add(1);
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// Clients that connect, fire requests, and vanish mid-response — with
// abortive RST closes — must never take the server down (the SIGPIPE
// regression at storm scale) or corrupt another connection's stream.
TEST_F(NetServerConcurrencyTest, DisconnectStormLeavesTheServerServing) {
  StartNet();
  std::vector<std::thread> storm;
  for (int t = 0; t < 8; ++t) {
    storm.emplace_back([&, t] {
      for (int round = 0; round < 25; ++round) {
        int fd = Connect(net_->port());
        if (fd < 0) continue;
        std::string burst;
        for (uint64_t i = 0; i < 8; ++i) {
          burst += EncodeSearchRequest(i, "ou=load", 2,
                                       "(objectClass=person)");
        }
        SendAll(fd, burst);
        if (round % 2 == 0) {
          // Abortive close: RST instead of FIN, so the server's writes
          // hit ECONNRESET/EPIPE as hard as possible.
          struct linger abort_close = {1, 0};
          ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_close,
                       sizeof(abort_close));
        }
        ::close(fd);
      }
    });
  }
  // A well-behaved client runs closed-loop through the whole storm.
  std::atomic<bool> stop{false};
  std::thread steady([&] {
    int fd = Connect(net_->port());
    ASSERT_GE(fd, 0);
    std::string buffer;
    uint64_t id = 1;
    while (!stop.load()) {
      ASSERT_TRUE(SendAll(fd, EncodePingRequest(id)));
      WireResponse response;
      ASSERT_TRUE(ReadResponse(fd, buffer, &response));
      ASSERT_EQ(response.request_id, id);
      ++id;
    }
    ::close(fd);
  });
  for (std::thread& t : storm) t.join();
  stop.store(true);
  steady.join();

  // Still serving, nothing leaked into the directory.
  int fd = Connect(net_->port());
  ASSERT_GE(fd, 0);
  std::string buffer;
  WireResponse response;
  ASSERT_TRUE(SendAll(fd, EncodeValidateRequest(9)));
  ASSERT_TRUE(ReadResponse(fd, buffer, &response));
  EXPECT_TRUE(response.ok()) << response.message;
  auto verdict = DecodeValidateResponseBody(response.body);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->num_entries, 9u);
  ::close(fd);
}

// A tiny dispatch queue under pipelined fire-hose load: every response
// is either OK or an explicitly retryable shed — never a hang, never a
// silent drop, and the queue bound actually binds.
TEST_F(NetServerConcurrencyTest, DispatchBoundShedsRetryablyUnderPressure) {
  NetServerOptions options;
  options.max_pending_ops = 2;
  options.worker_threads = 1;
  StartNet(options);

  std::atomic<uint64_t> ok{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&] {
      int fd = Connect(net_->port());
      ASSERT_GE(fd, 0);
      constexpr int kBurst = 32;
      std::string burst;
      for (uint64_t i = 0; i < kBurst; ++i) {
        burst += EncodeSearchRequest(i, "ou=load", 2,
                                     "(objectClass=person)");
      }
      ASSERT_TRUE(SendAll(fd, burst));
      std::string buffer;
      for (int i = 0; i < kBurst; ++i) {
        WireResponse response;
        ASSERT_TRUE(ReadResponse(fd, buffer, &response));
        if (response.ok()) {
          ok.fetch_add(1);
        } else if (response.code == WireCode::kOverloaded &&
                   response.retryable) {
          shed.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load() + shed.load(), 6u * 32u);
  EXPECT_EQ(other.load(), 0u);
  EXPECT_EQ(net_->stats().ops_shed, shed.load());
}

// Mixed read/write traffic over many connections: wire adds/deletes
// interleave with snapshot searches and validates; afterwards the
// directory holds exactly the seed entries again.
TEST_F(NetServerConcurrencyTest, MixedOpsFromManyConnectionsStayConsistent) {
  StartNet();
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      int fd = Connect(net_->port());
      if (fd < 0) {
        failures.fetch_add(1);
        return;
      }
      std::string buffer;
      WireResponse response;
      auto call = [&](const std::string& frame) -> bool {
        return SendAll(fd, frame) && ReadResponse(fd, buffer, &response);
      };
      for (uint64_t round = 0; round < 20; ++round) {
        std::string uid =
            "w" + std::to_string(c) + "n" + std::to_string(round);
        std::string dn = "uid=" + uid + ",ou=load";
        if (!call(EncodeAddRequest(1, dn, {"top", "person"},
                                   {{"uid", uid}, {"name", uid}})) ||
            !response.ok()) {
          failures.fetch_add(1);
          break;
        }
        if (!call(EncodeSearchRequest(2, "ou=load", 2,
                                      "(uid=" + uid + ")")) ||
            !response.ok() ||
            DecodeSearchResponseBody(response.body)->size() != 1) {
          failures.fetch_add(1);
          break;
        }
        if (!call(EncodeValidateRequest(3)) || !response.ok()) {
          failures.fetch_add(1);
          break;
        }
        if (!call(EncodeDeleteRequest(4, dn)) || !response.ok()) {
          failures.fetch_add(1);
          break;
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_.directory().NumEntries(), 9u);  // seed only
  EXPECT_TRUE(server_.IsLegal());
}

// Snapshot-pinned paged scans racing group-commit writers on a
// two-reactor front end: every scan must observe one consistent
// snapshot — all eight seed persons exactly once, no duplicate or torn
// entries — no matter how many new versions the writers publish between
// its pages, and the cross-reactor completion routing (worker thread ->
// owning reactor's eventfd) must be TSan-clean.
TEST_F(NetServerConcurrencyTest, PagedReadsRaceGroupCommitWriters) {
  namespace fs = std::filesystem;
  std::string wal_dir =
      ::testing::TempDir() + "ldapbound_net_paged_race/wal";
  fs::remove_all(::testing::TempDir() + "ldapbound_net_paged_race");
  fs::create_directories(wal_dir);
  WalOptions wal_options;
  wal_options.group_commit_max_batch = 8;
  wal_options.group_commit_hold_us = 200;
  ASSERT_TRUE(server_.EnableWal(wal_dir, wal_options).ok());

  NetServerOptions options;
  options.reactors = 2;
  StartNet(options);

  std::atomic<bool> writers_done{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> scans{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      int fd = Connect(net_->port());
      if (fd < 0) {
        failures.fetch_add(1);
        return;
      }
      std::string buffer;
      uint64_t id = 1;
      while (!writers_done.load() || scans.load() < 3) {
        // One full paged scan; the cursor pins whatever snapshot was
        // current at page one.
        std::set<std::string> dns;
        std::string cookie;
        bool more = true;
        bool aborted = false;
        while (more) {
          WireResponse response;
          if (!SendAll(fd, EncodeSearchEntriesRequest(
                               id++, "ou=load", 2, "(objectClass=person)",
                               3, cookie)) ||
              !ReadResponse(fd, buffer, &response)) {
            failures.fetch_add(1);
            aborted = true;
            break;
          }
          if (!response.ok()) {
            // The only legitimate non-OK is an expired cursor (not
            // expected at this timescale, but it is retryable).
            if (response.code != WireCode::kCursorExpired) {
              failures.fetch_add(1);
            }
            aborted = true;
            break;
          }
          auto page = DecodeSearchEntriesResponseBody(response.body);
          if (!page.ok()) {
            failures.fetch_add(1);
            aborted = true;
            break;
          }
          for (const WireEntry& entry : page->entries) {
            if (!dns.insert(entry.dn).second) failures.fetch_add(1);
            if (entry.classes.size() != 2 || entry.values.size() != 2) {
              failures.fetch_add(1);  // torn payload
            }
          }
          more = page->has_more;
          cookie = page->cookie;
        }
        if (aborted) continue;
        // A consistent snapshot always holds every seed person.
        for (int i = 0; i < 8; ++i) {
          if (dns.count("uid=u" + std::to_string(i) + ",ou=load") != 1) {
            failures.fetch_add(1);
          }
        }
        scans.fetch_add(1);
      }
      ::close(fd);
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      int fd = Connect(net_->port());
      if (fd < 0) {
        failures.fetch_add(1);
        return;
      }
      std::string buffer;
      WireResponse response;
      auto call = [&](const std::string& frame) -> bool {
        return SendAll(fd, frame) && ReadResponse(fd, buffer, &response) &&
               response.ok();
      };
      for (uint64_t round = 0; round < 15; ++round) {
        std::string uid =
            "w" + std::to_string(w) + "n" + std::to_string(round);
        std::string dn = "uid=" + uid + ",ou=load";
        if (!call(EncodeAddRequest(1, dn, {"top", "person"},
                                   {{"uid", uid}, {"name", uid}})) ||
            !call(EncodeDeleteRequest(2, dn))) {
          failures.fetch_add(1);
          break;
        }
      }
      ::close(fd);
    });
  }

  for (std::thread& t : writers) t.join();
  writers_done.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(scans.load(), 3u);
  EXPECT_EQ(server_.directory().NumEntries(), 9u);  // seed only
  EXPECT_EQ(net_->stats().reactors, 2u);
}

}  // namespace
}  // namespace ldapbound
