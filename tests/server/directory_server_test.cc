#include "server/directory_server.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ldapbound {
namespace {

constexpr char kSchema[] = R"(
attribute name string
attribute uid string
attribute mail string
attribute ou string
key uid

class team : top {
  require ou
}
class person : top {
  require name, uid
  aux online
}
auxclass online {
  allow mail
}
structure {
  require team descendant person
  forbid person child top
}
)";

DistinguishedName Dn(const std::string& s) {
  return *DistinguishedName::Parse(s);
}

EntrySpec TeamSpec(const std::string& ou) {
  EntrySpec spec;
  spec.classes = {"team", "top"};
  spec.values = {{"ou", ou}};
  return spec;
}

EntrySpec PersonSpec(const std::string& uid) {
  EntrySpec spec;
  spec.classes = {"person", "top"};
  spec.values = {{"uid", uid}, {"name", "p " + uid}};
  return spec;
}

class DirectoryServerTest : public ::testing::Test {
 protected:
  DirectoryServerTest() : server_(DirectoryServer::Create(kSchema).value()) {
    // A team must employ someone: build it in one transaction.
    UpdateTransaction txn;
    txn.Insert(Dn("ou=research"), TeamSpec("research"));
    txn.Insert(Dn("uid=ada,ou=research"), PersonSpec("ada"));
    EXPECT_TRUE(server_.Apply(txn).ok());
  }

  DirectoryServer server_;
};

TEST(DirectoryServerCreateTest, RejectsBadSchemaText) {
  auto server = DirectoryServer::Create("class x : nowhere {\n}\n");
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
}

TEST(DirectoryServerCreateTest, RejectsInconsistentSchema) {
  auto server = DirectoryServer::Create(
      "class a : top {\n}\nclass b : top {\n}\n"
      "structure {\n"
      "  require-class a\n"
      "  require a descendant b\n"
      "  forbid a descendant b\n"
      "}\n");
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInconsistent);
}

TEST_F(DirectoryServerTest, AddAndSearch) {
  ASSERT_TRUE(server_.Add(Dn("uid=bob,ou=research"), PersonSpec("bob")).ok());
  auto hits = server_.Search("ou=research", "(objectClass=person)");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
  EXPECT_TRUE(server_.IsLegal());
  EXPECT_EQ(server_.stats().adds, 1u);
  EXPECT_EQ(server_.stats().searches, 1u);
}

TEST_F(DirectoryServerTest, SchemaGuardsAdd) {
  // A person with a child is forbidden.
  Status status =
      server_.Add(Dn("uid=x,uid=ada,ou=research"), PersonSpec("x"));
  EXPECT_EQ(status.code(), StatusCode::kIllegal);
  // Duplicate key value.
  status = server_.Add(Dn("uid=ada2,ou=research"), PersonSpec("ada"));
  EXPECT_EQ(status.code(), StatusCode::kIllegal);
  EXPECT_EQ(server_.stats().rejected, 2u);
  EXPECT_TRUE(server_.IsLegal());
}

TEST_F(DirectoryServerTest, DeleteGuarded) {
  // Removing the only person violates team ->> person.
  Status status = server_.Delete(Dn("uid=ada,ou=research"));
  EXPECT_EQ(status.code(), StatusCode::kIllegal);
  // With a second person, deletion is fine.
  ASSERT_TRUE(server_.Add(Dn("uid=bob,ou=research"), PersonSpec("bob")).ok());
  EXPECT_TRUE(server_.Delete(Dn("uid=ada,ou=research")).ok());
  EXPECT_TRUE(server_.IsLegal());
  EXPECT_EQ(server_.stats().deletes, 1u);
}

TEST_F(DirectoryServerTest, ModifyValues) {
  AttributeId mail = *server_.vocab().FindAttribute("mail");
  ClassId online = *server_.vocab().FindClass("online");

  // Adding mail without the online class is a content violation...
  DirectoryServer::Modification add_mail;
  add_mail.kind = DirectoryServer::Modification::Kind::kAddValue;
  add_mail.attr = mail;
  add_mail.value = Value("ada@example.org");
  Status status = server_.Modify(Dn("uid=ada,ou=research"), {add_mail});
  EXPECT_EQ(status.code(), StatusCode::kIllegal);
  EXPECT_TRUE(server_.IsLegal());  // rolled back

  // ...but adding the class and the value together is fine.
  DirectoryServer::Modification add_online;
  add_online.kind = DirectoryServer::Modification::Kind::kAddClass;
  add_online.cls = online;
  ASSERT_TRUE(
      server_.Modify(Dn("uid=ada,ou=research"), {add_online, add_mail}).ok());
  auto hits = server_.Search("ou=research", "(mail=*)");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  EXPECT_EQ(server_.stats().modifies, 1u);
}

TEST_F(DirectoryServerTest, ModifyClassesGuardedByStructure) {
  // Dropping ada's person class would break team ->> person: rolled back.
  ClassId person = *server_.vocab().FindClass("person");
  DirectoryServer::Modification drop;
  drop.kind = DirectoryServer::Modification::Kind::kRemoveClass;
  drop.cls = person;
  Status status = server_.Modify(Dn("uid=ada,ou=research"), {drop});
  EXPECT_EQ(status.code(), StatusCode::kIllegal);
  EXPECT_TRUE(server_.IsLegal());
  auto hits = server_.Search("ou=research", "(objectClass=person)");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST_F(DirectoryServerTest, ModifyDnMovesSubtree) {
  // Second team, staffed, then move bob over.
  UpdateTransaction txn;
  txn.Insert(Dn("ou=ops"), TeamSpec("ops"));
  txn.Insert(Dn("uid=bob,ou=ops"), PersonSpec("bob"));
  ASSERT_TRUE(server_.Apply(txn).ok());
  ASSERT_TRUE(server_.Add(Dn("uid=eve,ou=ops"), PersonSpec("eve")).ok());

  ASSERT_TRUE(server_.ModifyDn(Dn("uid=bob,ou=ops"), Dn("ou=research")).ok());
  EXPECT_TRUE(ResolveDn(server_.directory(), Dn("uid=bob,ou=research")).ok());
  EXPECT_FALSE(ResolveDn(server_.directory(), Dn("uid=bob,ou=ops")).ok());
  EXPECT_TRUE(server_.IsLegal());
}

TEST_F(DirectoryServerTest, ModifyDnGuarded) {
  // Moving ada out of research would leave the team personless.
  UpdateTransaction txn;
  txn.Insert(Dn("ou=ops"), TeamSpec("ops"));
  txn.Insert(Dn("uid=bob,ou=ops"), PersonSpec("bob"));
  ASSERT_TRUE(server_.Apply(txn).ok());
  Status status = server_.ModifyDn(Dn("uid=ada,ou=research"), Dn("ou=ops"));
  EXPECT_EQ(status.code(), StatusCode::kIllegal);
  // Rolled back: ada is still where she was.
  EXPECT_TRUE(ResolveDn(server_.directory(), Dn("uid=ada,ou=research")).ok());
  EXPECT_TRUE(server_.IsLegal());
}

TEST_F(DirectoryServerTest, ModifyDnRename) {
  ASSERT_TRUE(server_
                  .ModifyDn(Dn("uid=ada,ou=research"), Dn("ou=research"),
                            "uid=lovelace")
                  .ok());
  EXPECT_TRUE(
      ResolveDn(server_.directory(), Dn("uid=lovelace,ou=research")).ok());
  EXPECT_TRUE(server_.IsLegal());
}

TEST_F(DirectoryServerTest, ModifyUnknownEntry) {
  EXPECT_EQ(server_.Modify(Dn("uid=ghost"), {}).code(),
            StatusCode::kNotFound);
}

TEST_F(DirectoryServerTest, ImportExportRoundTrip) {
  std::string ldif = server_.ExportLdif();
  auto server2 = DirectoryServer::Create(kSchema);
  ASSERT_TRUE(server2.ok());
  auto n = server2->ImportLdif(ldif);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(server2->ExportLdif(), ldif);
  EXPECT_TRUE(server2->IsLegal());
}

TEST_F(DirectoryServerTest, ImportRefusesIllegalData) {
  auto server2 = DirectoryServer::Create(kSchema);
  ASSERT_TRUE(server2.ok());
  // A lonely team (no person below) is illegal; import must refuse and
  // leave the directory empty.
  const char* bad =
      "dn: ou=empty\n"
      "objectClass: team\n"
      "objectClass: top\n"
      "ou: empty\n";
  auto n = server2->ImportLdif(bad);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kIllegal);
  EXPECT_EQ(server2->directory().NumEntries(), 0u);
}

TEST_F(DirectoryServerTest, SearchStringErrors) {
  EXPECT_FALSE(server_.Search("ou=research", "((broken").ok());
  EXPECT_FALSE(server_.Search("ou=nowhere", "(uid=*)").ok());
}

TEST_F(DirectoryServerTest, StatsAreASnapshot) {
  DirectoryServer::Stats before = server_.stats();
  ASSERT_TRUE(server_.Search("", "(uid=ada)").ok());
  ASSERT_TRUE(
      server_.Add(Dn("uid=bob,ou=research"), PersonSpec("bob")).ok());
  // The earlier snapshot is unchanged; a fresh one sees the traffic.
  EXPECT_EQ(before.searches, 0u);
  DirectoryServer::Stats after = server_.stats();
  EXPECT_EQ(after.searches, 1u);
  EXPECT_EQ(after.adds, 1u);
}

TEST_F(DirectoryServerTest, ConcurrentSearchesWhileStatsMutate) {
  // The documented concurrency contract: const Searches may run
  // concurrently with each other and with the stats they bump. Hammer
  // Search from several threads; under TSan this is the regression test
  // for the atomic counters, and the final count proves no lost updates.
  constexpr int kThreads = 8;
  constexpr int kSearchesPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this] {
      for (int i = 0; i < kSearchesPerThread; ++i) {
        auto hits = server_.Search("", "(objectClass=person)");
        ASSERT_TRUE(hits.ok());
        ASSERT_EQ(hits->size(), 1u);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(server_.stats().searches,
            static_cast<size_t>(kThreads) * kSearchesPerThread);
}

}  // namespace
}  // namespace ldapbound
