// WAL group commit: concurrent committers batch into one fsync'd frame
// group, acks only after the group reaches disk, and the recovered state
// always equals the acknowledged state. Covers the single-writer round
// trip (a group of one), genuine multi-writer batching, the
// read-only-on-flush-failure contract, and Compact() draining the queue.

#include "server/group_commit.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "server/directory_server.h"
#include "tests/server/wal_workload.h"
#include "util/failpoint.h"

namespace ldapbound {
namespace {

namespace fs = std::filesystem;
using testing::ApplyWalCommit;
using testing::ExpectedLdifAfter;
using testing::kWalSchema;
using testing::WalDn;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "ldapbound_group_commit/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

WalOptions GroupOptions(size_t max_batch, uint32_t hold_us) {
  WalOptions options;
  options.group_commit_max_batch = max_batch;
  options.group_commit_hold_us = hold_us;
  return options;
}

TEST(GroupCommitTest, DisabledByDefault) {
  auto server = DirectoryServer::Create(kWalSchema);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->EnableWal(FreshDir("off"), WalOptions{}).ok());
  EXPECT_EQ(server->group_commit(), nullptr);
}

TEST(GroupCommitTest, SingleWriterRoundTripAndRecovery) {
  std::string dir = FreshDir("single");
  auto server = DirectoryServer::Create(kWalSchema);
  ASSERT_TRUE(server.ok());
  // hold_us = 0: a lone writer flushes immediately as a group of one.
  ASSERT_TRUE(server->EnableWal(dir, GroupOptions(4, 0)).ok());
  ASSERT_NE(server->group_commit(), nullptr);

  constexpr uint64_t kCommits = 20;
  for (uint64_t i = 1; i <= kCommits; ++i) {
    ASSERT_TRUE(ApplyWalCommit(*server, i).ok()) << "commit " << i;
  }
  EXPECT_EQ(server->group_commit()->commits_flushed(), kCommits);
  EXPECT_GE(server->group_commit()->groups_flushed(), 1u);
  EXPECT_EQ(server->ExportLdif(), *ExpectedLdifAfter(kCommits));

  // Every acked commit is durable: a fresh recovery replays to the same
  // state, and group commit may be re-enabled (or not) independently.
  auto recovered = DirectoryServer::Recover(dir, GroupOptions(4, 0));
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->ExportLdif(), *ExpectedLdifAfter(kCommits));
  EXPECT_NE(recovered->group_commit(), nullptr);
  EXPECT_TRUE(ApplyWalCommit(*recovered, kCommits + 1).ok());
}

TEST(GroupCommitTest, ConcurrentWritersShareFsyncs) {
  std::string dir = FreshDir("concurrent");
  auto server = DirectoryServer::Create(kWalSchema);
  ASSERT_TRUE(server.ok());
  // A generous hold window so followers reliably pile into the leader's
  // group even on a single-core machine.
  ASSERT_TRUE(server->EnableWal(dir, GroupOptions(4, 50000)).ok());

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10;
  std::vector<std::thread> writers;
  std::vector<Status> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&server, &results, t] {
      DirectoryServer& s = *server;
      const std::string team_dn = "ou=gc" + std::to_string(t);
      EntrySpec team_spec;
      team_spec.classes = {"team", "top"};
      team_spec.values = {{"ou", "gc" + std::to_string(t)}};
      auto person_spec = [&](uint64_t i) {
        EntrySpec spec;
        spec.classes = {"person", "top"};
        spec.values = {
            {"uid", "gc" + std::to_string(t) + "-" + std::to_string(i)},
            {"name", "writer " + std::to_string(t)}};
        return spec;
      };
      UpdateTransaction txn;
      txn.Insert(WalDn(team_dn), team_spec);
      txn.Insert(WalDn("uid=gc" + std::to_string(t) + "-0," + team_dn),
                 person_spec(0));
      Status status = s.Apply(txn);
      for (uint64_t i = 1; status.ok() && i <= kPerThread; ++i) {
        status = s.Add(WalDn("uid=gc" + std::to_string(t) + "-" +
                             std::to_string(i) + "," + team_dn),
                       person_spec(i));
      }
      results[t] = status;
    });
  }
  for (std::thread& w : writers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(results[t].ok()) << "writer " << t << ": " << results[t];
  }

  const GroupCommitQueue& q = *server->group_commit();
  constexpr uint64_t kTotal = kThreads * (kPerThread + 1);
  EXPECT_EQ(q.commits_flushed(), kTotal);
  // Batching actually happened: fewer fsync'd groups than commits.
  EXPECT_LT(q.groups_flushed(), kTotal);

  // Durability: recovery reproduces exactly the live state.
  EXPECT_TRUE(server->IsLegal());
  auto recovered = DirectoryServer::Recover(dir, WalOptions{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->ExportLdif(), server->ExportLdif());
}

TEST(GroupCommitTest, CompactDrainsQueueAndPreservesState) {
  std::string dir = FreshDir("compact");
  auto server = DirectoryServer::Create(kWalSchema);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->EnableWal(dir, GroupOptions(8, 1000)).ok());

  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(ApplyWalCommit(*server, i).ok());
  }
  ASSERT_TRUE(server->Compact().ok());
  for (uint64_t i = 11; i <= 15; ++i) {
    ASSERT_TRUE(ApplyWalCommit(*server, i).ok());
  }

  auto recovered = DirectoryServer::Recover(dir, WalOptions{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->ExportLdif(), *ExpectedLdifAfter(15));
}

TEST(GroupCommitTest, FlushFailureFailsWaiterAndTurnsServerReadOnly) {
  if (!Failpoints::enabled()) {
    GTEST_SKIP() << "failpoints compiled out (LDAPBOUND_FAILPOINTS=OFF)";
  }
  std::string dir = FreshDir("flush-failure");
  auto server = DirectoryServer::Create(kWalSchema);
  ASSERT_TRUE(server.ok());
  // Arm AFTER EnableWal so the initial snapshot is not what fails.
  ASSERT_TRUE(server->EnableWal(dir, GroupOptions(4, 0)).ok());
  Failpoints::Reset();
  Failpoints::Arm("wal.fsync", Failpoints::Action::kError, 1);

  // The group's fsync fails, so the waiter must see the error even though
  // the in-memory apply succeeded, and the server goes read-only.
  Status status = ApplyWalCommit(*server, 1);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(server->wal_failed());

  Failpoints::Reset();
  Status next = ApplyWalCommit(*server, 2);
  EXPECT_EQ(next.code(), StatusCode::kUnavailable)
      << "server accepted a write after a failed group flush";
}

}  // namespace
}  // namespace ldapbound
