#include "server/slow_ops.h"

#include <gtest/gtest.h>

#include <string>

#include "server/directory_server.h"
#include "update/transaction.h"

namespace ldapbound {
namespace {

SlowOp MakeOp(uint64_t id, uint64_t duration_ns) {
  SlowOp op;
  op.op_id = id;
  op.op = "add";
  op.target = "uid=u" + std::to_string(id);
  op.outcome = "ok";
  op.duration_ns = duration_ns;
  return op;
}

TEST(SlowOpLogTest, KeepsTheSlowestAtCapacity) {
  SlowOpLog log(/*capacity=*/3);
  for (uint64_t i = 1; i <= 6; ++i) {
    log.Record(MakeOp(i, /*duration_ns=*/i * 100));
  }
  std::vector<SlowOp> ops = log.Snapshot();
  ASSERT_EQ(ops.size(), 3u);
  // Slowest first: ops 6, 5, 4.
  EXPECT_EQ(ops[0].op_id, 6u);
  EXPECT_EQ(ops[1].op_id, 5u);
  EXPECT_EQ(ops[2].op_id, 4u);
  EXPECT_EQ(log.recorded(), 6u);
}

TEST(SlowOpLogTest, FasterNewcomerDoesNotEvict) {
  SlowOpLog log(/*capacity=*/2);
  log.Record(MakeOp(1, 500));
  log.Record(MakeOp(2, 400));
  log.Record(MakeOp(3, 100));  // faster than everything retained
  std::vector<SlowOp> ops = log.Snapshot();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].op_id, 1u);
  EXPECT_EQ(ops[1].op_id, 2u);
}

TEST(SlowOpLogTest, MinDurationFilters) {
  SlowOpLog log(/*capacity=*/8, /*min_duration_ns=*/1000);
  log.Record(MakeOp(1, 999));
  log.Record(MakeOp(2, 1000));
  EXPECT_EQ(log.Snapshot().size(), 1u);
  EXPECT_EQ(log.recorded(), 2u);  // offered ops count even when filtered
}

TEST(SlowOpLogTest, RenderJsonEscapesAndNests) {
  SlowOpLog log(/*capacity=*/2);
  SlowOp op = MakeOp(1, 5000);
  op.target = "uid=\"quoted\"";
  op.detail = "line1\nline2";
  op.spans.push_back(Tracer::Event{"server.apply", 0, 10, 20, 1});
  log.Record(std::move(op));
  std::string json = log.RenderJson();
  EXPECT_NE(json.find("\"capacity\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"target\":\"uid=\\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"line1\\nline2\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\":[{\"name\":\"server.apply\","
                      "\"start_ns\":10,\"dur_ns\":20}]"),
            std::string::npos)
      << json;
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(SlowOpLogTest, RetentionFloorTracksMinDurationThenFastestRetained) {
  SlowOpLog log(/*capacity=*/2, /*min_duration_ns=*/100);
  // Not full: the floor is the min-duration gate.
  EXPECT_EQ(log.retention_floor_ns(), 100u);
  log.Record(MakeOp(1, 500));
  EXPECT_EQ(log.retention_floor_ns(), 100u);
  // Full: a newcomer must be strictly slower than the fastest retained.
  log.Record(MakeOp(2, 300));
  EXPECT_EQ(log.retention_floor_ns(), 301u);
  log.Record(MakeOp(3, 400));  // evicts op 2; fastest retained is now 400
  EXPECT_EQ(log.retention_floor_ns(), 401u);
}

TEST(SlowOpLogTest, WireRequestIdRendersOnlyWhenSet) {
  SlowOpLog log(/*capacity=*/4);
  log.Record(MakeOp(1, 5000));  // a directory-level op: no request_id
  SlowOp wire = MakeOp(2, 6000);
  wire.wire_request_id = 77;
  log.Record(std::move(wire));
  std::string json = log.RenderJson();
  EXPECT_NE(json.find("\"request_id\":77"), std::string::npos) << json;
  // Exactly one record carries the field.
  EXPECT_EQ(json.find("\"request_id\""), json.rfind("\"request_id\""));
}

constexpr char kSchema[] = R"(
attribute name string

class person : top {
  require name
}
)";

Result<DirectoryServer> MakeServer() {
  return DirectoryServer::Create(kSchema);
}

DistinguishedName Dn(const std::string& s) {
  return *DistinguishedName::Parse(s);
}

EntrySpec PersonSpec(const std::string& name) {
  EntrySpec spec;
  spec.classes = {"person", "top"};
  spec.values = {{"name", name}};
  return spec;
}

TEST(ServerSlowOpsTest, OperationsAreRecordedWithSpansAndOutcomes) {
  auto server = MakeServer();
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  server->EnableSlowOps(/*capacity=*/16);
  ASSERT_NE(server->slow_ops(), nullptr);

  ASSERT_TRUE(server->Add(Dn("name=alice"), PersonSpec("alice")).ok());

  // A rejected add: person entries require a name.
  EntrySpec bad;
  bad.classes = {"person", "top"};
  ASSERT_FALSE(server->Add(Dn("name=ghost"), bad).ok());

  std::vector<SlowOp> ops = server->slow_ops()->Snapshot();
  ASSERT_EQ(ops.size(), 2u);  // Add delegates to Apply: tracked ONCE each

  bool saw_ok = false, saw_rejected = false;
  for (const SlowOp& op : ops) {
    EXPECT_EQ(op.op, "add");
    EXPECT_GT(op.op_id, 0u);
    EXPECT_GT(op.duration_ns, 0u);
    // The calling thread's spans were captured (at least server.apply).
    bool has_apply_span = false;
    for (const Tracer::Event& e : op.spans) {
      if (std::string(e.name) == "server.apply") has_apply_span = true;
      EXPECT_EQ(e.op_id, op.op_id);
    }
    EXPECT_TRUE(has_apply_span) << op.op << " " << op.target;
    if (op.outcome == "ok") saw_ok = true;
    if (op.outcome == "rejected") {
      saw_rejected = true;
      EXPECT_FALSE(op.detail.empty());
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_rejected);

  // Op ids are distinct and the global tracer stayed untouched.
  EXPECT_NE(ops[0].op_id, ops[1].op_id);
  EXPECT_FALSE(Tracer::Default().enabled());
}

TEST(ServerSlowOpsTest, RejectedModifyCarriesConstraintExplain) {
  auto server = MakeServer();
  ASSERT_TRUE(server.ok());
  server->EnableSlowOps();
  ASSERT_TRUE(server->Add(Dn("name=bob"), PersonSpec("bob")).ok());

  // Removing the required name violates the content schema.
  DirectoryServer::Modification drop;
  drop.kind = DirectoryServer::Modification::Kind::kRemoveValue;
  drop.attr = *server->vocab().FindAttribute("name");
  drop.value = Value("bob");
  ASSERT_FALSE(server->Modify(Dn("name=bob"), {drop}).ok());

  bool found = false;
  for (const SlowOp& op : server->slow_ops()->Snapshot()) {
    if (op.op == "modify" && op.outcome == "rejected") {
      found = true;
      EXPECT_NE(op.explain.find("content pass"), std::string::npos)
          << op.explain;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ServerSlowOpsTest, StatsSnapshotIncludesImports) {
  auto server = MakeServer();
  ASSERT_TRUE(server.ok());
  auto imported = server->ImportLdif(
      "dn: name=carol\nobjectClass: person\nobjectClass: top\nname: carol\n");
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(server->stats().imports, 1u);
}

}  // namespace
}  // namespace ldapbound
