#include "server/wire.h"

#include <gtest/gtest.h>

#include <string>

namespace ldapbound {
namespace {

// Extracts the single frame `bytes` must contain.
WireRequest MustExtract(const std::string& bytes) {
  WireRequest request;
  size_t consumed = 0;
  auto ok = ExtractFrame(bytes, kMaxFramePayload, &request, &consumed);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(*ok);
  EXPECT_EQ(consumed, bytes.size());
  return request;
}

TEST(WireTest, PrimitivesRoundTripLittleEndian) {
  std::string out;
  PutU8(out, 0xAB);
  PutU16(out, 0x1234);
  PutU32(out, 0xDEADBEEF);
  PutU64(out, 0x0102030405060708ull);
  PutString(out, "hi");
  // Spot-check the layout: u16 and wider are little-endian on the wire.
  EXPECT_EQ(static_cast<uint8_t>(out[1]), 0x34);
  EXPECT_EQ(static_cast<uint8_t>(out[2]), 0x12);

  WireCursor cursor(out);
  EXPECT_EQ(*cursor.GetU8(), 0xAB);
  EXPECT_EQ(*cursor.GetU16(), 0x1234);
  EXPECT_EQ(*cursor.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*cursor.GetU64(), 0x0102030405060708ull);
  EXPECT_EQ(*cursor.GetString(), "hi");
  EXPECT_TRUE(cursor.exhausted());
}

TEST(WireTest, CursorRejectsTruncationInsteadOfOverreading) {
  std::string out;
  PutU32(out, 100);  // string length claims 100 bytes; none follow
  WireCursor cursor(out);
  EXPECT_FALSE(cursor.GetString().ok());

  WireCursor empty("");
  EXPECT_FALSE(empty.GetU8().ok());
  EXPECT_FALSE(empty.GetU64().ok());
}

TEST(WireTest, SearchRequestRoundTrips) {
  std::string frame = EncodeSearchRequest(7, "ou=load", 2, "(uid=u3)");
  WireRequest request = MustExtract(frame);
  EXPECT_EQ(request.op, WireOp::kSearch);
  EXPECT_EQ(request.request_id, 7u);
  WireCursor body(request.body);
  EXPECT_EQ(*body.GetString(), "ou=load");
  EXPECT_EQ(*body.GetU8(), 2);
  EXPECT_EQ(*body.GetString(), "(uid=u3)");
}

TEST(WireTest, AddRequestRoundTrips) {
  std::string frame = EncodeAddRequest(
      9, "uid=w,ou=load", {"top", "person"},
      {{"uid", "w"}, {"name", "w w"}});
  WireRequest request = MustExtract(frame);
  EXPECT_EQ(request.op, WireOp::kAdd);
  WireCursor body(request.body);
  EXPECT_EQ(*body.GetString(), "uid=w,ou=load");
  EXPECT_EQ(*body.GetU16(), 2);
  EXPECT_EQ(*body.GetString(), "top");
  EXPECT_EQ(*body.GetString(), "person");
  EXPECT_EQ(*body.GetU16(), 2);
  EXPECT_EQ(*body.GetString(), "uid");
  EXPECT_EQ(*body.GetString(), "w");
  EXPECT_EQ(*body.GetString(), "name");
  EXPECT_EQ(*body.GetString(), "w w");
  EXPECT_TRUE(body.exhausted());
}

TEST(WireTest, PartialFramesAskForMoreBytes) {
  std::string frame = EncodeDeleteRequest(3, "uid=u1,ou=load");
  // Every proper prefix is "partial", never an error, never a frame.
  for (size_t len = 0; len < frame.size(); ++len) {
    WireRequest request;
    size_t consumed = 0;
    auto ok = ExtractFrame(std::string_view(frame).substr(0, len),
                           kMaxFramePayload, &request, &consumed);
    ASSERT_TRUE(ok.ok()) << len;
    EXPECT_FALSE(*ok) << len;
  }
  MustExtract(frame);
}

TEST(WireTest, ExtractLeavesTrailingBytesForTheNextFrame) {
  std::string two = EncodePingRequest(1) + EncodeValidateRequest(2);
  WireRequest request;
  size_t consumed = 0;
  auto first = ExtractFrame(two, kMaxFramePayload, &request, &consumed);
  ASSERT_TRUE(first.ok() && *first);
  EXPECT_EQ(request.op, WireOp::kPing);
  EXPECT_EQ(request.request_id, 1u);
  auto second = ExtractFrame(std::string_view(two).substr(consumed),
                             kMaxFramePayload, &request, &consumed);
  ASSERT_TRUE(second.ok() && *second);
  EXPECT_EQ(request.op, WireOp::kValidate);
  EXPECT_EQ(request.request_id, 2u);
}

TEST(WireTest, OversizedAndUndersizedDeclaredLengthsAreProtocolErrors) {
  std::string oversized;
  PutU32(oversized, 1 << 20);
  WireRequest request;
  size_t consumed = 0;
  EXPECT_FALSE(
      ExtractFrame(oversized, /*max_payload=*/1024, &request, &consumed)
          .ok());

  // A declared payload too short to hold op + request_id can never be a
  // valid frame; rejecting it up front keeps the parser from waiting
  // forever on bytes that cannot arrive.
  std::string undersized;
  PutU32(undersized, 3);
  EXPECT_FALSE(
      ExtractFrame(undersized, kMaxFramePayload, &request, &consumed).ok());
}

TEST(WireTest, ResponseRoundTripsWithRetryableFlagAndBody) {
  WireResponse response;
  response.op = WireOp::kSearch;
  response.request_id = 77;
  response.code = WireCode::kOverloaded;
  response.retryable = true;
  response.message = "queue full";
  PutU32(response.body, 0);

  std::string frame = EncodeResponseFrame(response);
  WireCursor header(frame);
  uint32_t payload_len = *header.GetU32();
  ASSERT_EQ(frame.size(), 4 + payload_len);
  auto decoded =
      DecodeResponsePayload(std::string_view(frame).substr(4, payload_len));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, WireOp::kSearch);
  EXPECT_EQ(decoded->request_id, 77u);
  EXPECT_EQ(decoded->code, WireCode::kOverloaded);
  EXPECT_TRUE(decoded->retryable);
  EXPECT_EQ(decoded->message, "queue full");
  EXPECT_EQ(decoded->body.size(), 4u);
}

TEST(WireTest, SearchAndValidateBodiesRoundTrip) {
  std::string body;
  PutU32(body, 3);
  PutU64(body, 5);
  PutU64(body, 9);
  PutU64(body, 12);
  auto ids = DecodeSearchResponseBody(body);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<EntryId>{5, 9, 12}));

  // A count that disagrees with the byte count is a malformed response.
  PutU64(body, 99);
  EXPECT_FALSE(DecodeSearchResponseBody(body).ok());

  std::string validate;
  PutU8(validate, 1);
  PutU64(validate, 17);
  PutU64(validate, 4);
  auto verdict = DecodeValidateResponseBody(validate);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->structure_legal);
  EXPECT_EQ(verdict->num_entries, 17u);
  EXPECT_EQ(verdict->version, 4u);
}

TEST(WireTest, SearchEntriesRequestRoundTrips) {
  std::string frame = EncodeSearchEntriesRequest(
      11, "ou=load", 2, "(objectClass=person)", 64, "cookie-bytes");
  WireRequest request = MustExtract(frame);
  EXPECT_EQ(request.op, WireOp::kSearchEntries);
  EXPECT_EQ(request.request_id, 11u);
  WireCursor body(request.body);
  EXPECT_EQ(*body.GetString(), "ou=load");
  EXPECT_EQ(*body.GetU8(), 2);
  EXPECT_EQ(*body.GetString(), "(objectClass=person)");
  EXPECT_EQ(*body.GetU32(), 64u);
  EXPECT_EQ(*body.GetString(), "cookie-bytes");
  EXPECT_TRUE(body.exhausted());
}

TEST(WireTest, SearchEntriesBodyRoundTrips) {
  // Hand-encode one page of two entries, exactly as the server does.
  std::string body;
  PutU32(body, 2);
  PutU8(body, 1);  // has_more
  PutString(body, "next-cookie");
  PutU64(body, 5);
  PutString(body, "uid=u0,ou=load");
  PutU16(body, 2);
  PutString(body, "top");
  PutString(body, "person");
  PutU16(body, 2);
  PutString(body, "uid");
  PutString(body, "u0");
  PutString(body, "name");
  PutString(body, "user u0");
  PutU64(body, 6);
  PutString(body, "uid=u1,ou=load");
  PutU16(body, 1);
  PutString(body, "top");
  PutU16(body, 0);

  auto page = DecodeSearchEntriesResponseBody(body);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_TRUE(page->has_more);
  EXPECT_EQ(page->cookie, "next-cookie");
  ASSERT_EQ(page->entries.size(), 2u);
  EXPECT_EQ(page->entries[0].id, 5u);
  EXPECT_EQ(page->entries[0].dn, "uid=u0,ou=load");
  EXPECT_EQ(page->entries[0].classes,
            (std::vector<std::string>{"top", "person"}));
  ASSERT_EQ(page->entries[0].values.size(), 2u);
  EXPECT_EQ(page->entries[0].values[0],
            (std::pair<std::string, std::string>{"uid", "u0"}));
  EXPECT_EQ(page->entries[1].id, 6u);
  EXPECT_EQ(page->entries[1].classes, (std::vector<std::string>{"top"}));
  EXPECT_TRUE(page->entries[1].values.empty());

  // Truncating anywhere inside an entry is a malformed response, not an
  // overread.
  for (size_t cut = body.size() - 1; cut > body.size() - 20; --cut) {
    EXPECT_FALSE(
        DecodeSearchEntriesResponseBody(std::string_view(body).substr(0, cut))
            .ok())
        << "cut=" << cut;
  }
}

TEST(WireTest, SearchCookieRoundTripsAndRejectsWrongSizes) {
  WireSearchCookie cookie;
  cookie.cursor_id = 42;
  cookie.snapshot_version = 7;
  cookie.next_label = 0x0102030405060708ull;
  std::string bytes = EncodeSearchCookie(cookie);
  EXPECT_EQ(bytes.size(), 24u);

  auto decoded = DecodeSearchCookie(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->cursor_id, 42u);
  EXPECT_EQ(decoded->snapshot_version, 7u);
  EXPECT_EQ(decoded->next_label, 0x0102030405060708ull);

  // Wire bytes are untrusted: anything but exactly one cookie is
  // rejected (truncated, padded, garbage).
  EXPECT_FALSE(DecodeSearchCookie("").ok());
  EXPECT_FALSE(DecodeSearchCookie("short").ok());
  EXPECT_FALSE(
      DecodeSearchCookie(std::string_view(bytes).substr(0, 23)).ok());
  EXPECT_FALSE(DecodeSearchCookie(bytes + "x").ok());
}

TEST(WireTest, StatusCodesMapToStableWireCodes) {
  EXPECT_EQ(WireCodeFromStatus(Status::OK()), WireCode::kOk);
  EXPECT_EQ(WireCodeFromStatus(Status::InvalidArgument("x")),
            WireCode::kInvalidArgument);
  EXPECT_EQ(WireCodeFromStatus(Status::NotFound("x")), WireCode::kNotFound);
  EXPECT_EQ(WireCodeFromStatus(Status::Unavailable("x")),
            WireCode::kUnavailable);
  EXPECT_EQ(WireCodeFromStatus(Status::Overloaded("x")),
            WireCode::kOverloaded);
  EXPECT_EQ(WireCodeFromStatus(Status::DeadlineExceeded("x")),
            WireCode::kDeadlineExceeded);
  EXPECT_EQ(WireCodeFromStatus(Status::Internal("x")), WireCode::kInternal);
  // In-process-only codes collapse to kInternal rather than leaking enum
  // values the wire never promised.
  EXPECT_EQ(WireCodeFromStatus(Status::Inconsistent("x")),
            WireCode::kInternal);
}

}  // namespace
}  // namespace ldapbound
